//! The resilient execution engine: a pool of self-checking units behind
//! a bounded submission queue, with per-unit circuit breakers,
//! scrub-and-readmit recovery, a per-operation settle-work watchdog and
//! an escape cross-check against the bit-exact functional model.
//!
//! All pool units share one [`Netlist`] (the netlist is immutable under
//! simulation; faults are per-[`Simulator`] overlays), so an N-unit pool
//! costs N simulators, not N netlists.
//!
//! Time is counted in *ticks*: one [`Engine::tick`] call runs due
//! scrubs, dispatches at most one queued operation per dispatchable
//! unit (round-robin), samples the capacity timeline and updates the
//! pool gauges. There is no wall-clock anywhere, so a seeded run is
//! bit-reproducible.

use mfm_gatesim::{CompiledNetlist, LaneWord, NetId, Netlist, LANES, NO_LANES};
use mfm_softfloat::Flags;
use mfm_telemetry::{Counter, Gauge, Registry, TraceId};
use mfmult::selfcheck::{run_scrub_compiled, scrub_battery, SelfCheckingUnit};
use mfmult::structural::StructuralPorts;
use mfmult::{FunctionalUnit, MultResult, Operation};

use crate::health::{BreakerConfig, HealthState, HealthTracker, HealthTransition, TickVerdict};

/// Structured rejection returned by [`Engine::submit`] when the bounded
/// queue is full — the backpressure signal callers answer with
/// [`crate::backoff::SubmitBackoff`], or that a serving front-end turns
/// into a typed `Overloaded { retry_after }` response.
///
/// The rejection is never a silent drop: it carries the queue depth the
/// caller collided with and a retry-after hint derived from the recent
/// [`CapacitySample`] timeline (queue occupancy over the observed drain
/// rate), so a well-behaved client knows exactly how long to stay away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Queue occupancy at the moment of rejection.
    pub queued: u32,
    /// Estimated ticks until a queue slot frees up, computed from the
    /// completion rate over the recent capacity timeline. At least 1.
    pub retry_after: u64,
}

impl std::fmt::Display for Busy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission queue full ({} queued, retry after {} tick(s))",
            self.queued, self.retry_after
        )
    }
}

impl std::error::Error for Busy {}

/// An operation cancelled in the queue because its deadline passed
/// before any unit could serve it (drained with
/// [`Engine::take_expired`]). Deadline expiry is a first-class outcome,
/// never a silent drop: the submitter gets the id back and can answer
/// the caller with a typed `DeadlineExceeded`.
#[derive(Debug, Clone, Copy)]
pub struct ExpiredOp {
    /// Submission id returned by [`Engine::submit_with_deadline`].
    pub id: u64,
    /// The cancelled operation.
    pub op: Operation,
    /// The deadline tick that passed.
    pub deadline: u64,
    /// Tick at which the cancellation was performed.
    pub tick: u64,
    /// The request's trace id, when it was submitted with one.
    pub trace: Option<TraceId>,
}

/// Engine policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Capacity of the submission queue; a full queue rejects with
    /// [`Busy`].
    pub queue_depth: usize,
    /// Per-unit circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Watchdog headroom: the per-op settle-event budget is this factor
    /// times the worst op observed while replaying the scrub battery at
    /// construction.
    pub watchdog_margin: u64,
    /// Whether the pool's units were built with the quad-binary16
    /// extension (selects the wider scrub battery).
    pub quad_lanes: bool,
    /// Cold standby units provisioned beyond the serving pool. A spare
    /// takes no traffic and counts toward no capacity until a serving
    /// unit retires, at which point the spare runs an activation scrub
    /// and is promoted into the vacated role — so `hw_capacity` never
    /// degrades permanently while standbys remain.
    pub spares: usize,
    /// Scrub-battery operations replayed per *idle* tick against the
    /// least-recently-verified healthy unit (patrol scrubbing). 0
    /// disables patrol.
    pub patrol_slice: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_depth: 8,
            breaker: BreakerConfig::default(),
            watchdog_margin: 4,
            quad_lanes: false,
            spares: 0,
            patrol_slice: 0,
        }
    }
}

/// One delivered result, tagged with its submission id and the unit
/// that served it.
#[derive(Debug, Clone)]
pub struct Completed {
    /// Submission id returned by [`Engine::submit`].
    pub id: u64,
    /// The operation.
    pub op: Operation,
    /// Pool index of the serving unit.
    pub unit: usize,
    /// Tick at which the result was produced.
    pub tick: u64,
    /// The (checked or fallback) result.
    pub result: MultResult,
    /// The request's trace id, when it was submitted with one.
    pub trace: Option<TraceId>,
}

/// One point of the capacity timeline [`Engine::tick`] appends to.
#[derive(Debug, Clone, Copy)]
pub struct CapacitySample {
    /// Tick the sample was taken at.
    pub tick: u64,
    /// Units delivering gate-level (checked hardware) results.
    pub hw_capacity: u32,
    /// Units accepting work at all (includes retired fallback service).
    pub dispatchable: u32,
    /// Queue occupancy after this tick's dispatch.
    pub queued: u32,
    /// Operations completed during this tick.
    pub completed: u32,
}

/// What one [`Engine::tick`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickReport {
    /// Operations dispatched (and completed — service is synchronous
    /// within a tick).
    pub dispatched: u32,
    /// Scrubs run this tick.
    pub scrubs: u32,
    /// Of those, scrubs that passed and readmitted their unit.
    pub scrub_passes: u32,
}

/// Pool-level counters and gauges (see [`Engine::attach_telemetry`]).
struct PoolTelemetry {
    state_gauges: [Gauge; 6],
    hw_capacity: Gauge,
    queue_depth: Gauge,
    submitted: Counter,
    rejected: Counter,
    expired: Counter,
    completed: Counter,
    masked: Counter,
    dmr_shadows: Counter,
    dmr_mismatches: Counter,
    promotions: Counter,
    patrol_slices: Counter,
    patrol_failures: Counter,
    scrubs: Counter,
    scrub_passes: Counter,
    watchdog_trips: Counter,
    transitions: Counter,
}

const STATE_SLOTS: [HealthState; 6] = [
    HealthState::Healthy,
    HealthState::Suspect,
    HealthState::Quarantined,
    HealthState::Probation,
    HealthState::Retired,
    HealthState::Spare,
];

/// One queued submission awaiting dispatch.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    op: Operation,
    deadline: Option<u64>,
    trace: Option<TraceId>,
}

/// A modelled Byzantine defect: the unit's *output latch* flips bits
/// after every self-check has run, so the corruption is invisible to
/// the residue/recompute checks and to scrub batteries (which replay
/// through the checked datapath). Only redundant execution — the DMR
/// shadow, a TMR vote or the reference cross-check — can catch it.
#[derive(Debug, Clone, Copy)]
struct ByzantineFault {
    /// Every `period`-th served result is corrupted.
    period: u64,
    /// XOR pattern applied to the high product word.
    mask: u64,
    /// Results served through the latch so far.
    served: u64,
}

/// One pool slot: the unit, its breaker, and the chaos-environment
/// faults that must survive a scrub's repair step.
struct PoolUnit<'a> {
    unit: SelfCheckingUnit<'a>,
    health: HealthTracker,
    /// Environment faults re-asserted after every repair: a scrub can
    /// clear transient damage, but not the (modelled) physical defect.
    sticky: Vec<(NetId, bool)>,
    /// Nets to hit with a glitch storm immediately before the next
    /// dispatched operation (induced-delay chaos).
    pending_delay: Vec<NetId>,
    /// Chaos: an intermittent output-latch fault beyond check coverage.
    byzantine: Option<ByzantineFault>,
    /// Transitions already mirrored into the telemetry counter
    /// (a `transitions_logged` watermark, immune to ring eviction).
    mirrored_transitions: u64,
    /// Tick of the last successful verification (scrub or patrol slice).
    last_verified: u64,
    /// Whether this unit's retirement has already been answered with a
    /// spare promotion attempt.
    retirement_handled: bool,
    watchdog_trips: u64,
}

/// The pool engine (see the module docs).
pub struct Engine<'a> {
    units: Vec<PoolUnit<'a>>,
    reference: FunctionalUnit,
    battery: Vec<Operation>,
    /// Bit-parallel compiled form of the shared netlist: the scrub
    /// prefilter replays the whole battery in a handful of 64-lane
    /// passes before committing to the event-driven replay.
    compiled: CompiledNetlist,
    ports: StructuralPorts,
    queue: std::collections::VecDeque<Queued>,
    queue_depth: usize,
    breaker: BreakerConfig,
    /// Per-op settle-event ceiling (calibrated at construction).
    watchdog_budget: u64,
    tick: u64,
    next_id: u64,
    completed: Vec<Completed>,
    expired: Vec<ExpiredOp>,
    timeline: Vec<CapacitySample>,
    rr_cursor: usize,
    escapes: u64,
    masked: u64,
    dmr_shadows: u64,
    dmr_mismatches: u64,
    promotions: u64,
    patrol_slice: usize,
    patrol_cursor: usize,
    patrol_slices: u64,
    patrol_failures: u64,
    submitted: u64,
    rejected: u64,
    expired_total: u64,
    done: u64,
    scrubs: u64,
    scrub_passes: u64,
    telemetry: Option<PoolTelemetry>,
}

/// Whether two results agree on everything the hardware can express:
/// both product words, and the flag buses under the hardware mask (the
/// flag bus has no inexact wire).
fn results_agree_hw(a: &MultResult, b: &MultResult) -> bool {
    let hw = Flags::INVALID | Flags::OVERFLOW | Flags::UNDERFLOW;
    a.ph == b.ph
        && a.pl == b.pl
        && a.flags_lo.bits() & hw.bits() == b.flags_lo.bits() & hw.bits()
        && a.flags_hi.bits() & hw.bits() == b.flags_hi.bits() & hw.bits()
}

impl<'a> Engine<'a> {
    /// Builds a pool of `units` self-checking units over one shared
    /// netlist and calibrates the watchdog budget by replaying the scrub
    /// battery once (the per-op ceiling is `watchdog_margin` times the
    /// worst battery vector, read from the `sim.settle_events`
    /// histogram).
    pub fn new(
        netlist: &'a Netlist,
        ports: &StructuralPorts,
        units: usize,
        cfg: EngineConfig,
    ) -> Self {
        assert!(units > 0, "a pool needs at least one unit");
        let battery = scrub_battery(cfg.quad_lanes);
        let mut pool: Vec<PoolUnit<'a>> = (0..units + cfg.spares)
            .map(|k| PoolUnit {
                unit: SelfCheckingUnit::new(netlist, ports.clone()),
                // Slots past the serving pool are cold standbys.
                health: if k < units {
                    HealthTracker::new(cfg.breaker)
                } else {
                    HealthTracker::new_spare(cfg.breaker)
                },
                sticky: Vec::new(),
                pending_delay: Vec::new(),
                byzantine: None,
                mirrored_transitions: 0,
                last_verified: 0,
                retirement_handled: false,
                watchdog_trips: 0,
            })
            .collect();
        // Calibrate: replay the battery on unit 0 with the settle
        // histogram attached; the observed worst case times the margin
        // becomes every unit's per-op budget.
        let cal = Registry::new();
        pool[0].unit.sim_mut().attach_telemetry(&cal, u64::MAX);
        pool[0]
            .unit
            .run_scrub(&battery)
            .expect("clean hardware must pass its own scrub battery");
        let worst = cal
            .histogram("sim.settle_events")
            .max()
            .expect("battery settles at least once") as u64;
        let watchdog_budget = worst.saturating_mul(cfg.watchdog_margin.max(1)).max(1);
        // Detach the calibration registry and arm the hard settle stop
        // on every unit (a single settle pass can never legitimately
        // exceed the whole op's ceiling).
        for pu in &mut pool {
            pu.unit.sim_mut().detach_telemetry();
            pu.unit.sim_mut().set_settle_budget(Some(watchdog_budget));
        }
        let compiled = CompiledNetlist::compile(netlist).expect("pool netlist must be acyclic");
        Engine {
            units: pool,
            reference: FunctionalUnit::new(),
            battery,
            compiled,
            ports: ports.clone(),
            queue: std::collections::VecDeque::new(),
            queue_depth: cfg.queue_depth.max(1),
            breaker: cfg.breaker,
            watchdog_budget,
            tick: 0,
            next_id: 0,
            completed: Vec::new(),
            expired: Vec::new(),
            timeline: Vec::new(),
            rr_cursor: 0,
            escapes: 0,
            masked: 0,
            dmr_shadows: 0,
            dmr_mismatches: 0,
            promotions: 0,
            patrol_slice: cfg.patrol_slice,
            patrol_cursor: 0,
            patrol_slices: 0,
            patrol_failures: 0,
            submitted: 0,
            rejected: 0,
            expired_total: 0,
            done: 0,
            scrubs: 0,
            scrub_passes: 0,
            telemetry: None,
        }
    }

    /// Registers pool gauges and counters: `pool.units.<state>`,
    /// `pool.hw_capacity`, `pool.queue_depth`, plus `pool.{submitted,
    /// rejected, completed, escapes, masked, dmr_shadows,
    /// dmr_mismatches, promotions, patrol_slices, patrol_failures,
    /// scrubs, scrub_passes, watchdog_trips, transitions}`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        // `pool.escapes` stays registered (at zero) as the zero-escape
        // contract's scrapeable witness; the masking reference vote
        // leaves nothing that could increment it.
        let _ = registry.counter("pool.escapes");
        self.telemetry = Some(PoolTelemetry {
            state_gauges: STATE_SLOTS.map(|s| registry.gauge(&format!("pool.units.{}", s.label()))),
            hw_capacity: registry.gauge("pool.hw_capacity"),
            queue_depth: registry.gauge("pool.queue_depth"),
            submitted: registry.counter("pool.submitted"),
            rejected: registry.counter("pool.rejected"),
            expired: registry.counter("pool.expired"),
            completed: registry.counter("pool.completed"),
            masked: registry.counter("pool.masked"),
            dmr_shadows: registry.counter("pool.dmr_shadows"),
            dmr_mismatches: registry.counter("pool.dmr_mismatches"),
            promotions: registry.counter("pool.promotions"),
            patrol_slices: registry.counter("pool.patrol_slices"),
            patrol_failures: registry.counter("pool.patrol_failures"),
            scrubs: registry.counter("pool.scrubs"),
            scrub_passes: registry.counter("pool.scrub_passes"),
            watchdog_trips: registry.counter("pool.watchdog_trips"),
            transitions: registry.counter("pool.transitions"),
        });
    }

    /// Pool size.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Current health state of unit `i`.
    pub fn unit_state(&self, i: usize) -> HealthState {
        self.units[i].health.state()
    }

    /// Retained transition log of unit `i`, oldest first (bounded ring;
    /// see [`crate::health::TRANSITION_LOG_CAP`]).
    pub fn transitions(&self, i: usize) -> &[HealthTransition] {
        self.units[i].health.transitions()
    }

    /// Monotone total of transitions unit `i` ever logged, including
    /// entries evicted from the bounded ring. Delta-based consumers
    /// (gauge mirrors, flight-recorder feeds) must diff against this,
    /// never against `transitions().len()`.
    pub fn transitions_logged(&self, i: usize) -> u64 {
        self.units[i].health.transitions_logged()
    }

    /// The wrapped unit at slot `i` (stats, incident log).
    pub fn unit(&self, i: usize) -> &SelfCheckingUnit<'a> {
        &self.units[i].unit
    }

    /// The calibrated per-op settle-event ceiling.
    pub fn watchdog_budget(&self) -> u64 {
        self.watchdog_budget
    }

    /// Watchdog trips observed on unit `i`.
    pub fn watchdog_trips(&self, i: usize) -> u64 {
        self.units[i].watchdog_trips
    }

    /// Results wrongly delivered (disagreeing with the bit-exact
    /// reference). Since the reference vote substitutes the correct
    /// answer before delivery (see [`Engine::masked`]), this stays zero
    /// by construction; the counter remains as the contract's witness.
    pub fn escapes(&self) -> u64 {
        self.escapes
    }

    /// Wrong hardware results caught by the reference vote and replaced
    /// before delivery — each one also charged the serving unit's
    /// breaker. A nonzero count with zero [`Engine::escapes`] is fault
    /// *masking* working as designed.
    pub fn masked(&self) -> u64 {
        self.masked
    }

    /// Operations shadow-executed on a healthy peer because the serving
    /// unit was under suspicion (DMR-on-suspicion).
    pub fn dmr_shadows(&self) -> u64 {
        self.dmr_shadows
    }

    /// DMR shadow pairs that disagreed and went to the reference for
    /// the deciding vote.
    pub fn dmr_mismatches(&self) -> u64 {
        self.dmr_mismatches
    }

    /// Spares promoted into service after a retirement.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Cold standbys still available for promotion.
    pub fn spares_available(&self) -> u32 {
        self.units
            .iter()
            .filter(|u| u.health.state().is_spare())
            .count() as u32
    }

    /// Patrol battery slices run on idle ticks, and how many of them
    /// failed (charging the patrolled unit's breaker).
    pub fn patrol_stats(&self) -> (u64, u64) {
        (self.patrol_slices, self.patrol_failures)
    }

    /// Operations accepted, rejected and completed so far, and scrubs
    /// run / passed.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.submitted,
            self.rejected,
            self.done,
            self.scrubs,
            self.scrub_passes,
        )
    }

    /// Queue occupancy.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// The capacity timeline, one sample per tick.
    pub fn timeline(&self) -> &[CapacitySample] {
        &self.timeline
    }

    /// Drains the completed-results buffer.
    pub fn take_completed(&mut self) -> Vec<Completed> {
        std::mem::take(&mut self.completed)
    }

    /// Units currently delivering gate-level results.
    pub fn hw_capacity(&self) -> u32 {
        self.units
            .iter()
            .filter(|u| u.health.state().is_hw_capacity() && !u.unit.is_degraded())
            .count() as u32
    }

    /// Submits one operation. A full queue answers a structured
    /// [`Busy`] carrying the queue depth and a retry-after hint; the
    /// caller backs off and retries (see
    /// [`crate::backoff::SubmitBackoff`]) or sheds the request with a
    /// typed overload response.
    pub fn submit(&mut self, op: Operation) -> Result<u64, Busy> {
        self.submit_with_deadline(op, None)
    }

    /// Submits one operation with an optional absolute deadline tick.
    /// An operation still queued when `tick > deadline` is cancelled
    /// (never executed) and surfaces through [`Engine::take_expired`];
    /// one dispatched at `tick <= deadline` is served normally.
    pub fn submit_with_deadline(
        &mut self,
        op: Operation,
        deadline: Option<u64>,
    ) -> Result<u64, Busy> {
        self.submit_traced(op, deadline, None)
    }

    /// Like [`Engine::submit_with_deadline`], also attaching the
    /// request's [`TraceId`]. The id rides the queue entry into the
    /// [`Completed`]/[`ExpiredOp`] record and tags any breaker
    /// transition this request's incidents cause.
    pub fn submit_traced(
        &mut self,
        op: Operation,
        deadline: Option<u64>,
        trace: Option<TraceId>,
    ) -> Result<u64, Busy> {
        if self.queue.len() >= self.queue_depth {
            self.rejected += 1;
            if let Some(t) = &self.telemetry {
                t.rejected.inc();
            }
            return Err(Busy {
                queued: self.queue.len() as u32,
                retry_after: self.retry_after_hint(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.submitted += 1;
        if let Some(t) = &self.telemetry {
            t.submitted.inc();
        }
        self.queue.push_back(Queued {
            id,
            op,
            deadline,
            trace,
        });
        Ok(id)
    }

    /// Estimated ticks until a queue slot frees up, derived from the
    /// recent [`CapacitySample`] timeline: current queue occupancy over
    /// the mean completion rate of the last (up to) 16 samples. When no
    /// completions have been observed yet the hint falls back to one
    /// tick per queued operation per dispatchable unit. Always ≥ 1.
    pub fn retry_after_hint(&self) -> u64 {
        let queued = self.queue.len() as u64;
        let window = &self.timeline[self.timeline.len().saturating_sub(16)..];
        let served: u64 = window.iter().map(|s| s.completed as u64).sum();
        if served > 0 {
            // Ticks to drain the whole queue at the observed rate,
            // rounded up; an empty queue still asks for one tick.
            queued
                .saturating_mul(window.len() as u64)
                .div_ceil(served)
                .max(1)
        } else {
            let lanes = self
                .units
                .iter()
                .filter(|u| u.health.is_dispatchable())
                .count()
                .max(1) as u64;
            queued.div_ceil(lanes).max(1)
        }
    }

    /// Drains the operations cancelled in-queue by deadline expiry.
    pub fn take_expired(&mut self) -> Vec<ExpiredOp> {
        std::mem::take(&mut self.expired)
    }

    /// Operations cancelled by deadline expiry so far.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Credits unit `i` with externally served work. A front-end that
    /// batches requests through this unit's fault overlay (e.g. the
    /// serving front-end's 64-lane compiled path) feeds its observations
    /// into the unit's breaker exactly like in-pool dispatch does:
    /// `incidents > 0` counts against the unit, `incidents == 0` is a
    /// clean-operation heal credit. This keeps the circuit breaker
    /// authoritative for *all* traffic a unit carries, not just the
    /// operations the pool scheduler dispatched itself.
    pub fn note_external_service(&mut self, i: usize, incidents: u32) {
        self.note_external_service_traced(i, incidents, None);
    }

    /// Like [`Engine::note_external_service`], tagging any breaker
    /// transition the incidents cause with the trace id of the request
    /// that surfaced them, so the JSON transition log points back at a
    /// replayable trace.
    pub fn note_external_service_traced(
        &mut self,
        i: usize,
        incidents: u32,
        trace: Option<TraceId>,
    ) {
        let u = &mut self.units[i];
        if incidents > 0 {
            u.health
                .on_incidents_traced(self.tick, incidents, trace.map(TraceId::as_u64));
        } else {
            u.health.on_clean_op(self.tick);
        }
    }

    // ---- chaos hooks -------------------------------------------------

    /// Injects a stuck-at fault into unit `i`. A `sticky` fault models a
    /// physical defect: it is re-asserted after every scrub's repair
    /// step, so only [`Engine::clear_unit_faults`] (or retirement) ends
    /// it. A non-sticky fault models latched transient damage that a
    /// scrub's repair clears.
    pub fn inject_stuck_at(&mut self, i: usize, net: NetId, value: bool, sticky: bool) {
        let u = &mut self.units[i];
        u.unit.inject_stuck_at(net, value);
        if sticky {
            u.sticky.push((net, value));
        }
    }

    /// Clears every fault (including sticky and Byzantine ones) from
    /// unit `i` — the chaos plan's "field replacement" event.
    pub fn clear_unit_faults(&mut self, i: usize) {
        let u = &mut self.units[i];
        u.sticky.clear();
        u.byzantine = None;
        u.unit.clear_faults();
    }

    /// Arms a Byzantine output-latch fault on unit `i`: every
    /// `period`-th result the unit serves (pool dispatch or external
    /// batch lane) has its high product word XORed with `mask`, *after*
    /// the unit's self-checks ran. Scrub batteries replay through the
    /// checked datapath and pass — the fault is intentionally beyond
    /// check coverage, so only redundant execution (the DMR shadow, a
    /// TMR vote, or the reference cross-check) catches it.
    pub fn inject_byzantine(&mut self, i: usize, period: u64, mask: u64) {
        self.units[i].byzantine = Some(ByzantineFault {
            period: period.max(1),
            mask: if mask == 0 { 1 } else { mask },
            served: 0,
        });
    }

    /// Advances unit `i`'s Byzantine latch across `lanes` externally
    /// served results, returning the lane mask (bit k = lane k of the
    /// 256-lane batch word) of lanes the latch corrupts. All-zero when
    /// the unit carries no Byzantine fault. External batch paths call
    /// this once per batch so latch wear is shared between pool
    /// dispatch and batched service.
    pub fn byzantine_lane_mask(&mut self, i: usize, lanes: usize) -> LaneWord {
        let Some(b) = &mut self.units[i].byzantine else {
            return NO_LANES;
        };
        let mut hit = NO_LANES;
        for k in 0..lanes.min(LANES) {
            b.served += 1;
            if b.served % b.period == 0 {
                hit[k / 64] |= 1 << (k % 64);
            }
        }
        hit
    }

    /// The XOR pattern unit `i`'s Byzantine latch applies (0 = none);
    /// external batch paths apply it to the lanes flagged by
    /// [`Engine::byzantine_lane_mask`].
    pub fn byzantine_pattern(&self, i: usize) -> u64 {
        self.units[i].byzantine.map_or(0, |b| b.mask)
    }

    /// Arms a single-event upset on unit `i` for its next dispatched
    /// operation (see [`SelfCheckingUnit::schedule_seu`]).
    pub fn schedule_seu(&mut self, i: usize, edge: u32, net: NetId) {
        self.units[i].unit.schedule_seu(edge, net);
    }

    /// Queues a glitch storm on unit `i`: each net is pulsed immediately
    /// before the next dispatched operation, inflating that op's settle
    /// work so the watchdog sees a runaway simulation.
    pub fn induce_delay(&mut self, i: usize, nets: Vec<NetId>) {
        self.units[i].pending_delay.extend(nets);
    }

    // ---- the scheduler ----------------------------------------------

    /// Runs one scheduling round: due scrubs, expired-in-queue deadline
    /// cancellation, then at most one queued operation per dispatchable
    /// unit (round-robin, starting after the last unit served first in
    /// the previous round), then the capacity sample and gauge refresh.
    pub fn tick(&mut self) -> TickReport {
        self.tick += 1;
        let mut report = TickReport::default();
        // 1. Breaker time advances; elapsed cooldowns trigger scrubs.
        for i in 0..self.units.len() {
            if self.units[i].health.on_tick(self.tick) == TickVerdict::ScrubDue {
                let pass = self.scrub(i);
                report.scrubs += 1;
                self.scrubs += 1;
                if pass {
                    report.scrub_passes += 1;
                    self.scrub_passes += 1;
                    self.units[i].last_verified = self.tick;
                }
                if let Some(t) = &self.telemetry {
                    t.scrubs.inc();
                    if pass {
                        t.scrub_passes.inc();
                    }
                }
                self.units[i].health.on_scrub(self.tick, pass);
            }
        }
        // 1b. Hot-spare promotion: every retirement not yet answered is
        // met by activating a standby, so the pool's hardware capacity
        // never degrades permanently while spares remain.
        for i in 0..self.units.len() {
            if self.units[i].health.state() == HealthState::Retired
                && !self.units[i].retirement_handled
            {
                self.units[i].retirement_handled = true;
                self.promote_spare_for(i, &mut report);
            }
        }
        // 2. Expired-in-queue cancellation: an operation whose deadline
        // has already passed must not waste a dispatch slot — it is
        // pulled out here and surfaced through `take_expired`, so the
        // submitter can answer with a typed deadline response.
        if self
            .queue
            .iter()
            .any(|q| q.deadline.is_some_and(|d| d < self.tick))
        {
            let now = self.tick;
            let mut kept = std::collections::VecDeque::with_capacity(self.queue.len());
            for q in self.queue.drain(..) {
                match q.deadline {
                    Some(d) if d < now => {
                        self.expired_total += 1;
                        if let Some(t) = &self.telemetry {
                            t.expired.inc();
                        }
                        self.expired.push(ExpiredOp {
                            id: q.id,
                            op: q.op,
                            deadline: d,
                            tick: now,
                            trace: q.trace,
                        });
                    }
                    _ => kept.push_back(q),
                }
            }
            self.queue = kept;
        }
        // 3. Round-robin dispatch: one op per dispatchable unit.
        let n = self.units.len();
        let mut completed_now = 0u32;
        for k in 0..n {
            if self.queue.is_empty() {
                break;
            }
            let i = (self.rr_cursor + k) % n;
            if !self.units[i].health.is_dispatchable() {
                continue;
            }
            let q = self.queue.pop_front().expect("checked non-empty");
            self.dispatch_one(i, q.id, q.op, q.trace);
            report.dispatched += 1;
            completed_now += 1;
        }
        self.rr_cursor = (self.rr_cursor + 1) % n;
        // 3b. Patrol scrubbing: an idle tick is spent replaying a
        // bounded slice of the compiled scrub battery against the
        // least-recently-verified healthy unit, so latent faults are
        // caught before live traffic finds them.
        if report.dispatched == 0 && self.patrol_slice > 0 {
            self.patrol();
        }
        // 4. Observe.
        let sample = CapacitySample {
            tick: self.tick,
            hw_capacity: self.hw_capacity(),
            dispatchable: self
                .units
                .iter()
                .filter(|u| u.health.is_dispatchable())
                .count() as u32,
            queued: self.queue.len() as u32,
            completed: completed_now,
        };
        self.timeline.push(sample);
        self.update_gauges(&sample);
        report
    }

    /// Scrub-and-readmit for unit `i`: repair the hardware, re-assert
    /// the sticky environment faults (a scrub cannot fix a physical
    /// defect), then replay the battery. Returns whether the unit passed.
    ///
    /// The battery is first replayed through the compiled bit-parallel
    /// engine against the unit's stuck-at overlay (one 64-lane pass for
    /// the whole battery). Settled values are a pure function of the
    /// inputs plus that overlay, so a compiled *failure* is conclusive
    /// and fast-fails the scrub without the event-driven replay; a
    /// compiled *pass* is not sufficient (the watchdog verdict is
    /// timing-dependent), so it falls through to the full replay.
    fn scrub(&mut self, i: usize) -> bool {
        let u = &mut self.units[i];
        u.unit.repair();
        u.pending_delay.clear();
        for &(net, value) in &u.sticky {
            u.unit.inject_stuck_at(net, value);
        }
        let overlay = u.unit.sim().stuck_faults();
        if let Err(fail) = run_scrub_compiled(&self.compiled, &self.ports, &overlay, &self.battery)
        {
            return u.unit.note_scrub_outcome(Err(fail));
        }
        u.unit.try_recover_with(&self.battery)
    }

    /// Answers the retirement of unit `retired` by activating a spare:
    /// each standby in slot order runs a full activation scrub; the
    /// first one that passes is promoted into service (logged as a
    /// `spare → healthy` transition naming the replaced slot), and a
    /// standby that fails its activation scrub is retired on the spot
    /// and the next one tried.
    fn promote_spare_for(&mut self, retired: usize, report: &mut TickReport) {
        for s in 0..self.units.len() {
            if self.units[s].health.state() != HealthState::Spare {
                continue;
            }
            let pass = self.scrub(s);
            report.scrubs += 1;
            self.scrubs += 1;
            if let Some(t) = &self.telemetry {
                t.scrubs.inc();
            }
            if pass {
                report.scrub_passes += 1;
                self.scrub_passes += 1;
                self.promotions += 1;
                if let Some(t) = &self.telemetry {
                    t.scrub_passes.inc();
                    t.promotions.inc();
                }
                self.units[s].last_verified = self.tick;
                self.units[s].health.promote(
                    self.tick,
                    format!("activation scrub passed; promoted to replace retired unit {retired}"),
                );
                return;
            }
            self.units[s].retirement_handled = true;
            self.units[s].health.retire_spare(
                self.tick,
                "activation scrub failed; spare retired".to_string(),
            );
        }
    }

    /// One patrol round: replay `patrol_slice` battery operations (a
    /// rolling window over the compiled battery) against the stuck-fault
    /// overlay of the least-recently-verified serving unit (healthy or
    /// suspect — the states that carry hardware traffic). A failing
    /// slice charges that unit's breaker — the normal quarantine → scrub
    /// machinery takes it from there; a passing slice refreshes the
    /// unit's verification stamp.
    fn patrol(&mut self) {
        let Some(i) = (0..self.units.len())
            .filter(|&i| {
                self.units[i].health.state().is_hw_capacity() && !self.units[i].unit.is_degraded()
            })
            .min_by_key(|&i| self.units[i].last_verified)
        else {
            return;
        };
        let len = self.battery.len();
        let a = self.patrol_cursor.min(len.saturating_sub(1));
        let b = (a + self.patrol_slice).min(len);
        self.patrol_cursor = if b >= len { 0 } else { b };
        let slice = &self.battery[a..b];
        self.patrol_slices += 1;
        if let Some(t) = &self.telemetry {
            t.patrol_slices.inc();
        }
        let overlay = self.units[i].unit.sim().stuck_faults();
        if run_scrub_compiled(&self.compiled, &self.ports, &overlay, slice).is_err() {
            self.patrol_failures += 1;
            if let Some(t) = &self.telemetry {
                t.patrol_failures.inc();
            }
            self.units[i].health.on_incidents(self.tick, 1);
        } else {
            self.units[i].last_verified = self.tick;
        }
    }

    /// Serves one operation on unit `i`: glitch storms, execution, the
    /// per-op watchdog, the DMR shadow when the unit is under
    /// suspicion, health accounting and the masking reference vote.
    fn dispatch_one(&mut self, i: usize, id: u64, op: Operation, trace: Option<TraceId>) {
        let dmr_due = self.units[i].health.state() == HealthState::Suspect;
        let (mut result, delta, mut incidents) = {
            let u = &mut self.units[i];
            let ev0 = u.unit.sim().total_events();
            let inc0 = u.unit.incidents().len();
            // Induced-delay chaos: pulse the queued nets so the settle
            // work for this op balloons.
            let storm = std::mem::take(&mut u.pending_delay);
            for net in storm {
                let cur = u.unit.sim().read_bus(&[net]) & 1 == 1;
                u.unit.sim_mut().inject_stuck_at(net, !cur);
                u.unit.sim_mut().settle();
                u.unit.sim_mut().clear_fault(net);
            }
            let mut result = u.unit.execute(op);
            // Byzantine chaos: the output latch corrupts every Nth
            // served result *after* the self-checks ran.
            if let Some(b) = &mut u.byzantine {
                b.served += 1;
                if b.served % b.period == 0 {
                    result.ph ^= b.mask;
                }
            }
            let delta = u.unit.sim().total_events().saturating_sub(ev0);
            let incidents = (u.unit.incidents().len() - inc0) as u32;
            (result, delta, incidents)
        };
        // Per-op watchdog: the settle-event delta of this dispatch
        // (including any storm) against the calibrated ceiling. The
        // in-simulator budget already hard-stops a single runaway
        // settle; this catches death-by-many-settles too.
        if delta > self.watchdog_budget {
            incidents += 1;
            self.units[i].watchdog_trips += 1;
            if let Some(t) = &self.telemetry {
                t.watchdog_trips.inc();
            }
        }
        let want = self.reference.execute(op);
        // DMR-on-suspicion: work routed to a suspect unit is shadowed
        // on a healthy peer in the same tick. A disagreeing pair goes
        // to the bit-exact reference for the deciding vote; the losing
        // replica's unit is charged an incident. The client never sees
        // any of this — the masking vote below guarantees the answer.
        if dmr_due {
            let peer = (0..self.units.len()).find(|&j| {
                j != i
                    && self.units[j].health.state() == HealthState::Healthy
                    && !self.units[j].unit.is_degraded()
            });
            if let Some(j) = peer {
                self.dmr_shadows += 1;
                if let Some(t) = &self.telemetry {
                    t.dmr_shadows.inc();
                }
                let pu = &mut self.units[j];
                let jinc0 = pu.unit.incidents().len();
                let shadow = pu.unit.execute(op);
                let jinc = (pu.unit.incidents().len() - jinc0) as u32;
                if jinc > 0 {
                    // The shadow surfaced the peer's own problems: feed
                    // its breaker exactly like dispatched work would.
                    pu.health
                        .on_incidents_traced(self.tick, jinc, trace.map(TraceId::as_u64));
                }
                if !results_agree_hw(&shadow, &result) {
                    self.dmr_mismatches += 1;
                    if let Some(t) = &self.telemetry {
                        t.dmr_mismatches.inc();
                    }
                    if !results_agree_hw(&shadow, &want) {
                        // The healthy peer was the wrong one: vote
                        // against it. (A wrong suspect is charged by
                        // the masking vote below.)
                        self.units[j].health.on_incidents_traced(
                            self.tick,
                            1,
                            trace.map(TraceId::as_u64),
                        );
                    }
                }
            }
        }
        // A degraded unit serves correct (fallback) results but has no
        // business staying in rotation unexamined: force the breaker
        // towards quarantine so a scrub decides recovery vs retirement.
        if self.units[i].unit.is_degraded() && self.units[i].health.state() != HealthState::Retired
        {
            incidents = incidents.max(1);
        }
        // The masking reference vote: every delivered result is
        // compared against the bit-exact reference (the hardware flag
        // bus has no inexact wire, so flags compare under the hardware
        // mask). A disagreement is *masked* — the reference result is
        // substituted and the unit charged — so a wrong answer never
        // reaches a caller and `escapes` stays zero by construction.
        if !results_agree_hw(&result, &want) {
            self.masked += 1;
            incidents += 1;
            if let Some(t) = &self.telemetry {
                t.masked.inc();
            }
            result = want;
        }
        if incidents > 0 {
            self.units[i].health.on_incidents_traced(
                self.tick,
                incidents,
                trace.map(TraceId::as_u64),
            );
        } else {
            self.units[i].health.on_clean_op(self.tick);
        }
        self.done += 1;
        if let Some(t) = &self.telemetry {
            t.completed.inc();
        }
        self.completed.push(Completed {
            id,
            op,
            unit: i,
            tick: self.tick,
            result,
            trace,
        });
    }

    fn update_gauges(&mut self, sample: &CapacitySample) {
        // Mirror freshly logged transitions into the counter first (this
        // also works when telemetry is attached mid-run). The watermark
        // diffs against the monotone logged total, so ring eviction in
        // the bounded transition log never undercounts.
        let mut fresh = 0u64;
        for u in &mut self.units {
            let now = u.health.transitions_logged();
            fresh += now - u.mirrored_transitions;
            u.mirrored_transitions = now;
        }
        if let Some(t) = &self.telemetry {
            if fresh > 0 {
                t.transitions.add(fresh);
            }
            for (slot, gauge) in STATE_SLOTS.iter().zip(&t.state_gauges) {
                let count = self
                    .units
                    .iter()
                    .filter(|u| u.health.state() == *slot)
                    .count();
                gauge.set(count as f64);
            }
            t.hw_capacity.set(sample.hw_capacity as f64);
            t.queue_depth.set(sample.queued as f64);
        }
    }

    /// The breaker policy the pool runs under.
    pub fn breaker(&self) -> &BreakerConfig {
        &self.breaker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::tech::TechLibrary;
    use mfmult::structural::build_unit;

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            queue_depth: 4,
            breaker: BreakerConfig {
                open_after: 2,
                heal_after: 4,
                cooldown_ticks: 2,
                max_scrub_failures: 2,
            },
            watchdog_margin: 4,
            quad_lanes: false,
            spares: 0,
            patrol_slice: 0,
        }
    }

    #[test]
    fn clean_pool_serves_and_checks_everything() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 2, small_cfg());
        for k in 0..6u64 {
            engine.submit(Operation::int64(k + 1, 3)).unwrap();
            engine.tick();
        }
        while engine.pending() > 0 {
            engine.tick();
        }
        let done = engine.take_completed();
        assert_eq!(done.len(), 6);
        for c in &done {
            assert_eq!(c.result.int_product(), ((c.id + 1) * 3) as u128);
        }
        assert_eq!(engine.escapes(), 0);
        assert_eq!(engine.hw_capacity(), 2);
        // Round-robin used both units.
        assert!(done.iter().any(|c| c.unit == 0) && done.iter().any(|c| c.unit == 1));
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 1, small_cfg());
        for _ in 0..4 {
            engine.submit(Operation::int64(2, 2)).unwrap();
        }
        let busy = engine.submit(Operation::int64(2, 2)).unwrap_err();
        assert_eq!(busy.queued, 4, "rejection reports queue occupancy");
        assert!(busy.retry_after >= 1, "retry-after hint is always ≥ 1");
        engine.tick();
        assert!(
            engine.submit(Operation::int64(2, 2)).is_ok(),
            "drained one slot"
        );
        let (submitted, rejected, ..) = engine.totals();
        assert_eq!((submitted, rejected), (5, 1));
    }

    #[test]
    fn retry_after_tracks_the_observed_drain_rate() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 1, small_cfg());
        // Serve a few ops so the timeline has a completion rate of one
        // op per tick on the single unit.
        for k in 0..4u64 {
            engine.submit(Operation::int64(k + 1, 2)).unwrap();
            engine.tick();
        }
        // Fill the queue: 4 queued at ~1 op/tick should hint ≈ 4 ticks.
        for _ in 0..4 {
            engine.submit(Operation::int64(3, 3)).unwrap();
        }
        let busy = engine.submit(Operation::int64(3, 3)).unwrap_err();
        assert!(
            (2..=16).contains(&busy.retry_after),
            "hint {} not in the plausible drain window",
            busy.retry_after
        );
    }

    #[test]
    fn queued_past_deadline_is_cancelled_not_served() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 1, small_cfg());
        // Three ops on a one-unit pool: one per tick can be served. The
        // third carries a deadline that expires while it waits.
        engine
            .submit_with_deadline(Operation::int64(2, 2), Some(10))
            .unwrap();
        engine
            .submit_with_deadline(Operation::int64(3, 3), None)
            .unwrap();
        let doomed = engine
            .submit_with_deadline(Operation::int64(4, 4), Some(1))
            .unwrap();
        for _ in 0..4 {
            engine.tick();
        }
        let expired = engine.take_expired();
        assert_eq!(expired.len(), 1, "exactly the doomed op expired");
        assert_eq!(expired[0].id, doomed);
        assert_eq!(expired[0].deadline, 1);
        assert_eq!(engine.expired_total(), 1);
        let done = engine.take_completed();
        assert_eq!(done.len(), 2, "the other two were served");
        assert!(done.iter().all(|c| c.id != doomed), "doomed op never ran");
        let (submitted, _, completed, ..) = engine.totals();
        assert_eq!((submitted, completed), (3, 2));
    }

    #[test]
    fn deadline_met_is_served_normally() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 1, small_cfg());
        engine
            .submit_with_deadline(Operation::int64(6, 7), Some(1))
            .unwrap();
        engine.tick();
        assert!(engine.take_expired().is_empty());
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].result.int_product(), 42);
    }

    #[test]
    fn external_incidents_feed_the_breaker_like_dispatch() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 2, small_cfg());
        assert_eq!(engine.unit_state(0), HealthState::Healthy);
        engine.note_external_service(0, 1);
        assert_eq!(engine.unit_state(0), HealthState::Suspect);
        // Clean externally served lanes are heal credits (heal_after 4).
        for _ in 0..4 {
            engine.note_external_service(0, 0);
        }
        assert_eq!(engine.unit_state(0), HealthState::Healthy);
        // Enough failures open the breaker exactly like dispatch would.
        engine.note_external_service(0, 2);
        assert_eq!(engine.unit_state(0), HealthState::Quarantined);
        assert_eq!(
            engine.unit_state(1),
            HealthState::Healthy,
            "scoped to the slot"
        );
    }

    #[test]
    fn faulty_unit_quarantines_scrubs_and_readmits() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 2, small_cfg());
        let registry = Registry::new();
        engine.attach_telemetry(&registry);
        // Latched transient damage (non-sticky): a scrub's repair clears
        // it, so the unit must come back.
        let lsb = ports.chk_p0[0];
        engine.inject_stuck_at(0, lsb, true, false);
        let mut sent = 0u64;
        while sent < 40 || engine.pending() > 0 {
            if sent < 40 && engine.submit(Operation::int64(sent + 2, 7)).is_ok() {
                sent += 1;
            }
            engine.tick();
        }
        assert_eq!(engine.escapes(), 0, "no wrong answers escape");
        let trail: Vec<_> = engine
            .transitions(0)
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert!(
            trail.contains(&(HealthState::Quarantined, HealthState::Probation))
                && trail.contains(&(HealthState::Probation, HealthState::Healthy)),
            "expected a full recovery cycle, got {trail:?}"
        );
        assert_eq!(engine.unit_state(0), HealthState::Healthy);
        assert_eq!(engine.hw_capacity(), 2);
        assert!(registry.counter("pool.scrub_passes").get() >= 1);
        assert!(registry.counter("pool.transitions").get() >= 4);
        // The timeline saw the capacity dip and the recovery.
        let caps: Vec<_> = engine.timeline().iter().map(|s| s.hw_capacity).collect();
        assert!(caps.iter().any(|&c| c < 2), "capacity dipped: {caps:?}");
        assert_eq!(*caps.last().unwrap(), 2, "capacity recovered");
    }

    #[test]
    fn sticky_fault_retires_after_k_failed_scrubs() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 2, small_cfg());
        // A physical defect: survives every repair.
        let lsb = ports.chk_p0[0];
        engine.inject_stuck_at(0, lsb, true, true);
        let mut sent = 0u64;
        while sent < 60 || engine.pending() > 0 {
            if sent < 60 && engine.submit(Operation::int64(sent + 2, 9)).is_ok() {
                sent += 1;
            }
            engine.tick();
        }
        assert_eq!(engine.unit_state(0), HealthState::Retired);
        assert_eq!(engine.escapes(), 0, "retired unit serves via fallback");
        assert_eq!(engine.hw_capacity(), 1);
        // Retired units still serve traffic.
        let done = engine.take_completed();
        assert!(
            done.iter().any(|c| c.unit == 0),
            "retired slot kept serving"
        );
        assert_eq!(done.len() as u64, 60);
    }

    #[test]
    fn traced_submission_tags_results_and_breaker_transitions() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 1, small_cfg());
        // Poison the check LSB so every even product raises incidents.
        engine.inject_stuck_at(0, ports.chk_p0[0], true, false);
        let trace = TraceId::from_raw(0xCAFE_F00D);
        engine
            .submit_traced(Operation::int64(3, 4), None, Some(trace))
            .unwrap();
        engine.tick();
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].trace, Some(trace), "trace rides the completion");
        assert_eq!(done[0].result.int_product(), 12, "answer still correct");
        // The healthy→suspect transition names the offending trace.
        let t = engine.transitions(0);
        assert!(!t.is_empty(), "incident must log a transition");
        assert_eq!(t[0].trace, Some(trace.as_u64()));
        assert!(t[0].to_json().contains("\"trace_id\":\"00000000cafef00d\""));
        // External service credit with a trace reaches the breaker too.
        let mut engine2 = Engine::new(&n, &ports, 1, small_cfg());
        let t2 = TraceId::from_raw(77);
        engine2.note_external_service_traced(0, 2, Some(t2));
        assert_eq!(engine2.transitions(0)[0].trace, Some(77));
        // Untraced submissions keep a trace-free log (schema unchanged).
        let mut engine3 = Engine::new(&n, &ports, 1, small_cfg());
        engine3.inject_stuck_at(0, ports.chk_p0[0], true, false);
        engine3.submit(Operation::int64(3, 4)).unwrap();
        engine3.tick();
        assert_eq!(engine3.transitions(0)[0].trace, None);
    }

    #[test]
    fn byzantine_unit_is_outvoted_masked_and_never_escapes() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut engine = Engine::new(&n, &ports, 2, small_cfg());
        // An output-latch defect beyond check coverage: every 3rd
        // result served by unit 0 has a product bit flipped after the
        // self-checks ran. Scrubs replay the checked datapath and pass.
        engine.inject_byzantine(0, 3, 1 << 7);
        let mut sent = 0u64;
        while sent < 60 || engine.pending() > 0 {
            if sent < 60 && engine.submit(Operation::int64(sent + 2, 5)).is_ok() {
                sent += 1;
            }
            engine.tick();
        }
        // The contract: wrong answers were produced, every one was
        // masked before delivery, none escaped.
        assert_eq!(engine.escapes(), 0, "no wrong answer ever delivered");
        assert!(engine.masked() >= 3, "the latch did corrupt results");
        let done = engine.take_completed();
        assert_eq!(done.len() as u64, 60);
        for c in &done {
            assert_eq!(c.result.int_product(), ((c.id + 2) * 5) as u128);
        }
        // The masking votes charged the breaker: the unit was
        // quarantined, its scrub passed (the battery sees a clean
        // datapath — that is what makes the fault Byzantine), and it
        // was readmitted to flap again.
        let trail: Vec<_> = engine
            .transitions(0)
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert!(
            trail.contains(&(HealthState::Suspect, HealthState::Quarantined)),
            "breaker opened on the byzantine unit: {trail:?}"
        );
        assert!(
            trail.contains(&(HealthState::Probation, HealthState::Healthy)),
            "scrubs pass — the fault is beyond battery coverage: {trail:?}"
        );
        // While suspect, dispatches were DMR-shadowed on the healthy
        // peer, and corrupted ones lost the vote.
        assert!(engine.dmr_shadows() >= 1, "suspicion triggered shadows");
        assert_eq!(
            engine.unit_state(1),
            HealthState::Healthy,
            "the honest peer is never blamed"
        );
    }

    #[test]
    fn retirement_promotes_a_spare_and_restores_capacity() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut cfg = small_cfg();
        cfg.spares = 1;
        let mut engine = Engine::new(&n, &ports, 2, cfg);
        assert_eq!(engine.unit_count(), 3, "2 serving + 1 standby slots");
        assert_eq!(engine.hw_capacity(), 2, "spares are not capacity");
        assert_eq!(engine.spares_available(), 1);
        assert_eq!(engine.unit_state(2), HealthState::Spare);
        // A physical defect retires unit 0 after max_scrub_failures.
        engine.inject_stuck_at(0, ports.chk_p0[0], true, true);
        let mut sent = 0u64;
        while sent < 60 || engine.pending() > 0 {
            if sent < 60 && engine.submit(Operation::int64(sent + 2, 9)).is_ok() {
                sent += 1;
            }
            engine.tick();
        }
        assert_eq!(engine.unit_state(0), HealthState::Retired);
        // The standby was promoted in the same tick the retirement was
        // observed: capacity is back at its pre-fault value.
        assert_eq!(engine.unit_state(2), HealthState::Healthy);
        assert_eq!(engine.hw_capacity(), 2, "capacity fully restored");
        assert_eq!(engine.promotions(), 1);
        assert_eq!(engine.spares_available(), 0);
        assert_eq!(engine.escapes(), 0);
        let promo = engine
            .transitions(2)
            .iter()
            .find(|t| t.from == HealthState::Spare && t.to == HealthState::Healthy)
            .expect("promotion is a logged health transition");
        assert!(
            promo.reason.contains("retired unit 0"),
            "the transition names the replaced slot: {}",
            promo.reason
        );
        // The capacity timeline shows dip and restoration.
        let caps: Vec<_> = engine.timeline().iter().map(|s| s.hw_capacity).collect();
        assert!(caps.iter().any(|&c| c < 2), "capacity dipped: {caps:?}");
        assert_eq!(*caps.last().unwrap(), 2, "and recovered via promotion");
    }

    #[test]
    fn patrol_scrubbing_catches_a_latent_fault_without_traffic() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut cfg = small_cfg();
        cfg.patrol_slice = 8;
        let mut engine = Engine::new(&n, &ports, 2, cfg);
        // Latent (non-sticky) damage on an idle unit: no operation is
        // ever submitted, so only patrol can find it.
        engine.inject_stuck_at(0, ports.chk_p0[0], true, false);
        let mut caught = false;
        for _ in 0..200 {
            engine.tick();
            if engine.unit_state(0) != HealthState::Healthy {
                caught = true;
            }
        }
        let (slices, failures) = engine.patrol_stats();
        assert!(caught, "patrol surfaced the latent fault");
        assert!(slices >= 2, "idle ticks ran patrol slices: {slices}");
        assert!(failures >= 1, "the faulty slice failed: {failures}");
        // The breaker machinery took over: quarantine, scrub (repair
        // clears the latched damage), readmission.
        assert_eq!(engine.unit_state(0), HealthState::Healthy);
        let trail: Vec<_> = engine
            .transitions(0)
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert!(
            trail.contains(&(HealthState::Probation, HealthState::Healthy)),
            "repaired and readmitted: {trail:?}"
        );
        assert_eq!(engine.escapes(), 0);
    }

    #[test]
    fn induced_delay_storm_trips_the_watchdog() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut cfg = small_cfg();
        cfg.watchdog_margin = 1;
        let mut engine = Engine::new(&n, &ports, 1, cfg);
        // Each pulse commits at least one settle event, so budget + 2
        // pulses push the op's settle-work delta past the ceiling no
        // matter how the budget was calibrated.
        let victim = ports.flags[0];
        let victims: Vec<NetId> =
            std::iter::repeat_n(victim, engine.watchdog_budget() as usize + 2).collect();
        engine.induce_delay(0, victims);
        engine.submit(Operation::int64(3, 5)).unwrap();
        engine.tick();
        assert!(
            engine.watchdog_trips(0) >= 1,
            "storm must trip the watchdog"
        );
        assert_eq!(engine.escapes(), 0);
        let c = engine.take_completed();
        assert_eq!(c[0].result.int_product(), 15, "the answer is still right");
    }
}
