//! Deterministic chaos plans: a seeded schedule of fault events applied
//! to an [`Engine`] pool mid-workload. Generation and application are
//! both pure functions of the seed and the netlist, so a chaos run is
//! bit-reproducible.

use mfm_gatesim::NetId;
use mfm_prng::Rng;

use crate::engine::Engine;

/// What a chaos event does to its target unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Arm a single-event upset for the unit's next operation (masked on
    /// combinational builds, where no register can capture the pulse).
    Seu,
    /// Force a net. `sticky` models a physical defect that survives
    /// scrub repair; a non-sticky stuck-at models latched transient
    /// damage a scrub clears.
    StuckAt {
        /// Forced value.
        value: bool,
        /// Whether the fault is re-asserted after every scrub repair.
        sticky: bool,
    },
    /// Clear every fault on the unit — a field replacement, ending even
    /// sticky defects.
    ClearFaults,
    /// Glitch-storm a net before the unit's next operation, inflating
    /// its settle work. `severity` is 1..=4; at 4 the storm is sized
    /// past the engine's calibrated watchdog budget, so the trip is
    /// guaranteed.
    Delay {
        /// Storm size as a quarter-fraction of the watchdog budget.
        severity: u32,
    },
    /// Arm a Byzantine output-latch fault: every `period`-th result the
    /// unit serves is corrupted *after* its self-checks ran, so scrub
    /// batteries pass ("scrub-clean") and only redundant execution can
    /// catch it.
    Byzantine {
        /// Corrupt every `period`-th served result.
        period: u64,
    },
}

impl ChaosKind {
    /// Stable label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            ChaosKind::Seu => "seu",
            ChaosKind::StuckAt { sticky: true, .. } => "stuck_at_sticky",
            ChaosKind::StuckAt { sticky: false, .. } => "stuck_at",
            ChaosKind::ClearFaults => "clear_faults",
            ChaosKind::Delay { .. } => "delay",
            ChaosKind::Byzantine { .. } => "byzantine",
        }
    }
}

/// One scheduled event. `net_pick`/`edge_pick` are raw random draws,
/// resolved against the actual netlist and pipeline depth at
/// application time, so one plan is meaningful for any build.
#[derive(Debug, Clone, Copy)]
pub struct ChaosEvent {
    /// Workload ordinal (submission index) the event fires before.
    pub at_op: u64,
    /// Target pool slot.
    pub unit: usize,
    /// Raw draw selecting the victim net among the candidate sites.
    pub net_pick: u64,
    /// Raw draw selecting the SEU capture edge.
    pub edge_pick: u32,
    /// What happens.
    pub kind: ChaosKind,
}

/// Plan-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlanConfig {
    /// Seed for the plan's private PRNG stream.
    pub seed: u64,
    /// Pool size the plan targets.
    pub units: usize,
    /// Workload length; events land in the first three quarters so
    /// their consequences (quarantine, scrub, readmission) play out
    /// inside the run.
    pub ops: u64,
    /// Fault events to schedule (clear-faults events come on top).
    pub faults: usize,
    /// Probability that a stuck-at is sticky (a physical defect).
    pub sticky_fraction: f64,
    /// Probability that a sticky defect later gets a clear-faults event
    /// (a field replacement), letting the unit recover instead of
    /// retiring.
    pub clear_fraction: f64,
    /// Probability that a fault event is a Byzantine output-latch fault
    /// instead of the classic kinds. 0 (the default) keeps the plan
    /// stream bit-identical to plans generated before the kind existed.
    pub byzantine_fraction: f64,
}

impl Default for ChaosPlanConfig {
    fn default() -> Self {
        ChaosPlanConfig {
            seed: 2017,
            units: 4,
            ops: 300,
            faults: 60,
            sticky_fraction: 0.2,
            clear_fraction: 0.5,
            byzantine_fraction: 0.0,
        }
    }
}

/// A seeded, sorted schedule of chaos events.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Events sorted by `at_op` (stable: generation order breaks ties).
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generates the plan for `cfg`. Pure function of the config.
    pub fn generate(cfg: &ChaosPlanConfig) -> ChaosPlan {
        let mut rng = Rng::new(cfg.seed ^ 0xc4a0_5c4a_05c4_a05c);
        let horizon = (cfg.ops.saturating_mul(3) / 4).max(1);
        let mut events = Vec::with_capacity(cfg.faults + 8);
        for _ in 0..cfg.faults {
            let at_op = rng.range_u64(1, horizon + 1);
            let unit = rng.range_u64(0, cfg.units as u64) as usize;
            let net_pick = rng.next_u64();
            let edge_pick = rng.range_u64(0, 64) as u32;
            // The Byzantine draw is gated on the knob being nonzero so a
            // fraction of 0.0 consumes no PRNG draws — plans generated
            // before the kind existed replay bit-identically.
            if cfg.byzantine_fraction > 0.0 && rng.next_bool(cfg.byzantine_fraction) {
                events.push(ChaosEvent {
                    at_op,
                    unit,
                    net_pick,
                    edge_pick,
                    kind: ChaosKind::Byzantine {
                        period: 2 + rng.range_u64(0, 4),
                    },
                });
                continue;
            }
            let roll = rng.next_f64();
            let kind = if roll < 0.40 {
                ChaosKind::Seu
            } else if roll < 0.80 {
                ChaosKind::StuckAt {
                    value: rng.next_bool(0.5),
                    sticky: rng.next_bool(cfg.sticky_fraction),
                }
            } else {
                ChaosKind::Delay {
                    severity: 1 + rng.range_u64(0, 4) as u32,
                }
            };
            events.push(ChaosEvent {
                at_op,
                unit,
                net_pick,
                edge_pick,
                kind,
            });
            if let ChaosKind::StuckAt { sticky: true, .. } = kind {
                if rng.next_bool(cfg.clear_fraction) {
                    events.push(ChaosEvent {
                        at_op: at_op + rng.range_u64(8, 48),
                        unit,
                        net_pick: 0,
                        edge_pick: 0,
                        kind: ChaosKind::ClearFaults,
                    });
                }
            }
        }
        events.sort_by_key(|e| e.at_op);
        ChaosPlan { events }
    }

    /// Fault events in the plan (clear-faults maintenance not counted).
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind != ChaosKind::ClearFaults)
            .count()
    }

    /// Per-kind event counts as `(label, count)` rows, in a fixed order.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let labels = [
            "seu",
            "stuck_at",
            "stuck_at_sticky",
            "delay",
            "byzantine",
            "clear_faults",
        ];
        labels
            .iter()
            .map(|&l| {
                (
                    l,
                    self.events.iter().filter(|e| e.kind.label() == l).count() as u64,
                )
            })
            .collect()
    }
}

/// Applies one event to the engine. `sites` is the candidate victim-net
/// list (typically every cell output), `latency` the build's pipeline
/// depth (resolves the SEU capture edge).
pub fn apply_event(engine: &mut Engine<'_>, ev: &ChaosEvent, sites: &[NetId], latency: u32) {
    assert!(!sites.is_empty(), "need at least one candidate site");
    let net = sites[(ev.net_pick % sites.len() as u64) as usize];
    match ev.kind {
        ChaosKind::Seu => {
            let edge = 1 + ev.edge_pick % (latency + 1);
            engine.schedule_seu(ev.unit, edge, net);
        }
        ChaosKind::StuckAt { value, sticky } => {
            engine.inject_stuck_at(ev.unit, net, value, sticky);
        }
        ChaosKind::ClearFaults => engine.clear_unit_faults(ev.unit),
        ChaosKind::Byzantine { period } => {
            // The corrupted bit pattern is derived from the net draw so
            // different events flip different product bits.
            let mask = 1u64 << (ev.net_pick % 64);
            engine.inject_byzantine(ev.unit, period, mask);
        }
        ChaosKind::Delay { severity } => {
            let budget = engine.watchdog_budget();
            let pulses = (severity as u64)
                .saturating_mul(budget + 2)
                .div_ceil(4)
                .max(8);
            engine.induce_delay(ev.unit, vec![net; pulses as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let cfg = ChaosPlanConfig::default();
        let a = ChaosPlan::generate(&cfg);
        let b = ChaosPlan::generate(&cfg);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(
                (x.at_op, x.unit, x.net_pick, x.edge_pick, x.kind),
                (y.at_op, y.unit, y.net_pick, y.edge_pick, y.kind)
            );
        }
        assert!(a.events.windows(2).all(|w| w[0].at_op <= w[1].at_op));
        assert_eq!(a.fault_count(), cfg.faults);
        let total: u64 = a.kind_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total as usize, a.events.len());
    }

    #[test]
    fn byzantine_knob_adds_events_and_zero_keeps_old_streams() {
        let base = ChaosPlanConfig::default();
        let with_byz = ChaosPlanConfig {
            byzantine_fraction: 0.5,
            ..base
        };
        let plan = ChaosPlan::generate(&with_byz);
        let byz = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, ChaosKind::Byzantine { .. }))
            .count();
        assert!(byz >= 10, "half the faults should be byzantine: {byz}");
        for e in &plan.events {
            if let ChaosKind::Byzantine { period } = e.kind {
                assert!((2..=5).contains(&period));
            }
        }
        let counted = plan
            .kind_counts()
            .iter()
            .find(|(l, _)| *l == "byzantine")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(counted as usize, byz, "kind_counts knows the label");
        // A zero fraction consumes no draws: the stream is identical to
        // a plan generated before the kind existed (same as default).
        let a = ChaosPlan::generate(&base);
        let b = ChaosPlan::generate(&ChaosPlanConfig {
            byzantine_fraction: 0.0,
            ..base
        });
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!((x.at_op, x.net_pick, x.kind), (y.at_op, y.net_pick, y.kind));
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let mut cfg = ChaosPlanConfig::default();
        let a = ChaosPlan::generate(&cfg);
        cfg.seed ^= 1;
        let b = ChaosPlan::generate(&cfg);
        let same = a
            .events
            .iter()
            .zip(&b.events)
            .filter(|(x, y)| x.at_op == y.at_op && x.net_pick == y.net_pick)
            .count();
        assert!(same < a.events.len() / 2, "{same} identical events");
    }

    #[test]
    fn events_target_valid_units_and_window() {
        let cfg = ChaosPlanConfig {
            units: 3,
            ops: 100,
            ..ChaosPlanConfig::default()
        };
        let plan = ChaosPlan::generate(&cfg);
        for e in &plan.events {
            assert!(e.unit < cfg.units);
            if e.kind != ChaosKind::ClearFaults {
                assert!(e.at_op >= 1 && e.at_op <= cfg.ops * 3 / 4);
            }
        }
    }
}
