//! Resilient multi-unit execution for the SOCC'17 multi-format
//! multiplier: a pool of self-checking units behind a bounded,
//! backpressured submission queue, with per-unit circuit breakers,
//! scrub-and-readmit recovery, a settle-work watchdog and a
//! deterministic chaos harness.
//!
//! The layer turns the one-way degradation of
//! [`mfmult::selfcheck::SelfCheckingUnit`] into a lifecycle:
//!
//! - [`health`] — the breaker state machine (`Healthy → Suspect →
//!   Quarantined → Probation → Healthy | Retired`, plus the `Spare`
//!   standby state) and its bounded, JSON-logged transition trail.
//! - [`backoff`] — caller-side truncated exponential backoff with
//!   deterministic jitter for `Busy` rejections.
//! - [`engine`] — the pool scheduler: round-robin dispatch, scrubs,
//!   the per-op watchdog, pool gauges, and the adaptive redundancy
//!   layer: a masking reference vote on every delivered result,
//!   DMR-on-suspicion shadow execution, hot-spare promotion after
//!   retirements, and patrol scrubbing on idle ticks.
//! - [`chaos`] — seeded fault schedules (SEUs, stuck-ats, induced
//!   delays, Byzantine output-latch faults, field replacements) for
//!   reproducible resilience runs.
//!
//! The two invariants every chaos run is judged by: **zero wrong
//! answers escape** (each delivered result is voted against the
//! `mfm-softfloat`-backed reference and masked on disagreement), and
//! **capacity degrades and recovers** (the timeline shows hardware
//! capacity dip under faults and return after scrubs or spare
//! promotion).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backoff;
pub mod chaos;
pub mod engine;
pub mod health;

pub use backoff::{BackoffConfig, SubmitBackoff};
pub use chaos::{apply_event, ChaosEvent, ChaosKind, ChaosPlan, ChaosPlanConfig};
pub use engine::{Busy, CapacitySample, Completed, Engine, EngineConfig, ExpiredOp, TickReport};
pub use health::{BreakerConfig, HealthState, HealthTracker, HealthTransition, TickVerdict};
