//! Per-unit health tracking: a circuit-breaker lifecycle over the
//! incident stream of one [`mfmult::selfcheck::SelfCheckingUnit`].
//!
//! ```text
//!            incident                 open_after incidents
//! Healthy ────────────▶ Suspect ──────────────────────────▶ Quarantined
//!    ▲                     │ heal_after clean ops                │
//!    │                     ▼                                     │ cooldown_ticks
//!    │                  Healthy                                  ▼
//!    └───── scrub pass ──────────────────────────────────── Probation
//!                                                                │ scrub fail
//!                                                                ▼
//!                             ◀ max_scrub_failures ▶        Quarantined … Retired
//! ```
//!
//! The tracker is pure bookkeeping: it never touches the unit. The
//! engine feeds it events (`on_incidents`, `on_clean_op`, `on_tick`,
//! `on_scrub`) and obeys its verdicts (`is_dispatchable`,
//! [`TickVerdict::ScrubDue`]). Every state change is appended to a
//! transition log rendered through the RFC 8259 writer of
//! [`mfm_telemetry::json`].

use mfm_telemetry::json::JsonObject;

/// Upper bound on the per-unit transition log. Like the service's
/// `TraceRing`, the log evicts oldest-first once full; the monotone
/// [`HealthTracker::transitions_logged`] total keeps delta-based
/// consumers (gauge mirroring, flight-recorder feeds) correct across
/// evictions.
pub const TRANSITION_LOG_CAP: usize = 64;

/// Lifecycle state of one pool unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Serving traffic, no recent incidents.
    Healthy,
    /// Serving traffic, but the breaker has counted recent incidents.
    Suspect,
    /// Breaker open: removed from dispatch, cooling down before a scrub.
    Quarantined,
    /// Cooldown elapsed: the unit is being scrubbed (repair + battery).
    Probation,
    /// Scrubbing gave up after `max_scrub_failures` failures; the unit
    /// serves only through its functional fallback, forever.
    Retired,
    /// A provisioned cold standby: powered but out of rotation, waiting
    /// to be promoted when a serving unit retires.
    Spare,
}

impl HealthState {
    /// Stable lower-snake-case label used in metrics and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
            HealthState::Retired => "retired",
            HealthState::Spare => "spare",
        }
    }

    /// Whether a unit in this state receives work from the dispatcher.
    /// Retired units still serve (via the functional fallback); only
    /// quarantine and probation take a unit out of rotation.
    pub const fn is_dispatchable(self) -> bool {
        matches!(
            self,
            HealthState::Healthy | HealthState::Suspect | HealthState::Retired
        )
    }

    /// Whether a unit in this state delivers gate-level (checked
    /// hardware) results rather than the functional fallback.
    pub const fn is_hw_capacity(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Suspect)
    }

    /// Whether a unit in this state is a cold standby awaiting
    /// promotion.
    pub const fn is_spare(self) -> bool {
        matches!(self, HealthState::Spare)
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Circuit-breaker policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Incidents (within one suspect episode) that open the breaker.
    pub open_after: u32,
    /// Consecutive clean operations that clear a suspect back to healthy.
    pub heal_after: u32,
    /// Ticks a quarantined unit cools down before its scrub runs.
    pub cooldown_ticks: u32,
    /// Failed scrubs after which the unit is retired for good.
    pub max_scrub_failures: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 3,
            heal_after: 8,
            cooldown_ticks: 4,
            max_scrub_failures: 3,
        }
    }
}

/// One logged state change of a [`HealthTracker`].
#[derive(Debug, Clone)]
pub struct HealthTransition {
    /// Engine tick at which the transition happened.
    pub tick: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Why (breaker counters, scrub outcome, …).
    pub reason: String,
    /// The trace id of the request whose incident caused this
    /// transition, when the caller knows it. Heal/scrub transitions
    /// have no single offending request and carry `None`.
    pub trace: Option<u64>,
}

impl HealthTransition {
    /// Renders the transition as a single-line JSON object via the
    /// validated writer (escaping handled by [`mfm_telemetry::json`]).
    /// A known offending trace id is appended as a 16-digit hex
    /// `trace_id` field; transitions without one render exactly as
    /// before the field existed.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("event", "health_transition")
            .field_u64("tick", self.tick)
            .field_str("from", self.from.label())
            .field_str("to", self.to.label())
            .field_str("reason", &self.reason);
        if let Some(t) = self.trace {
            o.field_str("trace_id", &format!("{t:016x}"));
        }
        o.finish()
    }
}

/// What [`HealthTracker::on_tick`] asks the engine to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickVerdict {
    /// Nothing; carry on.
    None,
    /// The cooldown elapsed: run a scrub now and report the outcome via
    /// [`HealthTracker::on_scrub`].
    ScrubDue,
}

/// The breaker state machine for one unit (see the module docs).
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: BreakerConfig,
    state: HealthState,
    /// Incidents counted in the current suspect episode.
    incident_count: u32,
    /// Consecutive clean ops while suspect.
    clean_streak: u32,
    /// Remaining cooldown ticks while quarantined.
    cooldown_left: u32,
    /// Failed scrubs since the unit last left `Healthy`.
    scrub_failures: u32,
    /// Bounded transition ring, oldest first (see [`TRANSITION_LOG_CAP`]).
    transitions: Vec<HealthTransition>,
    /// Monotone count of every transition ever logged, including ones
    /// the ring has since evicted.
    logged: u64,
}

impl HealthTracker {
    /// A fresh (healthy) tracker under the given policy.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_state(cfg, HealthState::Healthy)
    }

    /// A tracker born as a cold standby ([`HealthState::Spare`]): out of
    /// dispatch and out of hardware capacity until promoted.
    pub fn new_spare(cfg: BreakerConfig) -> Self {
        Self::with_state(cfg, HealthState::Spare)
    }

    fn with_state(cfg: BreakerConfig, state: HealthState) -> Self {
        HealthTracker {
            cfg,
            state,
            incident_count: 0,
            clean_streak: 0,
            cooldown_left: 0,
            scrub_failures: 0,
            transitions: Vec::new(),
            logged: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Failed scrubs since the unit last left `Healthy`.
    pub fn scrub_failures(&self) -> u32 {
        self.scrub_failures
    }

    /// The retained transition log, oldest first. Bounded at
    /// [`TRANSITION_LOG_CAP`] entries; use
    /// [`HealthTracker::transitions_logged`] for the all-time total.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Monotone total of transitions ever logged, including entries the
    /// bounded ring has evicted. Consumers that mirror "fresh"
    /// transitions must diff against this total, never against
    /// `transitions().len()`.
    pub fn transitions_logged(&self) -> u64 {
        self.logged
    }

    /// Whether the dispatcher may hand this unit work right now.
    pub fn is_dispatchable(&self) -> bool {
        self.state.is_dispatchable()
    }

    /// Promote a spare into service. Only meaningful from
    /// [`HealthState::Spare`]; any other state is left untouched.
    pub fn promote(&mut self, tick: u64, reason: String) {
        if self.state == HealthState::Spare {
            self.incident_count = 0;
            self.clean_streak = 0;
            self.scrub_failures = 0;
            self.go(tick, HealthState::Healthy, reason);
        }
    }

    /// Retire a spare that failed its activation scrub. Only meaningful
    /// from [`HealthState::Spare`].
    pub fn retire_spare(&mut self, tick: u64, reason: String) {
        if self.state == HealthState::Spare {
            self.go(tick, HealthState::Retired, reason);
        }
    }

    fn go(&mut self, tick: u64, to: HealthState, reason: String) {
        self.go_traced(tick, to, reason, None);
    }

    fn go_traced(&mut self, tick: u64, to: HealthState, reason: String, trace: Option<u64>) {
        let from = std::mem::replace(&mut self.state, to);
        if self.transitions.len() == TRANSITION_LOG_CAP {
            self.transitions.remove(0);
        }
        self.transitions.push(HealthTransition {
            tick,
            from,
            to,
            reason,
            trace,
        });
        self.logged += 1;
    }

    /// Feed `n ≥ 1` check incidents observed while serving one operation.
    pub fn on_incidents(&mut self, tick: u64, n: u32) {
        self.on_incidents_traced(tick, n, None);
    }

    /// Like [`HealthTracker::on_incidents`], tagging any transitions it
    /// causes with the trace id of the offending request, so the JSON
    /// transition log links a breaker trip back to a replayable trace.
    pub fn on_incidents_traced(&mut self, tick: u64, n: u32, trace: Option<u64>) {
        debug_assert!(n >= 1);
        match self.state {
            HealthState::Healthy => {
                self.incident_count = n;
                self.clean_streak = 0;
                self.go_traced(
                    tick,
                    HealthState::Suspect,
                    format!("{n} check incident(s)"),
                    trace,
                );
                self.maybe_open(tick, trace);
            }
            HealthState::Suspect => {
                self.incident_count += n;
                self.clean_streak = 0;
                self.maybe_open(tick, trace);
            }
            // Quarantined/probation/spare units receive no traffic;
            // retired is absorbing — nothing to count.
            HealthState::Quarantined
            | HealthState::Probation
            | HealthState::Retired
            | HealthState::Spare => {}
        }
    }

    fn maybe_open(&mut self, tick: u64, trace: Option<u64>) {
        if self.state == HealthState::Suspect && self.incident_count >= self.cfg.open_after {
            self.cooldown_left = self.cfg.cooldown_ticks;
            self.go_traced(
                tick,
                HealthState::Quarantined,
                format!(
                    "breaker opened after {} incident(s); cooling down {} tick(s)",
                    self.incident_count, self.cfg.cooldown_ticks
                ),
                trace,
            );
        }
    }

    /// Feed one operation that completed with every check passing.
    pub fn on_clean_op(&mut self, tick: u64) {
        if self.state == HealthState::Suspect {
            self.clean_streak += 1;
            if self.clean_streak >= self.cfg.heal_after {
                self.incident_count = 0;
                self.clean_streak = 0;
                self.scrub_failures = 0;
                self.go(
                    tick,
                    HealthState::Healthy,
                    format!("healed after {} clean op(s)", self.cfg.heal_after),
                );
            }
        }
    }

    /// Advance one engine tick. Returns [`TickVerdict::ScrubDue`] exactly
    /// when a quarantined unit's cooldown elapses (the tracker moves to
    /// `Probation`; the engine must scrub and call
    /// [`HealthTracker::on_scrub`]).
    pub fn on_tick(&mut self, tick: u64) -> TickVerdict {
        if self.state == HealthState::Quarantined {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.go(
                    tick,
                    HealthState::Probation,
                    "cooldown elapsed; scrub due".to_string(),
                );
                return TickVerdict::ScrubDue;
            }
        }
        TickVerdict::None
    }

    /// Report the outcome of the scrub requested by
    /// [`HealthTracker::on_tick`]. A pass readmits the unit to `Healthy`;
    /// a failure re-quarantines it, or retires it for good once
    /// `max_scrub_failures` scrubs have failed.
    pub fn on_scrub(&mut self, tick: u64, pass: bool) {
        if self.state != HealthState::Probation {
            return;
        }
        if pass {
            self.incident_count = 0;
            self.clean_streak = 0;
            self.scrub_failures = 0;
            self.go(
                tick,
                HealthState::Healthy,
                "scrub battery passed; readmitted".to_string(),
            );
        } else {
            self.scrub_failures += 1;
            if self.scrub_failures >= self.cfg.max_scrub_failures {
                self.go(
                    tick,
                    HealthState::Retired,
                    format!(
                        "retired after {}/{} failed scrub(s)",
                        self.scrub_failures, self.cfg.max_scrub_failures
                    ),
                );
            } else {
                self.cooldown_left = self.cfg.cooldown_ticks;
                self.go(
                    tick,
                    HealthState::Quarantined,
                    format!(
                        "scrub failed ({}/{}); re-quarantined",
                        self.scrub_failures, self.cfg.max_scrub_failures
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_prng::Rng;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            open_after: 3,
            heal_after: 4,
            cooldown_ticks: 2,
            max_scrub_failures: 3,
        }
    }

    #[test]
    fn breaker_opens_and_scrub_readmits() {
        let mut h = HealthTracker::new(cfg());
        h.on_incidents(1, 1);
        assert_eq!(h.state(), HealthState::Suspect);
        h.on_incidents(2, 2);
        assert_eq!(h.state(), HealthState::Quarantined);
        assert_eq!(h.on_tick(3), TickVerdict::None);
        assert_eq!(h.on_tick(4), TickVerdict::ScrubDue);
        assert_eq!(h.state(), HealthState::Probation);
        h.on_scrub(4, true);
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.scrub_failures(), 0);
        let labels: Vec<_> = h
            .transitions()
            .iter()
            .map(|t| (t.from.label(), t.to.label()))
            .collect();
        assert_eq!(
            labels,
            [
                ("healthy", "suspect"),
                ("suspect", "quarantined"),
                ("quarantined", "probation"),
                ("probation", "healthy"),
            ]
        );
    }

    #[test]
    fn clean_streak_heals_a_suspect() {
        let mut h = HealthTracker::new(cfg());
        h.on_incidents(1, 1);
        for t in 0..3 {
            h.on_clean_op(2 + t);
            assert_eq!(h.state(), HealthState::Suspect);
        }
        h.on_clean_op(5);
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn repeated_scrub_failures_retire() {
        let mut h = HealthTracker::new(cfg());
        h.on_incidents(1, 3);
        let mut tick = 1;
        for fail in 1..=3u32 {
            loop {
                tick += 1;
                if h.on_tick(tick) == TickVerdict::ScrubDue {
                    break;
                }
            }
            h.on_scrub(tick, false);
            assert_eq!(h.scrub_failures(), fail);
        }
        assert_eq!(h.state(), HealthState::Retired);
        // Retired is absorbing: no event moves the unit again.
        let n = h.transitions().len();
        h.on_incidents(tick + 1, 5);
        h.on_clean_op(tick + 2);
        assert_eq!(h.on_tick(tick + 3), TickVerdict::None);
        h.on_scrub(tick + 4, true);
        assert_eq!(h.state(), HealthState::Retired);
        assert_eq!(h.transitions().len(), n);
    }

    #[test]
    fn transition_json_round_trips_the_checker() {
        let mut h = HealthTracker::new(cfg());
        h.on_incidents(7, 3);
        for t in h.transitions() {
            let line = t.to_json();
            mfm_telemetry::json::check(&line).expect("well-formed transition JSON");
            let fields = mfm_telemetry::json::object_entries(&line).expect("object");
            let get = |k: &str| {
                fields
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
                    .unwrap()
            };
            // Values come back as raw JSON slices: strip the quotes and
            // decode the escapes to round-trip the original text.
            let text = |v: String| {
                mfm_telemetry::json::unescape(
                    v.strip_prefix('"').unwrap().strip_suffix('"').unwrap(),
                )
            };
            assert_eq!(get("event"), "\"health_transition\"");
            assert_eq!(text(get("from")), t.from.label());
            assert_eq!(text(get("to")), t.to.label());
            assert_eq!(text(get("reason")), t.reason);
        }
    }

    #[test]
    fn traced_incident_tags_the_transition_json() {
        let mut h = HealthTracker::new(cfg());
        // One traced incident: healthy → suspect carries the trace.
        h.on_incidents_traced(3, 1, Some(0xFEED_FACE));
        // Enough more to open the breaker, traced differently.
        h.on_incidents_traced(4, 2, Some(0x0123_4567_89AB_CDEF));
        let t = h.transitions();
        assert_eq!(t[0].trace, Some(0xFEED_FACE));
        assert_eq!(t[1].trace, Some(0x0123_4567_89AB_CDEF));
        let line0 = t[0].to_json();
        mfm_telemetry::json::check(&line0).unwrap();
        assert!(
            line0.contains("\"trace_id\":\"00000000feedface\""),
            "{line0}"
        );
        assert!(t[1].to_json().contains("\"trace_id\":\"0123456789abcdef\""));
        // Untraced transitions render without the field — schema
        // unchanged for pre-existing consumers.
        let mut h2 = HealthTracker::new(cfg());
        h2.on_incidents(1, 1);
        assert!(!h2.transitions()[0].to_json().contains("trace_id"));
    }

    #[test]
    fn transition_log_is_bounded_and_keeps_a_monotone_total() {
        let mut h = HealthTracker::new(cfg());
        // Flap Healthy <-> Suspect forever: two transitions per cycle
        // (suspect on incident, healthy after the clean streak).
        let mut tick = 0u64;
        for _ in 0..3 * TRANSITION_LOG_CAP as u64 {
            tick += 1;
            h.on_incidents(tick, 1);
            for _ in 0..4 {
                tick += 1;
                h.on_clean_op(tick);
            }
        }
        let expected_total = 2 * 3 * TRANSITION_LOG_CAP as u64;
        assert_eq!(h.transitions_logged(), expected_total);
        assert_eq!(
            h.transitions().len(),
            TRANSITION_LOG_CAP,
            "ring never exceeds the cap"
        );
        // Oldest-first: the retained window is the most recent entries,
        // in chronological order.
        let ticks: Vec<u64> = h.transitions().iter().map(|t| t.tick).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "chronological");
        // JSON shape unchanged for the entries that remain.
        for t in h.transitions() {
            mfm_telemetry::json::check(&t.to_json()).unwrap();
        }
    }

    #[test]
    fn spare_lifecycle_promotes_or_retires() {
        let mut s = HealthTracker::new_spare(cfg());
        assert_eq!(s.state(), HealthState::Spare);
        assert!(!s.is_dispatchable(), "spares take no traffic");
        assert!(!s.state().is_hw_capacity(), "spares are not capacity");
        // Events addressed to a spare are ignored.
        s.on_incidents(1, 5);
        s.on_clean_op(2);
        assert_eq!(s.on_tick(3), TickVerdict::None);
        s.on_scrub(3, false);
        assert_eq!(s.state(), HealthState::Spare);
        assert_eq!(s.transitions_logged(), 0);
        // Promotion moves it into service with a logged transition.
        s.promote(7, "promoted to replace retired unit 0".to_string());
        assert_eq!(s.state(), HealthState::Healthy);
        let t = &s.transitions()[0];
        assert_eq!((t.from, t.to), (HealthState::Spare, HealthState::Healthy));
        assert!(t.to_json().contains("\"from\":\"spare\""));
        // Promote is a no-op from any non-spare state.
        s.promote(8, "again".to_string());
        assert_eq!(s.transitions_logged(), 1);

        // A spare that fails its activation scrub is retired instead.
        let mut bad = HealthTracker::new_spare(cfg());
        bad.retire_spare(9, "activation scrub failed".to_string());
        assert_eq!(bad.state(), HealthState::Retired);
        bad.retire_spare(10, "again".to_string());
        assert_eq!(bad.transitions_logged(), 1, "retired is absorbing");
    }

    /// Property: from ANY reachable state except `Retired`, a fault-free
    /// protocol (clean ops + passing scrubs) returns the tracker to
    /// `Healthy` within a bounded number of steps; from `Retired` it
    /// never leaves. States are reached by a random event walk.
    #[test]
    fn fault_free_protocol_always_heals_within_bound() {
        let c = cfg();
        // Worst case: quarantined with a full cooldown, then a scrub, or
        // a suspect needing the full clean streak.
        let bound = (c.cooldown_ticks + c.heal_after + 2) as usize;
        let mut rng = Rng::new(0xc1ea_7e57);
        for case in 0..500 {
            let mut h = HealthTracker::new(c);
            let mut tick = 0u64;
            // Random walk of incidents/cleans/ticks/scrub outcomes to
            // land in an arbitrary reachable state.
            for _ in 0..rng.range_u64(0, 40) {
                tick += 1;
                match rng.range_u64(0, 4) {
                    0 => h.on_incidents(tick, 1 + rng.range_u64(0, 3) as u32),
                    1 => h.on_clean_op(tick),
                    // A scrub due this tick always gets an outcome — the
                    // engine runs scrubs synchronously, so `Probation`
                    // is never a resting state.
                    2 => {
                        if h.on_tick(tick) == TickVerdict::ScrubDue {
                            h.on_scrub(tick, false);
                        }
                    }
                    _ => {
                        if h.on_tick(tick) == TickVerdict::ScrubDue {
                            h.on_scrub(tick, rng.next_bool(0.5));
                        }
                    }
                }
            }
            if h.state() == HealthState::Retired {
                // Absorbing: the fault-free protocol never resurrects it.
                for _ in 0..bound {
                    tick += 1;
                    if h.on_tick(tick) == TickVerdict::ScrubDue {
                        h.on_scrub(tick, true);
                    }
                    h.on_clean_op(tick);
                }
                assert_eq!(h.state(), HealthState::Retired, "case {case}");
                continue;
            }
            // Fault-free from here: every op is clean, every scrub passes.
            let mut steps = 0;
            while h.state() != HealthState::Healthy {
                tick += 1;
                steps += 1;
                assert!(steps <= bound, "case {case}: stuck in {:?}", h.state());
                if h.on_tick(tick) == TickVerdict::ScrubDue {
                    h.on_scrub(tick, true);
                }
                if h.state().is_dispatchable() {
                    h.on_clean_op(tick);
                }
            }
            assert_eq!(h.scrub_failures(), 0, "healing resets the scrub count");
        }
    }
}
