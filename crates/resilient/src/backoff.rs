//! Caller-side retry policy for a [`Busy`](crate::engine::Busy)
//! submission queue: truncated exponential backoff with deterministic
//! jitter drawn from the workspace PRNG, so a seeded workload replays
//! bit-identically.

use mfm_prng::Rng;

/// Backoff policy knobs. Delays are measured in engine *ticks* (the
/// unit of scheduling time), not wall time.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Delay before the first retry, in ticks.
    pub base_ticks: u64,
    /// Multiplier applied per successive rejection.
    pub factor: u64,
    /// Ceiling the exponential is truncated at.
    pub max_ticks: u64,
    /// Rejections after which the caller gives up on the operation.
    pub max_retries: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ticks: 1,
            factor: 2,
            max_ticks: 32,
            max_retries: 10,
        }
    }
}

/// Per-submission backoff state: one instance per operation being
/// pushed through a busy queue. Seed it from the operation's ordinal so
/// the jitter sequence is a pure function of the workload seed.
#[derive(Debug)]
pub struct SubmitBackoff {
    cfg: BackoffConfig,
    rng: Rng,
    attempt: u32,
}

impl SubmitBackoff {
    /// A fresh backoff sequence for one submission.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        SubmitBackoff {
            cfg,
            rng: Rng::new(seed),
            attempt: 0,
        }
    }

    /// Rejections consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Rewinds the attempt counter to zero, restoring the full retry
    /// budget and the base delay. The jitter stream is deliberately
    /// *not* rewound: a client whose request was finally admitted
    /// starts its next backoff sequence from fresh draws, so repeated
    /// accept/reject cycles never replay the same delays in lockstep.
    ///
    /// Used by per-client retry budgets: the serving front-end resets a
    /// client's backoff whenever one of its requests is admitted, so
    /// only *consecutive* rejections escalate the retry-after hint.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay to wait after a rejection, or `None` once the
    /// retry budget is exhausted. The delay is the truncated exponential
    /// with "equal jitter": uniformly drawn from `[d/2, d]`, so retries
    /// never synchronize across callers yet never collapse to zero wait.
    pub fn next_delay(&mut self) -> Option<u64> {
        if self.attempt >= self.cfg.max_retries {
            return None;
        }
        // Closed-form truncated exponential: base·factorⁿ computed with
        // saturating arithmetic, O(log n) regardless of the attempt
        // count. A factor ≥ 2 saturates u64 within 64 steps, so the
        // exponent is clamped there before `saturating_pow` runs; a
        // factor ≤ 1 degenerates to the (clamped) base and must never
        // loop attempt-many times the way the old ladder did.
        let base = self.cfg.base_ticks.max(1);
        let d = if self.cfg.factor <= 1 {
            base
        } else {
            let exp = self.attempt.min(64);
            base.saturating_mul(self.cfg.factor.saturating_pow(exp))
        };
        let d = d.min(self.cfg.max_ticks).max(1);
        self.attempt += 1;
        let half = d / 2;
        Some(half + self.rng.range_u64(0, d - half + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stop() {
        let cfg = BackoffConfig {
            base_ticks: 1,
            factor: 2,
            max_ticks: 8,
            max_retries: 6,
        };
        let mut b = SubmitBackoff::new(cfg, 42);
        let mut prev_hi = 0u64;
        for i in 0..6 {
            let d = b.next_delay().expect("within retry budget");
            let nominal = (cfg.base_ticks << i).min(cfg.max_ticks);
            assert!(
                d >= nominal / 2 && d <= nominal,
                "attempt {i}: delay {d} outside [{}, {nominal}]",
                nominal / 2
            );
            assert!(d >= prev_hi / 2, "jitter window keeps growing");
            prev_hi = nominal;
        }
        assert_eq!(b.next_delay(), None, "budget exhausted");
        assert_eq!(b.attempts(), 6);
    }

    #[test]
    fn saturates_at_the_cap_and_never_overflows() {
        // Adversarial knobs: a base and factor whose product overflows
        // u64 after two steps, an enormous retry budget, and a cap at
        // the far end of the range. The exponential must truncate at
        // `max_ticks` and stay there — no wraparound, no panic — for
        // attempt counts far past the point where base·factorⁿ would
        // overflow.
        let cfg = BackoffConfig {
            base_ticks: u64::MAX / 2,
            factor: u64::MAX,
            max_ticks: u64::MAX,
            max_retries: 10_000,
        };
        let mut b = SubmitBackoff::new(cfg, 99);
        for i in 0..10_000 {
            let d = b.next_delay().expect("within retry budget");
            assert!(d <= cfg.max_ticks, "attempt {i}: delay {d} exceeds the cap");
            if i >= 1 {
                // One saturating multiply pins the nominal delay to the
                // cap; every later delay jitters inside [cap/2, cap].
                assert!(
                    d >= cfg.max_ticks / 2,
                    "attempt {i}: delay {d} escaped the saturated jitter window"
                );
            }
        }
        assert_eq!(b.next_delay(), None, "budget exhausted exactly at the cap");

        // A modest cap with a high attempt count: every delay after the
        // ramp sits in `[max/2, max]` and never exceeds the cap.
        let cfg = BackoffConfig {
            base_ticks: 3,
            factor: 7,
            max_ticks: 1000,
            max_retries: 500,
        };
        let mut b = SubmitBackoff::new(cfg, 7);
        let mut saturated = 0u32;
        while let Some(d) = b.next_delay() {
            assert!(d <= cfg.max_ticks, "delay {d} exceeds the cap");
            if d >= cfg.max_ticks / 2 {
                saturated += 1;
            }
        }
        assert!(saturated >= 490, "cap reached early and held: {saturated}");
    }

    /// Property: under *any* configuration — including bases, factors
    /// and caps at the edges of u64 and retry budgets in the tens of
    /// thousands — every delay stays within `[1, max(1, max_ticks)]`,
    /// the nominal window is monotone non-decreasing until it saturates,
    /// and the call never panics or wraps. Configs are drawn from a
    /// seeded PRNG so a failure replays bit-identically.
    #[test]
    fn any_config_saturates_without_overflow() {
        let mut rng = Rng::new(0xbac0_ff5a);
        let extremes = [0u64, 1, 2, 3, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let draw = |rng: &mut Rng| -> u64 {
            if rng.next_bool(0.5) {
                extremes[rng.range_u64(0, extremes.len() as u64) as usize]
            } else {
                rng.range_u64(0, 1 << 40)
            }
        };
        for case in 0..200u64 {
            let cfg = BackoffConfig {
                base_ticks: draw(&mut rng),
                factor: draw(&mut rng),
                max_ticks: draw(&mut rng),
                max_retries: 1 + rng.range_u64(0, 20_000) as u32,
            };
            let cap = cfg.max_ticks.max(1);
            let mut b = SubmitBackoff::new(cfg, 0x5eed ^ case);
            let mut prev_nominal = 0u64;
            let mut taken = 0u32;
            while let Some(d) = b.next_delay() {
                taken += 1;
                assert!(d <= cap, "case {case}: delay {d} exceeds cap {cap}");
                // Each delay jitters in [nominal/2, nominal] and the
                // nominal window never shrinks, so no delay may fall
                // below half of any previously observed delay.
                assert!(d >= prev_nominal / 2, "case {case}: window regressed");
                prev_nominal = prev_nominal.max(d);
            }
            assert_eq!(taken, cfg.max_retries, "case {case}: budget honored");
        }
    }

    #[test]
    fn reset_restores_the_budget_without_replaying_jitter() {
        let cfg = BackoffConfig {
            base_ticks: 4,
            factor: 2,
            max_ticks: 64,
            max_retries: 3,
        };
        let mut b = SubmitBackoff::new(cfg, 11);
        let first: Vec<u64> = (0..3).map(|_| b.next_delay().unwrap()).collect();
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert_eq!(b.attempts(), 0);
        // Full budget again, delays restart from the base window...
        let second: Vec<u64> = (0..3).map(|_| b.next_delay().unwrap()).collect();
        assert!(second[0] >= cfg.base_ticks / 2 && second[0] <= cfg.base_ticks);
        assert_eq!(b.next_delay(), None, "budget exhausts again after reset");
        // ...but the jitter stream advanced: the two sequences are not
        // forced into lockstep (windows are equal, draws are fresh).
        assert_eq!(first.len(), second.len());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = BackoffConfig::default();
        let seq = |seed: u64| -> Vec<Option<u64>> {
            let mut b = SubmitBackoff::new(cfg, seed);
            (0..=cfg.max_retries).map(|_| b.next_delay()).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same delays");
        assert_ne!(seq(7), seq(8), "different seeds decorrelate");
    }
}
