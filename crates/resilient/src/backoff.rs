//! Caller-side retry policy for a [`Busy`](crate::engine::Busy)
//! submission queue: truncated exponential backoff with deterministic
//! jitter drawn from the workspace PRNG, so a seeded workload replays
//! bit-identically.

use mfm_prng::Rng;

/// Backoff policy knobs. Delays are measured in engine *ticks* (the
/// unit of scheduling time), not wall time.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Delay before the first retry, in ticks.
    pub base_ticks: u64,
    /// Multiplier applied per successive rejection.
    pub factor: u64,
    /// Ceiling the exponential is truncated at.
    pub max_ticks: u64,
    /// Rejections after which the caller gives up on the operation.
    pub max_retries: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ticks: 1,
            factor: 2,
            max_ticks: 32,
            max_retries: 10,
        }
    }
}

/// Per-submission backoff state: one instance per operation being
/// pushed through a busy queue. Seed it from the operation's ordinal so
/// the jitter sequence is a pure function of the workload seed.
#[derive(Debug)]
pub struct SubmitBackoff {
    cfg: BackoffConfig,
    rng: Rng,
    attempt: u32,
}

impl SubmitBackoff {
    /// A fresh backoff sequence for one submission.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        SubmitBackoff {
            cfg,
            rng: Rng::new(seed),
            attempt: 0,
        }
    }

    /// Rejections consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to wait after a rejection, or `None` once the
    /// retry budget is exhausted. The delay is the truncated exponential
    /// with "equal jitter": uniformly drawn from `[d/2, d]`, so retries
    /// never synchronize across callers yet never collapse to zero wait.
    pub fn next_delay(&mut self) -> Option<u64> {
        if self.attempt >= self.cfg.max_retries {
            return None;
        }
        let mut d = self.cfg.base_ticks.max(1);
        for _ in 0..self.attempt {
            d = d.saturating_mul(self.cfg.factor.max(1));
            if d >= self.cfg.max_ticks {
                d = self.cfg.max_ticks;
                break;
            }
        }
        d = d.min(self.cfg.max_ticks).max(1);
        self.attempt += 1;
        let half = d / 2;
        Some(half + self.rng.range_u64(0, d - half + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stop() {
        let cfg = BackoffConfig {
            base_ticks: 1,
            factor: 2,
            max_ticks: 8,
            max_retries: 6,
        };
        let mut b = SubmitBackoff::new(cfg, 42);
        let mut prev_hi = 0u64;
        for i in 0..6 {
            let d = b.next_delay().expect("within retry budget");
            let nominal = (cfg.base_ticks << i).min(cfg.max_ticks);
            assert!(
                d >= nominal / 2 && d <= nominal,
                "attempt {i}: delay {d} outside [{}, {nominal}]",
                nominal / 2
            );
            assert!(d >= prev_hi / 2, "jitter window keeps growing");
            prev_hi = nominal;
        }
        assert_eq!(b.next_delay(), None, "budget exhausted");
        assert_eq!(b.attempts(), 6);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = BackoffConfig::default();
        let seq = |seed: u64| -> Vec<Option<u64>> {
            let mut b = SubmitBackoff::new(cfg, seed);
            (0..=cfg.max_retries).map(|_| b.next_delay()).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same delays");
        assert_ne!(seq(7), seq(8), "different seeds decorrelate");
    }
}
