//! The 3-stage pipelined unit of Fig. 5 and the register-placement study
//! of Sec. III-D.
//!
//! The paper settles on the placement with the fewest pipeline registers:
//!
//! - **stage 1** — input formatter, pre-computation, recoding (registers:
//!   the odd multiples and the recoded digits);
//! - **stage 2** — PPGEN + TREE (registers: the two carry-save operands);
//! - **stage 3** — rounding CPAs, normalization, S&EH select, output
//!   formatter (output registers).
//!
//! Two alternatives the paper reports trying (and rejecting) are also
//! buildable for the ablation: registers after PPGEN ("the critical path
//! moved in stage-1" — here stage 1 grows to include PPGEN) and registers
//! inside the TREE ("stage-3 became critical").

use crate::structural::{build_unit_full, StageCuts, StructuralPorts, UnitOptions};
use mfm_gatesim::Netlist;

/// Pipeline register placements (Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelinePlacement {
    /// The paper's chosen placement (Fig. 5): cut after pre-comp/recode
    /// and after the TREE.
    #[default]
    Fig5,
    /// Alternative: cut after PPGEN (registers the whole PP array).
    AfterPpgen,
    /// Alternative: cut inside the TREE at array height 4.
    InsideTree,
}

impl PipelinePlacement {
    /// All placements, for the ablation sweep.
    pub const ALL: [PipelinePlacement; 3] = [
        PipelinePlacement::Fig5,
        PipelinePlacement::AfterPpgen,
        PipelinePlacement::InsideTree,
    ];
}

/// Ports of the pipelined unit (same shape as the combinational unit;
/// `latency` is 3).
pub type PipelinedPorts = StructuralPorts;

/// Builds the 3-stage pipelined multi-format unit.
///
/// # Example
///
/// ```
/// use mfm_gatesim::{Netlist, Simulator, TechLibrary};
/// use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
///
/// let mut n = Netlist::new(TechLibrary::cmos45lp());
/// let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
/// assert_eq!(u.latency, 3);
/// let mut sim = Simulator::new(&n);
/// // Issue one int64 operation and clock it through the three stages
/// // (the result is captured by the output register on the third edge
/// // after issue).
/// sim.step_cycle(&[(&u.frmt, 0), (&u.xa, 7), (&u.yb, 6)]);
/// sim.step_cycle(&[]);
/// sim.step_cycle(&[]);
/// sim.step_cycle(&[]);
/// assert_eq!(sim.read_bus(&u.pl), 42);
/// ```
pub fn build_pipelined_unit(n: &mut Netlist, placement: PipelinePlacement) -> PipelinedPorts {
    build_pipelined_unit_opts(n, placement, UnitOptions::default())
}

/// Builds the 3-stage pipelined unit with explicit [`UnitOptions`]
/// (e.g. the quad-binary16 extension lanes).
pub fn build_pipelined_unit_opts(
    n: &mut Netlist,
    placement: PipelinePlacement,
    opts: UnitOptions,
) -> PipelinedPorts {
    let cuts = match placement {
        PipelinePlacement::Fig5 => StageCuts {
            after_precomp: true,
            after_tree: true,
            outputs: true,
            ..StageCuts::default()
        },
        PipelinePlacement::AfterPpgen => StageCuts {
            after_ppgen: true,
            after_tree: true,
            outputs: true,
            ..StageCuts::default()
        },
        PipelinePlacement::InsideTree => StageCuts {
            after_precomp: true,
            inside_tree: true,
            outputs: true,
            ..StageCuts::default()
        },
    };
    build_unit_full(n, cuts, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{Simulator, TechLibrary, TimingAnalysis};

    #[test]
    fn fig5_has_fewest_registers() {
        // The paper chose Fig. 5's placement because it has "the lowest
        // number of pipeline registers among the tried placements".
        let mut counts = Vec::new();
        for placement in PipelinePlacement::ALL {
            let mut n = Netlist::new(TechLibrary::cmos45lp());
            build_pipelined_unit(&mut n, placement);
            counts.push((placement, n.dff_count()));
        }
        let get = |p: PipelinePlacement| counts.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(
            get(PipelinePlacement::Fig5) < get(PipelinePlacement::AfterPpgen),
            "{counts:?}"
        );
        assert!(
            get(PipelinePlacement::Fig5) < get(PipelinePlacement::InsideTree),
            "{counts:?}"
        );
    }

    #[test]
    fn pipelined_unit_is_faster_per_cycle_than_combinational() {
        let mut nc = Netlist::new(TechLibrary::cmos45lp());
        crate::structural::build_unit(&mut nc);
        let comb = TimingAnalysis::new(&nc).report();

        let mut np = Netlist::new(TechLibrary::cmos45lp());
        build_pipelined_unit(&mut np, PipelinePlacement::Fig5);
        let pipe = TimingAnalysis::new(&np).report();

        assert!(pipe.min_period_ps < comb.min_period_ps / 1.8);
    }

    #[test]
    fn pipelined_results_flow_with_latency_three() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        assert_eq!(u.latency, 3);
        let mut sim = Simulator::new(&n);
        let pairs: Vec<(u64, u64)> = vec![(3, 5), (1000, 1000), (u64::MAX, 2), (7, 0)];
        let mut expected = std::collections::VecDeque::new();
        for &(x, y) in &pairs {
            sim.step_cycle(&[(&u.frmt, 0), (&u.xa, x as u128), (&u.yb, y as u128)]);
            expected.push_back((x as u128) * (y as u128));
            if expected.len() > 3 {
                let want = expected.pop_front().unwrap();
                let got = (sim.read_bus(&u.ph) << 64) | sim.read_bus(&u.pl);
                assert_eq!(got, want);
            }
        }
        for _ in 0..3 {
            sim.step_cycle(&[]);
            if let Some(want) = expected.pop_front() {
                let got = (sim.read_bus(&u.ph) << 64) | sim.read_bus(&u.pl);
                assert_eq!(got, want);
            }
        }
    }
}
