//! # mfmult — the SOCC'17 multi-format floating-point multiplier
//!
//! Reproduction of A. Nannarelli, *A Multi-Format Floating-Point Multiplier
//! for Power-Efficient Operations*, IEEE SOCC 2017. One radix-16 64×64
//! datapath executes:
//!
//! - **int64** — 64×64 → 128-bit unsigned multiplication,
//! - **binary64** — one IEEE double-precision multiplication per cycle,
//! - **dual binary32** — *two* single-precision multiplications per cycle,
//!   packed into the two halves of the partial-product array (Fig. 4),
//! - **single binary32** — one multiplication in the lower lane.
//!
//! Rounding is the unit's injection scheme (round-to-nearest, ties away,
//! no sticky bit), computed speculatively for both normalization cases with
//! two carry-propagate adders and selected by the product MSB (Fig. 3).
//!
//! Three models of the unit live here:
//!
//! - [`functional`] — a fast, bit-exact word-level model ([`FunctionalUnit`]).
//! - [`structural`] — the full gate-level netlist on
//!   [`mfm_gatesim`], used for the paper's timing/area/power evaluation.
//! - [`pipeline`] — the 3-stage pipelined structural unit of Fig. 5 and the
//!   register-placement study of Sec. III-D.
//!
//! Plus:
//!
//! - [`reduce`] — the binary64→binary32 error-free reduction unit of
//!   Sec. IV (Algorithm 1 / Fig. 6) and its lossy extension;
//! - [`integrated`] — the unit with the reducer embedded in its output
//!   formatter, as Sec. IV proposes;
//! - [`lanes`] — the dual-lane PP-array arrangement of Fig. 4 with its
//!   word-level proof;
//! - [`quad`] — the quad-binary16 extension (four half-precision products
//!   per cycle; enable in the structural unit with
//!   [`UnitOptions::quad_lanes`](structural::UnitOptions)).
//!
//! # Quickstart
//!
//! ```
//! use mfmult::{FunctionalUnit, Operation};
//!
//! let unit = FunctionalUnit::new();
//!
//! // 64-bit integer multiplication with a 128-bit product.
//! let r = unit.execute(Operation::int64(u64::MAX, 3));
//! assert_eq!(r.int_product(), (u64::MAX as u128) * 3);
//!
//! // Two single-precision multiplications in one operation.
//! let r = unit.execute(Operation::dual_binary32_from_f32(1.5, 2.0, -3.0, 0.5));
//! let (lo, hi) = r.b32_products_f32();
//! assert_eq!(lo, 3.0);
//! assert_eq!(hi, -1.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod format;
pub mod functional;
pub mod integrated;
pub mod lanes;
pub mod meta;
pub mod pipeline;
pub mod quad;
pub mod reduce;
pub mod selfcheck;
pub mod structural;

pub use format::{Format, MultResult, Operation};
pub use functional::{FunctionalUnit, RoundingStyle};
pub use pipeline::{
    build_pipelined_unit, build_pipelined_unit_opts, PipelinePlacement, PipelinedPorts,
};
pub use selfcheck::SelfCheckingUnit;
pub use structural::{build_unit, build_unit_quad, StructuralPorts, UnitOptions};
