//! The dual-lane partial-product array arrangement of Fig. 4, as a
//! word-level model shared by the structural netlist and the tests.
//!
//! In dual-binary32 mode the 64×64 radix-16 array is *sectioned*:
//!
//! - the lower lane computes `X·Y` with 24-bit significands placed at bit
//!   0 of both operands; its product occupies columns 0–47;
//! - the upper lane computes `W·Z` with significands placed at bit 32; its
//!   product occupies columns 64–111;
//! - columns 48–63 hold only the lower lane's sign-extension correction.
//!
//! Of the 17 radix-16 PP rows, rows 0–7 belong to the lower lane (row 6
//! carries the lane's transfer digit, rows 7 is identically zero), rows
//! 8–15 to the upper lane (row 14 is its transfer digit, row 15 zero), and
//! row 16 is zero in dual mode. Each row is *windowed*: only the bit range
//! that can carry its own lane's multiple survives; everything else is
//! blanked so no cross-lane term enters the array.
//!
//! Because a two's-complement row encoding wraps modulo the array width,
//! the lower lane's sign-extension correction constant is wrapped modulo
//! 2⁶⁴ and every carry crossing the column-63/64 seam (in the reduction
//! tree and in the final CPA) is killed in dual mode. The wrap excess is a
//! data-independent multiple of 2⁶⁴ (proved in `sum` below by the
//! round-trip property tests), so killing the seam carries yields exact
//! per-lane products.

use mfm_arith::recode::{radix16_digits, RADIX16_DIGITS};

/// Row-local bit window of lower-lane PP rows: `[0, 27)`
/// (7·X₂₄ < 2²⁷ so 27 bits hold every multiple).
pub const LOWER_WINDOW: (usize, usize) = (0, 27);
/// Row-local bit window of upper-lane PP rows: `[32, 59)`.
pub const UPPER_WINDOW: (usize, usize) = (32, 59);
/// Rows belonging to the lower lane in dual mode.
pub const LOWER_ROWS: std::ops::Range<usize> = 0..8;
/// Rows belonging to the upper lane in dual mode.
pub const UPPER_ROWS: std::ops::Range<usize> = 8..16;
/// The seam column: carries from column 63 into column 64 are killed in
/// dual mode.
pub const SEAM_COL: usize = 64;
/// Full-width row window used in int64/binary64 mode (the 67-bit multiple
/// width).
pub const FULL_WINDOW: (usize, usize) = (0, 67);

/// Packs two 24-bit significands into the 64-bit multiplicand word:
/// lower at bit 0, upper at bit 32.
pub fn pack_significands(lo24: u32, hi24: u32) -> u64 {
    debug_assert!(lo24 < (1 << 24) && hi24 < (1 << 24));
    (lo24 as u64) | ((hi24 as u64) << 32)
}

/// The dual-mode sign-extension correction constant for the lower lane,
/// wrapped modulo 2⁶⁴ (confined to columns 0–63).
pub fn dual_correction_low() -> u64 {
    let mut k = 0u64;
    for i in LOWER_ROWS {
        let col = 4 * i + LOWER_WINDOW.1;
        k = k.wrapping_add(1u64 << col).wrapping_sub(1u64 << (col + 1));
    }
    k
}

/// The dual-mode correction constant for the upper lane, modulo 2¹²⁸
/// (its set bits all lie in columns ≥ 64).
pub fn dual_correction_high() -> u128 {
    let mut k = 0u128;
    for i in UPPER_ROWS {
        let col = 4 * i + UPPER_WINDOW.1;
        k = k.wrapping_add(1u128 << col);
        if col + 1 < 128 {
            k = k.wrapping_sub(1u128 << (col + 1));
        }
    }
    k
}

/// The full-mode (int64/binary64) correction constant, modulo 2¹²⁸ —
/// matches what [`mfm_arith::ppgen::build_pp_array`] wires in.
pub fn full_correction() -> u128 {
    let mut k = 0u128;
    for i in 0..RADIX16_DIGITS - 1 {
        let col = 4 * i + FULL_WINDOW.1;
        if col < 128 {
            k = k.wrapping_add(1u128 << col);
            if col + 1 < 128 {
                k = k.wrapping_sub(1u128 << (col + 1));
            }
        }
    }
    k
}

/// One windowed PP row's contribution, mirroring the hardware bit-exactly:
/// the selected multiple's window bits (complemented when the digit is
/// negative), the `+s` bit at the window's low edge, and the `¬s` bit at
/// the window's high edge. Returns the value already shifted to `offset`.
fn windowed_row(x: u64, digit: i8, offset: usize, window: (usize, usize)) -> u128 {
    let (lo, hi) = window;
    let s = digit < 0;
    let mag = digit.unsigned_abs() as u128;
    let multiple = (x as u128) * mag;
    let wmask = (1u128 << (hi - lo)) - 1;
    // The window extracts exactly this lane's multiple; bits outside it
    // (the other lane's contribution to the shared multiple buses) are
    // blanked — that is Fig. 4's sectioning.
    let mut m = (multiple >> lo) & wmask;
    if s {
        m = !m & wmask;
    }
    let mut v = m << (offset + lo);
    if s {
        // +s completes the two's complement; ¬s = 0 adds nothing.
        v = v.wrapping_add(1u128 << (offset + lo));
    } else {
        // ¬s = 1 at the window's high edge.
        let k = offset + hi;
        if k < 128 {
            v = v.wrapping_add(1u128 << k);
        }
    }
    v
}

/// Computes both lane products through the sectioned array exactly as the
/// hardware does: windowed rows, per-lane correction constants, and seam
/// carry kill (lower lane summed modulo 2⁶⁴).
///
/// Inputs are 24-bit significands; returns `(x·y, w·z)` as 48-bit products.
///
/// # Example
///
/// ```
/// use mfmult::lanes::dual_lane_array_product;
///
/// let (xy, wz) = dual_lane_array_product(0x800001, 0xC00000, 3, 5);
/// assert_eq!(xy, 0x800001u64 * 0xC00000);
/// assert_eq!(wz, 15);
/// ```
///
/// # Panics
///
/// Panics in debug builds if any input exceeds 24 bits.
pub fn dual_lane_array_product(x24: u32, y24: u32, w24: u32, z24: u32) -> (u64, u64) {
    let x = pack_significands(x24, w24);
    let y = pack_significands(y24, z24);
    let digits = radix16_digits(y);

    // Lower lane: rows 0..8, summed modulo 2^64 (the seam kill).
    let mut low = 0u64;
    for i in LOWER_ROWS {
        let v = windowed_row(x, digits[i], 4 * i, LOWER_WINDOW);
        debug_assert_eq!(v >> 64, 0, "lower-lane term leaked past the seam");
        low = low.wrapping_add(v as u64);
    }
    low = low.wrapping_add(dual_correction_low());

    // Upper lane: rows 8..16 plus the transfer row 16, modulo 2^128.
    let mut high = 0u128;
    for i in UPPER_ROWS {
        let v = windowed_row(x, digits[i], 4 * i, UPPER_WINDOW);
        debug_assert_eq!(
            v & ((1 << 64) - 1),
            0,
            "upper-lane term leaked below the seam"
        );
        high = high.wrapping_add(v);
    }
    // Row 16 (global transfer digit) is zero in dual mode.
    debug_assert_eq!(digits[16], 0, "dual-mode operands never set y[63]");
    high = high.wrapping_add(dual_correction_high());

    let xy = low; // product occupies bits 0..47; bits 48..63 cancel to 0
    let wz = (high >> 64) as u64;
    (xy, wz)
}

/// A *logical* occupancy map of the dual-mode array for the Fig. 4 report:
/// for each of the 128 columns, how many data-capable PP bits, sign bits
/// and correction bits land there. Rows whose digit is identically zero in
/// dual mode (rows 7 and 15) and the window bits a transfer digit can
/// never set (its multiple is at most 1·X) are excluded — this is the
/// shape Fig. 4 draws.
pub fn dual_occupancy() -> Vec<(usize, usize, usize)> {
    let mut occ = vec![(0usize, 0usize, 0usize); 128];
    // (row, window, has sign handling)
    let mut rows: Vec<(usize, (usize, usize), bool)> = Vec::new();
    for i in 0..6 {
        rows.push((i, LOWER_WINDOW, true));
    }
    rows.push((6, (0, 24), false)); // lower transfer digit: 0 or 1·X₂₄
    for i in 8..14 {
        rows.push((i, UPPER_WINDOW, true));
    }
    rows.push((14, (32, 56), false)); // upper transfer digit
    for (i, (lo, hi), signed) in rows {
        for j in lo..hi {
            occ[4 * i + j].0 += 1;
        }
        if signed {
            occ[4 * i + lo].1 += 1; // +s
            if 4 * i + hi < 128 {
                occ[4 * i + hi].1 += 1; // ¬s
            }
        }
    }
    let klow = dual_correction_low() as u128;
    let khigh = dual_correction_high();
    for (col, entry) in occ.iter_mut().enumerate() {
        if col < 64 && (klow >> col) & 1 == 1 {
            entry.2 += 1;
        }
        if (khigh >> col) & 1 == 1 {
            entry.2 += 1;
        }
    }
    occ
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng24(n: usize) -> Vec<u32> {
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 16) as u32 & 0xFF_FFFF
            })
            .collect()
    }

    #[test]
    fn sectioned_array_equals_products() {
        let vals = rng24(400);
        for q in vals.chunks(4) {
            let (x, y, w, z) = (q[0], q[1], q[2], q[3]);
            let (xy, wz) = dual_lane_array_product(x, y, w, z);
            assert_eq!(xy, x as u64 * y as u64, "lower {x:#x}*{y:#x}");
            assert_eq!(wz, w as u64 * z as u64, "upper {w:#x}*{z:#x}");
        }
    }

    #[test]
    fn normalized_significands() {
        // The actual FP use case: significands with the implicit bit set.
        let vals = rng24(200);
        for q in vals.chunks(4) {
            let set = |v: u32| v | (1 << 23);
            let (x, y, w, z) = (set(q[0]), set(q[1]), set(q[2]), set(q[3]));
            let (xy, wz) = dual_lane_array_product(x, y, w, z);
            assert_eq!(xy, x as u64 * y as u64);
            assert_eq!(wz, w as u64 * z as u64);
        }
    }

    #[test]
    fn corner_operands() {
        for (x, y, w, z) in [
            (0, 0, 0, 0),
            (0xFF_FFFF, 0xFF_FFFF, 0xFF_FFFF, 0xFF_FFFF),
            (1, 0xFF_FFFF, 0xFF_FFFF, 1),
            (0x80_0000, 0x80_0000, 0x80_0000, 0x80_0000),
            (0xAA_AAAA, 0x55_5555, 0x92_4924, 0x6D_B6DB),
        ] {
            let (xy, wz) = dual_lane_array_product(x, y, w, z);
            assert_eq!(xy, x as u64 * y as u64);
            assert_eq!(wz, w as u64 * z as u64);
        }
    }

    #[test]
    fn lanes_do_not_interact() {
        // Fixing one lane's operands, the other lane's inputs sweep freely.
        let (x, y) = (0xABCDEF, 0x123456);
        for &w in &rng24(30) {
            for &z in &rng24(7) {
                let (xy, _) = dual_lane_array_product(x, y, w, z);
                assert_eq!(xy, x as u64 * y as u64, "w={w:#x} z={z:#x}");
            }
        }
    }

    #[test]
    fn occupancy_matches_fig4_shape() {
        let occ = dual_occupancy();
        // Lower product region 0..48 has PP bits; dead zone 48..64 carries
        // only correction/sign bits; upper region 64..112 has PP bits.
        let pp_cols: Vec<usize> = occ.iter().map(|e| e.0).collect();
        assert!(pp_cols[0] > 0);
        assert!(pp_cols[24] > 0);
        assert!(
            (56..64).all(|c| pp_cols[c] == 0),
            "dead zone has no PP bits"
        );
        assert!(pp_cols[64] > 0 || pp_cols[70] > 0);
        assert!((112..128).all(|c| pp_cols[c] == 0));
        // Max column height stays within the radix-16 bound.
        let max = occ.iter().map(|e| e.0 + e.1 + e.2).max().unwrap();
        assert!(
            max <= 10,
            "dual-mode array height {max} (7 rows/lane + extras)"
        );
    }

    #[test]
    fn correction_constants_are_lane_confined() {
        assert_eq!(dual_correction_high() & ((1 << 64) - 1), 0);
        // Low constant may reach bit 63 but not beyond (it is a u64).
        let _ = dual_correction_low();
    }
}
