//! The binary64→binary32 error-free reduction unit (Sec. IV: Algorithm 1,
//! Fig. 6) — functional model, gate-level netlist and the lossy extension.
//!
//! The hardware checks three conditions:
//!
//! 1. `Eb32 = Eb64 − 896 > 0` — computed by a **5-bit CPA** over exponent
//!    bits 7–11, because the 7 LSBs of −896 are zero (the constant
//!    `11001` in Fig. 6 is `(4096 − 896) >> 7 = 25`);
//! 2. `Eb64 − 1151 < 0` — a **12-bit CPA** adding `4096 − 1151 = 2945 =`
//!    `1011 1000 0001` (the odd constant shown in Fig. 6);
//! 3. the 29 significand LSBs are zero — an **OR tree** over `M[28:0]`.
//!
//! When all three pass, the mux emits the binary32 encoding
//! `{sign, Eb32[7:0], M[51:29]}`; otherwise the operand stays binary64.

use mfm_arith::adder::{build_adder, build_carry_out, AdderKind};
use mfm_gatesim::{NetId, Netlist};
use mfm_softfloat::convert;
use mfm_softfloat::RoundingMode;

/// Functional model: Algorithm 1 exactly as published.
/// Re-exported from [`mfm_softfloat::convert::reduce_b64_to_b32`].
pub fn reduce(bits: u64) -> Option<u32> {
    convert::reduce_b64_to_b32(bits)
}

/// Extension (paper future work direction): lossy reduction with a bound
/// on the relative error. Reduces whenever the IEEE-rounded binary32 value
/// is finite, normal and within `max_rel_err` of the binary64 original.
/// `max_rel_err = 0.0` accepts exactly the error-free set plus values whose
/// 29 dropped bits round away losslessly (a superset of Algorithm 1).
pub fn reduce_with_tolerance(bits: u64, max_rel_err: f64) -> Option<u32> {
    let x = f64::from_bits(bits);
    if !x.is_finite() || x == 0.0 {
        return None;
    }
    let (narrow, _) = convert::b64_to_b32_ieee(bits, RoundingMode::NearestEven);
    let back = f32::from_bits(narrow);
    if !back.is_finite() || back == 0.0 || back.is_subnormal() {
        return None;
    }
    let err = ((back as f64 - x) / x).abs();
    if err <= max_rel_err {
        Some(narrow)
    } else {
        None
    }
}

/// Ports of the gate-level reduction unit.
#[derive(Debug, Clone)]
pub struct ReducerPorts {
    /// 64-bit binary64 input.
    pub input: Vec<NetId>,
    /// 32-bit binary32 encoding (valid when `reduced` is high).
    pub b32: Vec<NetId>,
    /// High when the input was reduced error-free.
    pub reduced: NetId,
    /// The Fig. 6 output mux: `{32'b0, b32}` when reduced, else the input.
    pub out64: Vec<NetId>,
}

/// Builds the Fig. 6 reduction hardware into `n`.
///
/// # Example
///
/// ```
/// use mfm_gatesim::{Netlist, Simulator, TechLibrary};
/// use mfmult::reduce::build_reducer;
///
/// let mut n = Netlist::new(TechLibrary::cmos45lp());
/// let ports = build_reducer(&mut n);
/// let mut sim = Simulator::new(&n);
/// sim.set_bus(&ports.input, 1.5f64.to_bits() as u128);
/// sim.settle();
/// assert!(sim.read_net(ports.reduced));
/// assert_eq!(sim.read_bus(&ports.b32) as u32, 1.5f32.to_bits());
/// ```
pub fn build_reducer(n: &mut Netlist) -> ReducerPorts {
    let input = n.input_bus("b64_in", 64);
    let ports = build_reducer_on(n, &input);
    n.output_bus("b32", &ports.b32);
    n.output_bus("reduced", &[ports.reduced]);
    n.output_bus("out64", &ports.out64);
    ports
}

/// Builds the Fig. 6 reduction logic over an *existing* 64-bit bus —
/// the form used to embed the reducer into the multi-format unit's output
/// formatter, as Sec. IV proposes ("the small hardware of Fig. 6 can be
/// easily included in the multi-format multiplier of Fig. 5").
///
/// # Panics
///
/// Panics if `input` is not 64 bits wide.
pub fn build_reducer_on(n: &mut Netlist, input: &[NetId]) -> ReducerPorts {
    assert_eq!(input.len(), 64);
    let input = input.to_vec();
    n.begin_block("REDUCE");

    let sign = input[63];
    let eb64: Vec<NetId> = (52..63).map(|i| input[i]).collect();
    let frac_hi: Vec<NetId> = (29..52).map(|i| input[i]).collect();

    // (1) Eb32 = Eb64 − 896 via a 5-bit CPA on bits 7..11 (constant 11001).
    let zero = n.zero();
    let one = n.one();
    let a5 = vec![eb64[7], eb64[8], eb64[9], eb64[10], zero];
    let b5 = vec![one, zero, zero, one, one]; // 25 = 0b11001, LSB first
    let sum5 = build_adder(n, AdderKind::Ripple, &a5, &b5, zero);
    let eb32_hi = sum5.sum[0]; // bit 7 of Eb32
    let neg1 = sum5.sum[4]; // sign bit (bit 11 of the 12-bit difference)
                            // Eb32 > 0 ⟺ not negative and not zero.
    let mut low_or = n.zero();
    for &b in &eb64[0..7] {
        low_or = n.or2(low_or, b);
    }
    let mut mid_or = low_or;
    for &b in &sum5.sum[0..4] {
        mid_or = n.or2(mid_or, b);
    }
    let not_neg1 = n.not(neg1);
    let c1 = n.and2(not_neg1, mid_or);

    // (2) Eb64 − 1151 < 0 via the sign of the 12-bit sum Eb64 + 2945
    // (constant 1011 1000 0001). Only that sign bit is consumed, so build
    // the carry into bit 11 alone instead of a full CPA; bit 11 of the
    // constant is 1 and of the zero-extended operand is 0, so the sign is
    // simply the complement of that carry. The odd constant is split as
    // 2944 + carry-in 1 so the bit-0 leaf needs no inverter.
    let k2944 = 2944u64;
    let b11: Vec<NetId> = (0..11).map(|i| n.lit((k2944 >> i) & 1 == 1)).collect();
    let c11 = build_carry_out(n, &eb64, &b11, one);
    let c2 = n.not(c11); // negative ⟺ in range

    // (3) OR tree over the 29 significand LSBs.
    let mut tree: Vec<NetId> = (0..29).map(|i| input[i]).collect();
    while tree.len() > 1 {
        let mut next = Vec::with_capacity(tree.len().div_ceil(3));
        for ch in tree.chunks(3) {
            next.push(match ch {
                [x] => *x,
                [x, y] => n.or2(*x, *y),
                [x, y, z] => n.or3(*x, *y, *z),
                _ => unreachable!(),
            });
        }
        tree = next;
    }
    let nonzero = tree[0];
    let zero_ok = n.not(nonzero);

    let c12 = n.and2(c1, c2);
    let reduced = n.and2(c12, zero_ok);

    // binary32 assembly: {sign, Eb32[7:0], M[51:29]}.
    let mut b32 = Vec::with_capacity(32);
    b32.extend_from_slice(&frac_hi); // bits 0..22
    b32.extend_from_slice(&eb64[0..7]); // exponent bits 0..6 unchanged
    b32.push(eb32_hi); // exponent bit 7
    b32.push(sign); // bit 31

    // Fig. 6 output mux.
    let out64: Vec<NetId> = (0..64)
        .map(|i| {
            let reduced_bit = if i < 32 { b32[i] } else { zero };
            n.mux2(reduced, input[i], reduced_bit)
        })
        .collect();

    n.end_block();
    ReducerPorts {
        input,
        b32,
        reduced,
        out64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{Simulator, TechLibrary};

    fn rng_bits(ncases: usize) -> Vec<u64> {
        let mut s = 0xFEED_FACE_CAFE_BEEFu64;
        (0..ncases)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                s
            })
            .collect()
    }

    #[test]
    fn netlist_matches_algorithm1() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_reducer(&mut n);
        n.check().unwrap();
        let mut sim = Simulator::new(&n);

        let mut cases: Vec<u64> = vec![
            0,
            1.5f64.to_bits(),
            (-2.25f64).to_bits(),
            0.1f64.to_bits(),
            1e300f64.to_bits(),
            1e-300f64.to_bits(),
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            (f32::MIN_POSITIVE as f64).to_bits(),
            (f32::MAX as f64).to_bits(),
            897u64 << 52,
            896u64 << 52,
            1150u64 << 52,
            1151u64 << 52,
        ];
        // Random exactly-representable values (zero low 29 bits) and fully
        // random ones.
        for r in rng_bits(100) {
            cases.push(r);
            cases.push(r & !((1u64 << 29) - 1));
        }
        for bits in cases {
            sim.set_bus(&ports.input, bits as u128);
            sim.settle();
            let want = reduce(bits);
            assert_eq!(
                sim.read_net(ports.reduced),
                want.is_some(),
                "reduced flag for {bits:#x}"
            );
            if let Some(w) = want {
                assert_eq!(sim.read_bus(&ports.b32) as u32, w, "b32 of {bits:#x}");
                assert_eq!(sim.read_bus(&ports.out64) as u64, w as u64);
            } else {
                assert_eq!(sim.read_bus(&ports.out64) as u64, bits, "passthrough");
            }
        }
    }

    #[test]
    fn tolerance_extension_supersets_error_free() {
        for bits in rng_bits(200) {
            if let Some(exact) = reduce(bits) {
                // Error-free reductions are always accepted at tolerance 0.
                assert_eq!(reduce_with_tolerance(bits, 0.0), Some(exact));
            }
        }
        // A value needing 53 bits reduces only with tolerance.
        let x = 0.1f64;
        assert_eq!(reduce(x.to_bits()), None);
        assert!(reduce_with_tolerance(x.to_bits(), 1e-7).is_some());
        assert_eq!(reduce_with_tolerance(x.to_bits(), 1e-12), None);
    }

    #[test]
    fn tolerance_rejects_out_of_range() {
        assert_eq!(reduce_with_tolerance(1e300f64.to_bits(), 1.0), None);
        assert_eq!(reduce_with_tolerance(f64::NAN.to_bits(), 1.0), None);
        assert_eq!(reduce_with_tolerance(1e-300f64.to_bits(), 1.0), None);
    }

    #[test]
    fn reducer_is_small() {
        // The paper argues this hardware is "small" and easily included;
        // sanity-check it against the full multiplier scale.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        build_reducer(&mut n);
        assert!(
            n.area_nand2() < 500.0,
            "reducer should be a few hundred gates, got {:.0}",
            n.area_nand2()
        );
    }
}
