//! Lint-visible mode metadata for the structural unit.
//!
//! The paper's dual-binary32 power claim rests on a *structural* property
//! of Fig. 4's sectioned array: no cross-lane term may enter the partial
//! product array, and every carry crossing the column-63/64 seam must be
//! killed in dual mode. This module states those properties as data — one
//! [`ModeSpec`] per format mode of a built unit — so a static analyzer
//! (the `mfm-lint` crate) can discharge them as machine-checked
//! cone-of-influence facts instead of trusting simulation:
//!
//! - in dual mode the **lower lane's** output cone must *exclude* every
//!   upper-lane operand bit (and vice versa), while still *including*
//!   every bit of its own operands (no over-blanking);
//! - in the full-width modes (int64 / binary64) the output cone must
//!   include **all** 128 operand bits;
//! - each carry seam's pass-enable net must be statically 0 in the modes
//!   that section across it and statically 1 in the modes that do not.
//!
//! The specs are pure data over [`NetId`]s: which `frmt` bits to tie,
//! which outputs form each lane's cone, and which operand bits must or
//! must not appear in its input support.

use crate::structural::StructuralPorts;
use mfm_gatesim::NetId;

/// A labelled net: the human-readable port name (`"xa[37]"`, `"ph[5]"`)
/// next to the net it resolves to, so lint findings can name the exact
/// operand or output bit involved.
pub type LabelledNet = (String, NetId);

/// One lane's isolation obligation within a mode: the support of the
/// `outputs` cone must contain every net in `required` and none of the
/// nets in `forbidden`.
#[derive(Debug, Clone)]
pub struct LaneIsolation {
    /// Lane name (`"lower"`, `"upper"`, `"full"`, `"q0"`…).
    pub lane: String,
    /// The output nets whose combined input support is examined.
    pub outputs: Vec<LabelledNet>,
    /// Operand bits that must **not** appear in the cone (cross-lane
    /// leakage if they do).
    pub forbidden: Vec<LabelledNet>,
    /// Operand bits that must appear in the cone (over-blanking if they
    /// do not).
    pub required: Vec<LabelledNet>,
}

/// One format mode of the unit: the input ties that select it and the
/// structural obligations that must hold under those ties.
#[derive(Debug, Clone)]
pub struct ModeSpec {
    /// Mode name (`"int64"`, `"binary64"`, `"dual-binary32"`,
    /// `"quad-binary16"`).
    pub mode: String,
    /// Input nets tied to constants to select the mode (the `frmt` bus).
    pub ties: Vec<(NetId, bool)>,
    /// Per-lane isolation obligations.
    pub lanes: Vec<LaneIsolation>,
    /// Carry seams `(column, pass_net)` whose pass net must be statically
    /// **0** in this mode (the seam sections the array here).
    pub killed_seams: Vec<Seam>,
    /// Carry seams `(column, pass_net)` whose pass net must be statically
    /// **1** in this mode (carries flow through).
    pub open_seams: Vec<Seam>,
}

/// An array carry seam: the column it sits at and its pass-enable net.
pub type Seam = (usize, NetId);

fn label_bus(name: &str, bus: &[NetId], range: std::ops::Range<usize>) -> Vec<LabelledNet> {
    range.map(|i| (format!("{name}[{i}]"), bus[i])).collect()
}

fn ties_for(ports: &StructuralPorts, frmt: u64) -> Vec<(NetId, bool)> {
    ports
        .frmt
        .iter()
        .enumerate()
        .map(|(i, &net)| (net, (frmt >> i) & 1 == 1))
        .collect()
}

fn operand_bits(ports: &StructuralPorts, range: std::ops::Range<usize>) -> Vec<LabelledNet> {
    let mut v = label_bus("xa", &ports.xa, range.clone());
    v.extend(label_bus("yb", &ports.yb, range));
    v
}

/// Splits the seams of `ports` by the columns listed in `killed`:
/// returns `(killed_seams, open_seams)`.
fn split_seams(ports: &StructuralPorts, killed: &[usize]) -> (Vec<Seam>, Vec<Seam>) {
    let (k, o): (Vec<_>, Vec<_>) = ports
        .seam_passes
        .iter()
        .copied()
        .partition(|(col, _)| killed.contains(col));
    (k, o)
}

/// The format modes of a built unit, each with its isolation obligations.
///
/// The returned specs cover the paper's three formats — and the
/// quad-binary16 extension when the unit was built with
/// [`UnitOptions::quad_lanes`](crate::structural::UnitOptions) — against
/// the ports of the *same* netlist: the analyzer ties the `frmt` bits per
/// spec and reasons about one mode at a time, so no special hardwired
/// build is needed.
pub fn mode_specs(ports: &StructuralPorts) -> Vec<ModeSpec> {
    let mut specs = Vec::new();

    // int64: PH ∥ PL is the 128-bit product; every operand bit must be in
    // its cone and all seams carry.
    let (killed, open) = split_seams(ports, &[]);
    let mut int_outputs = label_bus("ph", &ports.ph, 0..64);
    int_outputs.extend(label_bus("pl", &ports.pl, 0..64));
    specs.push(ModeSpec {
        mode: "int64".into(),
        ties: ties_for(ports, 0),
        lanes: vec![LaneIsolation {
            lane: "full".into(),
            outputs: int_outputs,
            forbidden: Vec::new(),
            required: operand_bits(ports, 0..64),
        }],
        killed_seams: killed,
        open_seams: open,
    });

    // binary64: PH plus the lower flag set; full operand support.
    let (killed, open) = split_seams(ports, &[]);
    let mut b64_outputs = label_bus("ph", &ports.ph, 0..64);
    b64_outputs.extend(label_bus("flags", &ports.flags, 0..3));
    specs.push(ModeSpec {
        mode: "binary64".into(),
        ties: ties_for(ports, 1),
        lanes: vec![LaneIsolation {
            lane: "full".into(),
            outputs: b64_outputs,
            forbidden: Vec::new(),
            required: operand_bits(ports, 0..64),
        }],
        killed_seams: killed,
        open_seams: open,
    });

    // dual binary32: the headline obligation. The lower lane's cone
    // (PH[0..32] and the lower flags) must exclude every upper operand
    // bit and vice versa; the column-64 seam must be killed.
    let (killed, open) = split_seams(ports, &[64]);
    let mut lo_outputs = label_bus("ph", &ports.ph, 0..32);
    lo_outputs.extend(label_bus("flags", &ports.flags, 0..3));
    let mut hi_outputs = label_bus("ph", &ports.ph, 32..64);
    hi_outputs.extend(label_bus("flags", &ports.flags, 3..6));
    specs.push(ModeSpec {
        mode: "dual-binary32".into(),
        ties: ties_for(ports, 2),
        lanes: vec![
            LaneIsolation {
                lane: "lower".into(),
                outputs: lo_outputs,
                forbidden: operand_bits(ports, 32..64),
                required: operand_bits(ports, 0..32),
            },
            LaneIsolation {
                lane: "upper".into(),
                outputs: hi_outputs,
                forbidden: operand_bits(ports, 0..32),
                required: operand_bits(ports, 32..64),
            },
        ],
        killed_seams: killed,
        open_seams: open,
    });

    // quad binary16 (extension): four 16-bit lanes, seams at 32/64/96 all
    // killed. The exported flags are gated off in quad mode, so each
    // lane's cone is its PH slice alone.
    if ports.options.quad_lanes {
        let (killed, open) = split_seams(ports, &[32, 64, 96]);
        let lanes = (0..4)
            .map(|k| {
                let inside = 16 * k..16 * (k + 1);
                let mut forbidden = operand_bits(ports, 0..16 * k);
                forbidden.extend(operand_bits(ports, 16 * (k + 1)..64));
                LaneIsolation {
                    lane: format!("q{k}"),
                    outputs: label_bus("ph", &ports.ph, inside.clone()),
                    forbidden,
                    required: operand_bits(ports, inside),
                }
            })
            .collect();
        specs.push(ModeSpec {
            mode: "quad-binary16".into(),
            ties: ties_for(ports, 3),
            lanes,
            killed_seams: killed,
            open_seams: open,
        });
    }

    specs
}
