//! Word-level bit-exact functional model of the multi-format unit.
//!
//! [`FunctionalUnit::execute`] produces exactly the outputs the gate-level
//! model produces (verified by cross-model tests), at software speed. The
//! floating-point lanes implement the Fig. 3 speculative normalize-and-
//! round datapath via [`mfm_softfloat::paper::speculative_round`] and the
//! input/output formatter semantics documented in
//! [`mfm_softfloat::paper`]: subnormal operands flush to zero, results
//! whose biased exponent leaves `[1, max−1]` flush to zero or saturate to
//! infinity, and NaN/infinity operands are detected and bypassed.

use crate::format::{Format, MultResult, Operation};
use mfm_softfloat::paper::{paper_mul_bits, paper_mul_bits_rne};
use mfm_softfloat::{BinaryFormat, Flags, BINARY16, BINARY32, BINARY64};

/// Floating-point rounding style of the unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingStyle {
    /// The paper's hardware: round-to-nearest by injection without a
    /// sticky bit (ties away from zero).
    #[default]
    Injection,
    /// The sticky-bit extension the paper lists as unimplemented: exact
    /// IEEE round-to-nearest-even (still with the unit's flush-to-zero
    /// exponent-range handling).
    NearestEvenSticky,
}

/// The fast functional model of the multi-format multiplier.
///
/// Stateless: each [`FunctionalUnit::execute`] call is one operation
/// (one clock cycle of the pipelined hardware at full throughput).
///
/// # Example
///
/// ```
/// use mfmult::{FunctionalUnit, Operation};
///
/// let unit = FunctionalUnit::new();
/// let r = unit.execute(Operation::binary64_from_f64(2.5, -4.0));
/// assert_eq!(r.b64_product_f64(), -10.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FunctionalUnit {
    rounding: RoundingStyle,
}

impl FunctionalUnit {
    /// Creates the unit with the paper's injection rounding.
    pub fn new() -> Self {
        FunctionalUnit {
            rounding: RoundingStyle::Injection,
        }
    }

    /// Creates the unit with the sticky-bit RNE extension.
    ///
    /// ```
    /// use mfmult::functional::FunctionalUnit;
    ///
    /// let unit = FunctionalUnit::with_nearest_even();
    /// // RNE mode matches the host FPU on every normal product.
    /// assert_eq!(unit.mul_f64(0.1, 0.2), 0.1 * 0.2);
    /// ```
    pub fn with_nearest_even() -> Self {
        FunctionalUnit {
            rounding: RoundingStyle::NearestEvenSticky,
        }
    }

    /// The unit's rounding style.
    pub fn rounding(&self) -> RoundingStyle {
        self.rounding
    }

    fn lane_mul(&self, fmt: &BinaryFormat, a: u64, b: u64) -> (u64, Flags) {
        match self.rounding {
            RoundingStyle::Injection => paper_mul_bits(fmt, a, b),
            RoundingStyle::NearestEvenSticky => paper_mul_bits_rne(fmt, a, b),
        }
    }

    /// Executes one operation.
    pub fn execute(&self, op: Operation) -> MultResult {
        match op.format {
            Format::Int64 => {
                let p = (op.xa as u128) * (op.yb as u128);
                MultResult {
                    format: op.format,
                    ph: (p >> 64) as u64,
                    pl: p as u64,
                    flags_lo: Flags::NONE,
                    flags_hi: Flags::NONE,
                }
            }
            Format::Binary64 => {
                let (p, flags) = self.lane_mul(&BINARY64, op.xa, op.yb);
                MultResult {
                    format: op.format,
                    ph: p,
                    pl: 0,
                    flags_lo: flags,
                    flags_hi: Flags::NONE,
                }
            }
            Format::DualBinary32 | Format::SingleBinary32 => {
                let (lo, flags_lo) =
                    self.lane_mul(&BINARY32, op.xa & 0xFFFF_FFFF, op.yb & 0xFFFF_FFFF);
                let (hi, flags_hi) = self.lane_mul(&BINARY32, op.xa >> 32, op.yb >> 32);
                MultResult {
                    format: op.format,
                    ph: (lo & 0xFFFF_FFFF) | (hi << 32),
                    pl: 0,
                    flags_lo,
                    flags_hi,
                }
            }
            Format::QuadBinary16 => {
                let mut ph = 0u64;
                let mut flags = [Flags::NONE; 4];
                for (k, slot) in flags.iter_mut().enumerate() {
                    let (p, f) = self.lane_mul(
                        &BINARY16,
                        (op.xa >> (16 * k)) & 0xFFFF,
                        (op.yb >> (16 * k)) & 0xFFFF,
                    );
                    ph |= (p & 0xFFFF) << (16 * k);
                    *slot = f;
                }
                MultResult {
                    format: op.format,
                    ph,
                    pl: 0,
                    // Lanes 0/1 accumulate into the lo flag set, 2/3 into hi.
                    flags_lo: flags[0] | flags[1],
                    flags_hi: flags[2] | flags[3],
                }
            }
        }
    }

    /// Convenience: multiply two doubles through the unit.
    pub fn mul_f64(&self, a: f64, b: f64) -> f64 {
        self.execute(Operation::binary64_from_f64(a, b))
            .b64_product_f64()
    }

    /// Convenience: multiply two pairs of floats in one operation,
    /// returning `(x·y, w·z)`.
    pub fn mul_dual_f32(&self, x: f32, y: f32, w: f32, z: f32) -> (f32, f32) {
        self.execute(Operation::dual_binary32_from_f32(x, y, w, z))
            .b32_products_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_softfloat::paper::paper_mul_bits;
    use mfm_softfloat::{BINARY32, BINARY64};

    fn rng_vals(n: usize) -> Vec<u64> {
        let mut s = 0xA5A5_5A5A_DEAD_BEEFu64;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                s
            })
            .collect()
    }

    #[test]
    fn int64_full_product() {
        let unit = FunctionalUnit::new();
        for w in rng_vals(40).chunks(2) {
            let (x, y) = (w[0], w[1]);
            let r = unit.execute(Operation::int64(x, y));
            assert_eq!(r.int_product(), (x as u128) * (y as u128));
        }
        assert_eq!(
            unit.execute(Operation::int64(u64::MAX, u64::MAX))
                .int_product(),
            (u64::MAX as u128) * (u64::MAX as u128)
        );
    }

    #[test]
    fn binary64_matches_oracle_on_random_bits() {
        let unit = FunctionalUnit::new();
        for w in rng_vals(200).chunks(2) {
            let (a, b) = (w[0], w[1]);
            let r = unit.execute(Operation::binary64(a, b));
            let (want, want_flags) = paper_mul_bits(&BINARY64, a, b);
            assert_eq!(r.ph, want, "a={a:#x} b={b:#x}");
            assert_eq!(r.flags_lo.bits(), want_flags.bits());
        }
    }

    #[test]
    fn dual_lanes_are_independent() {
        let unit = FunctionalUnit::new();
        for w in rng_vals(200).chunks(4) {
            let (x, y, wz, z) = (w[0] as u32, w[1] as u32, w[2] as u32, w[3] as u32);
            let r = unit.execute(Operation::dual_binary32(x, y, wz, z));
            let (lo, hi) = r.b32_products();
            let (want_lo, _) = paper_mul_bits(&BINARY32, x as u64, y as u64);
            let (want_hi, _) = paper_mul_bits(&BINARY32, wz as u64, z as u64);
            assert_eq!(lo as u64, want_lo);
            assert_eq!(hi as u64, want_hi);
            // Swapping the other lane's operands must not change this lane.
            let r2 = unit.execute(Operation::dual_binary32(x, y, z, wz));
            assert_eq!(r2.b32_products().0, lo);
        }
    }

    #[test]
    fn single_lane_is_lower() {
        let unit = FunctionalUnit::new();
        let r = unit.execute(Operation::single_binary32_from_f32(3.0, 7.0));
        assert_eq!(r.b32_product_f32(), 21.0);
        // Upper lane computed 0 × 0 = 0, no flags.
        assert!(r.flags_hi.is_empty());
    }

    #[test]
    fn host_float_helpers() {
        let unit = FunctionalUnit::new();
        assert_eq!(unit.mul_f64(1.5, -2.0), -3.0);
        assert_eq!(unit.mul_dual_f32(2.0, 3.0, -1.0, 4.0), (6.0, -4.0));
    }

    #[test]
    fn rne_mode_matches_host_on_random_normals() {
        let unit = FunctionalUnit::with_nearest_even();
        assert_eq!(unit.rounding(), super::RoundingStyle::NearestEvenSticky);
        let mut s = 0xB7E1_5162_8AED_2A6Au64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = f64::from_bits(((1023 - 30 + (s % 60)) << 52) | (s >> 12 & ((1 << 52) - 1)));
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = f64::from_bits(((1023 - 30 + (s % 60)) << 52) | (s >> 12 & ((1 << 52) - 1)));
            assert_eq!(unit.mul_f64(a, b).to_bits(), (a * b).to_bits(), "{a} * {b}");
        }
    }

    #[test]
    fn rounding_styles_differ_only_on_ties() {
        let inj = FunctionalUnit::new();
        let rne = FunctionalUnit::with_nearest_even();
        let a = 1.0 + f64::powi(2.0, -26);
        let b = 1.0 + f64::powi(2.0, -27);
        assert_ne!(inj.mul_f64(a, b).to_bits(), rne.mul_f64(a, b).to_bits());
        assert_eq!(rne.mul_f64(a, b), a * b);
        // Non-tied product: identical.
        assert_eq!(
            inj.mul_f64(1.3, 7.7).to_bits(),
            rne.mul_f64(1.3, 7.7).to_bits()
        );
    }

    #[test]
    fn specials_route_through_formatter() {
        let unit = FunctionalUnit::new();
        let r = unit.execute(Operation::binary64_from_f64(f64::INFINITY, 0.0));
        assert!(r.b64_product_f64().is_nan());
        assert!(r.flags_lo.invalid());
        let r = unit.execute(Operation::single_binary32_from_f32(f32::NAN, 1.0));
        assert!(r.b32_product_f32().is_nan());
    }
}
