//! Extension: **quad binary16** — four half-precision multiplications per
//! cycle through the same radix-16 array.
//!
//! The paper's conclusion notes that the small number of radix-16 partial
//! products "makes easier the sectioning of the PP array to perform
//! multi-lane operations on operands of reduced wordlength". This module
//! carries that observation one step further than the paper: the 64-bit
//! datapath is sectioned into **four** 16-bit lanes, each holding an
//! 11-bit binary16 significand.
//!
//! Lane `k`'s significands sit at bit `16k` of both operands; its product
//! occupies columns `32k … 32k+21`. Each lane owns three radix-16 PP rows
//! (`4k, 4k+1, 4k+2` — row `4k+3` is identically zero because binary16
//! significands never set a group MSB at the lane boundary), windowed to
//! `[16k, 16k+14)` row-local bits since `8·(2¹¹−1) < 2¹⁴`. Sign-extension
//! corrections wrap modulo the lane's 32-column section, and the
//! reduction-tree/CPA carries are cut at columns 32, 64 and 96.
//!
//! Both a word-level functional model and a standalone gate-level array
//! (recoder → multiples → windowed PPGEN → seamed tree → four split CPAs)
//! are provided and cross-tested; integrating the lanes into the full
//! unit's formatter/S&EH follows the same pattern as dual binary32 and is
//! left as the straightforward remainder.

use mfm_arith::adder::{build_adder, AdderKind};
use mfm_arith::multiples::build_multiples;
use mfm_arith::ppgen::one_hot_select;
use mfm_arith::recode::{radix16_digits, radix16_recoder};
use mfm_arith::tree::{reduce_to_two_seam, PpArray};
use mfm_gatesim::{NetId, Netlist};

/// Number of lanes.
pub const LANES: usize = 4;
/// Row-local window of lane `k`: `[16k, 16k+14)`.
pub const fn lane_window(k: usize) -> (usize, usize) {
    (16 * k, 16 * k + 14)
}
/// PP rows belonging to lane `k` (the fourth row of each group is zero).
pub const fn lane_rows(k: usize) -> std::ops::Range<usize> {
    4 * k..4 * k + 3
}
/// Carry-seam columns between the four 32-column sections.
pub const SEAMS: [usize; 3] = [32, 64, 96];

/// Packs four 11-bit binary16 significands into a 64-bit operand word.
///
/// # Panics
///
/// Panics in debug builds if a significand exceeds 11 bits.
pub fn pack4(sigs: [u16; 4]) -> u64 {
    let mut w = 0u64;
    for (k, &s) in sigs.iter().enumerate() {
        debug_assert!(s < (1 << 11), "binary16 significands are 11 bits");
        w |= (s as u64) << (16 * k);
    }
    w
}

/// Sign-extension correction constant of lane `k`, wrapped modulo the
/// lane's section so it cannot disturb the neighbours.
pub fn lane_correction(k: usize) -> u128 {
    // Per row the correction is 2^col − 2^(col+1) = −2^col, with
    // col = offset + window-high-edge; wrap the sum modulo the section.
    let top = 32 * (k + 1);
    let mut sum = 0u128;
    for i in lane_rows(k) {
        let col = 4 * i + lane_window(k).1;
        debug_assert!(col < top);
        sum += 1u128 << col;
    }
    let mask = if top == 128 {
        u128::MAX
    } else {
        (1u128 << top) - 1
    };
    sum.wrapping_neg() & mask
}

/// Word-level functional model: the four products computed through the
/// sectioned array exactly as the hardware would (windowed rows, per-lane
/// corrections, seam kills = per-section sums modulo 2³²-aligned widths).
///
/// # Example
///
/// ```
/// use mfmult::quad::quad_lane_array_product;
///
/// let p = quad_lane_array_product([3, 5, 1024, 2047], [7, 11, 1024, 2047]);
/// assert_eq!(p, [21, 55, 1024 * 1024, 2047 * 2047]);
/// ```
pub fn quad_lane_array_product(x: [u16; 4], y: [u16; 4]) -> [u32; 4] {
    let xw = pack4(x);
    let yw = pack4(y);
    let digits = radix16_digits(yw);
    let mut out = [0u32; 4];
    for k in 0..LANES {
        let (lo, hi) = lane_window(k);
        let wmask = (1u128 << (hi - lo)) - 1;
        // Sum the lane's terms modulo 2^(32(k+1)); bits below 32k stay 0.
        let section_mask = if k == 3 {
            u128::MAX
        } else {
            (1u128 << (32 * (k + 1))) - 1
        };
        let mut acc = 0u128;
        for i in lane_rows(k) {
            let d = digits[i];
            let offset = 4 * i;
            let s = d < 0;
            let mag = d.unsigned_abs() as u128;
            let mut m = (((xw as u128) * mag) >> lo) & wmask;
            if s {
                m = !m & wmask;
            }
            acc = acc.wrapping_add(m << (offset + lo));
            if s {
                acc = acc.wrapping_add(1u128 << (offset + lo));
            } else {
                acc = acc.wrapping_add(1u128 << (offset + hi));
            }
            acc &= section_mask;
        }
        debug_assert_eq!(digits[4 * k + 3], 0, "lane boundary digit is zero");
        acc = acc.wrapping_add(lane_correction(k)) & section_mask;
        out[k] = ((acc >> (32 * k)) & 0xFFFF_FFFF) as u32;
    }
    out
}

/// Four complete binary16 multiplications (full encodings, not just
/// significands) with the unit's injection rounding — the format-level
/// view of the quad extension.
///
/// # Example
///
/// ```
/// use mfmult::quad::quad_mul;
///
/// // 1.5 × 2.0 = 3.0 in binary16: 0x3E00 × 0x4000 = 0x4200.
/// let (p, flags) = quad_mul([0x3E00; 4], [0x4000; 4]);
/// assert_eq!(p, [0x4200; 4]);
/// assert!(flags.iter().all(|f| f.is_empty()));
/// ```
pub fn quad_mul(x: [u16; 4], y: [u16; 4]) -> ([u16; 4], [mfm_softfloat::Flags; 4]) {
    use mfm_softfloat::paper::paper_mul_bits;
    use mfm_softfloat::BINARY16;
    let mut p = [0u16; 4];
    let mut flags = [mfm_softfloat::Flags::NONE; 4];
    for k in 0..4 {
        let (r, f) = paper_mul_bits(&BINARY16, x[k] as u64, y[k] as u64);
        p[k] = r as u16;
        flags[k] = f;
    }
    (p, flags)
}

/// Ports of the standalone gate-level quad-lane array.
#[derive(Debug, Clone)]
pub struct QuadArrayPorts {
    /// Packed multiplicand significands (4 × 11 bits at 16-bit stride).
    pub x: Vec<NetId>,
    /// Packed multiplier significands.
    pub y: Vec<NetId>,
    /// The four 22-bit products, lane 0 first.
    pub products: [Vec<NetId>; 4],
}

/// Builds the quad-lane array in hardware: radix-16 recoder, multiple
/// generation, windowed PP rows, seamed Dadda tree and four section CPAs.
///
/// This is the fixed quad-mode datapath (no format muxing) demonstrating
/// that the sectioning is realizable with the same machinery as Fig. 4.
pub fn build_quad_lane_array(n: &mut Netlist) -> QuadArrayPorts {
    let x = n.input_bus("qx", 64);
    let y = n.input_bus("qy", 64);

    let digits = n.in_block("recode", |n| radix16_recoder(n, &y));
    let m = n.in_block("precomp", |n| {
        build_multiples(n, &x, 8, AdderKind::CarryLookahead)
    });
    let buses: Vec<Vec<NetId>> = (1..=8).map(|k| m.bus(k).to_vec()).collect();

    let mut arr = PpArray::new(128);
    n.begin_block("PPGEN");
    for k in 0..LANES {
        let (lo, hi) = lane_window(k);
        for i in lane_rows(k) {
            let digit = &digits[i];
            let offset = 4 * i;
            // `j` indexes the *inner* dimension of `buses`, so the range
            // loop is clearer than any iterator chain here.
            #[allow(clippy::needless_range_loop)]
            for j in lo..hi {
                let terms: Vec<(NetId, NetId)> = digit
                    .sel
                    .iter()
                    .enumerate()
                    .map(|(t, &sel)| (sel, buses[t][j]))
                    .collect();
                let acc = one_hot_select(n, &terms);
                let bit = n.xor2(acc, digit.sign);
                arr.add_bit(offset + j, bit);
            }
            arr.add_bit(offset + lo, digit.sign);
            let ns = n.not(digit.sign);
            arr.add_bit(offset + hi, ns);
        }
        arr.add_constant(n, lane_correction(k));
    }
    n.end_block();

    let pass = n.zero(); // quad mode: seams always cut
    let seams: Vec<(usize, NetId)> = SEAMS.iter().map(|&c| (c, pass)).collect();
    let (s_vec, c_vec) = n.in_block("TREE", |n| reduce_to_two_seam(n, arr, &seams));

    // One 32-bit CPA per section (carries never cross in quad mode).
    let mut products: Vec<Vec<NetId>> = Vec::with_capacity(4);
    n.begin_block("CPA");
    for k in 0..LANES {
        let lo = 32 * k;
        let zero = n.zero();
        let sum = build_adder(
            n,
            AdderKind::KoggeStone,
            &s_vec[lo..lo + 32],
            &c_vec[lo..lo + 32],
            zero,
        );
        products.push(sum.sum[..22].to_vec());
    }
    n.end_block();

    n.output_bus("p0", &products[0]);
    n.output_bus("p1", &products[1]);
    n.output_bus("p2", &products[2]);
    n.output_bus("p3", &products[3]);
    let products: [Vec<NetId>; 4] = products.try_into().expect("four lanes");
    QuadArrayPorts { x, y, products }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{Simulator, TechLibrary};

    fn rng11(count: usize, seed: u64) -> Vec<u16> {
        let mut s = seed;
        (0..count)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 20) & 0x7FF) as u16
            })
            .collect()
    }

    #[test]
    fn functional_quad_products() {
        let vals = rng11(400, 0x16);
        for c in vals.chunks(8) {
            let x = [c[0], c[1], c[2], c[3]];
            let y = [c[4], c[5], c[6], c[7]];
            let p = quad_lane_array_product(x, y);
            for k in 0..4 {
                assert_eq!(p[k], x[k] as u32 * y[k] as u32, "lane {k}: {x:?} × {y:?}");
            }
        }
    }

    #[test]
    fn functional_quad_corners() {
        for v in [0u16, 1, 0x400, 0x7FF] {
            let p = quad_lane_array_product([v; 4], [v; 4]);
            assert_eq!(p, [v as u32 * v as u32; 4]);
        }
        // Normalized binary16 significands (implicit bit set).
        let x = [0x400u16, 0x555, 0x7FF, 0x6AB];
        let y = [0x7FF, 0x400, 0x5A5, 0x71C];
        let p = quad_lane_array_product(x, y);
        for k in 0..4 {
            assert_eq!(p[k], x[k] as u32 * y[k] as u32);
        }
    }

    #[test]
    fn lanes_do_not_interact() {
        let (x0, y0) = (0x7AB, 0x6CD);
        for other in rng11(60, 0x99).chunks(6) {
            let p = quad_lane_array_product(
                [x0, other[0], other[1], other[2]],
                [y0, other[3], other[4], other[5]],
            );
            assert_eq!(p[0], x0 as u32 * y0 as u32, "{other:?}");
        }
    }

    #[test]
    fn netlist_quad_array_matches_functional() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let q = build_quad_lane_array(&mut n);
        n.check().unwrap();
        let mut sim = Simulator::new(&n);
        let vals = rng11(if cfg!(debug_assertions) { 48 } else { 160 }, 0x61);
        for c in vals.chunks(8) {
            let x = [c[0], c[1], c[2], c[3]];
            let y = [c[4], c[5], c[6], c[7]];
            sim.set_bus(&q.x, pack4(x) as u128);
            sim.set_bus(&q.y, pack4(y) as u128);
            sim.settle();
            let want = quad_lane_array_product(x, y);
            for (k, &w) in want.iter().enumerate() {
                assert_eq!(
                    sim.read_bus(&q.products[k]) as u32,
                    w,
                    "lane {k}: {x:?} × {y:?}"
                );
            }
        }
    }

    #[test]
    fn corrections_are_lane_confined() {
        for k in 0..4 {
            let c = lane_correction(k);
            if k > 0 {
                assert_eq!(c & ((1 << (32 * k)) - 1), 0, "lane {k} below");
            }
            if k < 3 {
                assert_eq!(c >> (32 * (k + 1)), 0, "lane {k} above");
            }
        }
    }
}
