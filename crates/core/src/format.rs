//! Operation formats, operand packing and result unpacking.
//!
//! The hardware unit has two 64-bit operand inputs, a 2-bit format select
//! `frmt`, and two 64-bit outputs `PH`/`PL` (Fig. 5). [`Operation`] packs
//! typed operands into that interface; [`MultResult`] unpacks the outputs.

use mfm_softfloat::Flags;

/// The formats the multi-format unit supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// 64×64 → 128-bit unsigned integer multiplication.
    Int64,
    /// One binary64 (double precision) multiplication.
    Binary64,
    /// Two independent binary32 multiplications (lower lane X·Y at bit 0,
    /// upper lane W·Z at bit 32 — Fig. 4).
    DualBinary32,
    /// One binary32 multiplication in the lower lane; the upper lane idles
    /// with zero operands. The paper's "binary32 (single)" row of Table V.
    SingleBinary32,
    /// **Extension**: four independent binary16 multiplications (lane `k`
    /// at bit `16k` of both operands). Not part of the paper's evaluation;
    /// see [`crate::quad`].
    QuadBinary16,
}

impl Format {
    /// The 2-bit `frmt` encoding driven into the hardware:
    /// 0 = int64, 1 = binary64, 2 = dual/single binary32,
    /// 3 = quad binary16 (extension).
    pub const fn encoding(self) -> u64 {
        match self {
            Format::Int64 => 0,
            Format::Binary64 => 1,
            Format::DualBinary32 | Format::SingleBinary32 => 2,
            Format::QuadBinary16 => 3,
        }
    }

    /// Stable lower-case label used for metric names and JSON keys
    /// (e.g. `selfcheck.ops.dual_binary32`).
    pub const fn label(self) -> &'static str {
        match self {
            Format::Int64 => "int64",
            Format::Binary64 => "binary64",
            Format::DualBinary32 => "dual_binary32",
            Format::SingleBinary32 => "single_binary32",
            Format::QuadBinary16 => "quad_binary16",
        }
    }

    /// Floating-point multiplications completed per operation (for
    /// throughput accounting; int64 counts as one).
    pub const fn ops_per_cycle(self) -> u32 {
        match self {
            Format::DualBinary32 => 2,
            Format::QuadBinary16 => 4,
            _ => 1,
        }
    }

    /// The paper's formats, Table V order (the quad-binary16 extension is
    /// deliberately excluded — it is not part of the paper's evaluation).
    pub const ALL: [Format; 4] = [
        Format::Int64,
        Format::Binary64,
        Format::DualBinary32,
        Format::SingleBinary32,
    ];
}

/// One operation: a format plus the two packed 64-bit operand words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Operation format.
    pub format: Format,
    /// First operand word (multiplicand side): `x`, binary64 `a`, or
    /// `{w32, x32}` for dual binary32.
    pub xa: u64,
    /// Second operand word (multiplier side): `y`, binary64 `b`, or
    /// `{z32, y32}` for dual binary32.
    pub yb: u64,
}

impl Operation {
    /// Unsigned 64×64 integer multiplication.
    pub const fn int64(x: u64, y: u64) -> Self {
        Operation {
            format: Format::Int64,
            xa: x,
            yb: y,
        }
    }

    /// binary64 multiplication from raw encodings.
    pub const fn binary64(a: u64, b: u64) -> Self {
        Operation {
            format: Format::Binary64,
            xa: a,
            yb: b,
        }
    }

    /// binary64 multiplication from host doubles.
    pub fn binary64_from_f64(a: f64, b: f64) -> Self {
        Self::binary64(a.to_bits(), b.to_bits())
    }

    /// Dual binary32: lower lane computes `x·y`, upper lane `w·z`
    /// (raw encodings).
    pub const fn dual_binary32(x: u32, y: u32, w: u32, z: u32) -> Self {
        Operation {
            format: Format::DualBinary32,
            xa: (x as u64) | ((w as u64) << 32),
            yb: (y as u64) | ((z as u64) << 32),
        }
    }

    /// Dual binary32 from host floats: lower lane `x·y`, upper lane `w·z`.
    pub fn dual_binary32_from_f32(x: f32, y: f32, w: f32, z: f32) -> Self {
        Self::dual_binary32(x.to_bits(), y.to_bits(), w.to_bits(), z.to_bits())
    }

    /// Single binary32 in the lower lane (raw encodings); the upper lane
    /// receives +0.0 operands.
    pub const fn single_binary32(x: u32, y: u32) -> Self {
        Operation {
            format: Format::SingleBinary32,
            xa: x as u64,
            yb: y as u64,
        }
    }

    /// Single binary32 from host floats.
    pub fn single_binary32_from_f32(x: f32, y: f32) -> Self {
        Self::single_binary32(x.to_bits(), y.to_bits())
    }

    /// Quad binary16 (extension): lane `k` computes `x[k] · y[k]`
    /// (raw binary16 encodings).
    pub fn quad_binary16(x: [u16; 4], y: [u16; 4]) -> Self {
        let pack = |v: [u16; 4]| {
            v.iter()
                .enumerate()
                .fold(0u64, |acc, (k, &e)| acc | ((e as u64) << (16 * k)))
        };
        Operation {
            format: Format::QuadBinary16,
            xa: pack(x),
            yb: pack(y),
        }
    }
}

/// The unit's outputs for one operation.
///
/// `PH`/`PL` follow the paper's output formatter: int64 puts the product
/// high half on `PH` and low half on `PL`; binary64 puts the result on
/// `PH`; dual binary32 puts the upper-lane product in the 32 MSBs of `PH`
/// and the lower-lane product in its 32 LSBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a multiplication result carries exception flags that must be inspected"]
pub struct MultResult {
    /// Format this result was produced under.
    pub format: Format,
    /// High output port.
    pub ph: u64,
    /// Low output port (only meaningful for int64).
    pub pl: u64,
    /// Exception flags of the lower lane (or the only lane).
    pub flags_lo: Flags,
    /// Exception flags of the upper lane (dual binary32 only).
    pub flags_hi: Flags,
}

impl MultResult {
    /// The 128-bit integer product (int64 format).
    ///
    /// # Panics
    ///
    /// Panics if the format is not [`Format::Int64`].
    #[must_use]
    pub fn int_product(&self) -> u128 {
        assert_eq!(self.format, Format::Int64, "not an int64 result");
        ((self.ph as u128) << 64) | self.pl as u128
    }

    /// The binary64 product encoding (binary64 format).
    ///
    /// # Panics
    ///
    /// Panics if the format is not [`Format::Binary64`].
    #[must_use]
    pub fn b64_product(&self) -> u64 {
        assert_eq!(self.format, Format::Binary64, "not a binary64 result");
        self.ph
    }

    /// The binary64 product as a host double.
    #[must_use]
    pub fn b64_product_f64(&self) -> f64 {
        f64::from_bits(self.b64_product())
    }

    /// The `(lower, upper)` binary32 product encodings (dual format).
    ///
    /// # Panics
    ///
    /// Panics unless the format is [`Format::DualBinary32`].
    #[must_use]
    pub fn b32_products(&self) -> (u32, u32) {
        assert_eq!(self.format, Format::DualBinary32, "not a dual result");
        (self.ph as u32, (self.ph >> 32) as u32)
    }

    /// The `(lower, upper)` binary32 products as host floats.
    #[must_use]
    pub fn b32_products_f32(&self) -> (f32, f32) {
        let (lo, hi) = self.b32_products();
        (f32::from_bits(lo), f32::from_bits(hi))
    }

    /// The single binary32 product encoding (single format, lower lane).
    ///
    /// # Panics
    ///
    /// Panics unless the format is [`Format::SingleBinary32`].
    #[must_use]
    pub fn b32_product(&self) -> u32 {
        assert_eq!(self.format, Format::SingleBinary32, "not a single result");
        self.ph as u32
    }

    /// The single binary32 product as a host float.
    #[must_use]
    pub fn b32_product_f32(&self) -> f32 {
        f32::from_bits(self.b32_product())
    }

    /// The four binary16 product encodings, lane 0 first (quad extension).
    ///
    /// # Panics
    ///
    /// Panics unless the format is [`Format::QuadBinary16`].
    #[must_use]
    pub fn b16_products(&self) -> [u16; 4] {
        assert_eq!(self.format, Format::QuadBinary16, "not a quad result");
        [
            self.ph as u16,
            (self.ph >> 16) as u16,
            (self.ph >> 32) as u16,
            (self.ph >> 48) as u16,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_packing_dual() {
        let op = Operation::dual_binary32(0x1111_2222, 0x3333_4444, 0xAAAA_BBBB, 0xCCCC_DDDD);
        assert_eq!(op.xa, 0xAAAA_BBBB_1111_2222);
        assert_eq!(op.yb, 0xCCCC_DDDD_3333_4444);
        assert_eq!(op.format.encoding(), 2);
    }

    #[test]
    fn single_uses_zero_upper_lane() {
        let op = Operation::single_binary32(0xDEAD_BEEF, 0x0BAD_F00D);
        assert_eq!(op.xa >> 32, 0, "upper operand is +0.0");
        assert_eq!(op.yb >> 32, 0);
    }

    #[test]
    fn throughput_accounting() {
        assert_eq!(Format::DualBinary32.ops_per_cycle(), 2);
        assert_eq!(Format::Binary64.ops_per_cycle(), 1);
    }

    #[test]
    fn result_accessors() {
        let r = MultResult {
            format: Format::Int64,
            ph: 0x1,
            pl: 0x2,
            flags_lo: Flags::NONE,
            flags_hi: Flags::NONE,
        };
        assert_eq!(r.int_product(), (1u128 << 64) | 2);
        let r = MultResult {
            format: Format::DualBinary32,
            ph: ((0x4000_0000u64) << 32) | 0x3f80_0000,
            pl: 0,
            flags_lo: Flags::NONE,
            flags_hi: Flags::NONE,
        };
        let (lo, hi) = r.b32_products_f32();
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 2.0);
    }

    #[test]
    #[should_panic(expected = "not an int64 result")]
    fn wrong_format_accessor_panics() {
        let r = MultResult {
            format: Format::Binary64,
            ph: 0,
            pl: 0,
            flags_lo: Flags::NONE,
            flags_hi: Flags::NONE,
        };
        let _ = r.int_product();
    }
}
