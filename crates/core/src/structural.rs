//! Gate-level structural model of the multi-format multiplier (Fig. 5
//! without the pipeline registers; see [`crate::pipeline`] for the 3-stage
//! unit).
//!
//! Block structure mirrors the paper:
//!
//! - `FMT` — input formatter: routes operand bits per format, inserts the
//!   implicit significand bits, flushes subnormal operands.
//! - `SPEC` — special-value classification (NaN/∞/zero per lane).
//! - `recode` / `precomp` — radix-16 recoding of Y and the 3X/5X/7X
//!   adders for X.
//! - `PPGEN` — partial-product rows with per-mode windows: full 67-bit
//!   rows for int64/binary64, lane-sectioned windows for dual binary32
//!   (Fig. 4), with per-mode sign-extension correction constants.
//! - `TREE` — Dadda reduction with the column-63/64 carry seam killed in
//!   dual mode.
//! - `ROUND` — the Fig. 3 speculative normalize-and-round: two injection
//!   CSAs, two split 128-bit CPAs, normalization muxes.
//! - `SEH` — sign and exponent handling: one 13-bit datapath shared by
//!   binary64 and the upper binary32 lane, one 10-bit datapath for the
//!   lower lane; exponent add in stage 2, speculative `+1` and select in
//!   stage 3, as the paper describes.
//! - `OFMT` — output formatter: special-value bypass (NaN/∞/zero),
//!   overflow/underflow handling, and `PH`/`PL` assembly.
//!
//! The 2-bit `frmt` input selects the datapath configuration and is used
//! unregistered throughout: a format change must drain the pipeline (each
//! Table V measurement holds the format constant, as the paper does).
//! All *data*-dependent side information — exponent fields, operand
//! classification, NaN payloads — is registered through the same pipeline
//! ranks as the significand datapath.

use crate::lanes::{FULL_WINDOW, LOWER_ROWS, LOWER_WINDOW, SEAM_COL, UPPER_ROWS, UPPER_WINDOW};
use mfm_arith::adder::{build_adder, build_carry_out, AdderKind};
use mfm_arith::multiples::build_multiples_sectioned;
use mfm_arith::ppgen::one_hot_select;
use mfm_arith::recode::radix16_recoder;
use mfm_arith::tree::{reduce_to_height, reduce_to_two_seam, PpArray};
use mfm_gatesim::{NetId, Netlist};

/// The primary ports of the structural unit.
#[derive(Debug, Clone)]
pub struct StructuralPorts {
    /// First 64-bit operand (`x`, binary64 `a`, or `{w32, x32}`).
    pub xa: Vec<NetId>,
    /// Second 64-bit operand (`y`, binary64 `b`, or `{z32, y32}`).
    pub yb: Vec<NetId>,
    /// 2-bit format select: 0 = int64, 1 = binary64, 2 = dual binary32,
    /// 3 = quad binary16 (extension).
    pub frmt: Vec<NetId>,
    /// High 64-bit output.
    pub ph: Vec<NetId>,
    /// Low 64-bit output (int64 only).
    pub pl: Vec<NetId>,
    /// Flag outputs: `[invalid_lo, overflow_lo, underflow_lo,
    /// invalid_hi, overflow_hi, underflow_hi]`. The `_lo` set serves the
    /// binary64 result and the lower binary32 lane; `_hi` the upper lane.
    pub flags: Vec<NetId>,
    /// Pipeline latency in cycles (0 for the combinational build).
    pub latency: u32,
    /// Check tap: the raw 128-bit output of the stage-3 "no left shift"
    /// rounding CPA (`P0 = s + c + inj0`). Combinational stage-3 nets —
    /// in pipelined builds they are valid one cycle *before* the
    /// registered `ph`/`pl`/`flags`. Used by `mfmult::selfcheck`; adds no
    /// gates, registers or power.
    pub chk_p0: Vec<NetId>,
    /// Check tap: the raw 128-bit output of the "left shift" rounding CPA
    /// (`P1 = s + c + inj1`). Same timing caveat as `chk_p0`.
    pub chk_p1: Vec<NetId>,
    /// Lint-visible mode metadata: the carry-seam pass-enable nets as
    /// `(column, pass_net)` — a seam's carries cross the column boundary
    /// exactly when its pass net is 1. The paper unit has one seam at
    /// column 64 (killed in dual mode); the quad extension adds seams at
    /// columns 32 and 96. Used by `mfm-lint` to prove the carry-kill
    /// statically; see [`crate::meta`].
    pub seam_passes: Vec<(usize, NetId)>,
    /// The build options this unit was constructed with (lint-visible
    /// mode metadata: decides which format modes exist).
    pub options: UnitOptions,
}

/// Per-lane classification nets (stage-1 outputs, piped forward).
#[derive(Clone)]
struct LaneClass {
    a_nan: NetId,
    any_nan: NetId,
    invalid: NetId,
    any_inf: NetId,
    any_zero: NetId,
    sign_p: NetId,
}

impl LaneClass {
    fn reg(&self, n: &mut Netlist) -> LaneClass {
        LaneClass {
            a_nan: n.dff(self.a_nan),
            any_nan: n.dff(self.any_nan),
            invalid: n.dff(self.invalid),
            any_inf: n.dff(self.any_inf),
            any_zero: n.dff(self.any_zero),
            sign_p: n.dff(self.sign_p),
        }
    }
}

/// Data-dependent side information piped alongside the significand array.
#[derive(Clone)]
struct SideBundle {
    ea_main: Vec<NetId>,
    eb_main: Vec<NetId>,
    ea_lo: Vec<NetId>,
    eb_lo: Vec<NetId>,
    ea_q: Vec<Vec<NetId>>,
    eb_q: Vec<Vec<NetId>>,
    xa_pay: Vec<NetId>,
    yb_pay: Vec<NetId>,
    cls_b64: LaneClass,
    cls_lo: LaneClass,
    cls_hi: LaneClass,
    cls_q: Vec<LaneClass>,
}

impl SideBundle {
    fn reg(&self, n: &mut Netlist) -> SideBundle {
        SideBundle {
            ea_main: reg_bus(n, &self.ea_main),
            eb_main: reg_bus(n, &self.eb_main),
            ea_lo: reg_bus(n, &self.ea_lo),
            eb_lo: reg_bus(n, &self.eb_lo),
            ea_q: self.ea_q.iter().map(|b| reg_bus(n, b)).collect(),
            eb_q: self.eb_q.iter().map(|b| reg_bus(n, b)).collect(),
            xa_pay: reg_bus(n, &self.xa_pay),
            yb_pay: reg_bus(n, &self.yb_pay),
            cls_b64: self.cls_b64.reg(n),
            cls_lo: self.cls_lo.reg(n),
            cls_hi: self.cls_hi.reg(n),
            cls_q: self.cls_q.iter().map(|c| c.reg(n)).collect(),
        }
    }
}

/// Exponent sums piped from stage 2 into stage 3.
#[derive(Clone)]
struct ExpSums {
    e0_main: Vec<NetId>,
    e0_lo: Vec<NetId>,
    e0_q: Vec<Vec<NetId>>,
}

impl ExpSums {
    fn reg(&self, n: &mut Netlist) -> ExpSums {
        ExpSums {
            e0_main: reg_bus(n, &self.e0_main),
            e0_lo: reg_bus(n, &self.e0_lo),
            e0_q: self.e0_q.iter().map(|b| reg_bus(n, b)).collect(),
        }
    }
}

/// Where pipeline registers are requested by the pipelined builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct StageCuts {
    /// Register after FMT + precomp + recode (stage 1/2 boundary).
    pub after_precomp: bool,
    /// Register the PP array bits (alternative stage 1/2 boundary).
    pub after_ppgen: bool,
    /// Register the partially reduced array at height ≤ 4 (alternative
    /// stage 2/3 boundary, "registers inside TREE").
    pub inside_tree: bool,
    /// Register after TREE (stage 2/3 boundary).
    pub after_tree: bool,
    /// Register the outputs.
    pub outputs: bool,
}

impl StageCuts {
    fn rank1(&self) -> bool {
        self.after_precomp || self.after_ppgen
    }
    fn rank2(&self) -> bool {
        self.after_tree || self.inside_tree
    }
}

/// Build-time options of the structural unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitOptions {
    /// Enable the quad-binary16 extension lanes (`frmt = 3`). Off by
    /// default: the paper's unit has three formats, and the extension
    /// costs ~13 % of the maximum clock frequency. With the option off
    /// every quad gate constant-folds away and the netlist is exactly the
    /// paper-faithful unit; `frmt = 3` is then undefined.
    pub quad_lanes: bool,
    /// Plant a recode-table defect: swap the magnitude-3 and magnitude-4
    /// selectors of recoded digit 5, as a buggy recode-table generator
    /// would. The defect is structural, so the event-driven and compiled
    /// simulators agree on the wrong products — only a check against an
    /// independent reference (sampling if lucky, the SAT prover always)
    /// can see it. Test-only; never enable in a shipping unit.
    pub recode_defect: bool,
}

/// Registers a bus, skipping constant bits.
fn reg_bus(n: &mut Netlist, bus: &[NetId]) -> Vec<NetId> {
    bus.iter()
        .map(|&b| {
            if n.const_value(b).is_some() {
                b
            } else {
                n.dff(b)
            }
        })
        .collect()
}

/// Registers every bit of a PP array.
fn reg_array(n: &mut Netlist, arr: &PpArray) -> PpArray {
    let mut regged = PpArray::new(arr.width());
    for col in 0..arr.width() {
        for &bit in arr.column(col) {
            let q = if n.const_value(bit).is_some() {
                bit
            } else {
                n.dff(bit)
            };
            regged.add_bit(col, q);
        }
    }
    regged
}

/// Builds the combinational multi-format unit.
///
/// # Example
///
/// ```
/// use mfm_gatesim::{Netlist, Simulator, TechLibrary};
/// use mfmult::structural::build_unit;
///
/// let mut n = Netlist::new(TechLibrary::cmos45lp());
/// let u = build_unit(&mut n);
/// let mut sim = Simulator::new(&n);
/// sim.set_bus(&u.frmt, 0); // int64
/// sim.set_bus(&u.xa, 123);
/// sim.set_bus(&u.yb, 456);
/// sim.settle();
/// assert_eq!(sim.read_bus(&u.pl), 123 * 456);
/// ```
pub fn build_unit(n: &mut Netlist) -> StructuralPorts {
    build_unit_with_cuts(n, StageCuts::default())
}

/// Builds the combinational unit with the quad-binary16 extension lanes
/// enabled (`frmt = 3` computes four binary16 products).
pub fn build_unit_quad(n: &mut Netlist) -> StructuralPorts {
    build_unit_full(
        n,
        StageCuts::default(),
        UnitOptions {
            quad_lanes: true,
            ..UnitOptions::default()
        },
    )
}

/// Builds the combinational unit with explicit [`UnitOptions`] — the
/// entry point for test harnesses that plant seeded defects.
pub fn build_unit_with_options(n: &mut Netlist, opts: UnitOptions) -> StructuralPorts {
    build_unit_full(n, StageCuts::default(), opts)
}

pub(crate) fn build_unit_with_cuts(n: &mut Netlist, cuts: StageCuts) -> StructuralPorts {
    build_unit_full(n, cuts, UnitOptions::default())
}

pub(crate) fn build_unit_full(
    n: &mut Netlist,
    cuts: StageCuts,
    opts: UnitOptions,
) -> StructuralPorts {
    let xa = n.input_bus("xa", 64);
    let yb = n.input_bus("yb", 64);
    let frmt = n.input_bus("frmt", 2);

    // Format decode: 0 = int64, 1 = binary64, 2 = dual binary32,
    // 3 = quad binary16 (extension).
    let sectioned = frmt[1];
    let is_full = n.not(sectioned); // int64 or binary64: full carry chains
    let not_dual = is_full; // historical alias: col-64 carries pass
    let nf0 = n.not(frmt[0]);
    let is_b64 = n.and2(is_full, frmt[0]);
    let is_int = n.and2(is_full, nf0);
    let not_int = n.not(is_int);
    // With the quad extension disabled `is_quad` is the constant zero,
    // and every quad-specific gate below constant-folds away, leaving the
    // exact paper-faithful netlist.
    let (is_dual, is_quad, not_dualmode) = if opts.quad_lanes {
        let d = n.and2(sectioned, nf0);
        let q = n.and2(sectioned, frmt[0]);
        let nd = n.not(d);
        (d, q, nd)
    } else {
        // Without quad lanes `is_dual == sectioned`, so its complement is
        // exactly `is_full` — rebuilding the inverter would duplicate it.
        (sectioned, n.zero(), is_full)
    };
    let not_quad = n.not(is_quad);
    let zero = n.zero();

    // ==================================================================
    // Stage 1: FMT, SPEC, field extraction, recode, precomp.
    // ==================================================================
    n.begin_block("FMT");
    let or_range =
        |n: &mut Netlist, bus: &[NetId], lo: usize, hi: usize| or_tree(n, bus[lo..=hi].to_vec());
    let a64_norm = or_range(n, &xa, 52, 62);
    let b64_norm = or_range(n, &yb, 52, 62);
    let alo_norm = or_range(n, &xa, 23, 30);
    let blo_norm = or_range(n, &yb, 23, 30);
    let ahi_norm = or_range(n, &xa, 55, 62);
    let bhi_norm = or_range(n, &yb, 55, 62);
    // Quad-lane (binary16) nonzero-exponent detectors, lane 0..3.
    let (aq_norm, bq_norm): (Vec<NetId>, Vec<NetId>) = if opts.quad_lanes {
        (
            (0..4)
                .map(|k| or_range(n, &xa, 16 * k + 10, 16 * k + 14))
                .collect(),
            (0..4)
                .map(|k| or_range(n, &yb, 16 * k + 10, 16 * k + 14))
                .collect(),
        )
    } else {
        (vec![zero; 4], vec![zero; 4])
    };

    let fmt_operand = |n: &mut Netlist,
                       w: &[NetId],
                       norm64: NetId,
                       norm_lo: NetId,
                       norm_hi: NetId,
                       norm_q: &[NetId]|
     -> Vec<NetId> {
        (0..64)
            .map(|j| {
                let b64v = match j {
                    0..=51 => n.and2(w[j], norm64),
                    52 => norm64,
                    _ => zero,
                };
                let dualv = match j {
                    0..=22 => n.and2(w[j], norm_lo),
                    23 => norm_lo,
                    32..=54 => n.and2(w[j], norm_hi),
                    55 => norm_hi,
                    _ => zero,
                };
                let t = n.mux2(is_b64, w[j], b64v);
                let s = if opts.quad_lanes {
                    let lane = j / 16;
                    let quadv = match j % 16 {
                        0..=9 => n.and2(w[j], norm_q[lane]),
                        10 => norm_q[lane],
                        _ => zero,
                    };
                    n.mux2(frmt[0], dualv, quadv)
                } else {
                    dualv
                };
                n.mux2(sectioned, t, s)
            })
            .collect()
    };
    let x_sig = fmt_operand(n, &xa, a64_norm, alo_norm, ahi_norm, &aq_norm);
    let y_sig = fmt_operand(n, &yb, b64_norm, blo_norm, bhi_norm, &bq_norm);
    n.end_block();

    n.begin_block("SPEC");
    let and_range =
        |n: &mut Netlist, bus: &[NetId], lo: usize, hi: usize| and_tree(n, bus[lo..=hi].to_vec());
    let classify = |n: &mut Netlist,
                    exp: (usize, usize),
                    frac: (usize, usize),
                    sign: usize,
                    a_norm: NetId,
                    b_norm: NetId,
                    xa: &[NetId],
                    yb: &[NetId]|
     -> LaneClass {
        let a_ones = and_range(n, xa, exp.0, exp.1);
        let b_ones = and_range(n, yb, exp.0, exp.1);
        let a_frac_nz = or_range(n, xa, frac.0, frac.1);
        let b_frac_nz = or_range(n, yb, frac.0, frac.1);
        let a_nan = n.and2(a_ones, a_frac_nz);
        let b_nan = n.and2(b_ones, b_frac_nz);
        let any_nan = n.or2(a_nan, b_nan);
        let na_frac = n.not(a_frac_nz);
        let nb_frac = n.not(b_frac_nz);
        let a_inf = n.and2(a_ones, na_frac);
        let b_inf = n.and2(b_ones, nb_frac);
        let any_inf = n.or2(a_inf, b_inf);
        let a_zero = n.not(a_norm);
        let b_zero = n.not(b_norm);
        let any_zero = n.or2(a_zero, b_zero);
        let iz1 = n.and2(a_inf, b_zero);
        let iz2 = n.and2(b_inf, a_zero);
        let inf_zero = n.or2(iz1, iz2);
        // Signaling NaN: NaN with the fraction MSB clear.
        let na_quiet = n.not(xa[frac.1]);
        let nb_quiet = n.not(yb[frac.1]);
        let a_snan = n.and2(a_nan, na_quiet);
        let b_snan = n.and2(b_nan, nb_quiet);
        let snan = n.or2(a_snan, b_snan);
        let invalid = n.or2(inf_zero, snan);
        let sign_p = n.xor2(xa[sign], yb[sign]);
        LaneClass {
            a_nan,
            any_nan,
            invalid,
            any_inf,
            any_zero,
            sign_p,
        }
    };
    let cls_b64 = classify(n, (52, 62), (0, 51), 63, a64_norm, b64_norm, &xa, &yb);
    let cls_lo = classify(n, (23, 30), (0, 22), 31, alo_norm, blo_norm, &xa, &yb);
    let cls_hi = classify(n, (55, 62), (32, 54), 63, ahi_norm, bhi_norm, &xa, &yb);
    let cls_q: Vec<LaneClass> = if opts.quad_lanes {
        (0..4)
            .map(|k| {
                classify(
                    n,
                    (16 * k + 10, 16 * k + 14),
                    (16 * k, 16 * k + 9),
                    16 * k + 15,
                    aq_norm[k],
                    bq_norm[k],
                    &xa,
                    &yb,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    n.end_block();

    // Exponent field extraction (stage 1; the adds happen in stage 2).
    n.begin_block("SEH");
    let main_field = |n: &mut Netlist, w: &[NetId]| -> Vec<NetId> {
        (0..11)
            .map(|i| {
                let b64bit = w[52 + i];
                let dualbit = if i < 8 { w[55 + i] } else { zero };
                n.mux2(sectioned, b64bit, dualbit)
            })
            .collect()
    };
    let ea_main = main_field(n, &xa);
    let eb_main = main_field(n, &yb);
    let ea_lo: Vec<NetId> = (0..8).map(|i| xa[23 + i]).collect();
    let eb_lo: Vec<NetId> = (0..8).map(|i| yb[23 + i]).collect();
    // Quad lanes: 5-bit binary16 exponent fields.
    let (ea_q, eb_q): (Vec<Vec<NetId>>, Vec<Vec<NetId>>) = if opts.quad_lanes {
        (
            (0..4)
                .map(|k| (0..5).map(|i| xa[16 * k + 10 + i]).collect())
                .collect(),
            (0..4)
                .map(|k| (0..5).map(|i| yb[16 * k + 10 + i]).collect())
                .collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    n.end_block();

    let mut side = SideBundle {
        ea_main,
        eb_main,
        ea_lo,
        eb_lo,
        ea_q,
        eb_q,
        xa_pay: xa.clone(),
        yb_pay: yb.clone(),
        cls_b64,
        cls_lo,
        cls_hi,
        cls_q,
    };

    // Stage 1 must fit the target cycle alongside the input formatter, so
    // the unit uses parallel-prefix adders for the odd multiples ("fast
    // carry-propagate adders", Sec. II).
    let mut digits = n.in_block("recode", |n| radix16_recoder(n, &y_sig));
    if opts.recode_defect {
        // Seeded defect (see `UnitOptions::recode_defect`): digit 5 now
        // selects 4X when the recoded magnitude is 3 and vice versa.
        digits[5].sel.swap(2, 3);
    }
    // The packed lanes of the effective multiplicand meet at bit 32 in
    // dual mode (and additionally at bits 16/48 in quad mode): the 7X
    // subtractor's borrow chain is cut there so no lower-lane mantissa
    // bit reaches an upper-lane multiple (see `build_multiples_sectioned`
    // — mfm-lint proves the isolation on every build).
    let precomp_seams: Vec<(usize, NetId)> = if opts.quad_lanes {
        vec![(16, not_quad), (32, not_dual), (48, not_quad)]
    } else {
        vec![(32, not_dual)]
    };
    let m = n.in_block("precomp", |n| {
        build_multiples_sectioned(n, &x_sig, 8, AdderKind::KoggeStone, &precomp_seams)
    });
    let mut buses: Vec<Vec<NetId>> = (1..=8).map(|k| m.bus(k).to_vec()).collect();

    // ---- rank-1 registers --------------------------------------------
    if cuts.after_precomp {
        n.in_block("PIPE", |n| {
            for bus in &mut buses {
                *bus = reg_bus(n, bus);
            }
            for d in &mut digits {
                if n.const_value(d.sign).is_none() {
                    d.sign = n.dff(d.sign);
                }
                d.sel = reg_bus(n, &d.sel);
            }
        });
    }
    if cuts.rank1() && !cuts.after_ppgen {
        side = n.in_block("PIPE", |n| side.reg(n));
    }

    // ==================================================================
    // Stage 2: PPGEN + TREE; exponent adds.
    // ==================================================================
    n.begin_block("PPGEN");
    let mut arr = PpArray::new(128);
    let row_w = FULL_WINDOW.1; // 67
                               // Mode-mask helper: bit0 = full (int64/binary64), bit1 = dual,
                               // bit2 = quad. Returns the net that is high exactly in those modes
                               // (None when the mask covers every mode).
    let mode_net = |mask: u8| -> Option<NetId> {
        match mask {
            0b111 => None,
            0b001 => Some(is_full),
            0b010 => Some(is_dual),
            0b100 => Some(is_quad),
            0b011 => Some(not_quad),
            0b101 => Some(not_dualmode),
            0b110 => Some(sectioned),
            _ => unreachable!("empty mode mask"),
        }
    };
    for (i, digit) in digits.iter().enumerate() {
        let offset = 4 * i;
        let is_transfer = i == 16;
        let dual_window = if LOWER_ROWS.contains(&i) {
            Some(LOWER_WINDOW)
        } else if UPPER_ROWS.contains(&i) {
            Some(UPPER_WINDOW)
        } else {
            None
        };
        // Quad lanes own rows {4k, 4k+1, 4k+2}; every fourth row and the
        // transfer row are identically zero in quad mode.
        let quad_window = if opts.quad_lanes && i < 16 && i % 4 != 3 {
            let lane = i / 4;
            Some((16 * lane, 16 * lane + 14))
        } else {
            None
        };
        let contains =
            |w: Option<(usize, usize)>, j: usize| w.is_some_and(|(lo, hi)| j >= lo && j < hi);
        // `j` indexes the *inner* dimension of `buses`, so the range
        // loop is clearer than any iterator chain here.
        #[allow(clippy::needless_range_loop)]
        for j in 0..row_w {
            let terms: Vec<(NetId, NetId)> = digit
                .sel
                .iter()
                .enumerate()
                .map(|(k, &sel)| (sel, buses[k][j]))
                .collect();
            let acc = one_hot_select(n, &terms);
            let bit = n.xor2(acc, digit.sign);
            let mask = 0b001
                | if contains(dual_window, j) { 0b010 } else { 0 }
                | if contains(quad_window, j) { 0b100 } else { 0 };
            let bit = match mode_net(mask) {
                None => bit,
                Some(m) => n.and2(bit, m),
            };
            arr.add_bit(offset + j, bit);
        }
        if !is_transfer {
            // +s (two's-complement completion) and ¬s (sign-extension
            // replacement) bits, at each mode's window edges; coincident
            // positions merge their mode masks.
            let mut plus_s: Vec<(usize, u8)> = vec![(offset, 0b001)];
            let mut not_s: Vec<(usize, u8)> = vec![(offset + FULL_WINDOW.1, 0b001)];
            if let Some((lo, hi)) = dual_window {
                plus_s.push((offset + lo, 0b010));
                not_s.push((offset + hi, 0b010));
            }
            if let Some((lo, hi)) = quad_window {
                plus_s.push((offset + lo, 0b100));
                not_s.push((offset + hi, 0b100));
            }
            let merge = |mut v: Vec<(usize, u8)>| -> Vec<(usize, u8)> {
                v.sort_unstable();
                let mut out: Vec<(usize, u8)> = Vec::new();
                for (pos, m) in v {
                    match out.last_mut() {
                        Some((p, mm)) if *p == pos => *mm |= m,
                        _ => out.push((pos, m)),
                    }
                }
                out
            };
            for (pos, mask) in merge(plus_s) {
                if pos < 128 {
                    let bit = match mode_net(mask) {
                        None => digit.sign,
                        Some(m) => n.and2(digit.sign, m),
                    };
                    arr.add_bit(pos, bit);
                }
            }
            let ns = n.not(digit.sign);
            for (pos, mask) in merge(not_s) {
                if pos < 128 {
                    let bit = match mode_net(mask) {
                        None => ns,
                        Some(m) => n.and2(ns, m),
                    };
                    arr.add_bit(pos, bit);
                }
            }
        }
    }
    let k_full = crate::lanes::full_correction();
    let k_dual = (crate::lanes::dual_correction_low() as u128)
        .wrapping_add(crate::lanes::dual_correction_high());
    let k_quad: u128 = if opts.quad_lanes {
        (0..4).fold(0u128, |acc, k| {
            acc.wrapping_add(crate::quad::lane_correction(k))
        })
    } else {
        0
    };
    let one = n.one();
    for col in 0..128 {
        let mask = if (k_full >> col) & 1 == 1 { 0b001 } else { 0 }
            | if (k_dual >> col) & 1 == 1 { 0b010 } else { 0 }
            | if (k_quad >> col) & 1 == 1 { 0b100 } else { 0 };
        if mask == 0 {
            continue;
        }
        match mode_net(mask) {
            None => arr.add_bit(col, one),
            Some(m) => arr.add_bit(col, m),
        }
    }
    n.end_block();

    if cuts.after_ppgen {
        arr = n.in_block("PIPE", |n| reg_array(n, &arr));
        side = n.in_block("PIPE", |n| side.reg(n));
    }

    // Carry seams: column 64 passes only in the full-width formats;
    // columns 32 and 96 are additionally cut in quad mode. (With the quad
    // option off their pass nets are constant one and the gates fold.)
    let seams = [
        (32usize, not_quad),
        (SEAM_COL, not_dual),
        (96usize, not_quad),
    ];
    let (s_vec, c_vec) = if cuts.inside_tree {
        n.in_block("TREE", |n| reduce_to_height(n, &mut arr, 4, &seams));
        arr = n.in_block("PIPE", |n| reg_array(n, &arr));
        n.in_block("TREE", |n| reduce_to_two_seam(n, arr, &seams))
    } else {
        n.in_block("TREE", |n| reduce_to_two_seam(n, arr, &seams))
    };

    // Exponent adds (stage 2): E0 = Ea + Eb − bias.
    n.begin_block("SEH");
    let ext = |n: &mut Netlist, v: &[NetId], width: usize| -> Vec<NetId> {
        let mut v = v.to_vec();
        while v.len() < width {
            v.push(n.zero());
        }
        v
    };
    let bias_main: Vec<NetId> = (0..13)
        .map(|i| {
            let b64bit = n.lit((7169u64 >> i) & 1 == 1); // 8192 − 1023
            let dualbit = n.lit((8065u64 >> i) & 1 == 1); // 8192 − 127
            n.mux2(is_dual, b64bit, dualbit)
        })
        .collect();
    let ea13 = ext(n, &side.ea_main, 13);
    let eb13 = ext(n, &side.eb_main, 13);
    let s_main = build_adder(n, AdderKind::CarryLookahead, &ea13, &eb13, zero);
    let e0_main = build_adder(n, AdderKind::CarryLookahead, &s_main.sum, &bias_main, zero).sum;

    let bias_lo: Vec<NetId> = (0..10).map(|i| n.lit((897u64 >> i) & 1 == 1)).collect(); // 1024 − 127
    let ea10 = ext(n, &side.ea_lo, 10);
    let eb10 = ext(n, &side.eb_lo, 10);
    let s_lo = build_adder(n, AdderKind::CarryLookahead, &ea10, &eb10, zero);
    let e0_lo = build_adder(n, AdderKind::CarryLookahead, &s_lo.sum, &bias_lo, zero).sum;

    // Quad lanes: four 8-bit binary16 exponent paths (bias 15).
    let e0_q: Vec<Vec<NetId>> = if opts.quad_lanes {
        let bias_q: Vec<NetId> = (0..8).map(|i| n.lit((241u64 >> i) & 1 == 1)).collect(); // 256 − 15
        (0..4)
            .map(|k| {
                let ea8 = ext(n, &side.ea_q[k], 8);
                let eb8 = ext(n, &side.eb_q[k], 8);
                let s = build_adder(n, AdderKind::CarryLookahead, &ea8, &eb8, zero);
                build_adder(n, AdderKind::CarryLookahead, &s.sum, &bias_q, zero).sum
            })
            .collect()
    } else {
        Vec::new()
    };
    n.end_block();
    let mut exps = ExpSums {
        e0_main,
        e0_lo,
        e0_q,
    };

    // ---- rank-2 registers --------------------------------------------
    let (s_vec, c_vec) = if cuts.after_tree {
        n.in_block("PIPE", |n| (reg_bus(n, &s_vec), reg_bus(n, &c_vec)))
    } else {
        (s_vec, c_vec)
    };
    if cuts.rank2() {
        (side, exps) = n.in_block("PIPE", |n| (side.reg(n), exps.reg(n)));
    }

    // ==================================================================
    // Stage 3: ROUND (CSAs + CPAs + normalization), SEH select, OFMT.
    // ==================================================================
    n.begin_block("ROUND");
    let mut r1 = vec![zero; 128];
    let mut r0 = vec![zero; 128];
    r1[52] = is_b64;
    r0[51] = is_b64;
    r1[23] = is_dual;
    r0[22] = is_dual;
    r1[87] = is_dual;
    r0[86] = is_dual;
    // Quad lanes: product MSB at 32k+21, kept LSB 32k+11 → inject 10/9.
    if opts.quad_lanes {
        for k in 0..4 {
            r1[32 * k + 10] = is_quad;
            r0[32 * k + 9] = is_quad;
        }
    }

    let csa_then_cpa = |n: &mut Netlist, r: &[NetId]| -> Vec<NetId> {
        let mut sum = Vec::with_capacity(128);
        let mut carry = Vec::with_capacity(128);
        for i in 0..128 {
            let (s, c) = n.full_adder(s_vec[i], c_vec[i], r[i]);
            sum.push(s);
            carry.push(c);
        }
        let mut shifted = Vec::with_capacity(128);
        shifted.push(zero);
        for (i, &c) in carry.iter().enumerate().take(127) {
            match seams.iter().find(|(col, _)| *col == i + 1) {
                Some(&(_, pass)) => shifted.push(n.and2(c, pass)),
                None => shifted.push(c),
            }
        }
        // Sectioned CPA with carry-select: each upper section is computed
        // for both carry-in values and selected by the (mode-gated) carry
        // of the section below, so a seam costs one mux, not a ripple.
        // The paper-faithful unit needs one seam (column 64, two 64-bit
        // sections); the quad-enabled unit sections at every 32 columns.
        let one = n.one();
        let width = if opts.quad_lanes { 32 } else { 64 };
        let sec0 = build_adder(
            n,
            AdderKind::KoggeStone,
            &sum[..width],
            &shifted[..width],
            zero,
        );
        let mut out = sec0.sum;
        let mut cout = sec0.cout;
        for s in 1..128 / width {
            let lo = width * s;
            let pass = seams
                .iter()
                .find(|(c, _)| *c == lo)
                .map(|&(_, p)| p)
                .expect("seam at every section boundary");
            let cin = n.and2(cout, pass);
            let a0 = build_adder(
                n,
                AdderKind::KoggeStone,
                &sum[lo..lo + width],
                &shifted[lo..lo + width],
                zero,
            );
            let a1 = build_adder(
                n,
                AdderKind::KoggeStone,
                &sum[lo..lo + width],
                &shifted[lo..lo + width],
                one,
            );
            for i in 0..width {
                out.push(n.mux2(cin, a0.sum[i], a1.sum[i]));
            }
            cout = n.mux2(cin, a0.cout, a1.cout);
        }
        out
    };
    let p1 = csa_then_cpa(n, &r1);
    let p0 = csa_then_cpa(n, &r0);

    // Normalization selects: the MSB of the P0 adder per lane (see
    // mfm_softfloat::paper for why P0, not P1).
    let sel_b64 = p0[105];
    let sel_lo = p0[47];
    let sel_hi = p0[111];
    let sel_main = n.mux2(is_dual, sel_b64, sel_hi);

    let norm_frac = |n: &mut Netlist, sel: NetId, msb: usize, p: usize| -> Vec<NetId> {
        (0..p - 1)
            .map(|k| {
                let b1 = p1[msb - p + 1 + k];
                let b0 = p0[msb - p + k];
                n.mux2(sel, b0, b1)
            })
            .collect()
    };
    let frac_b64 = norm_frac(n, sel_b64, 105, 53);
    let frac_lo = norm_frac(n, sel_lo, 47, 24);
    let frac_hi = norm_frac(n, sel_hi, 111, 24);
    // Quad lanes: product MSB at 32k+21, 11-bit significands.
    let sel_q: Vec<NetId> = if opts.quad_lanes {
        (0..4).map(|k| p0[32 * k + 21]).collect()
    } else {
        Vec::new()
    };
    let frac_q: Vec<Vec<NetId>> = (0..4.min(sel_q.len()))
        .map(|k| norm_frac(n, sel_q[k], 32 * k + 21, 11))
        .collect();
    n.end_block();

    // SEH stage 3: speculative +1, select, range checks.
    n.begin_block("SEH");
    let (e_main, unf_main, ovf_main) = exponent_select(n, &exps.e0_main, sel_main, &|n, i| {
        let b64bit = n.lit((6145u64 >> i) & 1 == 1); // 8192 − 2047
        let dualbit = n.lit((7937u64 >> i) & 1 == 1); // 8192 − 255
        n.mux2(is_dual, b64bit, dualbit)
    });
    let (e_lo, unf_lo_raw, ovf_lo_raw) = exponent_select(n, &exps.e0_lo, sel_lo, &|n, i| {
        n.lit((769u64 >> i) & 1 == 1) // 1024 − 255
    });
    let mut e_q = Vec::with_capacity(4);
    let mut unf_q = Vec::with_capacity(4);
    let mut ovf_q = Vec::with_capacity(4);
    if opts.quad_lanes {
        for (e0, &sel) in exps.e0_q.iter().zip(&sel_q) {
            let (e, unf, ovf) = exponent_select(n, e0, sel, &|n, i| {
                n.lit((225u64 >> i) & 1 == 1) // 256 − 31
            });
            e_q.push(e);
            unf_q.push(unf);
            ovf_q.push(ovf);
        }
    }
    n.end_block();

    // ==================================================================
    // OFMT: per-format result words, special bypass, PH/PL assembly.
    // ==================================================================
    n.begin_block("OFMT");
    let out_b64 = lane_output(
        n,
        &side.cls_b64,
        &side.xa_pay,
        &side.yb_pay,
        (52, 62),
        51,
        63,
        &frac_b64,
        &e_main[..11],
        unf_main,
        ovf_main,
    );
    let out_lo = lane_output(
        n,
        &side.cls_lo,
        &side.xa_pay,
        &side.yb_pay,
        (23, 30),
        22,
        31,
        &frac_lo,
        &e_lo[..8],
        unf_lo_raw,
        ovf_lo_raw,
    );
    let out_hi = lane_output(
        n,
        &side.cls_hi,
        &side.xa_pay,
        &side.yb_pay,
        (55, 62),
        54,
        63,
        &frac_hi,
        &e_main[..8],
        unf_main,
        ovf_main,
    );

    // Quad lanes: 16-bit output words assembled from each lane's operand
    // slice, fraction, exponent and flags.
    let out_q: Vec<Vec<NetId>> = (0..4.min(e_q.len()))
        .map(|k| {
            let xa_slice = &side.xa_pay[16 * k..16 * k + 16];
            let yb_slice = &side.yb_pay[16 * k..16 * k + 16];
            lane_output(
                n,
                &side.cls_q[k],
                xa_slice,
                yb_slice,
                (10, 14),
                9,
                15,
                &frac_q[k],
                &e_q[k][..5],
                unf_q[k],
                ovf_q[k],
            )
        })
        .collect();

    let ph: Vec<NetId> = (0..64)
        .map(|i| {
            let dual_bit = if i < 32 { out_lo[i] } else { out_hi[i] };
            let t = n.mux2(is_b64, p0[64 + i], out_b64[i]);
            let t = n.mux2(is_dual, t, dual_bit);
            if opts.quad_lanes {
                n.mux2(is_quad, t, out_q[i / 16][i % 16])
            } else {
                t
            }
        })
        .collect();
    let pl: Vec<NetId> = (0..64).map(|i| n.and2(p0[i], is_int)).collect();

    let lane_flags = |n: &mut Netlist, cls: &LaneClass, unf: NetId, ovf: NetId| {
        let ns = n.or2(cls.any_nan, cls.any_inf);
        let ns = n.or2(ns, cls.any_zero);
        let normal = n.not(ns);
        let normal_fp = n.and2(normal, not_int);
        let u = n.and2(unf, normal_fp);
        let o = n.and2(ovf, normal_fp);
        let inv = n.and2(cls.invalid, not_int);
        (inv, o, u)
    };
    let (inv_b64, ovf_b64, unf_b64) = lane_flags(n, &side.cls_b64, unf_main, ovf_main);
    let (inv_lo, ovf_lo, unf_lo) = lane_flags(n, &side.cls_lo, unf_lo_raw, ovf_lo_raw);
    let (inv_hi, ovf_hi, unf_hi) = lane_flags(n, &side.cls_hi, unf_main, ovf_main);
    // The exported flag set serves the paper's three formats; quad-lane
    // flags stay internal (the extension's 16-bit words carry their own
    // NaN/Inf/zero encodings). Gate the outputs off in quad mode.
    let t = n.mux2(is_dual, inv_b64, inv_lo);
    let inv_out_lo = n.and2(t, not_quad);
    let t = n.mux2(is_dual, ovf_b64, ovf_lo);
    let ovf_out_lo = n.and2(t, not_quad);
    let t = n.mux2(is_dual, unf_b64, unf_lo);
    let unf_out_lo = n.and2(t, not_quad);
    let inv_out_hi = n.and2(inv_hi, is_dual);
    let ovf_out_hi = n.and2(ovf_hi, is_dual);
    let unf_out_hi = n.and2(unf_hi, is_dual);
    n.end_block();

    let flags = vec![
        inv_out_lo, ovf_out_lo, unf_out_lo, inv_out_hi, ovf_out_hi, unf_out_hi,
    ];

    let (ph, pl, flags, latency) = if cuts.outputs {
        let r = n.in_block("PIPE", |n| {
            (reg_bus(n, &ph), reg_bus(n, &pl), reg_bus(n, &flags))
        });
        (r.0, r.1, r.2, 3)
    } else {
        (ph, pl, flags, 0)
    };

    n.output_bus("ph", &ph);
    n.output_bus("pl", &pl);
    n.output_bus("flags", &flags);
    // Pre-normalization CPA outputs, exposed for online self-checking.
    // Recording output buses adds no cells, so the paper-reference area
    // and power tables are unaffected.
    n.output_bus("chk_p0", &p0);
    n.output_bus("chk_p1", &p1);

    StructuralPorts {
        xa,
        yb,
        frmt,
        ph,
        pl,
        flags,
        latency,
        chk_p0: p0,
        chk_p1: p1,
        seam_passes: seams.to_vec(),
        options: opts,
    }
}

/// Stage-3 exponent logic: the stage-2 sum is incremented speculatively
/// and *both* candidates are range-checked in parallel with the rounding
/// CPAs; the normalization bit then selects exponent and flags with a
/// single mux rank ("the exponent is incremented speculatively in stage-3,
/// and then the right exponent is selected once [the product MSB] is
/// determined"). `max_neg(i)` yields bit `i` of `2^width − max_field`.
fn exponent_select(
    n: &mut Netlist,
    e0: &[NetId],
    sel: NetId,
    max_neg: &dyn Fn(&mut Netlist, usize) -> NetId,
) -> (Vec<NetId>, NetId, NetId) {
    let width = e0.len();
    let zero = n.zero();
    let e1 = increment(n, e0);
    let mneg: Vec<NetId> = (0..width).map(|i| max_neg(n, i)).collect();
    let check = |n: &mut Netlist, e: &[NetId]| -> (NetId, NetId) {
        let neg = e[width - 1];
        let any = or_tree(n, e.to_vec());
        let nany = n.not(any);
        let unf = n.or2(neg, nany);
        // Overflow = sign bit of `e − max` is clear, i.e. the top sum bit
        // of `e + (2^w − max)`. Only that bit is wanted, so build just
        // the carry into it instead of a full subtractor.
        let c = build_carry_out(n, &e[..width - 1], &mneg[..width - 1], zero);
        let t = n.xor2(e[width - 1], mneg[width - 1]);
        let s_top = n.xor2(t, c);
        let ovf = n.not(s_top);
        (unf, ovf)
    };
    let (unf0, ovf0) = check(n, e0);
    let (unf1, ovf1) = check(n, &e1);
    let e: Vec<NetId> = (0..width).map(|i| n.mux2(sel, e0[i], e1[i])).collect();
    let unf = n.mux2(sel, unf0, unf1);
    let ovf = n.mux2(sel, ovf0, ovf1);
    (e, unf, ovf)
}

/// Balanced OR reduction.
fn or_tree(n: &mut Netlist, mut v: Vec<NetId>) -> NetId {
    debug_assert!(!v.is_empty());
    while v.len() > 1 {
        let mut next = Vec::with_capacity(v.len().div_ceil(3));
        for ch in v.chunks(3) {
            next.push(match ch {
                [x] => *x,
                [x, y] => n.or2(*x, *y),
                [x, y, z] => n.or3(*x, *y, *z),
                _ => unreachable!(),
            });
        }
        v = next;
    }
    v[0]
}

/// Balanced AND reduction.
fn and_tree(n: &mut Netlist, mut v: Vec<NetId>) -> NetId {
    debug_assert!(!v.is_empty());
    while v.len() > 1 {
        let mut next = Vec::with_capacity(v.len().div_ceil(3));
        for ch in v.chunks(3) {
            next.push(match ch {
                [x] => *x,
                [x, y] => n.and2(*x, *y),
                [x, y, z] => n.and3(*x, *y, *z),
                _ => unreachable!(),
            });
        }
        v = next;
    }
    v[0]
}

/// Parallel-prefix incrementer: bit `i` flips iff all lower bits are one.
/// One shared Kogge–Stone AND-prefix (logarithmic depth) feeds every
/// flip condition, instead of a separate AND tree per bit.
fn increment(n: &mut Netlist, v: &[NetId]) -> Vec<NetId> {
    let w = v.len();
    // pa[i] = v[0] & … & v[i]; only prefixes up to bit w−2 are read.
    let mut pa = v[..w - 1].to_vec();
    let mut dist = 1usize;
    while dist < pa.len() {
        let prev = pa.clone();
        for i in dist..pa.len() {
            pa[i] = n.and2(prev[i], prev[i - dist]);
        }
        dist *= 2;
    }
    let mut out = Vec::with_capacity(w);
    out.push(n.not(v[0]));
    for i in 1..w {
        out.push(n.xor2(v[i], pa[i - 1]));
    }
    out
}

/// Builds one lane's output word with the special-value priority chain:
/// NaN (propagated quieted / canonical on invalid) → infinity (operand
/// or overflow) → zero (operand or underflow) → normal
/// `{sign, exp, frac}`. Bits below the lane's fraction field are zero.
#[allow(clippy::too_many_arguments)]
fn lane_output(
    n: &mut Netlist,
    cls: &LaneClass,
    a: &[NetId],
    b: &[NetId],
    exp: (usize, usize),
    frac_msb: usize,
    sign_pos: usize,
    frac: &[NetId],
    e_field: &[NetId],
    unf: NetId,
    ovf: NetId,
) -> Vec<NetId> {
    let zero = n.zero();
    let one = n.one();
    let lane_lo = frac_msb + 1 - frac.len();
    let mut out = Vec::with_capacity(sign_pos + 1);
    let inf_like = n.or2(cls.any_inf, ovf);
    let zero_like = n.or2(cls.any_zero, unf);
    let is_nan_out = n.or2(cls.any_nan, cls.invalid);
    for j in 0..=sign_pos {
        let normal_bit = if j >= lane_lo && j <= frac_msb {
            frac[j - lane_lo]
        } else if j >= exp.0 && j <= exp.1 {
            e_field[j - exp.0]
        } else if j == sign_pos {
            cls.sign_p
        } else {
            zero
        };
        let zero_bit = if j == sign_pos { cls.sign_p } else { zero };
        let inf_bit = if j >= exp.0 && j <= exp.1 {
            one
        } else if j == sign_pos {
            cls.sign_p
        } else {
            zero
        };
        let nan_bit = if j < lane_lo {
            zero
        } else {
            // Propagate the first NaN operand, quieted; an invalid
            // operation without NaN operands yields the canonical qNaN.
            let a_q = if j == frac_msb { one } else { a[j] };
            let b_q = if j == frac_msb { one } else { b[j] };
            let prop = n.mux2(cls.a_nan, b_q, a_q);
            let qnan_bit = if (j >= exp.0 && j <= exp.1) || j == frac_msb {
                one
            } else {
                zero
            };
            n.mux2(cls.any_nan, qnan_bit, prop)
        };
        let t = n.mux2(zero_like, normal_bit, zero_bit);
        let t = n.mux2(inf_like, t, inf_bit);
        let t = n.mux2(is_nan_out, t, nan_bit);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Format, Operation};
    use crate::functional::FunctionalUnit;
    use mfm_gatesim::{Simulator, TechLibrary};

    fn rng(n: usize) -> Vec<u64> {
        let mut s = 0x0123_4567_89AB_CDEFu64;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                s
            })
            .collect()
    }

    /// Drives the combinational unit with an operation and reads back the
    /// result.
    fn run(sim: &mut Simulator<'_>, u: &StructuralPorts, op: Operation) -> (u64, u64, u64) {
        sim.set_bus(&u.frmt, op.format.encoding() as u128);
        sim.set_bus(&u.xa, op.xa as u128);
        sim.set_bus(&u.yb, op.yb as u128);
        sim.settle();
        (
            sim.read_bus(&u.ph) as u64,
            sim.read_bus(&u.pl) as u64,
            sim.read_bus(&u.flags) as u64,
        )
    }

    fn functional_flags(r: &crate::format::MultResult) -> u64 {
        let enc = |f: mfm_softfloat::Flags| -> u64 {
            (f.invalid() as u64) | ((f.overflow() as u64) << 1) | ((f.underflow() as u64) << 2)
        };
        enc(r.flags_lo) | (enc(r.flags_hi) << 3)
    }

    #[test]
    fn structural_matches_functional_all_formats() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        n.check().unwrap();
        let mut sim = Simulator::new(&n);
        let func = FunctionalUnit::new();

        let words = rng(160);
        for w in words.chunks(2) {
            let (a, b) = (w[0], w[1]);
            for op in [
                Operation::int64(a, b),
                Operation::binary64(a, b),
                Operation {
                    format: Format::DualBinary32,
                    xa: a,
                    yb: b,
                },
            ] {
                let want = func.execute(op);
                let (ph, pl, flags) = run(&mut sim, &u, op);
                assert_eq!(ph, want.ph, "{op:?} PH");
                if op.format == Format::Int64 {
                    assert_eq!(pl, want.pl, "{op:?} PL");
                }
                assert_eq!(flags, functional_flags(&want), "{op:?} flags");
            }
        }
    }

    #[test]
    fn structural_handles_directed_fp_corners() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let mut sim = Simulator::new(&n);
        let func = FunctionalUnit::new();

        let b64_cases: Vec<(f64, f64)> = vec![
            (1.5, 2.25),
            (-3.0, 7.0),
            (0.0, -5.0),
            (f64::INFINITY, 2.0),
            (f64::INFINITY, 0.0),
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (1e300, 1e300),
            (1e-300, 1e-300),
            (f64::MIN_POSITIVE, 0.5),
            (f64::from_bits(1), 2.0), // subnormal operand
        ];
        for (a, b) in b64_cases {
            let op = Operation::binary64_from_f64(a, b);
            let want = func.execute(op);
            let (ph, _, flags) = run(&mut sim, &u, op);
            assert_eq!(ph, want.ph, "{a} × {b}");
            assert_eq!(flags, functional_flags(&want), "{a} × {b} flags");
        }

        let b32_cases: Vec<(f32, f32, f32, f32)> = vec![
            (1.5, 2.0, -3.0, 0.5),
            (1e20, 1e20, 1e-30, 1e-30),
            (f32::NAN, 1.0, f32::INFINITY, 0.0),
            (0.0, -0.0, -1.0, 1.0),
            (f32::MAX, 2.0, f32::MIN_POSITIVE, 0.5),
        ];
        for (x, y, w, z) in b32_cases {
            let op = Operation::dual_binary32_from_f32(x, y, w, z);
            let want = func.execute(op);
            let (ph, _, flags) = run(&mut sim, &u, op);
            assert_eq!(ph, want.ph, "({x}×{y}, {w}×{z})");
            assert_eq!(flags, functional_flags(&want), "({x}×{y}, {w}×{z}) flags");
        }
    }

    #[test]
    fn structural_quad_binary16_matches_functional() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit_quad(&mut n);
        let mut sim = Simulator::new(&n);
        let func = FunctionalUnit::new();

        // Random encodings (covering NaN/Inf/zero/subnormal patterns) plus
        // directed normal cases.
        let mut cases: Vec<([u16; 4], [u16; 4])> = vec![
            ([0x3C00; 4], [0x4000; 4]), // 1.0 × 2.0 per lane
            (
                [0x3E00, 0xC200, 0x0001, 0x7C00],
                [0x4000, 0x3C00, 0x3C00, 0x0000],
            ), // 1.5×2, -3×1, subnormal×1, inf×0
            ([0x7BFF; 4], [0x7BFF; 4]), // max × max → overflow
        ];
        for w in rng(40).chunks(2) {
            let x = [
                w[0] as u16,
                (w[0] >> 16) as u16,
                (w[0] >> 32) as u16,
                (w[0] >> 48) as u16,
            ];
            let y = [
                w[1] as u16,
                (w[1] >> 16) as u16,
                (w[1] >> 32) as u16,
                (w[1] >> 48) as u16,
            ];
            cases.push((x, y));
        }
        for (x, y) in cases {
            let op = Operation::quad_binary16(x, y);
            let want = func.execute(op);
            sim.set_bus(&u.frmt, 3);
            sim.set_bus(&u.xa, op.xa as u128);
            sim.set_bus(&u.yb, op.yb as u128);
            sim.settle();
            assert_eq!(sim.read_bus(&u.ph) as u64, want.ph, "quad {x:?} × {y:?}");
        }
    }

    #[test]
    fn quad_mode_does_not_disturb_other_formats() {
        // Interleave quad and dual/int operations on the same netlist.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit_quad(&mut n);
        let mut sim = Simulator::new(&n);
        let func = FunctionalUnit::new();
        for w in rng(24).chunks(2) {
            for op in [
                Operation::quad_binary16(
                    [w[0] as u16, 0x3C00, 0x4200, (w[0] >> 48) as u16],
                    [w[1] as u16, 0x3555, 0x4100, (w[1] >> 48) as u16],
                ),
                Operation::int64(w[0], w[1]),
                Operation {
                    format: Format::DualBinary32,
                    xa: w[0],
                    yb: w[1],
                },
            ] {
                let want = func.execute(op);
                sim.set_bus(&u.frmt, op.format.encoding() as u128);
                sim.set_bus(&u.xa, op.xa as u128);
                sim.set_bus(&u.yb, op.yb as u128);
                sim.settle();
                assert_eq!(sim.read_bus(&u.ph) as u64, want.ph, "{op:?}");
            }
        }
    }

    #[test]
    fn int64_uses_both_output_ports() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let mut sim = Simulator::new(&n);
        let (ph, pl, _) = run(&mut sim, &u, Operation::int64(u64::MAX, u64::MAX));
        let p = ((ph as u128) << 64) | pl as u128;
        assert_eq!(p, (u64::MAX as u128) * (u64::MAX as u128));
    }

    #[test]
    fn fp_formats_zero_the_low_port() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let mut sim = Simulator::new(&n);
        let (_, pl, _) = run(&mut sim, &u, Operation::binary64_from_f64(1.5, 2.5));
        assert_eq!(pl, 0, "PL is not used for FP formats");
    }
}
