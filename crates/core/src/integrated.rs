//! The Sec. IV integration: the multi-format unit with the Fig. 6
//! reduction hardware embedded in its output path.
//!
//! The paper proposes exactly this ("The small hardware of Fig. 6 can be
//! easily included in the multi-format multiplier of Fig. 5. … The
//! selection between binary32 (reduced) or binary64 can be easily
//! accommodated in the output formatter.") — a binary64 *product* that
//! fits single precision leaves the unit already reduced, so downstream
//! consumers can route it through the power-efficient binary32 lanes.
//!
//! Sharing opportunities the paper mentions (the two short CPAs in
//! parallel with the speculative exponent computation, the OR tree shared
//! with a future sticky computation) are noted but not exploited here:
//! the reducer is small enough (≈ 300 NAND2) that bolting it onto the
//! output formatter costs under 1 % of the unit.

use crate::reduce::build_reducer_on;
use crate::structural::{build_unit, StructuralPorts};
use mfm_gatesim::{NetId, Netlist};

/// Ports of the unit-with-reduction.
#[derive(Debug, Clone)]
pub struct ReducingUnitPorts {
    /// The underlying multi-format unit's ports (its `ph` is the
    /// *unreduced* output).
    pub unit: StructuralPorts,
    /// Output with the binary64→binary32 reduction applied: when
    /// `reduced` is high this holds `{32'b0, binary32}`; otherwise it
    /// equals the unit's `ph`.
    pub ph: Vec<NetId>,
    /// High when a binary64 result was reduced error-free.
    pub reduced: NetId,
}

/// Builds the combinational multi-format unit with the embedded reducer.
///
/// # Example
///
/// ```
/// use mfm_gatesim::{Netlist, Simulator, TechLibrary};
/// use mfmult::integrated::build_reducing_unit;
///
/// let mut n = Netlist::new(TechLibrary::cmos45lp());
/// let u = build_reducing_unit(&mut n);
/// let mut sim = Simulator::new(&n);
/// // 1.5 × 2.0 = 3.0 fits binary32 exactly.
/// sim.set_bus(&u.unit.frmt, 1);
/// sim.set_bus(&u.unit.xa, 1.5f64.to_bits() as u128);
/// sim.set_bus(&u.unit.yb, 2.0f64.to_bits() as u128);
/// sim.settle();
/// assert!(sim.read_net(u.reduced));
/// assert_eq!(sim.read_bus(&u.ph) as u32, 3.0f32.to_bits());
/// ```
pub fn build_reducing_unit(n: &mut Netlist) -> ReducingUnitPorts {
    let unit = build_unit(n);
    // The reduction applies only to binary64 results.
    let nf1 = n.not(unit.frmt[1]);
    let is_b64 = n.and2(nf1, unit.frmt[0]);

    let r = build_reducer_on(n, &unit.ph);
    n.begin_block("REDUCE");
    let reduced = n.and2(r.reduced, is_b64);
    let zero = n.zero();
    let ph: Vec<NetId> = (0..64)
        .map(|i| {
            let red_bit = if i < 32 { r.b32[i] } else { zero };
            n.mux2(reduced, unit.ph[i], red_bit)
        })
        .collect();
    n.end_block();
    n.output_bus("ph_reduced", &ph);
    n.output_bus("reduced_flag", &[reduced]);
    ReducingUnitPorts { unit, ph, reduced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{Simulator, TechLibrary};
    use mfm_softfloat::convert::reduce_b64_to_b32;

    fn run(
        sim: &mut Simulator<'_>,
        u: &ReducingUnitPorts,
        frmt: u64,
        xa: u64,
        yb: u64,
    ) -> (u64, bool) {
        sim.set_bus(&u.unit.frmt, frmt as u128);
        sim.set_bus(&u.unit.xa, xa as u128);
        sim.set_bus(&u.unit.yb, yb as u128);
        sim.settle();
        (sim.read_bus(&u.ph) as u64, sim.read_net(u.reduced))
    }

    #[test]
    fn reducible_binary64_products_come_out_reduced() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_reducing_unit(&mut n);
        let mut sim = Simulator::new(&n);
        // Products chosen to be exactly representable in binary32.
        for (a, b) in [(1.5f64, 2.0f64), (0.25, 8.0), (-3.0, 0.5), (1024.0, 1024.0)] {
            let (ph, reduced) = run(&mut sim, &u, 1, a.to_bits(), b.to_bits());
            assert!(reduced, "{a} × {b} should reduce");
            assert_eq!(ph as u32, ((a * b) as f32).to_bits(), "{a} × {b}");
            assert_eq!(ph >> 32, 0, "upper half cleared on reduction");
        }
    }

    #[test]
    fn non_reducible_products_pass_through() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_reducing_unit(&mut n);
        let mut sim = Simulator::new(&n);
        for (a, b) in [(0.1f64, 0.1f64), (1e200, 1e-100), (1.0 + 1e-12, 3.0)] {
            let (ph, reduced) = run(&mut sim, &u, 1, a.to_bits(), b.to_bits());
            assert!(!reduced, "{a} × {b} must not reduce");
            // The passthrough equals the unit's own binary64 result, which
            // must itself not be Algorithm-1-reducible.
            assert!(reduce_b64_to_b32(ph).is_none());
        }
    }

    #[test]
    fn other_formats_are_never_reduced() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_reducing_unit(&mut n);
        let mut sim = Simulator::new(&n);
        // An int64 product whose PH half happens to look reducible must
        // pass through untouched.
        let (ph, reduced) = run(&mut sim, &u, 0, 3 << 52, 1 << 45);
        assert!(!reduced);
        assert_eq!(ph, (((3u128 << 52) * (1u128 << 45)) >> 64) as u64);
        // Dual binary32: flag stays low.
        let (_, reduced) = run(
            &mut sim,
            &u,
            2,
            0x3FC0_0000_3FC0_0000,
            0x4000_0000_4000_0000,
        );
        assert!(!reduced);
    }

    #[test]
    fn reducer_overhead_is_small() {
        let mut n_base = Netlist::new(TechLibrary::cmos45lp());
        crate::structural::build_unit(&mut n_base);
        let mut n_red = Netlist::new(TechLibrary::cmos45lp());
        build_reducing_unit(&mut n_red);
        let overhead = n_red.area_um2() / n_base.area_um2() - 1.0;
        assert!(
            overhead < 0.02,
            "the Fig. 6 embedding should cost <2% area, got {:.1}%",
            overhead * 100.0
        );
    }
}
