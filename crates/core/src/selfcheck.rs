//! Online self-checking execution: residue checks, a rounding-injection
//! invariant, and a word-level output recompute wrapped around the
//! structural unit, with graceful degradation to the functional model.
//!
//! # The checks
//!
//! The unit's stage 3 computes two speculative 128-bit sums with the two
//! carry-propagate adders of Fig. 3:
//!
//! ```text
//! P0 = s + c + inj0        (no left shift needed)
//! P1 = s + c + inj1        (left shift needed)
//! ```
//!
//! For every format the relevant window of `P0` is *exactly*
//! `ma · mb + inj0` where `ma`/`mb` are the lane significands (or the raw
//! integer operands), with no cross-lane interference — that is the
//! word-level lane-isolation property proved in [`crate::lanes`]. Exact
//! arithmetic identities survive any modulus, which yields three cheap
//! online checks on the taps [`StructuralPorts::chk_p0`] /
//! [`StructuralPorts::chk_p1`]:
//!
//! 1. **Residue check (mod 3 and mod 15).** For each lane window `W0`:
//!    `res(W0) = res(res(ma)·res(mb) + res(inj0))`, and likewise `W1`
//!    with `inj1`. Both moduli are of the `2^k − 1` family, so the
//!    residue of a word is a fold of its radix-2^k digits — mod 15 is a
//!    nibble sum, which is what makes residue checking nearly free next
//!    to a radix-16 multiplier. (Since 3 divides 15, the mod-3 check is
//!    implied by the mod-15 one; it is kept because it is the classic
//!    textbook check and the campaign reports both.)
//! 2. **Injection invariant.** The two CPAs add the same `s + c` with
//!    different injections, so per lane window
//!    `W1 − W0 ≡ inj1 − inj0 (mod 2^width)`. A fault inside either CPA
//!    breaks this even when its residue happens to collide.
//! 3. **Product identity.** The limiting case of the residue family
//!    (modulus `2^width`): `W0 = ma·mb + inj0` exactly. In hardware this
//!    is a duplicated multiplier, so it is the expensive end of the
//!    checker ladder; it closes the residue blind spot (a corruption
//!    delta that is a multiple of 15, e.g. an operand-side stuck bit
//!    `±2^k·mb` when `mb ≡ 0 mod 15`). Because the lane windows tile all
//!    128 bits in every format, passing this tier pins `P0` (and, with
//!    tier 2, `P1`) to their golden values.
//! 4. **Output recompute.** Stage 3 after the CPAs (normalization-select,
//!    exponent select, special-case override, output format) is cheap at
//!    word level, so the checker recomputes the delivered `PH`/`PL`/flags
//!    from the operands plus the tapped `P0`/`P1` and compares bit for
//!    bit. This covers the formatter gates the sum checks cannot see.
//!
//! Tiers 1–2 are the cheap, hardware-plausible online checks; tiers 3–4
//! make silent corruption structurally impossible (golden sums plus a
//! validated formatter mirror imply golden outputs). The fault-injection
//! campaign in `mfm_evalkit` attributes every detection to the first
//! tier that fired, so the coverage of the residue checks alone is
//! measured, not assumed (see `DESIGN.md`).
//!
//! # The wrapper
//!
//! [`SelfCheckingUnit`] runs every operation on the gate-level simulator,
//! applies the checks, and on a mismatch retries the operation once
//! (transient faults heal; the retry passes). If the retry also fails the
//! fault is treated as permanent: the unit **degrades** to the bit-exact
//! [`FunctionalUnit`] for every subsequent operation and keeps serving
//! correct results, counting incidents in [`SelfCheckStats`].
//!
//! ```
//! use mfm_gatesim::netlist::Netlist;
//! use mfm_gatesim::tech::TechLibrary;
//! use mfmult::selfcheck::SelfCheckingUnit;
//! use mfmult::{structural, Operation};
//!
//! let mut n = Netlist::new(TechLibrary::cmos45lp());
//! let ports = structural::build_unit(&mut n);
//! let mut unit = SelfCheckingUnit::new(&n, ports);
//! let r = unit.execute(Operation::int64(3, 5));
//! assert_eq!(r.int_product(), 15);
//! assert_eq!(unit.stats().checked_ok, 1);
//! ```

use mfm_gatesim::{CompiledNetlist, CompiledSim, NetId, Netlist, Simulator, ALL_LANES, LANES};
use mfm_softfloat::Flags;
use mfm_telemetry::{json::JsonObject, Counter, Registry};

use crate::format::{Format, MultResult, Operation};
use crate::functional::FunctionalUnit;
use crate::structural::StructuralPorts;

/// Residue of `x` modulo 15, computed by folding radix-16 digits
/// (`16 ≡ 1 (mod 15)`, so the residue is the nibble sum mod 15).
pub fn res15(x: u128) -> u8 {
    let mut s: u32 = 0;
    let mut v = x;
    while v != 0 {
        s += (v & 0xF) as u32;
        v >>= 4;
    }
    while s > 15 {
        s = (s & 0xF) + (s >> 4);
    }
    if s == 15 {
        0
    } else {
        s as u8
    }
}

/// Residue of `x` modulo 3. Since 3 divides 15, `x mod 3` is the mod-15
/// residue reduced once more.
pub fn res3(x: u128) -> u8 {
    res15(x) % 3
}

/// The raw hardware observables of one operation: the delivered outputs
/// and the two pre-rounding CPA sums tapped by
/// [`StructuralPorts::chk_p0`] / [`StructuralPorts::chk_p1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawOutputs {
    /// Delivered high 64-bit output word.
    pub ph: u64,
    /// Delivered low 64-bit output word (int64 only).
    pub pl: u64,
    /// Delivered 6-bit flag bus `[inv_lo, ovf_lo, unf_lo, inv_hi,
    /// ovf_hi, unf_hi]`.
    pub flags: u8,
    /// Tapped `P0 = s + c + inj0` (no-shift rounding CPA).
    pub p0: u128,
    /// Tapped `P1 = s + c + inj1` (shift rounding CPA).
    pub p1: u128,
}

/// Which self-check rejected an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckError {
    /// A lane window of `P0`/`P1` has the wrong residue.
    Residue {
        /// Lane index (0 = low/only lane).
        lane: u8,
        /// The modulus that fired (3 or 15).
        modulus: u8,
        /// Residue read from the hardware sum.
        got: u8,
        /// Residue predicted from the operands.
        want: u8,
    },
    /// `P1 − P0` does not equal `inj1 − inj0` on a lane window.
    InjectionInvariant {
        /// Lane index (0 = low/only lane).
        lane: u8,
    },
    /// A lane window of `P0` differs from the exact `ma·mb + inj0`.
    ProductIdentity {
        /// Lane index (0 = low/only lane).
        lane: u8,
    },
    /// The word-level recompute of `PH`/`PL`/flags from the operands and
    /// the tapped sums disagrees with the delivered outputs.
    OutputMismatch,
    /// The gate-level simulation blew through its settle budget (see
    /// [`mfm_gatesim::Simulator::set_settle_budget`]): a runaway
    /// glitch storm. The outputs were never settled, so they are treated
    /// as corrupt without further analysis.
    Watchdog,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Residue {
                lane,
                modulus,
                got,
                want,
            } => write!(
                f,
                "residue check failed: lane {lane} mod {modulus}: got {got}, want {want}"
            ),
            CheckError::InjectionInvariant { lane } => {
                write!(f, "injection invariant P1-P0 violated on lane {lane}")
            }
            CheckError::ProductIdentity { lane } => {
                write!(f, "exact product identity violated on lane {lane}")
            }
            CheckError::OutputMismatch => {
                write!(f, "output recompute disagrees with delivered PH/PL/flags")
            }
            CheckError::Watchdog => {
                write!(f, "settle budget exceeded: runaway simulation aborted")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// One lane's slice of the CPA sums together with the exact word-level
/// identity it must satisfy.
#[derive(Debug, Clone, Copy)]
struct LaneWindow {
    /// Bit offset of the window inside the 128-bit sums.
    lo: u32,
    /// Window width in bits.
    width: u32,
    /// Lane significand of the first operand (0 when flushed).
    ma: u64,
    /// Lane significand of the second operand.
    mb: u64,
    /// Rounding injection added into `P0`, window-local.
    inj0: u128,
    /// Rounding injection added into `P1`, window-local.
    inj1: u128,
}

/// Significand the FMT stage feeds the array: fraction plus implicit one
/// when the exponent field is non-zero, all-zero otherwise (subnormal
/// operands are flushed to zero, Sec. II).
fn sig(word: u64, ebits: u32, fbits: u32) -> u64 {
    let emask = (1u64 << ebits) - 1;
    if (word >> fbits) & emask != 0 {
        (word & ((1u64 << fbits) - 1)) | (1u64 << fbits)
    } else {
        0
    }
}

/// The lane windows of an operation (see [`crate::lanes`] for the proof
/// that the sections of the packed array do not interfere).
fn lane_windows(op: Operation) -> Vec<LaneWindow> {
    match op.format {
        Format::Int64 => vec![LaneWindow {
            lo: 0,
            width: 128,
            ma: op.xa,
            mb: op.yb,
            inj0: 0,
            inj1: 0,
        }],
        Format::Binary64 => vec![LaneWindow {
            lo: 0,
            width: 128,
            ma: sig(op.xa, 11, 52),
            mb: sig(op.yb, 11, 52),
            inj0: 1 << 51,
            inj1: 1 << 52,
        }],
        Format::DualBinary32 | Format::SingleBinary32 => {
            let lane = |a: u64, b: u64, lo: u32| LaneWindow {
                lo,
                width: 64,
                ma: sig(a, 8, 23),
                mb: sig(b, 8, 23),
                inj0: 1 << 22,
                inj1: 1 << 23,
            };
            vec![
                lane(op.xa & 0xFFFF_FFFF, op.yb & 0xFFFF_FFFF, 0),
                lane(op.xa >> 32, op.yb >> 32, 64),
            ]
        }
        Format::QuadBinary16 => (0..4)
            .map(|k| LaneWindow {
                lo: 32 * k,
                width: 32,
                ma: sig((op.xa >> (16 * k)) & 0xFFFF, 5, 10),
                mb: sig((op.yb >> (16 * k)) & 0xFFFF, 5, 10),
                inj0: 1 << 9,
                inj1: 1 << 10,
            })
            .collect(),
    }
}

/// Runs every self-check against the raw observables of one operation.
///
/// Returns the first failing check: per-lane residues of both CPA sums
/// (mod 3, then mod 15), the injection invariant, the exact product
/// identity, then the full word-level output recompute. The ordering
/// makes the first failure attributable to the cheapest tier that can
/// see the fault (the campaign reports detections per tier).
pub fn check_raw(op: Operation, raw: &RawOutputs) -> Result<(), CheckError> {
    for (lane, w) in lane_windows(op).into_iter().enumerate() {
        let mask = if w.width == 128 {
            u128::MAX
        } else {
            (1u128 << w.width) - 1
        };
        let w0 = (raw.p0 >> w.lo) & mask;
        let w1 = (raw.p1 >> w.lo) & mask;
        for (sum, inj) in [(w0, w.inj0), (w1, w.inj1)] {
            let want3 =
                (res3(w.ma as u128) as u32 * res3(w.mb as u128) as u32 + res3(inj) as u32) % 3;
            if res3(sum) as u32 != want3 {
                return Err(CheckError::Residue {
                    lane: lane as u8,
                    modulus: 3,
                    got: res3(sum),
                    want: want3 as u8,
                });
            }
            let want15 =
                (res15(w.ma as u128) as u32 * res15(w.mb as u128) as u32 + res15(inj) as u32) % 15;
            if res15(sum) as u32 != want15 {
                return Err(CheckError::Residue {
                    lane: lane as u8,
                    modulus: 15,
                    got: res15(sum),
                    want: want15 as u8,
                });
            }
        }
        if w1.wrapping_sub(w0) & mask != (w.inj1 - w.inj0) & mask {
            return Err(CheckError::InjectionInvariant { lane: lane as u8 });
        }
        let exact = (w.ma as u128)
            .wrapping_mul(w.mb as u128)
            .wrapping_add(w.inj0)
            & mask;
        if w0 != exact {
            return Err(CheckError::ProductIdentity { lane: lane as u8 });
        }
    }
    let (ph, pl, flags) = expected_outputs(op, raw.p0, raw.p1);
    if (ph, pl, flags) != (raw.ph, raw.pl, raw.flags) {
        return Err(CheckError::OutputMismatch);
    }
    Ok(())
}

/// Per-lane operand classification, mirroring the stage-1 SPEC block.
struct LaneCls {
    a_nan: bool,
    any_nan: bool,
    any_inf: bool,
    any_zero: bool,
    invalid: bool,
    sign_p: bool,
}

fn classify(aw: u64, bw: u64, ebits: u32, fbits: u32) -> LaneCls {
    let emask = (1u64 << ebits) - 1;
    let fmask = (1u64 << fbits) - 1;
    let (ae, be) = ((aw >> fbits) & emask, (bw >> fbits) & emask);
    let (af, bf) = (aw & fmask, bw & fmask);
    let (a_ones, b_ones) = (ae == emask, be == emask);
    let (a_nan, b_nan) = (a_ones && af != 0, b_ones && bf != 0);
    let (a_inf, b_inf) = (a_ones && af == 0, b_ones && bf == 0);
    // The unit flushes subnormal inputs: exponent 0 means zero.
    let (a_zero, b_zero) = (ae == 0, be == 0);
    let a_snan = a_nan && (af >> (fbits - 1)) & 1 == 0;
    let b_snan = b_nan && (bf >> (fbits - 1)) & 1 == 0;
    LaneCls {
        a_nan,
        any_nan: a_nan || b_nan,
        any_inf: a_inf || b_inf,
        any_zero: a_zero || b_zero,
        invalid: (a_inf && b_zero) || (b_inf && a_zero) || a_snan || b_snan,
        sign_p: ((aw >> (ebits + fbits)) ^ (bw >> (ebits + fbits))) & 1 == 1,
    }
}

/// Exponent select (mirrors the `exponent_select` netlist helper): picks
/// `e0` or `e0 + 1` by the normalization bit and evaluates the biased
/// under/overflow window checks on the selected candidate.
fn exp_select(e0: u64, width: u32, sel: bool, mneg: u64) -> (u64, bool, bool) {
    let m = (1u64 << width) - 1;
    let e = if sel { (e0 + 1) & m } else { e0 };
    let unf = (e >> (width - 1)) & 1 == 1 || e == 0;
    let ovf = ((e + mneg) & m) >> (width - 1) & 1 == 0;
    (e, unf, ovf)
}

/// One lane of the SEH priority chain (mirrors the `lane_output` netlist
/// helper): NaN/invalid, then infinity/overflow, then zero/underflow,
/// then the normal `{sign, exponent, fraction}` word.
#[allow(clippy::too_many_arguments)]
fn lane_output(
    cls: &LaneCls,
    aw: u64,
    bw: u64,
    ebits: u32,
    fbits: u32,
    frac: u64,
    e_field: u64,
    unf: bool,
    ovf: bool,
) -> u64 {
    let emask = ((1u64 << ebits) - 1) << fbits;
    let sign_pos = ebits + fbits;
    let wmask = ((1u128 << (sign_pos + 1)) - 1) as u64;
    if cls.any_nan || cls.invalid {
        if cls.any_nan {
            // Propagate the first NaN operand, quieting it.
            let src = if cls.a_nan { aw } else { bw };
            (src | (1 << (fbits - 1))) & wmask
        } else {
            // Canonical quiet NaN for invalid (Inf × 0 or sNaN input).
            emask | (1 << (fbits - 1))
        }
    } else if cls.any_inf || ovf {
        ((cls.sign_p as u64) << sign_pos) | emask
    } else if cls.any_zero || unf {
        (cls.sign_p as u64) << sign_pos
    } else {
        ((cls.sign_p as u64) << sign_pos) | (e_field << fbits) | frac
    }
}

/// One lane's `[invalid, overflow, underflow]` bits (mirrors the
/// `lane_flags` netlist helper): range flags fire only for finite,
/// non-zero floating-point lanes.
fn lane_flags(cls: &LaneCls, unf: bool, ovf: bool) -> u8 {
    let normal = !(cls.any_nan || cls.any_inf || cls.any_zero);
    (cls.invalid as u8) | (((ovf && normal) as u8) << 1) | (((unf && normal) as u8) << 2)
}

/// Word-level mirror of the stage-3 logic after the rounding CPAs:
/// recomputes the delivered `(PH, PL, flags)` from the operands and the
/// two tapped sums. This is the third tier of [`check_raw`].
pub fn expected_outputs(op: Operation, p0: u128, p1: u128) -> (u64, u64, u8) {
    const MASK52: u64 = (1 << 52) - 1;
    const MASK23: u64 = (1 << 23) - 1;
    let (xa, yb) = (op.xa, op.yb);
    match op.format {
        Format::Int64 => ((p0 >> 64) as u64, p0 as u64, 0),
        Format::Binary64 => {
            let cls = classify(xa, yb, 11, 52);
            let e0 = (((xa >> 52) & 0x7FF) + ((yb >> 52) & 0x7FF) + 7169) & 0x1FFF;
            let sel = (p0 >> 105) & 1 == 1;
            let (e, unf, ovf) = exp_select(e0, 13, sel, 6145);
            let frac = if sel {
                ((p1 >> 53) as u64) & MASK52
            } else {
                ((p0 >> 52) as u64) & MASK52
            };
            let out = lane_output(&cls, xa, yb, 11, 52, frac, e & 0x7FF, unf, ovf);
            (out, 0, lane_flags(&cls, unf, ovf))
        }
        Format::DualBinary32 | Format::SingleBinary32 => {
            let (alo, ahi) = (xa & 0xFFFF_FFFF, xa >> 32);
            let (blo, bhi) = (yb & 0xFFFF_FFFF, yb >> 32);
            // Lower lane: its own 10-bit exponent path.
            let cls_lo = classify(alo, blo, 8, 23);
            let e0_lo = (((alo >> 23) & 0xFF) + ((blo >> 23) & 0xFF) + 897) & 0x3FF;
            let sel_lo = (p0 >> 47) & 1 == 1;
            let (el, unf_lo, ovf_lo) = exp_select(e0_lo, 10, sel_lo, 769);
            let frac_lo = if sel_lo {
                ((p1 >> 24) as u64) & MASK23
            } else {
                ((p0 >> 23) as u64) & MASK23
            };
            let out_lo = lane_output(&cls_lo, alo, blo, 8, 23, frac_lo, el & 0xFF, unf_lo, ovf_lo);
            // Upper lane: rides the (rebias-muxed) main exponent path.
            let cls_hi = classify(ahi, bhi, 8, 23);
            let e0_hi = (((ahi >> 23) & 0xFF) + ((bhi >> 23) & 0xFF) + 8065) & 0x1FFF;
            let sel_hi = (p0 >> 111) & 1 == 1;
            let (eh, unf_hi, ovf_hi) = exp_select(e0_hi, 13, sel_hi, 7937);
            let frac_hi = if sel_hi {
                ((p1 >> 88) as u64) & MASK23
            } else {
                ((p0 >> 87) as u64) & MASK23
            };
            let out_hi = lane_output(&cls_hi, ahi, bhi, 8, 23, frac_hi, eh & 0xFF, unf_hi, ovf_hi);
            let flags =
                lane_flags(&cls_lo, unf_lo, ovf_lo) | (lane_flags(&cls_hi, unf_hi, ovf_hi) << 3);
            (out_lo | (out_hi << 32), 0, flags)
        }
        Format::QuadBinary16 => {
            let mut ph = 0u64;
            for k in 0..4 {
                let aw = (xa >> (16 * k)) & 0xFFFF;
                let bw = (yb >> (16 * k)) & 0xFFFF;
                let cls = classify(aw, bw, 5, 10);
                let e0 = (((aw >> 10) & 0x1F) + ((bw >> 10) & 0x1F) + 241) & 0xFF;
                let sel = (p0 >> (32 * k + 21)) & 1 == 1;
                let (e, unf, ovf) = exp_select(e0, 8, sel, 225);
                let frac = if sel {
                    ((p1 >> (32 * k + 11)) as u64) & 0x3FF
                } else {
                    ((p0 >> (32 * k + 10)) as u64) & 0x3FF
                };
                ph |= lane_output(&cls, aw, bw, 5, 10, frac, e & 0x1F, unf, ovf) << (16 * k);
            }
            // The quad extension reports no flags (the flag bus serves the
            // paper's three formats).
            (ph, 0, 0)
        }
    }
}

/// Maps the delivered flag bus to [`Flags`] words. The structural unit
/// reports invalid/overflow/underflow; inexact is not wired out (the
/// paper's interface, Fig. 5).
fn flags_from_bits(bits: u8) -> Flags {
    let mut f = Flags::NONE;
    if bits & 1 != 0 {
        f |= Flags::INVALID;
    }
    if bits & 2 != 0 {
        f |= Flags::OVERFLOW;
    }
    if bits & 4 != 0 {
        f |= Flags::UNDERFLOW;
    }
    f
}

/// Packs checked raw observables into a [`MultResult`].
pub fn result_from_raw(op: Operation, raw: &RawOutputs) -> MultResult {
    MultResult {
        format: op.format,
        ph: raw.ph,
        pl: raw.pl,
        flags_lo: flags_from_bits(raw.flags & 0x7),
        flags_hi: flags_from_bits((raw.flags >> 3) & 0x7),
    }
}

/// Drives one operation through a structural simulator and collects the
/// raw observables, honouring the build's pipeline latency (the check
/// taps are combinational stage-3 nets, valid one cycle before the
/// registered outputs).
pub fn run_raw(sim: &mut Simulator<'_>, ports: &StructuralPorts, op: Operation) -> RawOutputs {
    let inputs: [(&[NetId], u128); 3] = [
        (&ports.frmt, op.format.encoding() as u128),
        (&ports.xa, op.xa as u128),
        (&ports.yb, op.yb as u128),
    ];
    if ports.latency == 0 {
        for (bus, v) in &inputs {
            sim.set_bus(bus, *v);
        }
        sim.settle();
        read_raw(sim, ports)
    } else {
        for _ in 0..ports.latency {
            sim.step_cycle(&inputs);
        }
        let p0 = sim.read_bus(&ports.chk_p0);
        let p1 = sim.read_bus(&ports.chk_p1);
        sim.step_cycle(&inputs);
        let mut raw = read_raw(sim, ports);
        raw.p0 = p0;
        raw.p1 = p1;
        raw
    }
}

fn read_raw(sim: &Simulator<'_>, ports: &StructuralPorts) -> RawOutputs {
    RawOutputs {
        ph: sim.read_bus(&ports.ph) as u64,
        pl: sim.read_bus(&ports.pl) as u64,
        flags: sim.read_bus(&ports.flags) as u8,
        p0: sim.read_bus(&ports.chk_p0),
        p1: sim.read_bus(&ports.chk_p1),
    }
}

fn read_raw_lane(sim: &CompiledSim<'_>, ports: &StructuralPorts, lane: usize) -> RawOutputs {
    RawOutputs {
        ph: sim.read_bus_lane(&ports.ph, lane) as u64,
        pl: sim.read_bus_lane(&ports.pl, lane) as u64,
        flags: sim.read_bus_lane(&ports.flags, lane) as u8,
        p0: sim.read_bus_lane(&ports.chk_p0, lane),
        p1: sim.read_bus_lane(&ports.chk_p1, lane),
    }
}

/// Compiled-engine counterpart of [`run_raw`]: drives up to
/// [`mfm_gatesim::LANES`] (256) operations — one per lane — through a
/// bit-parallel
/// [`CompiledSim`] and returns one [`RawOutputs`] per operation, in
/// order. Combinational builds take a single propagation pass for the
/// whole batch; pipelined builds take `latency + 1` clock passes
/// ([`CompiledSim::step_cycle`]) with the per-lane inputs held
/// constant, reading the check taps one cycle before the registered
/// outputs exactly as [`run_raw`] does.
///
/// The returned observables equal the event-driven settled values for
/// the same operations and the same stuck-at overlay (see
/// [`mfm_gatesim::compiled`] for why); timing-dependent effects —
/// glitch power, settle budgets, transient faults — are invisible here.
///
/// # Panics
///
/// Panics if more than [`mfm_gatesim::LANES`] operations are passed.
pub fn run_raw_compiled(
    sim: &mut CompiledSim<'_>,
    ports: &StructuralPorts,
    ops: &[Operation],
) -> Vec<RawOutputs> {
    assert!(ops.len() <= LANES, "at most {LANES} lanes per pass");
    let Some(&first) = ops.first() else {
        return Vec::new();
    };
    // Unused lanes carry vector 0 as harmless filler (never read back).
    sim.set_bus_all(&ports.frmt, first.format.encoding() as u128);
    sim.set_bus_all(&ports.xa, first.xa as u128);
    sim.set_bus_all(&ports.yb, first.yb as u128);
    for (lane, op) in ops.iter().enumerate() {
        sim.set_bus_lane(&ports.frmt, lane, op.format.encoding() as u128);
        sim.set_bus_lane(&ports.xa, lane, op.xa as u128);
        sim.set_bus_lane(&ports.yb, lane, op.yb as u128);
    }
    if ports.latency == 0 {
        sim.propagate();
        (0..ops.len())
            .map(|l| read_raw_lane(sim, ports, l))
            .collect()
    } else {
        for _ in 0..ports.latency {
            sim.step_cycle();
        }
        let taps: Vec<(u128, u128)> = (0..ops.len())
            .map(|l| {
                (
                    sim.read_bus_lane(&ports.chk_p0, l),
                    sim.read_bus_lane(&ports.chk_p1, l),
                )
            })
            .collect();
        sim.step_cycle();
        (0..ops.len())
            .map(|l| {
                let mut raw = read_raw_lane(sim, ports, l);
                raw.p0 = taps[l].0;
                raw.p1 = taps[l].1;
                raw
            })
            .collect()
    }
}

/// Replays a scrub battery on the compiled bit-parallel engine under a
/// stuck-at overlay, returning the first vector that trips
/// [`check_raw`]. All [`mfm_gatesim::LANES`] (256) lanes share the same
/// fault set, so one propagation pass verifies up to 256 battery
/// vectors.
///
/// A compiled **failure is conclusive** — the compiled values equal the
/// event-driven settled values, so the event-driven battery would
/// reject the same vector. A compiled **pass is not sufficient**: the
/// event-driven scrub can still fail on timing grounds (a glitch storm
/// tripping the settle-budget watchdog). Use this as a reject-fast
/// prefilter in front of [`SelfCheckingUnit::try_recover_with`], as the
/// resilient pool engine does.
pub fn run_scrub_compiled(
    prog: &CompiledNetlist,
    ports: &StructuralPorts,
    faults: &[(NetId, bool)],
    battery: &[Operation],
) -> Result<(), (Operation, CheckError)> {
    let mut sim = CompiledSim::new(prog);
    for &(net, forced) in faults {
        sim.inject_stuck_at(net, ALL_LANES, forced);
    }
    for chunk in battery.chunks(LANES) {
        let raws = run_raw_compiled(&mut sim, ports, chunk);
        for (&op, raw) in chunk.iter().zip(&raws) {
            check_raw(op, raw).map_err(|e| (op, e))?;
        }
    }
    Ok(())
}

/// The fixed self-test vector battery a recovery scrub replays: array
/// stress patterns, per-format lane-isolation vectors (one lane hot, the
/// others flushed-zero — any cross-lane interference trips the exact
/// product identity), and the IEEE special-case ladder (NaN propagation,
/// invalid, overflow, underflow) that exercises the SEH priority chain
/// the sum checks cannot see. Pass `quad_lanes` only for units built
/// with the quad-binary16 extension; the battery then also walks the
/// four half-precision lanes one at a time.
pub fn scrub_battery(quad_lanes: bool) -> Vec<Operation> {
    const B64_ONE: u64 = 0x3FF0_0000_0000_0000;
    const B64_TWO: u64 = 0x4000_0000_0000_0000;
    const B64_MAX: u64 = 0x7FEF_FFFF_FFFF_FFFF;
    const B64_MIN_NORMAL: u64 = 0x0010_0000_0000_0000;
    const B64_QNAN: u64 = 0x7FF8_0000_0000_0001;
    const B64_INF: u64 = 0x7FF0_0000_0000_0000;
    const B32_PATTERN_A: u32 = 0xAAAA_AAAA;
    const B32_PATTERN_5: u32 = 0x5555_5555;
    const B32_MAX: u32 = 0x7F7F_FFFF;
    const B32_MIN_NORMAL: u32 = 0x0080_0000;
    const B32_QNAN: u32 = 0x7FC0_0001;
    const B32_INF: u32 = 0x7F80_0000;
    const B16_ONE_AND_HALF: u16 = 0x3E00;
    const B16_QNAN: u16 = 0x7E01;
    let mut v = vec![
        // Integer array stress: corners and alternating recode patterns.
        Operation::int64(0, 0),
        Operation::int64(u64::MAX, u64::MAX),
        Operation::int64(0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
        Operation::int64(1, u64::MAX),
        Operation::int64(0x8000_0000_0000_0001, 0xFFFF_FFFF_0000_0001),
        // binary64: normal product plus the IEEE special-case ladder.
        Operation::binary64(B64_ONE, B64_TWO),
        Operation::binary64(0xBFF8_0000_0000_0001, 0x4008_0000_0000_0003),
        Operation::binary64(B64_MAX, B64_MAX), // overflow
        Operation::binary64(B64_MIN_NORMAL, B64_MIN_NORMAL), // underflow
        Operation::binary64(B64_QNAN, B64_ONE), // NaN propagation
        Operation::binary64(B64_INF, 0),       // invalid: Inf × 0
        // dual binary32 lane isolation: lower hot, upper flushed-zero...
        Operation::dual_binary32(B32_PATTERN_A, B32_PATTERN_5, 0, 0),
        // ...then upper hot, lower flushed-zero...
        Operation::dual_binary32(0, 0, B32_PATTERN_5, B32_PATTERN_A),
        // ...then both lanes hot with opposite specials.
        Operation::dual_binary32(B32_MAX, B32_MAX, B32_MIN_NORMAL, B32_MIN_NORMAL),
        Operation::dual_binary32(B32_QNAN, B32_PATTERN_A, B32_INF, 0),
        Operation::single_binary32(B32_PATTERN_A, B32_PATTERN_A),
    ];
    if quad_lanes {
        // Walk the four binary16 lanes one at a time, then mix specials.
        for k in 0..4 {
            let mut a = [0u16; 4];
            let mut b = [0u16; 4];
            a[k] = B16_ONE_AND_HALF;
            b[k] = 0x5555;
            v.push(Operation::quad_binary16(a, b));
        }
        v.push(Operation::quad_binary16(
            [0x7BFF, 0x0400, B16_QNAN, 0x7C00],
            [0x7BFF, 0x0400, 0x3C00, 0x0000],
        ));
    }
    v
}

/// Lifetime counters of a [`SelfCheckingUnit`].
#[derive(Debug, Clone, Default)]
pub struct SelfCheckStats {
    /// Operations executed.
    pub ops: u64,
    /// Operations whose hardware result passed every check.
    pub checked_ok: u64,
    /// Check failures observed (first attempt per operation).
    pub mismatches: u64,
    /// Retries attempted after a check failure.
    pub retries: u64,
    /// Retries whose re-execution passed (transient faults).
    pub retry_successes: u64,
    /// Operations served by the functional fallback.
    pub fallback_ops: u64,
    /// Successful [`SelfCheckingUnit::try_recover`] scrubs (the degraded
    /// latch was cleared and hardware service resumed).
    pub recoveries: u64,
    /// Failed recovery attempts (the scrub battery tripped a check).
    pub failed_recoveries: u64,
    /// Whether the unit has degraded to the fallback (clearable by a
    /// successful [`SelfCheckingUnit::try_recover`]).
    pub degraded: bool,
    /// The check that first rejected a hardware result, if any.
    pub first_failure: Option<CheckError>,
}

impl std::fmt::Display for SelfCheckStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ops {}, checked-ok {}, mismatches {}, retries {} ({} recovered), \
             fallback {}, scrubs {} ok / {} failed, degraded {}",
            self.ops,
            self.checked_ok,
            self.mismatches,
            self.retries,
            self.retry_successes,
            self.fallback_ops,
            self.recoveries,
            self.failed_recoveries,
            self.degraded
        )?;
        if let Some(e) = self.first_failure {
            write!(f, " (first failure: {e})")?;
        }
        Ok(())
    }
}

/// What a logged [`Incident`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A hardware result failed a check on the first attempt.
    CheckFailure,
    /// The retry after a check failure passed (transient fault healed).
    RetryRecovered,
    /// The retry also failed; the unit degraded to the fallback.
    Degraded,
    /// A [`SelfCheckingUnit::try_recover`] scrub passed: faults cleared,
    /// the battery replayed clean, hardware service resumed.
    Recovered,
    /// A recovery scrub failed: the battery tripped a check and the unit
    /// stays (or becomes) degraded.
    RecoveryFailed,
}

impl IncidentKind {
    /// Stable lower-snake-case label used in metrics and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            IncidentKind::CheckFailure => "check_failure",
            IncidentKind::RetryRecovered => "retry_recovered",
            IncidentKind::Degraded => "degraded",
            IncidentKind::Recovered => "recovered",
            IncidentKind::RecoveryFailed => "recovery_failed",
        }
    }
}

/// One entry of the structured incident log a [`SelfCheckingUnit`]
/// keeps: which operation tripped which event, timestamped with the
/// simulator's cycle counter at the moment it was recorded.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Ordinal of the operation (1-based, equals `stats.ops` at the
    /// time).
    pub op: u64,
    /// Simulator cycle count when the incident was recorded.
    pub cycle: u64,
    /// Format of the offending operation.
    pub format: Format,
    /// What happened.
    pub kind: IncidentKind,
    /// Human-readable detail — the check that fired, rendered via
    /// [`CheckError`]'s `Display`.
    pub detail: String,
}

impl Incident {
    /// Renders the incident as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("event", "incident")
            .field_u64("op", self.op)
            .field_u64("cycle", self.cycle)
            .field_str("format", self.format.label())
            .field_str("kind", self.kind.label())
            .field_str("detail", &self.detail);
        o.finish()
    }
}

/// Registry handles for a [`SelfCheckingUnit`] (see
/// [`SelfCheckingUnit::attach_telemetry`]).
struct ScTelemetry {
    /// Per-format operation counters, indexed by `frmt` slot below.
    ops_by_format: [Counter; 5],
    checked_ok: Counter,
    mismatches: Counter,
    retries: Counter,
    retry_successes: Counter,
    fallback_ops: Counter,
    incidents: Counter,
    recoveries: Counter,
    failed_recoveries: Counter,
}

fn format_slot(f: Format) -> usize {
    match f {
        Format::Int64 => 0,
        Format::Binary64 => 1,
        Format::DualBinary32 => 2,
        Format::SingleBinary32 => 3,
        Format::QuadBinary16 => 4,
    }
}

const FORMAT_SLOTS: [Format; 5] = [
    Format::Int64,
    Format::Binary64,
    Format::DualBinary32,
    Format::SingleBinary32,
    Format::QuadBinary16,
];

/// The structural unit under continuous online checking, with retry on
/// transient faults and graceful degradation to the functional model on
/// permanent ones (see the module docs).
pub struct SelfCheckingUnit<'a> {
    sim: Simulator<'a>,
    ports: StructuralPorts,
    fallback: FunctionalUnit,
    pending_seus: Vec<(u32, NetId)>,
    stats: SelfCheckStats,
    incidents: Vec<Incident>,
    telemetry: Option<ScTelemetry>,
}

impl<'a> SelfCheckingUnit<'a> {
    /// Wraps a built structural (combinational or pipelined) unit.
    pub fn new(netlist: &'a Netlist, ports: StructuralPorts) -> Self {
        SelfCheckingUnit {
            sim: Simulator::new(netlist),
            ports,
            fallback: FunctionalUnit::new(),
            pending_seus: Vec::new(),
            stats: SelfCheckStats::default(),
            incidents: Vec::new(),
            telemetry: None,
        }
    }

    /// Registers this unit's counters in `registry` and starts mirroring
    /// every event into them: `selfcheck.ops.<format>` per executed
    /// format plus `selfcheck.{checked_ok, mismatches, retries,
    /// retry_successes, fallback_ops, incidents}`. Counters are
    /// cumulative from the moment of attachment (earlier operations are
    /// not back-filled).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(ScTelemetry {
            ops_by_format: FORMAT_SLOTS
                .map(|f| registry.counter(&format!("selfcheck.ops.{}", f.label()))),
            checked_ok: registry.counter("selfcheck.checked_ok"),
            mismatches: registry.counter("selfcheck.mismatches"),
            retries: registry.counter("selfcheck.retries"),
            retry_successes: registry.counter("selfcheck.retry_successes"),
            fallback_ops: registry.counter("selfcheck.fallback_ops"),
            incidents: registry.counter("selfcheck.incidents"),
            recoveries: registry.counter("selfcheck.recoveries"),
            failed_recoveries: registry.counter("selfcheck.failed_recoveries"),
        });
    }

    /// The structured incident log: one entry per check failure, retry
    /// recovery and degradation, in the order they happened.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    fn record_incident(&mut self, format: Format, kind: IncidentKind, detail: String) {
        if let Some(t) = &self.telemetry {
            t.incidents.inc();
        }
        self.incidents.push(Incident {
            op: self.stats.ops,
            cycle: self.sim.cycles(),
            format,
            kind,
            detail,
        });
    }

    /// The wrapped unit's port map.
    pub fn ports(&self) -> &StructuralPorts {
        &self.ports
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SelfCheckStats {
        &self.stats
    }

    /// Whether the unit has switched permanently to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded
    }

    /// Read access to the underlying simulator (event counters, net
    /// state).
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Direct access to the underlying simulator (fault injection,
    /// power/toggle readout).
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Clears injected faults, drops any armed SEUs and re-settles the
    /// hardware — the physical-repair half of a recovery scrub, without
    /// touching counters, the incident log or the degraded latch. Call
    /// [`SelfCheckingUnit::try_recover_with`] afterwards to re-verify
    /// (or [`SelfCheckingUnit::try_recover`], which does both).
    pub fn repair(&mut self) {
        self.sim.clear_faults();
        self.sim.recompute();
        let _ = self.sim.take_budget_exceeded();
        self.pending_seus.clear();
    }

    /// Replays a self-test battery on the raw hardware path, returning
    /// the first vector that trips a check. Battery vectors do not count
    /// as operations in [`SelfCheckStats`] (they are maintenance, not
    /// service), and the degraded latch is not consulted — the scrub
    /// deliberately exercises hardware the unit may have stopped
    /// trusting.
    pub fn run_scrub(&mut self, battery: &[Operation]) -> Result<(), (Operation, CheckError)> {
        for &op in battery {
            let raw = self.run_hw(op, &[]);
            if self.sim.take_budget_exceeded() {
                self.sim.recompute();
                return Err((op, CheckError::Watchdog));
            }
            check_raw(op, &raw).map_err(|e| (op, e))?;
        }
        Ok(())
    }

    /// Scrub-and-readmit: repairs the hardware ([`SelfCheckingUnit::repair`])
    /// and replays the default scrub battery ([`scrub_battery`], paper
    /// formats). On a clean pass the degraded latch is cleared and the
    /// unit serves gate-level results again — degradation is recoverable,
    /// not one-way. On a failed pass the unit stays (or becomes)
    /// degraded. Either outcome is counted in [`SelfCheckStats`] and
    /// recorded in the incident log.
    pub fn try_recover(&mut self) -> bool {
        self.repair();
        self.try_recover_with(&scrub_battery(false))
    }

    /// Like [`SelfCheckingUnit::try_recover`] but with a caller-supplied
    /// battery, and **without** the repair step — pool engines use this
    /// to re-assert environment faults between repair and re-verify, and
    /// quad-lane builds to pass `scrub_battery(true)`.
    pub fn try_recover_with(&mut self, battery: &[Operation]) -> bool {
        let outcome = self.run_scrub(battery).map(|()| battery.len());
        self.note_scrub_outcome(outcome)
    }

    /// Records the verdict of a scrub verification executed *outside*
    /// this unit — e.g. the compiled-engine prefilter
    /// ([`run_scrub_compiled`]) a pool engine runs before committing to
    /// the event-driven battery. Updates the degraded latch, stats,
    /// telemetry and incident log exactly as
    /// [`SelfCheckingUnit::try_recover_with`] would: `Ok(vectors)`
    /// clears the latch (the payload is the battery length, for the
    /// incident message), `Err` sets it. Returns whether the unit is
    /// now trusted.
    pub fn note_scrub_outcome(&mut self, outcome: Result<usize, (Operation, CheckError)>) -> bool {
        match outcome {
            Ok(vectors) => {
                self.stats.degraded = false;
                self.stats.recoveries += 1;
                if let Some(t) = &self.telemetry {
                    t.recoveries.inc();
                }
                self.record_incident(
                    Format::Int64,
                    IncidentKind::Recovered,
                    format!("scrub battery passed ({vectors} vectors)"),
                );
                true
            }
            Err((op, e)) => {
                self.stats.degraded = true;
                self.stats.failed_recoveries += 1;
                if let Some(t) = &self.telemetry {
                    t.failed_recoveries.inc();
                }
                self.record_incident(op.format, IncidentKind::RecoveryFailed, e.to_string());
                false
            }
        }
    }

    /// Injects a permanent stuck-at fault into the wrapped hardware.
    pub fn inject_stuck_at(&mut self, net: NetId, value: bool) {
        self.sim.inject_stuck_at(net, value);
    }

    /// Removes every injected fault (the unit stays degraded if it
    /// already tripped; see [`SelfCheckingUnit::reset`]).
    pub fn clear_faults(&mut self) {
        self.sim.clear_faults();
    }

    /// Clears faults, counters and the degraded latch — a repair plus
    /// power cycle.
    pub fn reset(&mut self) {
        self.sim.clear_faults();
        self.sim.settle();
        self.pending_seus.clear();
        self.stats = SelfCheckStats::default();
        self.incidents.clear();
    }

    /// Arms a single-event upset for the **next** [`execute`] call: net
    /// `net` is flipped across clock edge `edge` (1-based; edges
    /// `1..=latency+1` exist per operation, the last one latching the
    /// outputs) and released immediately after, so the flipped value is
    /// exactly what the downstream pipeline registers capture. On a
    /// combinational build the pulse cannot be latched anywhere and is
    /// always masked.
    ///
    /// [`execute`]: SelfCheckingUnit::execute
    pub fn schedule_seu(&mut self, edge: u32, net: NetId) {
        self.pending_seus.push((edge, net));
    }

    /// Executes one operation under checking. Hardware results are
    /// delivered only when every check passes; a failed check triggers
    /// one retry, and a failed retry permanently degrades the unit to
    /// the bit-exact functional fallback.
    pub fn execute(&mut self, op: Operation) -> MultResult {
        self.stats.ops += 1;
        if let Some(t) = &self.telemetry {
            t.ops_by_format[format_slot(op.format)].inc();
        }
        if self.stats.degraded {
            self.stats.fallback_ops += 1;
            if let Some(t) = &self.telemetry {
                t.fallback_ops.inc();
            }
            return self.fallback.execute(op);
        }
        let seus = std::mem::take(&mut self.pending_seus);
        let raw = self.run_hw(op, &seus);
        match self.verdict(op, &raw) {
            Ok(()) => {
                self.stats.checked_ok += 1;
                if let Some(t) = &self.telemetry {
                    t.checked_ok.inc();
                }
                result_from_raw(op, &raw)
            }
            Err(e) => {
                self.stats.mismatches += 1;
                if self.stats.first_failure.is_none() {
                    self.stats.first_failure = Some(e);
                }
                self.stats.retries += 1;
                if let Some(t) = &self.telemetry {
                    t.mismatches.inc();
                    t.retries.inc();
                }
                self.record_incident(op.format, IncidentKind::CheckFailure, e.to_string());
                let raw2 = self.run_hw(op, &[]);
                match self.verdict(op, &raw2) {
                    Ok(()) => {
                        self.stats.retry_successes += 1;
                        self.stats.checked_ok += 1;
                        if let Some(t) = &self.telemetry {
                            t.retry_successes.inc();
                            t.checked_ok.inc();
                        }
                        self.record_incident(
                            op.format,
                            IncidentKind::RetryRecovered,
                            e.to_string(),
                        );
                        result_from_raw(op, &raw2)
                    }
                    Err(e2) => {
                        self.stats.degraded = true;
                        self.stats.fallback_ops += 1;
                        if let Some(t) = &self.telemetry {
                            t.fallback_ops.inc();
                        }
                        self.record_incident(op.format, IncidentKind::Degraded, e2.to_string());
                        self.fallback.execute(op)
                    }
                }
            }
        }
    }

    /// Raw (unchecked) hardware observables for one operation — the
    /// campaign runner classifies these itself.
    pub fn execute_raw(&mut self, op: Operation) -> RawOutputs {
        self.run_hw(op, &[])
    }

    /// Full check verdict on one executed operation: the watchdog first
    /// (a budget-aborted settle means the observables were never valid,
    /// so no point checking them), then the check ladder of
    /// [`check_raw`]. Repairs the aborted simulation state before
    /// returning so a retry runs on consistent hardware.
    fn verdict(&mut self, op: Operation, raw: &RawOutputs) -> Result<(), CheckError> {
        if self.sim.take_budget_exceeded() {
            self.sim.recompute();
            return Err(CheckError::Watchdog);
        }
        check_raw(op, raw)
    }

    fn run_hw(&mut self, op: Operation, seus: &[(u32, NetId)]) -> RawOutputs {
        let inputs: [(&[NetId], u128); 3] = [
            (&self.ports.frmt, op.format.encoding() as u128),
            (&self.ports.xa, op.xa as u128),
            (&self.ports.yb, op.yb as u128),
        ];
        if self.ports.latency == 0 {
            for (bus, v) in &inputs {
                self.sim.set_bus(bus, *v);
            }
            // A combinational SET pulse: asserted, propagated, healed —
            // the settled outputs never see it (no state to capture it).
            for &(_, net) in seus {
                let cur = self.sim.read_bus(&[net]) & 1 == 1;
                self.sim.inject_stuck_at(net, !cur);
                self.sim.settle();
                self.sim.clear_fault(net);
            }
            self.sim.settle();
            return read_raw(&self.sim, &self.ports);
        }
        let mut taps = (0u128, 0u128);
        for edge in 1..=self.ports.latency + 1 {
            let mut pulsed = Vec::new();
            for &(at, net) in seus {
                if at == edge {
                    let cur = self.sim.read_bus(&[net]) & 1 == 1;
                    self.sim.inject_stuck_at(net, !cur);
                    pulsed.push(net);
                }
            }
            if !pulsed.is_empty() {
                // Let the pulse spread through the combinational cloud so
                // the upcoming edge captures it.
                self.sim.settle();
            }
            self.sim.step_cycle(&inputs);
            for net in pulsed {
                self.sim.clear_fault(net);
            }
            if edge == self.ports.latency {
                taps = (
                    self.sim.read_bus(&self.ports.chk_p0),
                    self.sim.read_bus(&self.ports.chk_p1),
                );
            }
        }
        // Heal any released pulse before the next operation.
        self.sim.settle();
        let mut raw = read_raw(&self.sim, &self.ports);
        raw.p0 = taps.0;
        raw.p1 = taps.1;
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_pipelined_unit, PipelinePlacement};
    use crate::structural::{build_unit, build_unit_quad};
    use mfm_gatesim::netlist::Netlist;
    use mfm_gatesim::tech::TechLibrary;
    use mfm_prng::Rng;

    const CASES: usize = if cfg!(debug_assertions) { 80 } else { 400 };

    fn random_op(rng: &mut Rng, which: usize) -> Operation {
        match which {
            0 => Operation::int64(rng.next_u64(), rng.next_u64()),
            1 => Operation::binary64(rng.next_u64(), rng.next_u64()),
            2 => Operation::dual_binary32(
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ),
            3 => Operation::single_binary32(rng.next_u32(), rng.next_u32()),
            _ => Operation::quad_binary16(
                [0u16; 4].map(|_| rng.next_u16()),
                [0u16; 4].map(|_| rng.next_u16()),
            ),
        }
    }

    #[test]
    fn residues_match_modulo() {
        let mut rng = Rng::new(0x315);
        for _ in 0..2000 {
            let x = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            assert_eq!(res3(x) as u128, x % 3);
            assert_eq!(res15(x) as u128, x % 15);
        }
        assert_eq!(res15(0), 0);
        assert_eq!(res15(15), 0);
        assert_eq!(res15(u128::MAX), (u128::MAX % 15) as u8);
    }

    #[test]
    fn mirror_matches_quad_netlist_all_formats() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit_quad(&mut n);
        let mut sim = Simulator::new(&n);
        let mut rng = Rng::new(0x5e1f);
        for case in 0..CASES {
            let op = random_op(&mut rng, case % 5);
            let raw = run_raw(&mut sim, &ports, op);
            let want = expected_outputs(op, raw.p0, raw.p1);
            assert_eq!(want, (raw.ph, raw.pl, raw.flags), "case {case}: {op:?}");
            assert_eq!(check_raw(op, &raw), Ok(()), "case {case}: {op:?}");
        }
    }

    #[test]
    fn mirror_matches_paper_netlist() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut sim = Simulator::new(&n);
        let mut rng = Rng::new(0x90de);
        for case in 0..CASES {
            let op = random_op(&mut rng, case % 4);
            let raw = run_raw(&mut sim, &ports, op);
            let want = expected_outputs(op, raw.p0, raw.p1);
            assert_eq!(want, (raw.ph, raw.pl, raw.flags), "case {case}: {op:?}");
            assert_eq!(check_raw(op, &raw), Ok(()), "case {case}: {op:?}");
        }
    }

    #[test]
    fn pipelined_clean_run_checks_ok() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        let reference = FunctionalUnit::new();
        let mut rng = Rng::new(0x11fe);
        for case in 0..16 {
            let op = random_op(&mut rng, case % 4);
            let got = unit.execute(op);
            let want = reference.execute(op);
            assert_eq!((got.ph, got.pl), (want.ph, want.pl), "case {case}: {op:?}");
            // The hardware flag bus has no inexact wire.
            let hw = Flags::INVALID | Flags::OVERFLOW | Flags::UNDERFLOW;
            assert_eq!(
                got.flags_lo.bits(),
                want.flags_lo.bits() & hw.bits(),
                "case {case}: {op:?}"
            );
        }
        assert_eq!(unit.stats().mismatches, 0);
        assert!(!unit.is_degraded());
    }

    #[test]
    fn stuck_at_fault_degrades_to_exact_fallback() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        // Healthy first.
        assert_eq!(unit.execute(Operation::int64(2, 3)).int_product(), 6);
        // Stick the P0 LSB high: int64(2, 3) delivers 7 from the raw
        // hardware, which the residue check must refuse.
        let lsb = unit.ports().chk_p0[0];
        unit.inject_stuck_at(lsb, true);
        let reference = FunctionalUnit::new();
        let mut rng = Rng::new(0xfa11);
        for case in 0..12 {
            let op = random_op(&mut rng, case % 4);
            let got = unit.execute(op);
            let want = reference.execute(op);
            assert_eq!(got.ph, want.ph, "case {case}: {op:?}");
            assert_eq!(got.pl, want.pl, "case {case}: {op:?}");
        }
        let s = unit.stats();
        assert!(s.degraded, "permanent fault must trip the fallback");
        assert!(s.retries >= 1 && s.retry_successes == 0);
        assert!(matches!(s.first_failure, Some(CheckError::Residue { .. })));
        // Repair: after reset the hardware path serves again.
        unit.reset();
        assert_eq!(unit.execute(Operation::int64(7, 9)).int_product(), 63);
        assert!(!unit.is_degraded());
    }

    #[test]
    fn incident_log_and_telemetry_track_degradation() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        let registry = Registry::new();
        unit.attach_telemetry(&registry);
        assert_eq!(unit.execute(Operation::int64(2, 3)).int_product(), 6);
        assert!(unit.incidents().is_empty());
        let lsb = unit.ports().chk_p0[0];
        unit.inject_stuck_at(lsb, true);
        let _ = unit.execute(Operation::int64(2, 3));
        let _ = unit.execute(Operation::binary64(
            0x3FF0_0000_0000_0000,
            0x4000_0000_0000_0000,
        ));
        let inc = unit.incidents();
        // Permanent fault: first attempt fails, retry fails, degrade —
        // two incidents for the faulty op, none for the fallback op.
        assert_eq!(inc.len(), 2);
        assert_eq!(inc[0].kind, IncidentKind::CheckFailure);
        assert_eq!(inc[1].kind, IncidentKind::Degraded);
        assert_eq!(inc[0].op, 2);
        assert!(inc[0].detail.contains("residue"), "{}", inc[0].detail);
        let line = inc[0].to_json();
        assert!(mfm_telemetry::json::check(&line).is_ok(), "{line}");
        assert!(line.contains("\"kind\":\"check_failure\""));
        assert!(line.contains("\"format\":\"int64\""));
        // Registry mirrors the stats counters.
        assert_eq!(registry.counter("selfcheck.ops.int64").get(), 2);
        assert_eq!(registry.counter("selfcheck.ops.binary64").get(), 1);
        assert_eq!(registry.counter("selfcheck.mismatches").get(), 1);
        assert_eq!(registry.counter("selfcheck.retries").get(), 1);
        assert_eq!(registry.counter("selfcheck.fallback_ops").get(), 2);
        assert_eq!(registry.counter("selfcheck.incidents").get(), 2);
        // reset() clears the log.
        unit.reset();
        assert!(unit.incidents().is_empty());
    }

    #[test]
    fn scrub_battery_passes_on_clean_hardware() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        assert_eq!(unit.run_scrub(&scrub_battery(false)), Ok(()));
        // Battery vectors are maintenance: no ops counted.
        assert_eq!(unit.stats().ops, 0);

        let mut nq = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit_quad(&mut nq);
        let mut unit = SelfCheckingUnit::new(&nq, ports);
        assert_eq!(unit.run_scrub(&scrub_battery(true)), Ok(()));
    }

    #[test]
    fn try_recover_clears_degradation_after_repair() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        let lsb = unit.ports().chk_p0[0];
        unit.inject_stuck_at(lsb, true);
        let _ = unit.execute(Operation::int64(2, 3));
        assert!(unit.is_degraded(), "permanent fault trips the fallback");
        // The fault is gone (a transient SEU that latched, say): the
        // scrub repairs, re-verifies and readmits — degradation is no
        // longer one-way.
        assert!(unit.try_recover());
        assert!(!unit.is_degraded());
        let s = unit.stats();
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.failed_recoveries, 0);
        // Hardware path serves again, with the history preserved.
        assert_eq!(unit.execute(Operation::int64(7, 9)).int_product(), 63);
        assert_eq!(unit.stats().mismatches, 1, "history survives recovery");
        let kinds: Vec<_> = unit.incidents().iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&IncidentKind::Recovered), "{kinds:?}");
    }

    #[test]
    fn failed_scrub_records_and_stays_degraded() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        let registry = Registry::new();
        unit.attach_telemetry(&registry);
        let lsb = unit.ports().chk_p0[0];
        unit.inject_stuck_at(lsb, true);
        let _ = unit.execute(Operation::int64(2, 3));
        assert!(unit.is_degraded());
        // Re-verify WITHOUT repairing: the stuck-at is still there, so
        // the battery must refuse readmission.
        assert!(!unit.try_recover_with(&scrub_battery(false)));
        assert!(unit.is_degraded());
        assert_eq!(unit.stats().failed_recoveries, 1);
        assert_eq!(registry.counter("selfcheck.failed_recoveries").get(), 1);
        let last = unit.incidents().last().unwrap();
        assert_eq!(last.kind, IncidentKind::RecoveryFailed);
        mfm_telemetry::json::check(&last.to_json()).unwrap();
        // With the repair step the same unit readmits.
        assert!(unit.try_recover());
        assert_eq!(registry.counter("selfcheck.recoveries").get(), 1);
    }

    #[test]
    fn watchdog_flags_budget_aborted_operations() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        // A budget no real settle fits in: the op trips the watchdog and
        // is refused. The retry runs on the recomputed (repaired) state,
        // where the same inputs settle with almost no events — so the
        // retry verifies clean and the delivered result is correct.
        unit.sim_mut().set_settle_budget(Some(1));
        let r = unit.execute(Operation::int64(1234, 5678));
        assert_eq!(r.int_product(), 1234 * 5678);
        assert_eq!(
            unit.stats().first_failure,
            Some(CheckError::Watchdog),
            "the watchdog, not a data check, must have fired"
        );
        assert_eq!(unit.stats().mismatches, 1);
        assert_eq!(unit.stats().retry_successes, 1);
        assert!(!unit.is_degraded(), "repaired retry heals the trip");
        // A scrub under the same hostile budget refuses readmission
        // (every battery vector trips the watchdog)...
        assert!(!unit.try_recover());
        assert!(unit.is_degraded());
        // ...and with a sane budget the unit recovers fully.
        unit.sim_mut().set_settle_budget(None);
        assert!(unit.try_recover());
        assert_eq!(unit.execute(Operation::int64(3, 5)).int_product(), 15);
    }

    #[test]
    fn transient_seu_recovers_via_retry() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let mut unit = SelfCheckingUnit::new(&n, ports);
        let op = Operation::int64(3, 5);
        assert_eq!(unit.execute(op).int_product(), 15);
        // Flip the P0 LSB across the output-latching edge: the delivered
        // PL is corrupt while the (earlier) taps are clean, so the output
        // recompute catches it; the retry runs on healed hardware.
        let last_edge = unit.ports().latency + 1;
        let lsb = unit.ports().chk_p0[0];
        unit.schedule_seu(last_edge, lsb);
        assert_eq!(unit.execute(op).int_product(), 15);
        let s = unit.stats();
        assert_eq!(s.mismatches, 1);
        assert_eq!(s.retry_successes, 1);
        assert_eq!(s.fallback_ops, 0);
        assert!(!s.degraded, "a transient must not trip the fallback");
    }
}
