//! Small, dependency-free deterministic PRNG for workloads and tests.
//!
//! The workspace needs reproducible pseudo-random operand streams (the
//! paper's Monte-Carlo power runs, fault-injection campaigns, soak tests)
//! but must build in fully offline environments, so instead of an external
//! crate we use a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator: 64 bits of state, equidistributed output, and the exact same
//! stream on every platform for a given seed.
//!
//! This is **not** a cryptographic generator; it is only meant to produce
//! repeatable test stimuli.
//!
//! # Example
//!
//! ```
//! use mfm_prng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let d = a.range_u64(1, 7); // die roll, 1..=6
//! assert!((1..7).contains(&d));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Every method consumes exactly one (or, for `range_*`, at most a few)
/// outputs of the underlying stream, so sequences are stable across
/// refactors that do not reorder call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit output.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform value in the half-open range `lo..hi` (`hi > lo`).
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias of the
    /// plain approach is avoided without rejection loops.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = hi - lo;
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform value in the half-open signed range `lo..hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        let wide = (self.next_u64() as u128) * (span as u128);
        (lo as i128 + (wide >> 64) as i128) as i64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice, consuming one draw per element.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_u64(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let u = r.range_u64(10, 20);
            assert!((10..20).contains(&u));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = Rng::new(1);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.range_u64(0, 6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces seen: {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(3);
        let mut xs: Vec<u32> = (0..32).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(xs, (0..32).collect::<Vec<_>>(), "seed 3 permutes");
    }
}
