//! Open-loop load generator and verifier for the serving front-end.
//!
//! Arrivals are pre-generated from a seeded [`Arrivals`] process (so
//! offered load is independent of how the server responds — the honest
//! overload model) with a seeded [`FormatMix`], then split round-robin
//! across connections. Alongside the clean traffic the generator can
//! run **slow clients** (dribbling writes a byte at a time) and
//! **garbage connections** (one adversarial frame each, drawn from a
//! seeded corpus), so one run exercises the batcher, the shedder, the
//! deadline sweep, the strict parser and the slow-client write path at
//! once.
//!
//! Every `Ok` response is re-verified against the bit-exact
//! [`FunctionalUnit`] — the client-side escape detector — and every
//! request is accounted for: the run fails its contract if any request
//! went *unanswered* (no typed response of any kind before the drain
//! timeout).

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mfm_evalkit::workload::{ArrivalConfig, Arrivals, FormatMix, OperandGen};
use mfm_softfloat::Flags;
use mfm_telemetry::json::JsonObject;
use mfmult::{FunctionalUnit, Operation};

use crate::wire::{
    decode_response, encode_request, read_frame, FrameError, Request, Response, MAX_BODY,
};

/// Load-generation knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Seed for operands, format mix and the adversarial corpus.
    pub seed: u64,
    /// Clean requests to send in total.
    pub requests: u64,
    /// Connections the clean traffic is split across.
    pub conns: usize,
    /// Of those, connections that write their frames one byte at a time
    /// (slow-client stress on the server's write path).
    pub slow_conns: usize,
    /// Extra one-shot connections that each send one malformed frame
    /// and expect a typed `Malformed` response.
    pub garbage_conns: usize,
    /// Arrival process (bursts included).
    pub arrivals: ArrivalConfig,
    /// Per-request relative deadline in microseconds (0 = server
    /// default).
    pub deadline_micros: u32,
    /// Mark every N-th clean request `critical` (wire v3 flag), opting
    /// it into server-side TMR voting. 0 sends no critical requests.
    pub critical_every: u64,
    /// Metrics address (`host:port`) to scrape `/statusz` from after
    /// the run, folding the server's redundancy counters (votes, DMR
    /// hedges, patrol slices) into the report. `None` skips the scrape.
    pub statusz_addr: Option<String>,
    /// How long to keep draining responses after the last send.
    pub drain: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            seed: 2017,
            requests: 512,
            conns: 4,
            slow_conns: 1,
            garbage_conns: 2,
            arrivals: ArrivalConfig::default(),
            deadline_micros: 0,
            critical_every: 0,
            statusz_addr: None,
            drain: Duration::from_secs(60),
        }
    }
}

/// What one load-generation run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Clean requests sent.
    pub sent: u64,
    /// Typed `Ok` responses (all re-verified client-side).
    pub ok: u64,
    /// Typed `Overloaded` refusals.
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// Typed `Malformed` responses to clean requests (should be 0).
    pub malformed_on_clean: u64,
    /// Garbage frames sent.
    pub garbage_sent: u64,
    /// Garbage frames answered with a typed `Malformed` before close.
    pub garbage_acked: u64,
    /// Clean requests with *no* typed response before the drain
    /// timeout. The service contract is that this is zero.
    pub unanswered: u64,
    /// `Ok` responses whose payload disagreed with the bit-exact
    /// reference. The invariant is zero.
    pub escapes: u64,
    /// Clean requests sent with the wire-v3 `critical` flag.
    pub critical_sent: u64,
    /// Server-side redundancy counters scraped from `/statusz` after
    /// the run (when [`LoadgenConfig::statusz_addr`] is set).
    pub redundancy: Option<RedundancyStats>,
    /// Wall time from first send to last response, microseconds.
    pub elapsed_micros: u64,
    /// Exact client-observed latency quantiles over `Ok` responses,
    /// microseconds (0 when nothing completed).
    pub p50_micros: u64,
    /// 90th percentile latency.
    pub p90_micros: u64,
    /// 99th percentile latency.
    pub p99_micros: u64,
    /// Mean latency.
    pub mean_micros: u64,
    /// Per-phase breakdown of `Ok` latency (server-reported queue and
    /// execution time, transport inferred) plus per-class end-to-end
    /// latency for refused and expired requests.
    pub phases: PhaseBreakdown,
}

/// Exact quantiles over one latency component, microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatSummary {
    /// Samples summarized.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Mean.
    pub mean: u64,
}

impl LatSummary {
    /// Exact quantiles of `v` (sorted in place); zeros when empty.
    fn from_samples(v: &mut [u64]) -> Self {
        if v.is_empty() {
            return LatSummary::default();
        }
        v.sort_unstable();
        let q = |p: f64| {
            let rank = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            v[rank - 1]
        };
        LatSummary {
            count: v.len() as u64,
            p50: q(0.50),
            p99: q(0.99),
            mean: (v.iter().sum::<u64>() as f64 / v.len() as f64) as u64,
        }
    }

    /// Renders `{"count":…,"p50":…,"p99":…,"mean":…}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("count", self.count)
            .field_u64("p50", self.p50)
            .field_u64("p99", self.p99)
            .field_u64("mean", self.mean);
        o.finish()
    }
}

/// The queue-time vs service-time split the wire's v2 `Ok` payload
/// makes possible, plus per-class end-to-end latencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Server-reported time queued before dispatch (`Ok` only).
    pub queue: LatSummary,
    /// Server-reported batch execution + verification time (`Ok` only).
    pub exec: LatSummary,
    /// End-to-end minus queue minus exec: wire transport, framing and
    /// scheduling slack.
    pub transport: LatSummary,
    /// End-to-end latency of `Overloaded` refusals (how fast the shed
    /// signal reaches the client).
    pub overloaded: LatSummary,
    /// End-to-end latency of `DeadlineExceeded` responses.
    pub deadline: LatSummary,
}

impl PhaseBreakdown {
    /// Renders the nested `{"queue":…,…}` object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_raw("queue", &self.queue.to_json())
            .field_raw("exec", &self.exec.to_json())
            .field_raw("transport", &self.transport.to_json())
            .field_raw("overloaded", &self.overloaded.to_json())
            .field_raw("deadline_exceeded", &self.deadline.to_json());
        o.finish()
    }
}

/// The server's redundancy counters as exposed by the `/statusz`
/// `"redundancy"` object, scraped once after the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundancyStats {
    /// TMR ballots held (critical lanes plus recovery-window lanes).
    pub votes: u64,
    /// Ballots where at least one replica was outvoted (or the
    /// reference had to break a tie).
    pub vote_mismatches: u64,
    /// Whole batches voted because their routed unit was Suspect.
    pub dmr_batches: u64,
    /// Engine-level DMR shadow executions.
    pub dmr_shadows: u64,
    /// Wrong answers masked by the engine's reference vote.
    pub masked: u64,
    /// Spares promoted into retired units' slots.
    pub promotions: u64,
    /// Patrol-scrub slices run on idle ticks.
    pub patrol_slices: u64,
    /// Patrol slices that caught a fault.
    pub patrol_failures: u64,
}

impl RedundancyStats {
    /// Parses the counters out of a `/statusz` JSON body; counters the
    /// body lacks read as zero.
    fn from_statusz(body: &str) -> RedundancyStats {
        let get = |key: &str| -> u64 {
            let pat = format!("\"{key}\":");
            body.find(&pat)
                .map(|at| {
                    body[at + pat.len()..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        RedundancyStats {
            votes: get("votes"),
            vote_mismatches: get("vote_mismatches"),
            dmr_batches: get("dmr_batches"),
            dmr_shadows: get("dmr_shadows"),
            masked: get("masked"),
            promotions: get("promotions"),
            patrol_slices: get("patrol_slices"),
            patrol_failures: get("patrol_failures"),
        }
    }

    /// Renders the scraped counters plus derived overhead rates.
    fn to_json(self, ok: u64) -> String {
        let denom = ok.max(1) as f64;
        let mut o = JsonObject::new();
        o.field_u64("votes", self.votes)
            .field_u64("vote_mismatches", self.vote_mismatches)
            .field_u64("dmr_batches", self.dmr_batches)
            .field_u64("dmr_shadows", self.dmr_shadows)
            .field_u64("masked", self.masked)
            .field_u64("promotions", self.promotions)
            .field_u64("patrol_slices", self.patrol_slices)
            .field_u64("patrol_failures", self.patrol_failures)
            .field_f64("vote_rate", self.votes as f64 / denom)
            .field_f64(
                "hedge_rate",
                (self.dmr_shadows + self.dmr_batches) as f64 / denom,
            );
        o.finish()
    }
}

/// One plain-HTTP `GET /statusz` against the metrics listener,
/// returning the response body (headers stripped).
fn scrape_statusz(addr: &str) -> Option<String> {
    use std::io::Read;
    let mut s = TcpStream::connect(addr).ok()?;
    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
    s.write_all(b"GET /statusz HTTP/1.0\r\n\r\n").ok()?;
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string());
    body.filter(|b| !b.is_empty())
}

impl LoadReport {
    /// Completed operations per second of wall time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_micros == 0 {
            return 0.0;
        }
        self.ok as f64 * 1e6 / self.elapsed_micros as f64
    }

    /// Fraction of clean requests refused with `Overloaded`.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.overloaded as f64 / self.sent as f64
    }

    /// Whether every request was answered with *some* typed response
    /// and no wrong answer escaped — the run's pass condition.
    pub fn contract_holds(&self) -> bool {
        self.unanswered == 0
            && self.escapes == 0
            && self.malformed_on_clean == 0
            && self.garbage_acked == self.garbage_sent
    }

    /// The report as one JSON object (the `BENCH_service.json` shape).
    pub fn to_json(&self, cfg: &LoadgenConfig) -> String {
        let mut c = JsonObject::new();
        c.field_u64("seed", cfg.seed)
            .field_u64("requests", cfg.requests)
            .field_u64("conns", cfg.conns as u64)
            .field_u64("slow_conns", cfg.slow_conns as u64)
            .field_u64("garbage_conns", cfg.garbage_conns as u64)
            .field_f64("mean_gap_micros", cfg.arrivals.mean_gap_micros)
            .field_u64("burst_every", cfg.arrivals.burst_every)
            .field_u64("burst_len", cfg.arrivals.burst_len)
            .field_f64("burst_factor", cfg.arrivals.burst_factor)
            .field_u64("deadline_micros", cfg.deadline_micros as u64)
            .field_u64("critical_every", cfg.critical_every);
        let mut t = JsonObject::new();
        t.field_u64("sent", self.sent)
            .field_u64("ok", self.ok)
            .field_u64("overloaded", self.overloaded)
            .field_u64("deadline_exceeded", self.deadline_exceeded)
            .field_u64("malformed_on_clean", self.malformed_on_clean)
            .field_u64("garbage_sent", self.garbage_sent)
            .field_u64("garbage_acked", self.garbage_acked)
            .field_u64("unanswered", self.unanswered)
            .field_u64("escapes", self.escapes)
            .field_u64("critical_sent", self.critical_sent);
        let mut l = JsonObject::new();
        l.field_u64("p50", self.p50_micros)
            .field_u64("p90", self.p90_micros)
            .field_u64("p99", self.p99_micros)
            .field_u64("mean", self.mean_micros);
        let mut root = JsonObject::new();
        root.field_str("bench", "service")
            .field_raw("config", &c.finish())
            .field_raw("totals", &t.finish())
            .field_f64("ops_per_sec", self.ops_per_sec())
            .field_f64("shed_rate", self.shed_rate())
            .field_raw("latency_micros", &l.finish())
            .field_raw("phase_micros", &self.phases.to_json())
            .field_u64("elapsed_micros", self.elapsed_micros);
        if let Some(r) = self.redundancy {
            root.field_raw("redundancy", &r.to_json(self.ok));
        }
        root.field_str(
            "zero_escape",
            if self.escapes == 0 { "PASS" } else { "FAIL" },
        );
        root.finish()
    }
}

/// One pre-generated request with its send offset.
#[derive(Debug, Clone, Copy)]
struct Planned {
    at_micros: u64,
    req: Request,
}

/// Runs one load-generation campaign against `cfg.addr`, blocking until
/// every response is in (or the drain timeout expires).
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    // Pre-generate the whole schedule so the offered load is a pure
    // function of the seed.
    let mut arrivals = Arrivals::new(ArrivalConfig {
        seed: cfg.seed,
        ..cfg.arrivals
    });
    let mut gen = OperandGen::new(cfg.seed ^ 0x5e11_ce11_ab1e_0001);
    let mix = FormatMix::serving_default();
    let mut clock = 0u64;
    let schedule: Vec<Planned> = (0..cfg.requests)
        .map(|id| {
            clock += arrivals.next_gap_micros();
            Planned {
                at_micros: clock,
                req: Request {
                    id,
                    op: gen.mixed_operation(&mix),
                    deadline_micros: cfg.deadline_micros,
                    critical: cfg.critical_every > 0 && id % cfg.critical_every == 0,
                },
            }
        })
        .collect();
    // Round-robin split across connections.
    let conns = cfg.conns.max(1);
    let mut per_conn: Vec<Vec<Planned>> = vec![Vec::new(); conns];
    for (k, p) in schedule.iter().enumerate() {
        per_conn[k % conns].push(*p);
    }

    let started = Instant::now();
    let mut workers = Vec::new();
    for (ci, plan) in per_conn.into_iter().enumerate() {
        let addr = cfg.addr.clone();
        let slow = ci < cfg.slow_conns;
        let drain = cfg.drain;
        workers.push(std::thread::spawn(move || {
            run_conn(&addr, plan, slow, drain, started)
        }));
    }
    // Garbage connections run alongside the clean traffic.
    let garbage = std::thread::spawn({
        let addr = cfg.addr.clone();
        let n = cfg.garbage_conns;
        let seed = cfg.seed;
        move || run_garbage(&addr, n, seed)
    });

    let mut report = LoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut queue: Vec<u64> = Vec::new();
    let mut exec: Vec<u64> = Vec::new();
    let mut transport: Vec<u64> = Vec::new();
    let mut lat_overloaded: Vec<u64> = Vec::new();
    let mut lat_deadline: Vec<u64> = Vec::new();
    for w in workers {
        let conn = w.join().expect("connection worker panicked");
        report.sent += conn.sent;
        report.ok += conn.ok;
        report.overloaded += conn.overloaded;
        report.deadline_exceeded += conn.deadline_exceeded;
        report.malformed_on_clean += conn.malformed;
        report.unanswered += conn.unanswered;
        report.escapes += conn.escapes;
        report.critical_sent += conn.critical_sent;
        latencies.extend(conn.latencies);
        queue.extend(conn.queue_micros);
        exec.extend(conn.exec_micros);
        transport.extend(conn.transport_micros);
        lat_overloaded.extend(conn.lat_overloaded);
        lat_deadline.extend(conn.lat_deadline);
        report.elapsed_micros = report.elapsed_micros.max(conn.elapsed_micros);
    }
    report.phases = PhaseBreakdown {
        queue: LatSummary::from_samples(&mut queue),
        exec: LatSummary::from_samples(&mut exec),
        transport: LatSummary::from_samples(&mut transport),
        overloaded: LatSummary::from_samples(&mut lat_overloaded),
        deadline: LatSummary::from_samples(&mut lat_deadline),
    };
    let (garbage_sent, garbage_acked) = garbage.join().expect("garbage worker panicked");
    report.garbage_sent = garbage_sent;
    report.garbage_acked = garbage_acked;
    latencies.sort_unstable();
    if !latencies.is_empty() {
        let q = |p: f64| {
            let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
            latencies[rank - 1]
        };
        report.p50_micros = q(0.50);
        report.p90_micros = q(0.90);
        report.p99_micros = q(0.99);
        report.mean_micros = (latencies.iter().sum::<u64>() as f64 / latencies.len() as f64) as u64;
    }
    if let Some(addr) = &cfg.statusz_addr {
        report.redundancy = scrape_statusz(addr).map(|b| RedundancyStats::from_statusz(&b));
    }
    report
}

#[derive(Debug, Default)]
struct ConnReport {
    sent: u64,
    ok: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    malformed: u64,
    unanswered: u64,
    escapes: u64,
    critical_sent: u64,
    latencies: Vec<u64>,
    queue_micros: Vec<u64>,
    exec_micros: Vec<u64>,
    transport_micros: Vec<u64>,
    lat_overloaded: Vec<u64>,
    lat_deadline: Vec<u64>,
    elapsed_micros: u64,
}

/// Drives one connection: a sender thread paces the schedule while this
/// thread reads, timestamps and verifies responses until every sent id
/// is accounted for (or the drain timeout expires).
fn run_conn(
    addr: &str,
    plan: Vec<Planned>,
    slow: bool,
    drain: Duration,
    campaign_start: Instant,
) -> ConnReport {
    let mut report = ConnReport::default();
    if plan.is_empty() {
        return report;
    }
    let ops: HashMap<u64, Operation> = plan.iter().map(|p| (p.req.id, p.req.op)).collect();
    let critical_ids: std::collections::HashSet<u64> = plan
        .iter()
        .filter(|p| p.req.critical)
        .map(|p| p.req.id)
        .collect();
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            report.sent = plan.len() as u64;
            report.unanswered = plan.len() as u64;
            return report;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            report.sent = plan.len() as u64;
            report.unanswered = plan.len() as u64;
            return report;
        }
    };

    // Sender thread: open-loop pacing off the shared campaign clock, so
    // bursts land simultaneously across connections.
    let sender = std::thread::spawn(move || {
        let mut w = stream;
        let mut sent_at: Vec<(u64, Instant)> = Vec::with_capacity(plan.len());
        for p in plan {
            let due = campaign_start + Duration::from_micros(p.at_micros);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let frame = encode_request(&p.req);
            let now = Instant::now();
            let ok = if slow {
                // Dribble the frame a byte at a time: the server's
                // reader must reassemble split writes without ever
                // treating a partial frame as malformed.
                frame.iter().all(|&b| {
                    std::thread::sleep(Duration::from_micros(50));
                    w.write_all(&[b]).is_ok()
                })
            } else {
                w.write_all(&frame).is_ok()
            };
            if !ok {
                break;
            }
            sent_at.push((p.req.id, now));
        }
        let _ = w.flush();
        sent_at
    });

    // Read loop: responses are timestamped on arrival.
    let mut answered: HashMap<u64, (Response, Instant)> = HashMap::new();
    let mut sender = Some(sender);
    let mut sender_done: Option<Vec<(u64, Instant)>> = None;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if sender_done.is_none() && sender.as_ref().is_some_and(|s| s.is_finished()) {
            let h = sender.take().expect("handle present");
            sender_done = Some(h.join().expect("sender panicked"));
            drain_deadline = Some(Instant::now() + drain);
        }
        if let Some(d) = drain_deadline {
            let all_in = sender_done
                .as_ref()
                .is_some_and(|s| s.iter().all(|(id, _)| answered.contains_key(id)));
            if all_in || Instant::now() > d {
                break;
            }
        }
        match read_frame(&mut read_half) {
            Ok(Some(body)) => {
                if let Ok(resp) = decode_response(&body) {
                    answered.insert(resp.id(), (resp, Instant::now()));
                } else {
                    break; // the server itself sent garbage — stop here
                }
            }
            Ok(None) => {
                // Server closed the stream. Anything still outstanding
                // will score as unanswered once the sender finishes.
                if sender_done.is_some() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(FrameError::Idle) => {}      // nothing yet: poll again
            Err(FrameError::Io(_)) => break, // reset or desynced stream
            Err(FrameError::Wire(_)) => break,
        }
    }
    let sent_at = match sender_done {
        Some(s) => s,
        None => sender
            .take()
            .expect("handle present")
            .join()
            .expect("sender panicked"),
    };
    report.sent = sent_at.len() as u64;

    // Score every sent id against its (timestamped, typed) response.
    let reference = FunctionalUnit::new();
    let hw = (Flags::INVALID | Flags::OVERFLOW | Flags::UNDERFLOW).bits();
    for (id, at) in &sent_at {
        if critical_ids.contains(id) {
            report.critical_sent += 1;
        }
        match answered.get(id) {
            Some((
                Response::Ok {
                    ph,
                    pl,
                    flags_lo,
                    flags_hi,
                    queue_micros,
                    exec_micros,
                    ..
                },
                arrived,
            )) => {
                report.ok += 1;
                let e2e = arrived.saturating_duration_since(*at).as_micros() as u64;
                report.latencies.push(e2e);
                // Queue-time vs service-time split: the server reports
                // its queue and execution shares; everything left is
                // wire transport plus scheduling slack.
                report.queue_micros.push(*queue_micros as u64);
                report.exec_micros.push(*exec_micros as u64);
                report.transport_micros.push(
                    e2e.saturating_sub(*queue_micros as u64)
                        .saturating_sub(*exec_micros as u64),
                );
                let op = ops[id];
                let want = reference.execute(op);
                let correct = *ph == want.ph
                    && *pl == want.pl
                    && flags_lo & hw == want.flags_lo.bits() & hw
                    && flags_hi & hw == want.flags_hi.bits() & hw;
                if !correct {
                    report.escapes += 1;
                }
            }
            Some((Response::Overloaded { .. }, arrived)) => {
                report.overloaded += 1;
                report
                    .lat_overloaded
                    .push(arrived.saturating_duration_since(*at).as_micros() as u64);
            }
            Some((Response::DeadlineExceeded { .. }, arrived)) => {
                report.deadline_exceeded += 1;
                report
                    .lat_deadline
                    .push(arrived.saturating_duration_since(*at).as_micros() as u64);
            }
            Some((Response::Malformed { .. }, _)) => report.malformed += 1,
            None => report.unanswered += 1,
        }
    }
    report.elapsed_micros = campaign_start.elapsed().as_micros() as u64;
    report
}

/// Sends `n` adversarial frames on dedicated connections; each expects
/// a typed `Malformed` response before the server closes.
fn run_garbage(addr: &str, n: usize, seed: u64) -> (u64, u64) {
    let corpus = adversarial_frames(seed);
    let mut sent = 0u64;
    let mut acked = 0u64;
    for k in 0..n {
        let Ok(mut s) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = s.set_read_timeout(Some(Duration::from_secs(3)));
        let frame = &corpus[k % corpus.len()];
        if s.write_all(frame).is_err() {
            continue;
        }
        // Half-close so truncation-class frames are detectable at EOF —
        // the server must still answer on the open read half.
        let _ = s.shutdown(std::net::Shutdown::Write);
        sent += 1;
        let mut r = match s.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let patience = Instant::now() + Duration::from_secs(10);
        loop {
            match read_frame(&mut r) {
                Ok(Some(body)) => {
                    if matches!(decode_response(&body), Ok(Response::Malformed { .. })) {
                        acked += 1;
                    }
                    break;
                }
                Err(FrameError::Idle) if Instant::now() < patience => {}
                _ => break,
            }
        }
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    (sent, acked)
}

/// A deterministic corpus of malformed frames: truncated header,
/// oversized length prefix, zero-length body, wrong magic, wrong
/// version, bad format tag, trailing garbage, plus the v2→v3
/// negotiation edge cases (a truncated v2 body, a v2 frame dragging a
/// stray v3 flags byte, and a v3 frame missing its flags byte).
fn adversarial_frames(seed: u64) -> Vec<Vec<u8>> {
    let good = encode_request(&Request {
        id: seed,
        op: Operation::int64(seed, 3),
        deadline_micros: 0,
        critical: false,
    });
    let mut out = Vec::new();
    // Truncated header (2 of 4 length bytes, then close).
    out.push(good[..2].to_vec());
    // Oversized length prefix.
    let mut f = Vec::new();
    f.extend_from_slice(&(MAX_BODY + 1 + (seed as u32 % 1000)).to_le_bytes());
    out.push(f);
    // Zero-length body.
    out.push(0u32.to_le_bytes().to_vec());
    // Wrong magic.
    let mut f = good.clone();
    f[4] ^= 0xFF;
    out.push(f);
    // Wrong version.
    let mut f = good.clone();
    f[6] = 0x7E;
    out.push(f);
    // Bad format tag.
    let mut f = good.clone();
    f[16] = 0xEE;
    out.push(f);
    // Trailing garbage inside a consistent frame.
    let mut f = good.clone();
    f.extend_from_slice(b"zzz");
    let len = (f.len() - 4) as u32;
    f[..4].copy_from_slice(&len.to_le_bytes());
    out.push(f);
    // A valid v2 frame (v3 minus the flags byte) truncated mid-body:
    // the negotiation path must still salvage the id and answer.
    let mut v2 = good.clone();
    v2.truncate(good.len() - 1);
    let v2_len = (v2.len() - 4) as u32;
    v2[..4].copy_from_slice(&v2_len.to_le_bytes());
    v2[6] = 2;
    let mut f = v2.clone();
    f.truncate(4 + 20);
    f[..4].copy_from_slice(&20u32.to_le_bytes());
    out.push(f);
    // A v2 frame dragging a stray v3 flags byte (trailing garbage for
    // that version).
    let mut f = good.clone();
    f[6] = 2;
    out.push(f);
    // A v3 frame missing its flags byte (truncated body for v3).
    let mut f = v2;
    f[6] = 3;
    out.push(f);
    out
}
