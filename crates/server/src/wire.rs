//! The length-prefixed binary wire protocol.
//!
//! A frame is a little-endian `u32` body length followed by the body.
//! Every body starts with the same 4-byte preamble — magic `0x4D46`
//! ("MF"), protocol version, message kind — followed by the 8-byte
//! request id, so a response can always be correlated even when the
//! request itself was refused.
//!
//! ```text
//! frame    := len:u32le body[len]
//! request  := magic:u16le ver:u8 kind(1):u8 id:u64le fmt:u8
//!             deadline_micros:u32le xa:u64le yb:u64le flags:u8 (34 B, v3)
//!             (v2 requests omit the trailing flags byte — 33 B)
//! response := magic:u16le ver:u8 kind(2):u8 id:u64le status:u8 payload
//!   status 0 Ok               payload ph:u64le pl:u64le flags_lo:u8 flags_hi:u8
//!                                     queue_micros:u32le exec_micros:u32le
//!   status 1 Overloaded       payload retry_after_micros:u64le queued:u32le
//!   status 2 Malformed        payload code:u8
//!   status 3 DeadlineExceeded payload deadline_micros:u32le
//! ```
//!
//! The parser is *strict*: every deviation — truncated header, length
//! prefix beyond the cap, empty body, wrong magic/version/kind, an
//! unknown format tag, or trailing bytes after a complete message — is
//! a typed [`WireError`], never a panic. The server answers a malformed
//! frame with a typed `Malformed` response carrying
//! [`WireError::code`], then closes the connection (after a framing
//! error the stream position can no longer be trusted).

use mfmult::{Format, MultResult, Operation};
use std::io::{Read, Write};

/// Frame preamble magic: `"MF"` as a little-endian `u16`.
pub const MAGIC: u16 = 0x4D46;
/// Protocol version this build speaks. Version 2 widened the `Ok`
/// payload with per-request `queue_micros`/`exec_micros` timing;
/// version 3 appends a request `flags` byte carrying the `critical`
/// bit that asks the server for triple-modular-redundant voting.
pub const VERSION: u8 = 3;
/// Oldest protocol version still accepted on decode. A v2 request body
/// has no flags byte; it decodes with `critical = false`, so old
/// clients negotiate down transparently.
pub const MIN_VERSION: u8 = 2;
/// Request flag bit 0: the client marks the operation *critical* and
/// the server votes it across three units before answering.
pub const FLAG_CRITICAL: u8 = 0b1;
/// Message kind: request.
pub const KIND_REQUEST: u8 = 1;
/// Message kind: response.
pub const KIND_RESPONSE: u8 = 2;
/// Largest body any conforming frame can carry; the length prefix is
/// validated against this cap *before* any allocation, so a hostile
/// 4 GiB length prefix cannot balloon memory.
pub const MAX_BODY: u32 = 256;

const REQUEST_BODY: usize = 34;
const PREAMBLE: usize = 4;

/// One multiply request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The operation (format + packed operands).
    pub op: Operation,
    /// Relative deadline in microseconds from arrival; 0 means "no
    /// deadline" (the server applies its configured default).
    pub deadline_micros: u32,
    /// Whether the client asked for triple-modular-redundant voting
    /// (wire-v3 `flags` bit 0). Decodes as `false` from v2 frames.
    pub critical: bool,
}

/// One response, correlated by request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// The multiply result.
    Ok {
        /// Echoed request id.
        id: u64,
        /// High 64-bit output.
        ph: u64,
        /// Low 64-bit output (int64 only).
        pl: u64,
        /// Lower-lane exception flags (hardware mask).
        flags_lo: u8,
        /// Upper-lane exception flags (hardware mask).
        flags_hi: u8,
        /// Microseconds the request sat queued before dispatch.
        queue_micros: u32,
        /// Microseconds of execution (batch eval + verification).
        exec_micros: u32,
    },
    /// Load was shed: the request was *not* executed and may be retried
    /// after the given hint. Never sent silently — every shed request
    /// gets exactly one of these.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Deterministic jittered retry hint, in microseconds.
        retry_after_micros: u64,
        /// Queue occupancy the request collided with.
        queued: u32,
    },
    /// The frame failed strict parsing; `code` is [`WireError::code`].
    /// `id` is 0 when the error occurred before the id could be read.
    Malformed {
        /// Echoed request id (0 if unreadable).
        id: u64,
        /// Stable numeric error class.
        code: u8,
    },
    /// The request's deadline passed before a unit could serve it; the
    /// operation was cancelled in-queue and never executed.
    DeadlineExceeded {
        /// Echoed request id.
        id: u64,
        /// The deadline the request carried, echoed back.
        deadline_micros: u32,
    },
}

impl Response {
    /// The correlation id this response answers.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Ok { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Malformed { id, .. }
            | Response::DeadlineExceeded { id, .. } => id,
        }
    }

    /// Builds an `Ok` response from a checked [`MultResult`] plus the
    /// per-request timing split measured by the service.
    pub fn from_result(id: u64, r: &MultResult, queue_micros: u32, exec_micros: u32) -> Self {
        Response::Ok {
            id,
            ph: r.ph,
            pl: r.pl,
            flags_lo: r.flags_lo.bits(),
            flags_hi: r.flags_hi.bits(),
            queue_micros,
            exec_micros,
        }
    }
}

/// Everything that can be wrong with a frame, as a typed, non-panicking
/// error. `code()` gives each class a stable wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside the 4-byte length prefix.
    TruncatedHeader {
        /// Prefix bytes actually read.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_BODY`].
    Oversized {
        /// Advertised body length.
        len: u32,
    },
    /// The length prefix was zero — no body can be a valid message.
    EmptyBody,
    /// The stream ended before `need` body bytes arrived.
    TruncatedBody {
        /// Bytes the length prefix promised.
        need: usize,
        /// Bytes actually read.
        got: usize,
    },
    /// The preamble magic was not [`MAGIC`].
    BadMagic {
        /// The magic actually read.
        got: u16,
    },
    /// The version byte was outside the accepted
    /// [`MIN_VERSION`]`..=`[`VERSION`] negotiation window.
    BadVersion {
        /// The version actually read.
        got: u8,
    },
    /// The kind byte was not a known message kind.
    BadKind {
        /// The kind actually read.
        got: u8,
    },
    /// The format tag does not name a supported format.
    BadFormat {
        /// The tag actually read.
        got: u8,
    },
    /// The status byte of a response was unknown.
    BadStatus {
        /// The status actually read.
        got: u8,
    },
    /// The body was longer than the message it contains.
    TrailingGarbage {
        /// Bytes the message needs.
        expected: usize,
        /// Bytes the body carried.
        got: usize,
    },
}

impl WireError {
    /// Stable numeric class carried in `Malformed` responses.
    pub const fn code(self) -> u8 {
        match self {
            WireError::TruncatedHeader { .. } => 1,
            WireError::Oversized { .. } => 2,
            WireError::EmptyBody => 3,
            WireError::TruncatedBody { .. } => 4,
            WireError::BadMagic { .. } => 5,
            WireError::BadVersion { .. } => 6,
            WireError::BadKind { .. } => 7,
            WireError::BadFormat { .. } => 8,
            WireError::BadStatus { .. } => 9,
            WireError::TrailingGarbage { .. } => 10,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::TruncatedHeader { got } => {
                write!(f, "truncated length prefix ({got} of 4 bytes)")
            }
            WireError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds the {MAX_BODY}-byte cap")
            }
            WireError::EmptyBody => f.write_str("zero-length body"),
            WireError::TruncatedBody { need, got } => {
                write!(f, "truncated body ({got} of {need} bytes)")
            }
            WireError::BadMagic { got } => write!(f, "bad magic {got:#06x}"),
            WireError::BadVersion { got } => write!(f, "unsupported version {got}"),
            WireError::BadKind { got } => write!(f, "unknown message kind {got}"),
            WireError::BadFormat { got } => write!(f, "unknown format tag {got}"),
            WireError::BadStatus { got } => write!(f, "unknown response status {got}"),
            WireError::TrailingGarbage { expected, got } => {
                write!(
                    f,
                    "trailing garbage ({got} body bytes, message needs {expected})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A stream-level read failure: either a typed protocol violation or an
/// I/O error from the transport.
#[derive(Debug)]
pub enum FrameError {
    /// The bytes violated the protocol.
    Wire(WireError),
    /// The read timed out at a frame boundary with nothing consumed: a
    /// quiet-but-intact stream. Callers poll again; nothing was lost.
    Idle,
    /// The transport failed, or the stream stalled *mid-frame* past the
    /// read timeout (partial bytes are gone — the stream is desynced
    /// and must be torn down).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Wire(e) => write!(f, "protocol error: {e}"),
            FrameError::Idle => write!(f, "idle: read timed out between frames"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

const fn tag_of(f: Format) -> u8 {
    match f {
        Format::Int64 => 0,
        Format::Binary64 => 1,
        Format::DualBinary32 => 2,
        Format::SingleBinary32 => 3,
        Format::QuadBinary16 => 4,
    }
}

const fn format_of(tag: u8) -> Option<Format> {
    match tag {
        0 => Some(Format::Int64),
        1 => Some(Format::Binary64),
        2 => Some(Format::DualBinary32),
        3 => Some(Format::SingleBinary32),
        4 => Some(Format::QuadBinary16),
        _ => None,
    }
}

fn preamble(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(REQUEST_BODY);
    preamble(&mut body, KIND_REQUEST);
    body.extend_from_slice(&req.id.to_le_bytes());
    body.push(tag_of(req.op.format));
    body.extend_from_slice(&req.deadline_micros.to_le_bytes());
    body.extend_from_slice(&req.op.xa.to_le_bytes());
    body.extend_from_slice(&req.op.yb.to_le_bytes());
    body.push(if req.critical { FLAG_CRITICAL } else { 0 });
    frame(body)
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(39);
    preamble(&mut body, KIND_RESPONSE);
    body.extend_from_slice(&resp.id().to_le_bytes());
    match *resp {
        Response::Ok {
            ph,
            pl,
            flags_lo,
            flags_hi,
            queue_micros,
            exec_micros,
            ..
        } => {
            body.push(0);
            body.extend_from_slice(&ph.to_le_bytes());
            body.extend_from_slice(&pl.to_le_bytes());
            body.push(flags_lo);
            body.push(flags_hi);
            body.extend_from_slice(&queue_micros.to_le_bytes());
            body.extend_from_slice(&exec_micros.to_le_bytes());
        }
        Response::Overloaded {
            retry_after_micros,
            queued,
            ..
        } => {
            body.push(1);
            body.extend_from_slice(&retry_after_micros.to_le_bytes());
            body.extend_from_slice(&queued.to_le_bytes());
        }
        Response::Malformed { code, .. } => {
            body.push(2);
            body.push(code);
        }
        Response::DeadlineExceeded {
            deadline_micros, ..
        } => {
            body.push(3);
            body.extend_from_slice(&deadline_micros.to_le_bytes());
        }
    }
    frame(body)
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        match self.b.get(self.i..self.i + N) {
            Some(s) => {
                self.i += N;
                Ok(s.try_into().expect("slice length checked"))
            }
            None => Err(WireError::TruncatedBody {
                need: self.i + N,
                got: self.b.len(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(WireError::TrailingGarbage {
                expected: self.i,
                got: self.b.len(),
            })
        }
    }
}

/// Parses the common preamble and returns `(version, id)`. Any version
/// inside the [`MIN_VERSION`]`..=`[`VERSION`] window is accepted — the
/// caller shapes the rest of the body by the negotiated version. The id
/// is read before kind-specific payload so even refused messages
/// correlate.
fn parse_preamble(c: &mut Cursor<'_>, want_kind: u8) -> Result<(u8, u64), WireError> {
    let magic = c.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = c.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion { got: version });
    }
    let kind = c.u8()?;
    if kind != want_kind {
        return Err(WireError::BadKind { got: kind });
    }
    Ok((version, c.u64()?))
}

/// Strictly parses one request body. Rejects everything that is not an
/// exact, well-formed request — including trailing bytes. A v2 body
/// (33 bytes, no flags) decodes with `critical = false`; a v3 body must
/// carry its flags byte. Reserved flag bits are masked off, not
/// rejected, so a v4 client degrades gracefully against this build.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    if body.is_empty() {
        return Err(WireError::EmptyBody);
    }
    let mut c = Cursor { b: body, i: 0 };
    let (version, id) = parse_preamble(&mut c, KIND_REQUEST)?;
    let tag = c.u8()?;
    let format = format_of(tag).ok_or(WireError::BadFormat { got: tag })?;
    let deadline_micros = c.u32()?;
    let xa = c.u64()?;
    let yb = c.u64()?;
    let critical = if version >= 3 {
        c.u8()? & FLAG_CRITICAL != 0
    } else {
        false
    };
    c.done()?;
    Ok(Request {
        id,
        op: Operation { format, xa, yb },
        deadline_micros,
        critical,
    })
}

/// The request id of a body whose preamble parsed far enough to carry
/// one, regardless of later errors — lets a `Malformed` response echo
/// the id when it is recoverable.
pub fn salvage_id(body: &[u8]) -> u64 {
    if body.len() >= PREAMBLE + 8 && body[..2] == MAGIC.to_le_bytes() {
        u64::from_le_bytes(
            body[PREAMBLE..PREAMBLE + 8]
                .try_into()
                .expect("length checked"),
        )
    } else {
        0
    }
}

/// Strictly parses one response body (the client side of the protocol).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    if body.is_empty() {
        return Err(WireError::EmptyBody);
    }
    let mut c = Cursor { b: body, i: 0 };
    let (_version, id) = parse_preamble(&mut c, KIND_RESPONSE)?;
    let status = c.u8()?;
    let resp = match status {
        0 => Response::Ok {
            id,
            ph: c.u64()?,
            pl: c.u64()?,
            flags_lo: c.u8()?,
            flags_hi: c.u8()?,
            queue_micros: c.u32()?,
            exec_micros: c.u32()?,
        },
        1 => Response::Overloaded {
            id,
            retry_after_micros: c.u64()?,
            queued: c.u32()?,
        },
        2 => Response::Malformed { id, code: c.u8()? },
        3 => Response::DeadlineExceeded {
            id,
            deadline_micros: c.u32()?,
        },
        got => return Err(WireError::BadStatus { got }),
    };
    c.done()?;
    Ok(resp)
}

/// Reads one frame body off a stream. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed between messages); every other
/// deviation is a typed error. The length prefix is validated against
/// [`MAX_BODY`] *before* the body allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Wire(WireError::TruncatedHeader { got })),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(FrameError::Idle)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(FrameError::Wire(WireError::EmptyBody));
    }
    if len > MAX_BODY {
        return Err(FrameError::Wire(WireError::Oversized { len }));
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(FrameError::Wire(WireError::TruncatedBody {
                    need: body.len(),
                    got,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(body))
}

/// Writes one already-encoded frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 0xDEAD_BEEF_0042,
            op: Operation::dual_binary32(0x3F80_0000, 0x4000_0000, 0x4040_0000, 0x3F00_0000),
            deadline_micros: 1500,
            critical: false,
        }
    }

    /// Re-encodes a request as its 33-byte v2 body (no flags byte) —
    /// what an old client still on the previous protocol emits.
    fn encode_request_v2(req: &Request) -> Vec<u8> {
        let mut f = encode_request(req);
        f.truncate(f.len() - 1); // drop the v3 flags byte
        f[..4].copy_from_slice(&((REQUEST_BODY - 1) as u32).to_le_bytes());
        f[6] = 2; // version byte back to v2
        f
    }

    #[test]
    fn request_round_trips() {
        for critical in [false, true] {
            let req = Request {
                critical,
                ..sample_request()
            };
            let f = encode_request(&req);
            assert_eq!(
                u32::from_le_bytes(f[..4].try_into().unwrap()) as usize,
                f.len() - 4
            );
            assert_eq!(f.len() - 4, REQUEST_BODY);
            assert_eq!(decode_request(&f[4..]).unwrap(), req);
        }
    }

    #[test]
    fn v2_requests_negotiate_down_to_non_critical() {
        // A v2 body — one byte shorter, version byte 2 — decodes with
        // `critical = false` and everything else intact.
        let req = sample_request();
        let f = encode_request_v2(&req);
        assert_eq!(f.len() - 4, REQUEST_BODY - 1);
        let got = decode_request(&f[4..]).unwrap();
        assert_eq!(got, req);
        assert!(!got.critical);
        // Reserved v3 flag bits are masked, not rejected.
        let mut v3 = encode_request(&req);
        let last = v3.len() - 1;
        v3[last] = 0b1110; // reserved bits set, critical clear
        assert!(!decode_request(&v3[4..]).unwrap().critical);
        v3[last] = 0b1111; // reserved bits set, critical set
        assert!(decode_request(&v3[4..]).unwrap().critical);
    }

    #[test]
    fn every_response_round_trips() {
        let cases = [
            Response::Ok {
                id: 7,
                ph: u64::MAX,
                pl: 1,
                flags_lo: 0b101,
                flags_hi: 0,
                queue_micros: 420,
                exec_micros: 37,
            },
            Response::Overloaded {
                id: 8,
                retry_after_micros: 12_000,
                queued: 32,
            },
            Response::Malformed { id: 0, code: 5 },
            Response::DeadlineExceeded {
                id: 9,
                deadline_micros: 250,
            },
        ];
        for resp in cases {
            let f = encode_response(&resp);
            assert_eq!(decode_response(&f[4..]).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn stream_reader_reassembles_split_writes() {
        let req = sample_request();
        let f = encode_request(&req);
        // A reader that returns one byte at a time (slow client).
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = OneByte(&f, 0);
        let body = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(decode_request(&body).unwrap(), req);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
    }

    // ---- the adversarial corpus -------------------------------------

    /// Every corpus entry: a raw byte stream, the typed error strict
    /// parsing must map it to, and the id [`salvage_id`] must recover
    /// from the body bytes (0 when the preamble cannot be trusted).
    fn adversarial_corpus() -> Vec<(&'static str, Vec<u8>, WireError, u64)> {
        let req = sample_request();
        let id = req.id;
        let good = encode_request(&req);
        let body = good[4..].to_vec();
        let mut truncated_header = good.clone();
        truncated_header.truncate(2);
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_BODY + 1).to_le_bytes());
        oversized.extend_from_slice(&[0u8; 16]);
        let mut zero_len = Vec::new();
        zero_len.extend_from_slice(&0u32.to_le_bytes());
        let mut truncated_body = good.clone();
        truncated_body.truncate(4 + 10);
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"garbage");
        // Fix up the length prefix so the framing is consistent and the
        // garbage lands inside the body.
        let tlen = (trailing.len() - 4) as u32;
        trailing[..4].copy_from_slice(&tlen.to_le_bytes());
        let mut bad_magic = good.clone();
        bad_magic[4] = 0x58;
        let mut bad_version = good.clone();
        bad_version[6] = 99;
        let mut ancient_version = good.clone();
        ancient_version[6] = 1; // below the negotiation window
        let mut bad_kind = good.clone();
        bad_kind[7] = 9;
        let mut bad_format = good.clone();
        bad_format[16] = 200;
        // v2→v3 negotiation edge cases: a v2 frame truncated mid-body,
        // a v2 frame oversized by a stray v3 flags byte, and a v3 frame
        // that lost its flags byte in transit.
        let v2 = encode_request_v2(&req);
        let mut v2_truncated = v2.clone();
        v2_truncated.truncate(4 + 20);
        let mut v2_oversized = v2.clone();
        v2_oversized.push(0);
        v2_oversized[..4].copy_from_slice(&(REQUEST_BODY as u32).to_le_bytes());
        let mut v3_flagless = good.clone();
        v3_flagless.truncate(4 + REQUEST_BODY - 1);
        v3_flagless[..4].copy_from_slice(&((REQUEST_BODY - 1) as u32).to_le_bytes());
        vec![
            (
                "truncated header",
                truncated_header,
                WireError::TruncatedHeader { got: 2 },
                0,
            ),
            (
                "oversized length prefix",
                oversized,
                WireError::Oversized { len: MAX_BODY + 1 },
                0,
            ),
            ("zero-length body", zero_len, WireError::EmptyBody, 0),
            (
                "truncated body",
                truncated_body,
                WireError::TruncatedBody { need: 34, got: 10 },
                0, // only 10 body bytes arrived — not enough for an id
            ),
            (
                "trailing garbage",
                trailing,
                WireError::TrailingGarbage {
                    expected: body.len(),
                    got: body.len() + 7,
                },
                id,
            ),
            (
                "bad magic",
                bad_magic,
                WireError::BadMagic { got: 0x4D58 },
                0,
            ),
            (
                "bad version",
                bad_version,
                WireError::BadVersion { got: 99 },
                id,
            ),
            (
                "ancient version below the window",
                ancient_version,
                WireError::BadVersion { got: 1 },
                id,
            ),
            ("bad kind", bad_kind, WireError::BadKind { got: 9 }, id),
            (
                "bad format tag",
                bad_format,
                WireError::BadFormat { got: 200 },
                id,
            ),
            (
                "v2 negotiation frame truncated mid-body",
                v2_truncated,
                WireError::TruncatedBody { need: 33, got: 20 },
                id,
            ),
            (
                "v2 negotiation frame oversized by a v3 flags byte",
                v2_oversized,
                WireError::TrailingGarbage {
                    expected: REQUEST_BODY - 1,
                    got: REQUEST_BODY,
                },
                id,
            ),
            (
                "v3 frame missing its flags byte",
                v3_flagless,
                WireError::TruncatedBody {
                    need: REQUEST_BODY,
                    got: REQUEST_BODY - 1,
                },
                id,
            ),
        ]
    }

    #[test]
    fn adversarial_frames_map_to_typed_errors_without_panicking() {
        for (name, bytes, want, want_salvage) in adversarial_corpus() {
            let mut r = std::io::Cursor::new(bytes.clone());
            let got = match read_frame(&mut r) {
                Err(FrameError::Wire(e)) => e,
                Ok(Some(b)) => decode_request(&b).expect_err(name),
                other => panic!("{name}: expected a typed error, got {other:?}"),
            };
            assert_eq!(got, want, "{name}");
            // The error class has a stable nonzero wire code.
            assert!(got.code() > 0, "{name}");
            // On every corpus entry the id salvage is exact: recovered
            // whenever the preamble bytes are intact, 0 otherwise — the
            // Malformed response always correlates when it can.
            let body_bytes = bytes.get(4..).unwrap_or(&[]);
            assert_eq!(salvage_id(body_bytes), want_salvage, "{name}: salvage");
        }
    }

    #[test]
    fn random_bytes_never_panic_the_parser() {
        // A cheap deterministic fuzz: feed 4k pseudo-random streams of
        // assorted lengths; the parser must return, not panic.
        let mut x = 0x9E37_79B9_7F4A_7C15_u64;
        for round in 0..4096 {
            let len = (round % 80) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            let mut r = std::io::Cursor::new(bytes.clone());
            if let Ok(Some(body)) = read_frame(&mut r) {
                let _ = decode_request(&body);
                let _ = decode_response(&body);
                let _ = salvage_id(&body);
            }
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }
    }

    #[test]
    fn salvage_id_recovers_ids_when_the_preamble_is_sound() {
        let req = sample_request();
        let f = encode_request(&req);
        let mut body = f[4..].to_vec();
        body[12] = 200; // corrupt the format tag, id bytes untouched
        assert!(decode_request(&body).is_err() || body[12] != 200);
        assert_eq!(salvage_id(&body), req.id);
        assert_eq!(salvage_id(&[1, 2, 3]), 0, "too short to carry an id");
        let mut bad = f[4..].to_vec();
        bad[0] = 0; // magic broken: the id bytes cannot be trusted
        assert_eq!(salvage_id(&bad), 0);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(bytes);
        match read_frame(&mut r) {
            Err(FrameError::Wire(WireError::Oversized { len })) => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
