//! The hardened TCP front-end: hand-rolled thread-per-connection server
//! speaking the [`crate::wire`] protocol, with one *service thread*
//! owning all non-`Send` state (the netlist, the engine pool and the
//! metrics registry) behind an event channel.
//!
//! Connection life cycle:
//!
//! - The accept loop assigns each connection a client id and spawns a
//!   **reader** thread (strict frame parsing with an idle read timeout)
//!   and a **writer** thread (response fan-out with a write timeout —
//!   a slow client that stops draining its socket is disconnected, it
//!   cannot stall the service thread).
//! - A malformed frame is answered with a typed `Malformed` response
//!   and then the connection is closed: after a framing error the
//!   stream position cannot be trusted, so strict teardown *is* the
//!   leak-avoidance strategy.
//! - The service thread multiplexes protocol events with the tick
//!   cadence: it waits on the event channel with a timeout equal to the
//!   time remaining in the current tick, so request admission is
//!   immediate while [`Service::tick`] keeps its fixed beat.
//! - A tiny HTTP listener serves `GET /metrics` (Prometheus text with
//!   trace-id exemplars), `GET /healthz` (liveness + escape invariant),
//!   `GET /statusz` (tier, queue depths, breaker states) and
//!   `GET /tracez` (slowest recent traces) by round-tripping a scrape
//!   request through the service thread — the registry itself is
//!   `Send + Sync`, but the service state it describes lives there.
//! - Every request frame is stamped with a [`TraceId`] at decode, in
//!   the reader thread, and the id rides the request through admission,
//!   batching, rescue and write-back. Incident reports snapshotted by
//!   the service's flight recorder are persisted to
//!   [`ServerConfig::incident_dir`] as they are produced.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfm_gatesim::tech::TechLibrary;
use mfm_gatesim::{NetId, Netlist};
use mfm_resilient::chaos::{apply_event, ChaosPlan, ChaosPlanConfig};
use mfm_telemetry::{Registry, TraceId, TraceMinter};
use mfmult::pipeline::{build_pipelined_unit_opts, PipelinePlacement};
use mfmult::structural::{build_unit, UnitOptions};

use crate::service::{Service, ServiceConfig};
use crate::wire::{
    self, decode_request, encode_response, read_frame, salvage_id, FrameError, Response,
};

/// Server policy knobs on top of the [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request listener bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Metrics listener bind address (port 0 for ephemeral).
    pub metrics_addr: String,
    /// The deterministic core's policy.
    pub service: ServiceConfig,
    /// Pipelined (`true`) or combinational unit build.
    pub pipelined: bool,
    /// Per-read timeout on connection sockets. Between frames it acts
    /// as a poll interval (a quiet client stays connected — it may be
    /// waiting on responses); *mid-frame* it is a stall bound, and a
    /// client that dribbles a partial frame then hangs past it is torn
    /// down.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a client that stops draining its
    /// socket is disconnected instead of backing the server up.
    pub write_timeout: Duration,
    /// Optional chaos plan injected underneath live traffic, keyed by
    /// admitted-request ordinal.
    pub chaos: Option<ChaosPlanConfig>,
    /// Directory incident reports are written into (one
    /// `incident_<n>.json` per report). `None` keeps them in-memory
    /// only (visible through `/statusz` counts).
    pub incident_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: "127.0.0.1:0".to_string(),
            service: ServiceConfig::default(),
            pipelined: false,
            read_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_secs(2),
            chaos: None,
            incident_dir: None,
        }
    }
}

/// Which view a scrape connection asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScrapeKind {
    /// `GET /metrics` — Prometheus text (also the fallback for any
    /// unrecognized path, preserving the historical behaviour).
    Metrics,
    /// `GET /healthz` — liveness JSON.
    Healthz,
    /// `GET /statusz` — degradation/queue/breaker JSON.
    Statusz,
    /// `GET /tracez` — slowest recent traces JSON.
    Tracez,
}

impl ScrapeKind {
    fn from_request_line(line: &str) -> ScrapeKind {
        let path = line.split_whitespace().nth(1).unwrap_or("/metrics");
        match path.split('?').next().unwrap_or(path) {
            "/healthz" => ScrapeKind::Healthz,
            "/statusz" => ScrapeKind::Statusz,
            "/tracez" => ScrapeKind::Tracez,
            _ => ScrapeKind::Metrics,
        }
    }

    const fn content_type(self) -> &'static str {
        match self {
            ScrapeKind::Metrics => "text/plain; version=0.0.4",
            _ => "application/json",
        }
    }
}

/// Events flowing into the service thread.
enum Event {
    /// A connection opened; the sender fans responses back to its
    /// writer thread.
    Connected { client: u64, tx: Sender<Vec<u8>> },
    /// A well-formed request arrived, already stamped with the trace id
    /// minted at frame decode.
    Request {
        client: u64,
        req: wire::Request,
        trace: TraceId,
    },
    /// A frame failed strict parsing (`id` salvaged when possible); the
    /// reader answers and closes after this.
    Malformed { client: u64, id: u64, code: u8 },
    /// The connection is gone (EOF, error or timeout).
    Disconnected { client: u64 },
    /// An HTTP scrape wants one of the observability views.
    Scrape {
        kind: ScrapeKind,
        reply: SyncSender<String>,
    },
}

/// Handle to a running server. Dropping it does *not* stop the server;
/// call [`ServerHandle::stop`].
pub struct ServerHandle {
    /// Bound request-listener address.
    pub addr: SocketAddr,
    /// Bound metrics-listener address.
    pub metrics_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Stops accepting, winds down the service thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.service_thread.take() {
            let _ = h.join();
        }
    }
}

/// Starts the server and returns once both listeners are bound.
///
/// # Panics
///
/// Panics if either listener cannot bind.
pub fn spawn(cfg: ServerConfig) -> ServerHandle {
    let listener = TcpListener::bind(&cfg.addr).expect("bind request listener");
    let metrics_listener = TcpListener::bind(&cfg.metrics_addr).expect("bind metrics listener");
    let addr = listener.local_addr().expect("listener addr");
    let metrics_addr = metrics_listener.local_addr().expect("metrics addr");
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Event>();

    // Accept loop for request connections.
    {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        let read_timeout = cfg.read_timeout;
        let write_timeout = cfg.write_timeout;
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        std::thread::spawn(move || {
            accept_loop(listener, tx, stop, read_timeout, write_timeout);
        });
    }

    // Metrics HTTP listener.
    {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        metrics_listener
            .set_nonblocking(true)
            .expect("nonblocking metrics listener");
        std::thread::spawn(move || {
            metrics_loop(metrics_listener, tx, stop);
        });
    }

    // The service thread: owns the netlist, the engine and the registry.
    let service_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || service_loop(cfg, rx, stop))
    };

    ServerHandle {
        addr,
        metrics_addr,
        stop,
        service_thread: Some(service_thread),
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let mut next_client = 1u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let client = next_client;
                next_client += 1;
                spawn_connection(
                    client,
                    stream,
                    tx.clone(),
                    Arc::clone(&stop),
                    read_timeout,
                    write_timeout,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Spawns the reader and writer threads for one accepted connection.
fn spawn_connection(
    client: u64,
    stream: TcpStream,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (resp_tx, resp_rx) = mpsc::channel::<Vec<u8>>();
    if tx
        .send(Event::Connected {
            client,
            tx: resp_tx,
        })
        .is_err()
    {
        return;
    }
    // Writer: drains encoded responses. A write timeout or error tears
    // the connection down (slow-client protection).
    std::thread::spawn(move || {
        let mut w = write_half;
        for frame in resp_rx {
            if w.write_all(&frame).is_err() {
                let _ = w.shutdown(std::net::Shutdown::Both);
                break;
            }
        }
        let _ = w.shutdown(std::net::Shutdown::Both);
    });
    // Reader: strict parse loop; every deviation is answered typed and
    // the connection is closed. Each decoded frame is stamped with a
    // trace id right here, before it enters the service at all, so the
    // trace covers the full in-server lifetime of the request.
    std::thread::spawn(move || {
        let mut r = stream;
        let mut minter =
            TraceMinter::new(0x6D66_6D74_7263 ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        loop {
            match read_frame(&mut r) {
                Ok(Some(body)) => match decode_request(&body) {
                    Ok(req) => {
                        let trace = minter.mint();
                        if tx.send(Event::Request { client, req, trace }).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Event::Malformed {
                            client,
                            id: salvage_id(&body),
                            code: e.code(),
                        });
                        break;
                    }
                },
                Ok(None) => break, // clean EOF
                Err(FrameError::Wire(e)) => {
                    let _ = tx.send(Event::Malformed {
                        client,
                        id: 0,
                        code: e.code(),
                    });
                    break;
                }
                // A quiet client is NOT a dead client: it may simply be
                // waiting on responses the service is still computing.
                // Keep polling; teardown comes from EOF, a real error,
                // a mid-frame stall, or server shutdown.
                Err(FrameError::Idle) => {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(FrameError::Io(_)) => break, // reset or mid-frame stall
            }
        }
        let _ = tx.send(Event::Disconnected { client });
        let _ = r.shutdown(std::net::Shutdown::Read);
    });
}

/// Minimal HTTP/1.0 exposition endpoint. The request line's path picks
/// the view — `/metrics`, `/healthz`, `/statusz` or `/tracez` — and any
/// unrecognized path falls back to the Prometheus text, preserving the
/// historical "anything gets metrics" behaviour.
fn metrics_loop(listener: TcpListener, tx: Sender<Event>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut buf = [0u8; 512];
                let n = stream.read(&mut buf).unwrap_or(0);
                let head = String::from_utf8_lossy(&buf[..n]);
                let kind = ScrapeKind::from_request_line(head.lines().next().unwrap_or(""));
                let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(1);
                let body = if tx
                    .send(Event::Scrape {
                        kind,
                        reply: reply_tx,
                    })
                    .is_ok()
                {
                    reply_rx
                        .recv_timeout(Duration::from_secs(2))
                        .unwrap_or_default()
                } else {
                    String::new()
                };
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n{}",
                    kind.content_type(),
                    body.len(),
                    body
                );
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// The service thread body: builds the non-`Send` state locally, then
/// multiplexes protocol events with the tick cadence.
fn service_loop(cfg: ServerConfig, rx: Receiver<Event>, stop: Arc<AtomicBool>) {
    let mut netlist = Netlist::new(TechLibrary::cmos45lp());
    let ports = if cfg.pipelined {
        build_pipelined_unit_opts(
            &mut netlist,
            PipelinePlacement::Fig5,
            UnitOptions {
                quad_lanes: cfg.service.engine.quad_lanes,
                ..UnitOptions::default()
            },
        )
    } else {
        build_unit(&mut netlist)
    };
    let registry = Registry::new();
    let mut service = Service::new(&netlist, &ports, cfg.service, &registry);
    let sites: Vec<NetId> = netlist.cells().iter().map(|c| c.output).collect();
    let chaos = cfg.chaos.map(|c| ChaosPlan::generate(&c));
    let mut next_chaos = 0usize;
    let mut admitted_ops = 0u64;

    let mut writers: HashMap<u64, Sender<Vec<u8>>> = HashMap::new();
    let tick_len = Duration::from_micros(cfg.service.micros_per_tick.max(1));
    let mut next_tick = Instant::now() + tick_len;
    let mut incident_seq = 0u64;
    let mut flush = |service: &mut Service<'_>, writers: &mut HashMap<u64, Sender<Vec<u8>>>| {
        for (client, resp, trace) in service.take_responses_traced() {
            let t = Instant::now();
            send_to(writers, client, &resp);
            service.note_write_back(trace, t.elapsed().as_micros() as u64);
        }
        for report in service.take_incidents() {
            if let Some(dir) = &cfg.incident_dir {
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join(format!("incident_{incident_seq}.json"));
                let _ = std::fs::write(path, &report);
            }
            incident_seq += 1;
        }
    };

    loop {
        // Apply chaos events scheduled at or before the current ordinal.
        if let Some(plan) = &chaos {
            while next_chaos < plan.events.len() && plan.events[next_chaos].at_op <= admitted_ops {
                apply_event(
                    service.engine_mut(),
                    &plan.events[next_chaos],
                    &sites,
                    ports.latency,
                );
                next_chaos += 1;
            }
        }
        // Drain everything already queued before considering a tick.
        // Admission must never wait on tick work: when a degraded pool
        // makes ticks slow, refusals still have to go out promptly or
        // an `Overloaded` arrives too late to be a useful signal. The
        // cap bounds tick jitter under a flood (event handling is
        // µs-scale, so even a full burst costs a few ms).
        let mut drained = 0u32;
        while drained < 4096 {
            match rx.try_recv() {
                Ok(ev) => {
                    handle_event(ev, &mut service, &mut writers, &registry, &mut admitted_ops);
                    drained += 1;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }
        // Then: block until the next event or the next tick edge.
        let now = Instant::now();
        let due = if now >= next_tick {
            true
        } else {
            match rx.recv_timeout(next_tick - now) {
                Ok(ev) => {
                    handle_event(ev, &mut service, &mut writers, &registry, &mut admitted_ops);
                    false
                }
                Err(mpsc::RecvTimeoutError::Timeout) => true,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        if due {
            service.tick();
            flush(&mut service, &mut writers);
            next_tick += tick_len;
            // Never let a stall cause a burst of catch-up ticks:
            // re-anchor if we fell behind a whole tick.
            let now = Instant::now();
            if next_tick < now {
                next_tick = now + tick_len;
            }
            if stop.load(Ordering::SeqCst) {
                // Final flush so already-admitted work answers
                // before teardown.
                for _ in 0..4 {
                    service.tick();
                    flush(&mut service, &mut writers);
                }
                break;
            }
        }
    }
}

/// Applies one protocol event to the service state.
fn handle_event(
    ev: Event,
    service: &mut Service<'_>,
    writers: &mut HashMap<u64, Sender<Vec<u8>>>,
    registry: &Registry,
    admitted_ops: &mut u64,
) {
    match ev {
        Event::Connected { client, tx } => {
            writers.insert(client, tx);
        }
        Event::Request { client, req, trace } => {
            if let Some(refusal) = service.admit_traced(client, &req, trace) {
                send_to(writers, client, &refusal);
            } else {
                *admitted_ops += 1;
            }
        }
        Event::Malformed { client, id, code } => {
            let resp = service.reject_malformed(client, id, code);
            send_to(writers, client, &resp);
        }
        Event::Disconnected { client } => {
            // The writer drains what is already queued, then its
            // channel closes with the removed sender.
            writers.remove(&client);
            service.forget_client(client);
        }
        Event::Scrape { kind, reply } => {
            let body = match kind {
                ScrapeKind::Metrics => registry.prometheus(),
                ScrapeKind::Healthz => service.healthz_json(),
                ScrapeKind::Statusz => service.statusz_json(),
                ScrapeKind::Tracez => service.tracez_json(),
            };
            let _ = reply.try_send(body);
        }
    }
}

fn send_to(writers: &mut HashMap<u64, Sender<Vec<u8>>>, client: u64, resp: &Response) {
    if let Some(tx) = writers.get(&client) {
        if tx.send(encode_response(resp)).is_err() {
            writers.remove(&client);
        }
    }
}
