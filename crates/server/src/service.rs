//! The deterministic service core: admission control, degradation
//! tiers, deadline bookkeeping, 256-lane batch execution through the
//! circuit-breaker pool, and typed responses for everything.
//!
//! The core is tick-driven and samples no wall clock, so it is testable
//! (and replayable) without sockets; the TCP front-end in
//! [`crate::server`] owns one instance on its service thread and calls
//! [`Service::tick`] on a fixed cadence, translating microseconds to
//! ticks with its configured tick length.
//!
//! # The overload ladder
//!
//! Load is the front-end backlog over its capacity. Rather than one
//! accept/refuse cliff, the service degrades in tiers, shedding its own
//! speculative work before it sheds anyone's requests:
//!
//! | tier | backlog | behaviour |
//! |---|---|---|
//! | `Normal` | < 50 % | batch every format, run speculative self-checks |
//! | `ShedSpeculative` | < 75 % | drop the speculative battery sampling |
//! | `SingleFormat` | < 90 % | batch only the deepest format queue per tick |
//! | `Shed` | ≥ 90 % | refuse new work with typed `Overloaded` |
//!
//! Nothing is ever dropped silently: a shed request gets `Overloaded`
//! with a retry hint from the client's own deterministic backoff
//! escalated by consecutive rejections, a stale request gets
//! `DeadlineExceeded`, a bad frame gets `Malformed`, and an answered
//! request's result has always been cross-checked against the bit-exact
//! reference — a lane that fails its check is *rescued* through the
//! engine's event-driven path, never answered from the failed batch.
//!
//! # Adaptive redundancy
//!
//! On top of the per-lane checks the batch path runs *redundant-lane
//! execution*: a request carrying the wire-v3 `critical` flag is
//! replicated across up to three units' fault overlays and the replicas
//! vote, with the `mfm-softfloat`-backed reference breaking ties; a
//! replica outvoted by the majority is charged to its unit's breaker
//! without the wrong answer ever surfacing. The same voting tier
//! engages automatically for a whole batch when its routed unit is
//! `Suspect` (DMR-on-suspicion) and for every lane during a recovery
//! window after any caught would-be escape. Byzantine output-latch
//! faults armed on the engine corrupt batch lanes *after* their
//! self-checks — exactly the fault class only redundancy can catch.
//!
//! # Tracing and the flight recorder
//!
//! Every admitted request carries a [`TraceId`] (minted at frame decode
//! by the front-end, or internally for in-process callers) through the
//! batch path, the verification loop, and the engine rescue path. The
//! service accumulates per-phase spans (queue-wait, batch-fill,
//! compiled-eval, verify, rescue, write-back) into a [`TraceRecord`]
//! that lands in a fixed-size [`TraceRing`] served by `/tracez`.
//! Scheduling decisions stay tick-driven and wall-clock-free; only the
//! span *annotations* for the execution phases sample a monotonic
//! clock, so responses remain deterministic while latency attribution
//! is real.
//!
//! A bounded [`FlightRecorder`] keeps the most recent structured events
//! (check failures, rescues, tier changes, breaker transitions,
//! watchdog trips) and snapshots them into a self-contained JSON
//! incident report when a verification mismatch, engine rescue,
//! watchdog trip, or shed-tier escalation fires — drain reports with
//! [`Service::take_incidents`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

use mfm_gatesim::{CompiledNetlist, CompiledSim, LivePowerTrace, Netlist};
use mfm_resilient::backoff::{BackoffConfig, SubmitBackoff};
use mfm_resilient::{Engine, EngineConfig, HealthState};
use mfm_softfloat::Flags;
use mfm_telemetry::{
    Counter, FlightEvent, FlightRecorder, Gauge, Histogram, IncidentTrigger, Phase, PhaseSpans,
    Registry, TraceId, TraceMinter, TraceRecord, TraceRing,
};
use mfmult::selfcheck::{check_raw, result_from_raw, run_raw_compiled, scrub_battery};
use mfmult::structural::StructuralPorts;
use mfmult::{Format, FunctionalUnit, Operation};

use crate::wire::{Request, Response};

/// Degradation tier the service is currently operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Full service: every format batched, speculative checks on.
    Normal,
    /// Speculative self-checks shed; all request work continues.
    ShedSpeculative,
    /// Only the deepest format queue is batched each tick.
    SingleFormat,
    /// New arrivals are refused with typed `Overloaded`.
    Shed,
}

impl Tier {
    /// Stable label for logs and metrics.
    pub const fn label(self) -> &'static str {
        match self {
            Tier::Normal => "normal",
            Tier::ShedSpeculative => "shed_speculative",
            Tier::SingleFormat => "single_format",
            Tier::Shed => "shed",
        }
    }

    /// Numeric encoding exported on the `service.tier` gauge.
    pub const fn level(self) -> u32 {
        match self {
            Tier::Normal => 0,
            Tier::ShedSpeculative => 1,
            Tier::SingleFormat => 2,
            Tier::Shed => 3,
        }
    }
}

/// Service policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Seed for the per-client backoff jitter streams.
    pub seed: u64,
    /// Pool size handed to the engine.
    pub units: usize,
    /// Front-end backlog capacity (requests admitted but not yet
    /// answered, across all format queues and the rescue path).
    pub pending_cap: usize,
    /// Microseconds one service tick represents — converts request
    /// deadlines and retry hints between wire time and tick time.
    pub micros_per_tick: u64,
    /// Deadline applied to requests that carry none (`0` on the wire),
    /// in ticks from admission.
    pub default_deadline_ticks: u64,
    /// Run the speculative battery sample every this many ticks in
    /// `Normal` tier (0 disables).
    pub speculative_every: u64,
    /// Engine (pool) policy.
    pub engine: EngineConfig,
    /// Per-client retry-budget backoff policy (delays in ticks).
    pub backoff: BackoffConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 2017,
            units: 4,
            pending_cap: 256,
            micros_per_tick: 500,
            default_deadline_ticks: 400,
            speculative_every: 16,
            engine: EngineConfig::default(),
            backoff: BackoffConfig {
                base_ticks: 2,
                factor: 2,
                max_ticks: 64,
                max_retries: u32::MAX,
            },
        }
    }
}

/// Completed traces retained for `/tracez`.
const TRACE_RING_CAP: usize = 256;
/// Flight-recorder event ring capacity.
const FLIGHT_RING_CAP: usize = 128;
/// Minimum ticks between incident reports of the same trigger kind.
const INCIDENT_MIN_GAP_TICKS: u64 = 32;
/// Ticks the TMR voting tier stays engaged for *every* lane after any
/// caught would-be escape (a masked engine result, a DMR mismatch, a
/// lost vote, or the belt-and-braces escape guard firing).
const TMR_RECOVERY_TICKS: u64 = 64;

/// One admitted request waiting for a batch slot.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    client: u64,
    id: u64,
    op: Operation,
    /// Absolute deadline tick.
    deadline: u64,
    /// Deadline the client asked for, echoed in expiry responses.
    deadline_micros: u32,
    arrived: u64,
    /// End-to-end trace id minted at decode (or admission).
    trace: TraceId,
    /// Per-phase latency attribution accumulated as the request moves.
    spans: PhaseSpans,
    /// Tick the request entered the rescue path (0 = never rescued).
    rescued_at: u64,
    /// Whether the client asked for TMR voting (wire-v3 flag).
    critical: bool,
}

struct ServiceMetrics {
    accepted: Counter,
    answered: Counter,
    shed: Counter,
    deadline_exceeded: Counter,
    malformed: Counter,
    check_failures: Counter,
    rescues: Counter,
    speculative: Counter,
    votes: Counter,
    vote_mismatches: Counter,
    dmr_batches: Counter,
    tier: Gauge,
    pending: Gauge,
    latency_ticks: Histogram,
    batch_fill: Histogram,
    /// One histogram per [`Phase`], indexed by phase order in
    /// [`Phase::ALL`]; fed when a trace record is finalized.
    phase_micros: Vec<Histogram>,
}

/// The service core (see the module docs). Borrows the netlist like the
/// engine does; one instance per serving thread.
pub struct Service<'a> {
    cfg: ServiceConfig,
    engine: Engine<'a>,
    ports: StructuralPorts,
    compiled: CompiledNetlist,
    reference: FunctionalUnit,
    battery: Vec<Operation>,
    /// Per-format admission queues, batched up to 256 lanes at a time.
    queues: HashMap<Format, VecDeque<PendingReq>>,
    /// Lanes whose batch check failed, awaiting event-driven rescue.
    rescue: VecDeque<PendingReq>,
    /// Rescues in flight inside the engine: engine id → request.
    in_engine: HashMap<u64, PendingReq>,
    /// Per-client consecutive-rejection backoff state.
    backoffs: HashMap<u64, SubmitBackoff>,
    /// Round-robin cursor over pool units for batch routing.
    batch_cursor: usize,
    responses: Vec<(u64, Response, TraceId)>,
    metrics: ServiceMetrics,
    answered: u64,
    shed: u64,
    escape_guard_failures: u64,
    /// Mints trace ids for callers that did not bring one.
    minter: TraceMinter,
    /// Recently completed traces, served by `/tracez`.
    traces: TraceRing,
    /// Bounded ring of recent structured events + incident snapshots.
    flight: FlightRecorder,
    /// Incident reports produced since the last [`Service::take_incidents`].
    incidents: Vec<String>,
    /// Records awaiting the front-end's write-back timing; flushed to
    /// the trace ring on the next tick if the front-end never reports.
    awaiting_write_back: BTreeMap<u64, TraceRecord>,
    /// Tier at the end of the previous tick, for escalation detection.
    last_tier: Tier,
    /// Watchdog-trip counts seen per unit, for edge detection.
    seen_watchdog: Vec<u64>,
    /// Per-unit watermark of breaker transitions already forwarded to
    /// the flight recorder, measured against the tracker's *monotone
    /// logged total* (the in-memory trail is a bounded ring).
    seen_transitions: Vec<u64>,
    /// Tick the post-escape TMR recovery window runs until (exclusive).
    tmr_until: u64,
    /// TMR votes held so far.
    votes: u64,
    /// Votes where at least one replica disagreed with the majority.
    vote_mismatches: u64,
    /// Batches escalated to whole-batch voting because their routed
    /// unit was `Suspect` (DMR-on-suspicion).
    dmr_batches: u64,
    /// Engine `masked` count at the last tick, for escape-edge detection.
    seen_masked: u64,
    /// Engine DMR-mismatch count at the last tick, same purpose.
    seen_dmr_mismatches: u64,
    /// Per-net zero-delay toggle counts accumulated over every primary
    /// compiled batch evaluation (active lanes only) — the service's
    /// power accounting runs on the compiled activity engine, with no
    /// event-driven simulation alongside the serving path.
    power_toggles: Vec<u64>,
    /// Clock edges charged to the accumulator (per batch, shared by all
    /// lanes of that batch).
    power_cycles: u64,
    /// Operations measured through the accumulator.
    power_ops: u64,
    /// Windowed pJ/op tracer over the accumulator; mirrors each tick's
    /// window into the `service.pj_per_op` gauge.
    power_trace: LivePowerTrace,
}

impl<'a> Service<'a> {
    /// Builds the service over a netlist: an engine pool plus the
    /// service's own compiled batch engine and reference unit.
    /// Registers its metrics (and the engine's) on `registry`.
    pub fn new(
        netlist: &'a Netlist,
        ports: &StructuralPorts,
        cfg: ServiceConfig,
        registry: &Registry,
    ) -> Self {
        let mut engine = Engine::new(netlist, ports, cfg.units.max(1), cfg.engine);
        engine.attach_telemetry(registry);
        let compiled = CompiledNetlist::compile(netlist).expect("service netlist must be acyclic");
        let lat_bounds: Vec<f64> = (0..12).map(|i| (1u64 << i) as f64).collect();
        let fill_bounds: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0];
        let phase_bounds: Vec<f64> = (0..9).map(|i| 4f64.powi(i)).collect();
        let phase_micros = Phase::ALL
            .iter()
            .map(|p| {
                registry.histogram_with(
                    &format!("service.phase_micros.{}", p.label()),
                    &phase_bounds,
                )
            })
            .collect();
        let metrics = ServiceMetrics {
            accepted: registry.counter("service.accepted"),
            answered: registry.counter("service.answered"),
            shed: registry.counter("service.shed"),
            deadline_exceeded: registry.counter("service.deadline_exceeded"),
            malformed: registry.counter("service.malformed"),
            check_failures: registry.counter("service.check_failures"),
            rescues: registry.counter("service.rescues"),
            speculative: registry.counter("service.speculative_checks"),
            votes: registry.counter("service.tmr_votes"),
            vote_mismatches: registry.counter("service.tmr_vote_mismatches"),
            dmr_batches: registry.counter("service.dmr_batches"),
            tier: registry.gauge("service.tier"),
            pending: registry.gauge("service.pending"),
            latency_ticks: registry.histogram_with("service.latency_ticks", &lat_bounds),
            batch_fill: registry.histogram_with("service.batch_fill", &fill_bounds),
            phase_micros,
        };
        // The pool holds the active units *plus* any cold spares.
        let units_built = engine.unit_count();
        Service {
            engine,
            ports: ports.clone(),
            compiled,
            reference: FunctionalUnit::new(),
            battery: scrub_battery(cfg.engine.quad_lanes),
            queues: HashMap::new(),
            rescue: VecDeque::new(),
            in_engine: HashMap::new(),
            backoffs: HashMap::new(),
            batch_cursor: 0,
            responses: Vec::new(),
            metrics,
            answered: 0,
            shed: 0,
            escape_guard_failures: 0,
            minter: TraceMinter::new(cfg.seed ^ 0x7261_6365_5F69_6421),
            traces: TraceRing::new(TRACE_RING_CAP),
            flight: FlightRecorder::new(FLIGHT_RING_CAP, INCIDENT_MIN_GAP_TICKS),
            incidents: Vec::new(),
            awaiting_write_back: BTreeMap::new(),
            last_tier: Tier::Normal,
            seen_watchdog: vec![0; units_built],
            seen_transitions: vec![0; units_built],
            tmr_until: 0,
            votes: 0,
            vote_mismatches: 0,
            dmr_batches: 0,
            seen_masked: 0,
            seen_dmr_mismatches: 0,
            power_toggles: vec![0; netlist.net_count()],
            power_cycles: 0,
            power_ops: 0,
            power_trace: LivePowerTrace::from_counts(netlist, &vec![0; netlist.net_count()], 0)
                .with_gauge(registry.gauge("service.pj_per_op")),
            cfg,
        }
    }

    /// Current tick (the engine's clock).
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Requests admitted but not yet answered.
    pub fn backlog(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum::<usize>()
            + self.rescue.len()
            + self.in_engine.len()
    }

    /// The degradation tier the *next* admission decision will use.
    pub fn tier(&self) -> Tier {
        let cap = self.cfg.pending_cap.max(1);
        let load = self.backlog();
        if load * 10 >= cap * 9 {
            Tier::Shed
        } else if load * 4 >= cap * 3 {
            Tier::SingleFormat
        } else if load * 2 >= cap {
            Tier::ShedSpeculative
        } else {
            Tier::Normal
        }
    }

    /// Requests answered with a checked `Ok` so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Requests refused with `Overloaded` so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Wrong answers that reached a response. The service's invariant is
    /// that this stays zero: the batch path answers only cross-checked
    /// lanes and the engine path is escape-checked internally.
    pub fn escapes(&self) -> u64 {
        self.engine.escapes() + self.escape_guard_failures
    }

    /// The pool engine (chaos hooks, health inspection).
    pub fn engine_mut(&mut self) -> &mut Engine<'a> {
        &mut self.engine
    }

    /// TMR votes held on batch lanes so far.
    pub fn votes(&self) -> u64 {
        self.votes
    }

    /// Votes where at least one replica disagreed with the majority.
    pub fn vote_mismatches(&self) -> u64 {
        self.vote_mismatches
    }

    /// Whether the post-escape TMR recovery window is currently open.
    pub fn tmr_window_active(&self) -> bool {
        self.engine.now() < self.tmr_until
    }

    /// Admission control for one well-formed request from `client`,
    /// minting a fresh trace id. See [`Service::admit_traced`].
    pub fn admit(&mut self, client: u64, req: &Request) -> Option<Response> {
        let trace = self.minter.mint();
        self.admit_traced(client, req, trace)
    }

    /// Admission control for one well-formed request from `client`
    /// carrying a trace id minted at frame decode. Returns `None` when
    /// admitted (the response is produced by a later [`Service::tick`])
    /// or `Some` with the immediate typed refusal.
    pub fn admit_traced(&mut self, client: u64, req: &Request, trace: TraceId) -> Option<Response> {
        if self.tier() == Tier::Shed {
            self.shed += 1;
            self.metrics.shed.inc();
            let backlog = self.backlog() as u32;
            self.flight.record(FlightEvent {
                tick: self.engine.now(),
                trace: Some(trace.as_u64()),
                kind: "shed",
                detail: format!("client {client} id {} refused at backlog {backlog}", req.id),
            });
            let retry_ticks = self.overload_retry_ticks(client);
            return Some(Response::Overloaded {
                id: req.id,
                retry_after_micros: retry_ticks.saturating_mul(self.cfg.micros_per_tick),
                queued: backlog,
            });
        }
        // Admission resets the client's consecutive-rejection escalation.
        if let Some(b) = self.backoffs.get_mut(&client) {
            b.reset();
        }
        let deadline_ticks = if req.deadline_micros == 0 {
            self.cfg.default_deadline_ticks
        } else {
            (req.deadline_micros as u64)
                .div_ceil(self.cfg.micros_per_tick.max(1))
                .max(1)
        };
        let pending = PendingReq {
            client,
            id: req.id,
            op: req.op,
            deadline: self.engine.now() + deadline_ticks,
            deadline_micros: req.deadline_micros,
            arrived: self.engine.now(),
            trace,
            spans: PhaseSpans::default(),
            rescued_at: 0,
            critical: req.critical,
        };
        self.queues
            .entry(req.op.format)
            .or_default()
            .push_back(pending);
        self.metrics.accepted.inc();
        None
    }

    /// The typed response for a malformed frame from `client` (`id` is
    /// the salvaged correlation id, 0 when unreadable).
    pub fn reject_malformed(&mut self, _client: u64, id: u64, code: u8) -> Response {
        self.metrics.malformed.inc();
        Response::Malformed { id, code }
    }

    /// Forgets a client's backoff state (connection closed).
    pub fn forget_client(&mut self, client: u64) {
        self.backoffs.remove(&client);
    }

    /// Drains the responses produced since the last call, as
    /// `(client, response)` pairs in production order.
    pub fn take_responses(&mut self) -> Vec<(u64, Response)> {
        self.take_responses_traced()
            .into_iter()
            .map(|(client, resp, _)| (client, resp))
            .collect()
    }

    /// Like [`Service::take_responses`] but keeps each response's trace
    /// id so the front-end can report write-back timing through
    /// [`Service::note_write_back`].
    pub fn take_responses_traced(&mut self) -> Vec<(u64, Response, TraceId)> {
        std::mem::take(&mut self.responses)
    }

    /// Reports the transport write-back duration for a response drained
    /// via [`Service::take_responses_traced`]; completes that trace's
    /// record with its final span. Unreported records self-complete on
    /// the next tick with a zero write-back span.
    pub fn note_write_back(&mut self, trace: TraceId, micros: u64) {
        if let Some(mut rec) = self.awaiting_write_back.remove(&trace.as_u64()) {
            rec.spans.add(Phase::WriteBack, micros);
            rec.total_micros = rec.total_micros.saturating_add(micros);
            self.finish_record(rec);
        }
    }

    /// Drains the incident reports produced since the last call.
    pub fn take_incidents(&mut self) -> Vec<String> {
        std::mem::take(&mut self.incidents)
    }

    /// The `/healthz` payload: liveness plus the one invariant that
    /// matters (zero escapes).
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"{}\",\"tick\":{},\"tier\":\"{}\",\"escapes\":{}}}",
            if self.escapes() == 0 { "ok" } else { "failing" },
            self.engine.now(),
            self.tier().label(),
            self.escapes()
        )
    }

    /// The `/statusz` payload: degradation tier, per-format queue
    /// depths, per-unit breaker states and the flight-recorder gauges.
    pub fn statusz_json(&self) -> String {
        let mut queues: Vec<(&str, usize)> = self
            .queues
            .iter()
            .map(|(f, q)| (f.label(), q.len()))
            .collect();
        queues.sort_by_key(|&(label, _)| label);
        let queues_json: Vec<String> = queues
            .iter()
            .map(|(label, depth)| format!("\"{label}\":{depth}"))
            .collect();
        let units_json: Vec<String> = (0..self.engine.unit_count())
            .map(|i| {
                format!(
                    "{{\"unit\":{i},\"state\":\"{}\",\"watchdog_trips\":{},\"transitions\":{}}}",
                    self.engine.unit_state(i).label(),
                    self.engine.watchdog_trips(i),
                    self.engine.transitions_logged(i)
                )
            })
            .collect();
        let (patrol_slices, patrol_failures) = self.engine.patrol_stats();
        format!(
            "{{\"tick\":{},\"tier\":\"{}\",\"backlog\":{},\"pending_cap\":{},\
             \"queues\":{{{}}},\"rescue_depth\":{},\"in_engine\":{},\
             \"answered\":{},\"shed\":{},\"units\":[{}],\
             \"redundancy\":{{\"votes\":{},\"vote_mismatches\":{},\"dmr_batches\":{},\
             \"dmr_shadows\":{},\"dmr_mismatches\":{},\"masked\":{},\"promotions\":{},\
             \"spares_available\":{},\"hw_capacity\":{},\"patrol_slices\":{},\
             \"patrol_failures\":{},\"tmr_window_active\":{}}},\
             \"flight\":{{\"events\":{},\"dropped\":{},\"incidents\":{}}}}}",
            self.engine.now(),
            self.tier().label(),
            self.backlog(),
            self.cfg.pending_cap,
            queues_json.join(","),
            self.rescue.len(),
            self.in_engine.len(),
            self.answered,
            self.shed,
            units_json.join(","),
            self.votes,
            self.vote_mismatches,
            self.dmr_batches,
            self.engine.dmr_shadows(),
            self.engine.dmr_mismatches(),
            self.engine.masked(),
            self.engine.promotions(),
            self.engine.spares_available(),
            self.engine.hw_capacity(),
            patrol_slices,
            patrol_failures,
            self.tmr_window_active(),
            self.flight.len(),
            self.flight.dropped(),
            self.flight.incidents_emitted(),
        )
    }

    /// The `/tracez` payload: the slowest recent traces with per-phase
    /// breakdowns.
    pub fn tracez_json(&self) -> String {
        self.traces.tracez_json(16)
    }

    /// Escalating retry hint for one shed request: the client's own
    /// deterministic jittered backoff (consecutive rejections widen the
    /// window; any admission resets it), floored by the engine's
    /// capacity-timeline drain estimate so the hint never promises a
    /// slot sooner than the pool can plausibly free one.
    fn overload_retry_ticks(&mut self, client: u64) -> u64 {
        let seed = self.cfg.seed ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = self
            .backoffs
            .entry(client)
            .or_insert_with(|| SubmitBackoff::new(self.cfg.backoff, seed));
        let delay = b.next_delay().unwrap_or(self.cfg.backoff.max_ticks);
        delay.max(self.engine.retry_after_hint())
    }

    /// One scheduling round: engine tick (scrubs, rescue dispatch,
    /// breaker time), engine completion/expiry harvest, front-end
    /// deadline sweep, rescue resubmission, the batch pass for this
    /// tick's tier, and the speculative self-check.
    pub fn tick(&mut self) {
        self.flush_unacked_records();
        self.engine.tick();
        self.observe_engine_health();
        self.note_caught_escapes();
        self.harvest_engine();
        self.expire_stale();
        self.pump_rescue();
        let tier = self.tier();
        self.run_batches(tier);
        if tier == Tier::Normal
            && self.cfg.speculative_every > 0
            && self.engine.now().is_multiple_of(self.cfg.speculative_every)
        {
            self.speculative_check();
        }
        self.note_tier_change();
        self.metrics.tier.set(self.tier().level() as f64);
        self.metrics.pending.set(self.backlog() as f64);
        // Close this tick's power window from the compiled-toggle
        // accumulator (no-op when no batch ran since the last tick).
        self.power_trace
            .sample_counts(&self.power_toggles, self.power_cycles, self.power_ops);
    }

    /// Completes records whose write-back the front-end never reported
    /// (in-process callers, dropped connections).
    fn flush_unacked_records(&mut self) {
        let pending = std::mem::take(&mut self.awaiting_write_back);
        for (_, rec) in pending {
            self.finish_record(rec);
        }
    }

    /// Observes each finalized record's phase spans and retires it into
    /// the `/tracez` ring.
    fn finish_record(&mut self, rec: TraceRecord) {
        for (idx, &p) in Phase::ALL.iter().enumerate() {
            let v = rec.spans.get(p);
            if v > 0 {
                self.metrics.phase_micros[idx].observe(v as f64);
            }
        }
        self.traces.push(rec);
    }

    /// Opens (or extends) the TMR recovery window when the redundancy
    /// layer caught a would-be escape since the last tick — a masked
    /// engine result or a DMR shadow mismatch. For the next
    /// [`TMR_RECOVERY_TICKS`] every batch lane is voted, critical or
    /// not.
    fn note_caught_escapes(&mut self) {
        let masked = self.engine.masked();
        let dmr = self.engine.dmr_mismatches();
        if masked > self.seen_masked || dmr > self.seen_dmr_mismatches {
            self.open_tmr_window("engine caught a would-be escape");
        }
        self.seen_masked = masked;
        self.seen_dmr_mismatches = dmr;
    }

    fn open_tmr_window(&mut self, why: &str) {
        let now = self.engine.now();
        let until = now + TMR_RECOVERY_TICKS;
        if until > self.tmr_until {
            self.flight.record(FlightEvent {
                tick: now,
                trace: None,
                kind: "tmr_window",
                detail: format!("{why}; voting every lane until tick {until}"),
            });
            self.tmr_until = until;
        }
    }

    /// Forwards new breaker transitions and watchdog trips from the
    /// engine into the flight recorder; a fresh watchdog trip raises an
    /// incident. Transition watermarks are kept against the tracker's
    /// monotone logged total, so eviction from the bounded trail never
    /// replays or skips events.
    fn observe_engine_health(&mut self) {
        let now = self.engine.now();
        for i in 0..self.engine.unit_count() {
            let logged = self.engine.transitions_logged(i);
            let fresh = logged.saturating_sub(self.seen_transitions[i]);
            let transitions = self.engine.transitions(i);
            let tail = (fresh as usize).min(transitions.len());
            for tr in &transitions[transitions.len() - tail..] {
                self.flight.record(FlightEvent {
                    tick: now,
                    trace: tr.trace,
                    kind: "breaker_transition",
                    detail: tr.to_json(),
                });
            }
            self.seen_transitions[i] = logged;
            let trips = self.engine.watchdog_trips(i);
            if trips > self.seen_watchdog[i] {
                self.flight.record(FlightEvent {
                    tick: now,
                    trace: None,
                    kind: "watchdog_trip",
                    detail: format!("unit {i} trips {trips}"),
                });
                let context = format!("{{\"unit\":{i},\"trips\":{trips}}}");
                if let Some(report) =
                    self.flight
                        .incident(IncidentTrigger::WatchdogTrip, now, None, &context)
                {
                    self.incidents.push(report);
                }
                self.seen_watchdog[i] = trips;
            }
        }
    }

    /// Records tier movement; escalation into `Shed` raises an incident.
    fn note_tier_change(&mut self) {
        let now_tier = self.tier();
        if now_tier != self.last_tier {
            let tick = self.engine.now();
            self.flight.record(FlightEvent {
                tick,
                trace: None,
                kind: "tier_change",
                detail: format!("{} -> {}", self.last_tier.label(), now_tier.label()),
            });
            if now_tier == Tier::Shed && self.last_tier < Tier::Shed {
                let context = format!(
                    "{{\"from\":\"{}\",\"to\":\"shed\",\"backlog\":{}}}",
                    self.last_tier.label(),
                    self.backlog()
                );
                if let Some(report) =
                    self.flight
                        .incident(IncidentTrigger::ShedEscalation, tick, None, &context)
                {
                    self.incidents.push(report);
                }
            }
            self.last_tier = now_tier;
        }
    }

    /// Turns engine completions and expirations into responses. A
    /// completed rescue closes its trace's rescue span and raises an
    /// `engine_rescue` incident so the whole path is reconstructable.
    fn harvest_engine(&mut self) {
        let now = self.engine.now();
        for done in self.engine.take_completed() {
            if let Some(mut p) = self.in_engine.remove(&done.id) {
                p.spans.add(
                    Phase::Rescue,
                    now.saturating_sub(p.rescued_at)
                        .saturating_mul(self.cfg.micros_per_tick),
                );
                self.flight.record(FlightEvent {
                    tick: now,
                    trace: Some(p.trace.as_u64()),
                    kind: "rescue_completed",
                    detail: format!("engine id {} request {}", done.id, p.id),
                });
                let context = format!(
                    "{{\"request_id\":{},\"engine_id\":{},\"rescue_micros\":{}}}",
                    p.id,
                    done.id,
                    p.spans.get(Phase::Rescue)
                );
                if let Some(report) = self.flight.incident(
                    IncidentTrigger::EngineRescue,
                    now,
                    Some(p.trace.as_u64()),
                    &context,
                ) {
                    self.incidents.push(report);
                }
                self.answer_checked(p, done.result);
            }
        }
        for exp in self.engine.take_expired() {
            if let Some(p) = self.in_engine.remove(&exp.id) {
                self.push_deadline_exceeded(p);
            }
        }
    }

    /// Emits the `Ok` for a request served by the engine path. The
    /// engine already escape-checked the result; this keeps its own
    /// belt-and-braces comparison so a service bug can never downgrade
    /// the invariant silently.
    fn answer_checked(&mut self, p: PendingReq, result: mfmult::MultResult) {
        let want = self.reference.execute(p.op);
        if !results_agree(&result, &want) {
            // The engine substitutes the checked fallback before
            // delivery, so this should be unreachable; if it ever fires
            // we answer from the reference, count the guard, and vote
            // everything for a recovery window.
            self.escape_guard_failures += 1;
            self.open_tmr_window("escape guard fired on an engine result");
            self.push_ok(p, &want);
            return;
        }
        self.push_ok(p, &result);
    }

    fn push_ok(&mut self, p: PendingReq, result: &mfmult::MultResult) {
        self.answered += 1;
        self.metrics.answered.inc();
        let lat_ticks = self.engine.now().saturating_sub(p.arrived);
        // The latency exemplar links a scrape's p99 bucket to a trace.
        self.metrics
            .latency_ticks
            .observe_exemplar(lat_ticks as f64, p.trace.as_u64());
        let queue_micros = p
            .spans
            .get(Phase::QueueWait)
            .saturating_add(p.spans.get(Phase::Rescue))
            .min(u32::MAX as u64) as u32;
        let exec_micros = p
            .spans
            .get(Phase::BatchFill)
            .saturating_add(p.spans.get(Phase::CompiledEval))
            .saturating_add(p.spans.get(Phase::Verify))
            .min(u32::MAX as u64) as u32;
        self.responses.push((
            p.client,
            Response::from_result(p.id, result, queue_micros, exec_micros),
            p.trace,
        ));
        self.open_record(p, if p.rescued_at > 0 { "rescued" } else { "ok" });
    }

    fn push_deadline_exceeded(&mut self, p: PendingReq) {
        self.metrics.deadline_exceeded.inc();
        self.flight.record(FlightEvent {
            tick: self.engine.now(),
            trace: Some(p.trace.as_u64()),
            kind: "deadline_exceeded",
            detail: format!("request {} client {}", p.id, p.client),
        });
        self.responses.push((
            p.client,
            Response::DeadlineExceeded {
                id: p.id,
                deadline_micros: p.deadline_micros,
            },
            p.trace,
        ));
        self.open_record(p, "deadline");
    }

    /// Opens a trace record awaiting the front-end's write-back report;
    /// it self-completes on the next tick if none arrives.
    fn open_record(&mut self, p: PendingReq, outcome: &'static str) {
        let now = self.engine.now();
        let rec = TraceRecord {
            trace: p.trace,
            request_id: p.id,
            tick_admitted: p.arrived,
            tick_done: now,
            total_micros: now
                .saturating_sub(p.arrived)
                .saturating_mul(self.cfg.micros_per_tick),
            spans: p.spans,
            outcome,
        };
        self.awaiting_write_back.insert(p.trace.as_u64(), rec);
    }

    /// Cancels every queued request whose deadline has passed — they
    /// never reach a batch lane or the engine.
    fn expire_stale(&mut self) {
        let now = self.engine.now();
        let mut expired = Vec::new();
        for q in self.queues.values_mut() {
            let mut kept = VecDeque::with_capacity(q.len());
            for p in q.drain(..) {
                if p.deadline < now {
                    expired.push(p);
                } else {
                    kept.push_back(p);
                }
            }
            *q = kept;
        }
        let mut kept = VecDeque::with_capacity(self.rescue.len());
        for p in self.rescue.drain(..) {
            if p.deadline < now {
                expired.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.rescue = kept;
        for p in expired {
            self.push_deadline_exceeded(p);
        }
    }

    /// Resubmits rescued lanes through the engine's event-driven path,
    /// respecting its bounded queue (a full queue retries next tick —
    /// the deadline sweep bounds how long a rescue can wait).
    fn pump_rescue(&mut self) {
        while let Some(p) = self.rescue.front().copied() {
            match self
                .engine
                .submit_traced(p.op, Some(p.deadline), Some(p.trace))
            {
                Ok(engine_id) => {
                    self.rescue.pop_front();
                    self.flight.record(FlightEvent {
                        tick: self.engine.now(),
                        trace: Some(p.trace.as_u64()),
                        kind: "rescue_submitted",
                        detail: format!("request {} engine id {engine_id}", p.id),
                    });
                    self.in_engine.insert(engine_id, p);
                }
                Err(_busy) => break,
            }
        }
    }

    /// Pool units the batch path may route through right now.
    fn batch_units(&self) -> Vec<usize> {
        (0..self.engine.unit_count())
            .filter(|&i| {
                self.engine.unit_state(i).is_hw_capacity() && !self.engine.unit(i).is_degraded()
            })
            .collect()
    }

    /// Runs this tick's batch pass: every non-empty format queue in
    /// `Normal`/`ShedSpeculative`, only the deepest one in
    /// `SingleFormat`.
    fn run_batches(&mut self, tier: Tier) {
        let mut formats: Vec<(Format, usize)> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&f, q)| (f, q.len()))
            .collect();
        // Deterministic order: deepest first, label breaks ties.
        formats.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.label().cmp(b.0.label())));
        if tier >= Tier::SingleFormat {
            formats.truncate(1);
        }
        for (format, _) in formats {
            let batch: Vec<PendingReq> = {
                let q = self.queues.get_mut(&format).expect("non-empty queue");
                let n = q.len().min(mfm_gatesim::LANES);
                q.drain(..n).collect()
            };
            self.run_one_batch(&batch);
        }
    }

    /// Executes up to [`mfm_gatesim::LANES`] same-format lanes through the compiled
    /// bit-parallel engine under one pool unit's fault overlay. Every
    /// lane is self-checked (`check_raw`) *and* cross-checked against
    /// the bit-exact reference before it may answer; a failing lane is
    /// rescued through the engine, and the outcome — clean or not — is
    /// fed back into the routed unit's circuit breaker.
    fn run_one_batch(&mut self, batch: &[PendingReq]) {
        if batch.is_empty() {
            return;
        }
        self.metrics.batch_fill.observe(batch.len() as f64);
        let now = self.engine.now();
        let mpt = self.cfg.micros_per_tick;
        let queue_micros = move |p: &PendingReq| now.saturating_sub(p.arrived).saturating_mul(mpt);
        let units = self.batch_units();
        let unit = if units.is_empty() {
            None
        } else {
            let u = units[self.batch_cursor % units.len()];
            self.batch_cursor = self.batch_cursor.wrapping_add(1);
            Some(u)
        };
        let Some(unit) = unit else {
            // No healthy hardware lane: route everything through the
            // engine, whose retired-fallback service still answers.
            for &p in batch {
                let mut p = p;
                p.spans.add(Phase::QueueWait, queue_micros(&p));
                p.rescued_at = now;
                self.metrics.rescues.inc();
                self.rescue.push_back(p);
            }
            self.flight.record(FlightEvent {
                tick: now,
                trace: None,
                kind: "no_healthy_unit",
                detail: format!("{} lanes routed to engine rescue", batch.len()),
            });
            return;
        };
        // Batch-fill: sim construction plus the routed unit's fault
        // overlay. Wall time annotates spans only — never scheduling.
        let t_fill = Instant::now();
        let overlay = self.engine.unit(unit).sim().stuck_faults();
        let ops: Vec<Operation> = batch.iter().map(|p| p.op).collect();
        let mut sim = CompiledSim::new(&self.compiled);
        for (net, value) in overlay {
            sim.inject_stuck_at(net, mfm_gatesim::ALL_LANES, value);
        }
        // Count this batch's zero-delay toggles in the occupied lanes
        // only: the power gauge rides on the same evaluation pass.
        sim.enable_activity(batch.len());
        let fill_micros = t_fill.elapsed().as_micros() as u64;
        let t_eval = Instant::now();
        let raws = run_raw_compiled(&mut sim, &self.ports, &ops);
        let eval_micros = t_eval.elapsed().as_micros() as u64;
        for (sum, &t) in self.power_toggles.iter_mut().zip(sim.toggles()) {
            *sum += t;
        }
        self.power_cycles += sim.cycles();
        self.power_ops += batch.len() as u64;
        // A Byzantine output latch corrupts results *after* the compiled
        // eval produced its self-checkable raw image: flagged lanes get
        // the armed pattern XORed into the high product word downstream
        // of `check_raw`, exactly like the engine's dispatch path.
        let byz = self.engine.byzantine_lane_mask(unit, batch.len());
        let byz_pattern = self.engine.byzantine_pattern(unit);
        let t_verify = Instant::now();
        // Redundant-lane batching: a lane is voted when its request is
        // critical, when the post-escape recovery window is open, or
        // when the whole batch routed through a Suspect unit
        // (DMR-on-suspicion).
        let dmr_batch = self.engine.unit_state(unit) == HealthState::Suspect;
        if dmr_batch {
            self.dmr_batches += 1;
            self.metrics.dmr_batches.inc();
        }
        let vote_all = dmr_batch || now < self.tmr_until;
        let replicas = if vote_all || batch.iter().any(|p| p.critical) {
            self.run_replicas(unit, &units, &ops)
        } else {
            Vec::new()
        };
        let mut incidents = 0u32;
        let mut verified: Vec<(PendingReq, Option<mfmult::MultResult>)> =
            Vec::with_capacity(batch.len());
        for (idx, (&p, raw)) in batch.iter().zip(&raws).enumerate() {
            let mut p = p;
            p.spans.add(Phase::QueueWait, queue_micros(&p));
            p.spans.add(Phase::BatchFill, fill_micros);
            p.spans.add(Phase::CompiledEval, eval_micros);
            let mut got = check_raw(p.op, raw).ok().map(|()| {
                let mut r = result_from_raw(p.op, raw);
                if byz[idx / 64] >> (idx % 64) & 1 == 1 {
                    r.ph ^= byz_pattern;
                }
                r
            });
            let want = self.reference.execute(p.op);
            if (p.critical || vote_all) && !replicas.is_empty() {
                got = self.vote_lane(&p, idx, unit, got, &replicas, &want, &mut incidents, now);
            }
            let ok = got.filter(|g| results_agree(g, &want));
            verified.push((p, ok));
        }
        // The whole batch shares one verification pass; every lane
        // experienced its full duration.
        let verify_micros = t_verify.elapsed().as_micros() as u64;
        for (mut p, outcome) in verified {
            p.spans.add(Phase::Verify, verify_micros);
            match outcome {
                Some(got) => self.push_ok(p, &got),
                None => {
                    // Residue check or reference cross-check failed: the
                    // lane is poisoned. Never answer from it — rescue
                    // through the event-driven path and charge the
                    // routed unit.
                    incidents += 1;
                    self.metrics.check_failures.inc();
                    self.metrics.rescues.inc();
                    self.flight.record(FlightEvent {
                        tick: now,
                        trace: Some(p.trace.as_u64()),
                        kind: "check_failure",
                        detail: format!(
                            "unit {unit} request {} format {}",
                            p.id,
                            p.op.format.label()
                        ),
                    });
                    let context = format!(
                        "{{\"unit\":{unit},\"request_id\":{},\"format\":\"{}\"}}",
                        p.id,
                        p.op.format.label()
                    );
                    if let Some(report) = self.flight.incident(
                        IncidentTrigger::VerifyMismatch,
                        now,
                        Some(p.trace.as_u64()),
                        &context,
                    ) {
                        self.incidents.push(report);
                    }
                    p.rescued_at = now;
                    self.rescue.push_back(p);
                }
            }
        }
        self.engine.note_external_service_traced(
            unit,
            incidents,
            (incidents > 0)
                .then(|| self.rescue.back().map(|p| p.trace))
                .flatten(),
        );
    }

    /// Executes the batch's operations under up to two additional
    /// units' fault overlays, returning per-replica lane results
    /// (`None` where the replica's own self-check failed). A Byzantine
    /// latch armed on a replica corrupts its results the same way the
    /// primary's does, so no single faulty unit can sway a vote
    /// undetected.
    fn run_replicas(
        &mut self,
        primary: usize,
        units: &[usize],
        ops: &[Operation],
    ) -> Vec<(usize, Vec<Option<mfmult::MultResult>>)> {
        let mut out = Vec::new();
        for &ru in units.iter().filter(|&&u| u != primary).take(2) {
            let overlay = self.engine.unit(ru).sim().stuck_faults();
            let mut sim = CompiledSim::new(&self.compiled);
            for (net, value) in overlay {
                sim.inject_stuck_at(net, mfm_gatesim::ALL_LANES, value);
            }
            let raws = run_raw_compiled(&mut sim, &self.ports, ops);
            let byz = self.engine.byzantine_lane_mask(ru, ops.len());
            let pattern = self.engine.byzantine_pattern(ru);
            let results = ops
                .iter()
                .zip(&raws)
                .enumerate()
                .map(|(k, (&op, raw))| {
                    check_raw(op, raw).ok().map(|()| {
                        let mut r = result_from_raw(op, raw);
                        if byz[k / 64] >> (k % 64) & 1 == 1 {
                            r.ph ^= pattern;
                        }
                        r
                    })
                })
                .collect();
            out.push((ru, results));
        }
        out
    }

    /// Holds the vote for one redundant lane: the primary's result plus
    /// each replica's, majority wins, and the softfloat-backed reference
    /// breaks ties. Outvoted replicas are charged to their unit's
    /// breaker (the primary through this batch's aggregate incident
    /// count) and every vote leaves a flight-recorder event.
    #[allow(clippy::too_many_arguments)]
    fn vote_lane(
        &mut self,
        p: &PendingReq,
        idx: usize,
        unit: usize,
        primary: Option<mfmult::MultResult>,
        replicas: &[(usize, Vec<Option<mfmult::MultResult>>)],
        want: &mfmult::MultResult,
        incidents: &mut u32,
        now: u64,
    ) -> Option<mfmult::MultResult> {
        self.votes += 1;
        self.metrics.votes.inc();
        let mut ballots: Vec<(usize, Option<mfmult::MultResult>)> = vec![(unit, primary)];
        for (ru, res) in replicas {
            ballots.push((*ru, res[idx]));
        }
        let mut winner = None;
        for (_, cand) in &ballots {
            if let Some(c) = cand {
                let agree = ballots
                    .iter()
                    .filter(|(_, o)| o.as_ref().is_some_and(|v| results_agree(v, c)))
                    .count();
                if agree * 2 > ballots.len() {
                    winner = Some(*c);
                    break;
                }
            }
        }
        let tiebreak = winner.is_none();
        let winner = winner.unwrap_or(*want);
        let mut outvoted = 0u32;
        for (bu, cand) in &ballots {
            if cand.as_ref().is_some_and(|v| results_agree(v, &winner)) {
                continue;
            }
            outvoted += 1;
            if *bu == unit {
                *incidents += 1;
            } else {
                self.engine
                    .note_external_service_traced(*bu, 1, Some(p.trace));
            }
        }
        if outvoted > 0 || tiebreak {
            self.vote_mismatches += 1;
            self.metrics.vote_mismatches.inc();
            self.open_tmr_window("a replica lost a TMR vote");
        }
        self.flight.record(FlightEvent {
            tick: now,
            trace: Some(p.trace.as_u64()),
            kind: "tmr_vote",
            detail: format!(
                "request {} lane {idx} ballots {} outvoted {outvoted}{}",
                p.id,
                ballots.len(),
                if tiebreak { " tiebreak=reference" } else { "" }
            ),
        });
        Some(winner)
    }

    /// Speculative self-check: replays a sliding sample of the scrub
    /// battery through the next batch unit's overlay, charging failures
    /// to its breaker *before* client lanes hit the fault. This is the
    /// first work shed under load (`ShedSpeculative`).
    fn speculative_check(&mut self) {
        let units = self.batch_units();
        if units.is_empty() {
            return;
        }
        let unit = units[self.batch_cursor % units.len()];
        let window = 8usize.min(self.battery.len());
        let start = (self.engine.now() as usize).wrapping_mul(window) % self.battery.len();
        let sample: Vec<Operation> = (0..window)
            .map(|k| self.battery[(start + k) % self.battery.len()])
            .collect();
        let overlay = self.engine.unit(unit).sim().stuck_faults();
        let mut sim = CompiledSim::new(&self.compiled);
        for (net, value) in overlay {
            sim.inject_stuck_at(net, mfm_gatesim::ALL_LANES, value);
        }
        let raws = run_raw_compiled(&mut sim, &self.ports, &sample);
        let incidents = sample
            .iter()
            .zip(&raws)
            .filter(|(&op, raw)| check_raw(op, raw).is_err())
            .count() as u32;
        self.metrics.speculative.inc();
        self.engine.note_external_service(unit, incidents);
    }
}

/// Result agreement under the hardware flag mask (the flag bus carries
/// no inexact wire, exactly like the engine's escape check).
fn results_agree(got: &mfmult::MultResult, want: &mfmult::MultResult) -> bool {
    let hw = Flags::INVALID | Flags::OVERFLOW | Flags::UNDERFLOW;
    got.ph == want.ph
        && got.pl == want.pl
        && got.flags_lo.bits() & hw.bits() == want.flags_lo.bits() & hw.bits()
        && got.flags_hi.bits() & hw.bits() == want.flags_hi.bits() & hw.bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::tech::TechLibrary;
    use mfm_resilient::health::BreakerConfig;
    use mfmult::structural::build_unit;

    fn build() -> (Netlist, StructuralPorts) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        (n, ports)
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            seed: 11,
            units: 2,
            pending_cap: 16,
            micros_per_tick: 100,
            default_deadline_ticks: 50,
            speculative_every: 4,
            engine: EngineConfig {
                queue_depth: 8,
                breaker: BreakerConfig {
                    open_after: 2,
                    heal_after: 4,
                    cooldown_ticks: 2,
                    max_scrub_failures: 2,
                },
                watchdog_margin: 4,
                quad_lanes: false,
                spares: 0,
                patrol_slice: 0,
            },
            backoff: BackoffConfig {
                base_ticks: 2,
                factor: 2,
                max_ticks: 32,
                max_retries: u32::MAX,
            },
        }
    }

    fn req(id: u64, op: Operation) -> Request {
        Request {
            id,
            op,
            deadline_micros: 0,
            critical: false,
        }
    }

    #[test]
    fn admitted_requests_are_answered_with_checked_results() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut svc = Service::new(&n, &ports, small_cfg(), &reg);
        for k in 0..10u64 {
            assert!(svc.admit(1, &req(k, Operation::int64(k + 1, 7))).is_none());
        }
        for _ in 0..6 {
            svc.tick();
        }
        let out = svc.take_responses();
        assert_eq!(out.len(), 10);
        for (client, resp) in out {
            assert_eq!(client, 1);
            match resp {
                Response::Ok { id, ph, pl, .. } => {
                    let want = (id + 1) as u128 * 7;
                    assert_eq!(((ph as u128) << 64) | pl as u128, want);
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
        assert_eq!(svc.escapes(), 0);
        assert_eq!(reg.counter("service.answered").get(), 10);
        // The power gauge rode along on the compiled batch evaluations:
        // no event-driven simulation ran, yet pJ/op is live.
        assert!(
            reg.gauge("service.pj_per_op").get() > 0.0,
            "compiled-toggle power gauge never sampled"
        );
    }

    #[test]
    fn mixed_formats_batch_per_format_and_all_answer() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut svc = Service::new(&n, &ports, small_cfg(), &reg);
        let ops = [
            Operation::int64(3, 5),
            Operation::binary64_from_f64(1.5, 2.0),
            Operation::dual_binary32_from_f32(1.0, 2.0, 3.0, 0.5),
            Operation::single_binary32_from_f32(4.0, 0.25),
        ];
        for (k, &op) in ops.iter().enumerate() {
            assert!(svc.admit(k as u64, &req(k as u64, op)).is_none());
        }
        for _ in 0..4 {
            svc.tick();
        }
        let out = svc.take_responses();
        assert_eq!(out.len(), 4, "every format answered: {out:?}");
        assert!(out.iter().all(|(_, r)| matches!(r, Response::Ok { .. })));
        assert_eq!(svc.escapes(), 0);
    }

    #[test]
    fn overload_sheds_with_escalating_typed_retry_hints() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.pending_cap = 10;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        // Fill to the shed threshold (90 % of 10 = 9) without ticking.
        let mut shed_hints = Vec::new();
        for k in 0..30u64 {
            if let Some(resp) = svc.admit(7, &req(k, Operation::int64(k, 3))) {
                match resp {
                    Response::Overloaded {
                        id,
                        retry_after_micros,
                        queued,
                    } => {
                        assert_eq!(id, k);
                        assert!(queued >= 9, "shed at ≥90% backlog, queued {queued}");
                        shed_hints.push(retry_after_micros);
                    }
                    other => panic!("expected Overloaded, got {other:?}"),
                }
            }
        }
        assert!(shed_hints.len() >= 20, "everything past the cap was shed");
        assert!(
            shed_hints.iter().all(|&h| h >= cfg.micros_per_tick),
            "hints are at least one tick: {shed_hints:?}"
        );
        // Consecutive rejections escalate: the late hints' window is
        // wider than the first hint's.
        let last = *shed_hints.last().unwrap();
        assert!(
            last >= shed_hints[0],
            "backoff escalates across consecutive rejections: {shed_hints:?}"
        );
        assert_eq!(svc.shed(), shed_hints.len() as u64);
        assert_eq!(reg.counter("service.shed").get(), shed_hints.len() as u64);
        // The admitted work still drains and answers.
        for _ in 0..12 {
            svc.tick();
        }
        let ok = svc
            .take_responses()
            .iter()
            .filter(|(_, r)| matches!(r, Response::Ok { .. }))
            .count();
        assert_eq!(ok, 9, "admitted requests all answered");
    }

    #[test]
    fn degradation_ladder_walks_the_tiers() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.pending_cap = 20;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        assert_eq!(svc.tier(), Tier::Normal);
        let mut k = 0u64;
        let mut fill = |svc: &mut Service<'_>, upto: usize| {
            while svc.backlog() < upto {
                assert!(svc.admit(1, &req(k, Operation::int64(k, 2))).is_none());
                k += 1;
            }
        };
        fill(&mut svc, 10);
        assert_eq!(
            svc.tier(),
            Tier::ShedSpeculative,
            "50% sheds speculative work"
        );
        fill(&mut svc, 15);
        assert_eq!(
            svc.tier(),
            Tier::SingleFormat,
            "75% degrades to single-format"
        );
        fill(&mut svc, 18);
        assert_eq!(svc.tier(), Tier::Shed, "90% refuses new work");
        assert!(svc.admit(1, &req(999, Operation::int64(1, 1))).is_some());
    }

    #[test]
    fn stale_requests_get_typed_deadline_responses_and_never_run() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        // One unit; the cap is sized so the burst below lands in the
        // SingleFormat tier (admitted, but only the deepest format
        // batches) without ever reaching the Shed tier.
        cfg.units = 1;
        cfg.pending_cap = 90;
        cfg.micros_per_tick = 100;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        // Deadline of 100 µs = 1 tick: expires before its batch turn if
        // queued behind a burst.
        let mut doomed = Request {
            id: 500,
            op: Operation::int64(9, 9),
            deadline_micros: 100,
            critical: false,
        };
        // Occupy the single-format batch with 64+ lanes so the doomed
        // request (different format) waits a tick.
        for k in 0..70u64 {
            let _ = svc.admit(1, &req(k, Operation::int64(k, 2)));
        }
        doomed.op = Operation::binary64_from_f64(2.0, 4.0);
        assert!(svc.admit(2, &doomed).is_none());
        for _ in 0..8 {
            svc.tick();
        }
        let out = svc.take_responses();
        let exceeded: Vec<_> = out
            .iter()
            .filter(|(c, r)| *c == 2 && matches!(r, Response::DeadlineExceeded { .. }))
            .collect();
        assert_eq!(exceeded.len(), 1, "doomed request expired typed: {out:?}");
        match exceeded[0].1 {
            Response::DeadlineExceeded {
                id,
                deadline_micros,
            } => {
                assert_eq!(id, 500);
                assert_eq!(deadline_micros, 100);
            }
            _ => unreachable!(),
        }
        assert!(
            !out.iter()
                .any(|(c, r)| *c == 2 && matches!(r, Response::Ok { .. })),
            "an expired request is never also answered"
        );
        assert_eq!(reg.counter("service.deadline_exceeded").get(), 1);
    }

    #[test]
    fn poisoned_unit_lanes_are_rescued_not_answered_wrong() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.units = 2;
        cfg.speculative_every = 0; // only client lanes feed the breaker
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        // Poison unit 0's hardware with a sticky output fault: batches
        // routed through its overlay fail their checks.
        let victim = ports.chk_p0[0];
        svc.engine_mut().inject_stuck_at(0, victim, true, true);
        let mut admitted = 0usize;
        // Even products keep bit 0 of p0 at 0, so the stuck-at-true
        // fault is observable on every lane routed through unit 0.
        for k in 0..40u64 {
            if svc.admit(1, &req(k, Operation::int64(k + 1, 2))).is_none() {
                admitted += 1;
            }
            svc.tick();
        }
        for _ in 0..60 {
            svc.tick();
        }
        let out = svc.take_responses();
        let ok = out
            .iter()
            .filter(|(_, r)| matches!(r, Response::Ok { .. }))
            .count();
        let exceeded = out
            .iter()
            .filter(|(_, r)| matches!(r, Response::DeadlineExceeded { .. }))
            .count();
        assert!(
            admitted >= 30,
            "most of the trickle was admitted: {admitted}"
        );
        assert_eq!(
            ok + exceeded,
            admitted,
            "every admitted request got a typed outcome"
        );
        // Every Ok is bit-correct (the cross-check guarantees it).
        for (_, r) in &out {
            if let Response::Ok { id, ph, pl, .. } = r {
                let want = (*id + 1) as u128 * 2;
                assert_eq!(((*ph as u128) << 64) | *pl as u128, want, "id {id}");
            }
        }
        assert_eq!(svc.escapes(), 0, "zero escapes under a poisoned unit");
        assert!(
            reg.counter("service.check_failures").get() > 0,
            "the poisoned lanes were caught"
        );
        assert!(
            reg.counter("service.rescues").get() > 0,
            "caught lanes were rescued through the engine"
        );
    }

    #[test]
    fn traces_flow_from_admission_to_tracez_with_phase_spans() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut svc = Service::new(&n, &ports, small_cfg(), &reg);
        for k in 0..6u64 {
            let trace = TraceId::from_raw(0xAA00 + k);
            assert!(svc
                .admit_traced(1, &req(k, Operation::int64(k + 2, 9)), trace)
                .is_none());
        }
        for _ in 0..4 {
            svc.tick();
        }
        let out = svc.take_responses_traced();
        assert_eq!(out.len(), 6);
        for (_, resp, trace) in &out {
            assert!(trace.as_u64() >= 0xAA00, "trace rides to the response");
            match resp {
                Response::Ok { exec_micros, .. } => {
                    // Wall-clock annotated: non-deterministic but the
                    // batch must have taken *some* time.
                    assert!(*exec_micros > 0, "exec span annotated");
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
        // Report write-back for one trace; the rest self-complete on
        // the next tick.
        svc.note_write_back(out[0].2, 42);
        svc.tick();
        let tz = svc.tracez_json();
        mfm_telemetry::json::check(&tz).unwrap();
        assert!(tz.contains("\"trace_id\":\"000000000000aa00\""), "{tz}");
        assert!(tz.contains("\"compiled_eval\":"), "phase breakdown: {tz}");
        // The latency histogram carries a trace-id exemplar.
        let prom = reg.prometheus();
        assert!(prom.contains("# {trace_id="), "exemplar rendered: {prom}");
        // Phase histograms registered and fed.
        assert!(
            prom.contains("service_phase_micros_compiled_eval"),
            "{prom}"
        );
        // The endpoint payloads are well-formed.
        mfm_telemetry::json::check(&svc.healthz_json()).unwrap();
        mfm_telemetry::json::check(&svc.statusz_json()).unwrap();
        assert!(svc.healthz_json().contains("\"status\":\"ok\""));
        assert!(svc.statusz_json().contains("\"tier\":\"normal\""));
    }

    #[test]
    fn poisoned_unit_raises_incidents_that_reconstruct_the_rescue_path() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.units = 2;
        cfg.speculative_every = 0;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        let victim = ports.chk_p0[0];
        svc.engine_mut().inject_stuck_at(0, victim, true, true);
        for k in 0..40u64 {
            let trace = TraceId::from_raw(0xBB00 + k);
            let _ = svc.admit_traced(1, &req(k, Operation::int64(k + 1, 2)), trace);
            svc.tick();
        }
        for _ in 0..60 {
            svc.tick();
        }
        let incidents = svc.take_incidents();
        assert!(
            !incidents.is_empty(),
            "a poisoned unit must raise at least one incident"
        );
        let verify = incidents
            .iter()
            .find(|r| r.contains("\"trigger\":\"verify_mismatch\""))
            .expect("a verify_mismatch incident fired");
        mfm_telemetry::json::check(verify).unwrap();
        assert!(
            verify.contains("\"trace_id\":\"000000000000bb"),
            "the incident names the offending trace: {verify}"
        );
        assert!(
            verify.contains("check_failure"),
            "the event ring reconstructs the failure: {verify}"
        );
        // A completed rescue links back to the originating trace too.
        if let Some(rescue) = incidents
            .iter()
            .find(|r| r.contains("\"trigger\":\"engine_rescue\""))
        {
            assert!(rescue.contains("rescue_submitted"), "{rescue}");
            assert!(rescue.contains("\"rescue_micros\":"), "{rescue}");
        }
        // Breaker transitions observed by the flight recorder carry the
        // trace of the offending request into /statusz accounting.
        let sz = svc.statusz_json();
        assert!(sz.contains("\"incidents\":"), "{sz}");
    }

    #[test]
    fn critical_requests_vote_and_a_byzantine_unit_is_outvoted() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.units = 3;
        cfg.speculative_every = 0;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        // A Byzantine output latch on unit 0: every 2nd served result is
        // corrupted *after* its self-checks, so only the vote can see it.
        svc.engine_mut().inject_byzantine(0, 2, 1 << 17);
        for k in 0..24u64 {
            let mut r = req(k, Operation::int64(k + 1, 6));
            r.critical = true;
            assert!(svc.admit(1, &r).is_none());
            svc.tick();
        }
        for _ in 0..20 {
            svc.tick();
        }
        let out = svc.take_responses();
        let mut answered = 0;
        for (_, r) in &out {
            if let Response::Ok { id, ph, pl, .. } = r {
                let want = (*id + 1) as u128 * 6;
                assert_eq!(((*ph as u128) << 64) | *pl as u128, want, "id {id}");
                answered += 1;
            }
        }
        assert!(answered >= 20, "critical traffic answered: {answered}");
        assert_eq!(svc.escapes(), 0, "the corrupted replicas never escaped");
        assert!(svc.votes() > 0, "critical lanes were voted");
        assert!(
            svc.vote_mismatches() > 0,
            "the byzantine replica lost votes"
        );
        assert!(
            reg.counter("service.tmr_votes").get() >= svc.votes(),
            "votes are scrapeable"
        );
        // The lost votes charged unit 0's breaker out of Healthy. The
        // fault is scrub-clean, so the unit may have already cycled
        // through quarantine and a passing scrub back to Healthy —
        // judge the transition log, not the momentary state.
        assert!(
            svc.engine_mut().transitions_logged(0) > 0,
            "unit 0's breaker was charged"
        );
        assert!(
            svc.engine_mut()
                .transitions(0)
                .iter()
                .any(|t| t.from == HealthState::Healthy && t.to == HealthState::Suspect),
            "the byzantine unit left Healthy at least once"
        );
        let sz = svc.statusz_json();
        mfm_telemetry::json::check(&sz).unwrap();
        assert!(sz.contains("\"redundancy\":{"), "{sz}");
        assert!(sz.contains("\"votes\":"), "{sz}");
        assert!(sz.contains("\"tmr_window_active\":"), "{sz}");
    }

    #[test]
    fn recovery_window_votes_every_lane_after_a_caught_escape() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.units = 3;
        cfg.speculative_every = 0;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        assert!(!svc.tmr_window_active());
        // A byzantine latch that trips on non-critical traffic: the
        // first corrupted batch lane loses its reference cross-check,
        // gets rescued, and the engine's masking vote (on the rescue
        // path) opens the recovery window; from then on even plain
        // lanes are voted.
        svc.engine_mut().inject_byzantine(0, 2, 1 << 9);
        for k in 0..30u64 {
            assert!(svc.admit(1, &req(k, Operation::int64(k + 1, 4))).is_none());
            svc.tick();
        }
        for _ in 0..30 {
            svc.tick();
        }
        assert_eq!(svc.escapes(), 0);
        assert!(
            svc.votes() > 0,
            "plain lanes were voted once the window opened"
        );
        let out = svc.take_responses();
        for (_, r) in &out {
            if let Response::Ok { id, ph, pl, .. } = r {
                let want = (*id + 1) as u128 * 4;
                assert_eq!(((*ph as u128) << 64) | *pl as u128, want, "id {id}");
            }
        }
    }

    #[test]
    fn speculative_checks_quarantine_a_poisoned_unit_early() {
        let (n, ports) = build();
        let reg = Registry::new();
        let mut cfg = small_cfg();
        cfg.units = 2;
        cfg.speculative_every = 1;
        let mut svc = Service::new(&n, &ports, cfg, &reg);
        let victim = ports.chk_p0[0];
        svc.engine_mut().inject_stuck_at(0, victim, true, true);
        // No client traffic at all: the speculative battery sampling
        // alone must drive the poisoned unit out of rotation.
        for _ in 0..16 {
            svc.tick();
        }
        use mfm_resilient::health::HealthState;
        assert_ne!(
            svc.engine_mut().unit_state(0),
            HealthState::Healthy,
            "speculative checks caught the fault without client exposure"
        );
        assert!(reg.counter("service.speculative_checks").get() > 0);
    }
}
