//! Multiplication-as-a-service: an overload-safe, deadline-aware
//! server front-end over the resilient multiplier pool.
//!
//! This crate turns the workspace's resilient execution engine
//! ([`mfm_resilient`]) into a hardened network service:
//!
//! - [`wire`] — a length-prefixed, versioned binary protocol with a
//!   strict parser: every malformed, truncated or oversized frame maps
//!   to a typed [`wire::WireError`], never a panic.
//! - [`service`] — the deterministic core: admission control with a
//!   four-tier degradation ladder (shed speculative self-checks, then
//!   degrade to single-format batching, then refuse with typed
//!   `Overloaded`), deadline propagation with expired-in-queue
//!   cancellation, per-client deterministic retry budgets, and a
//!   64-lane compiled batch path routed through the pool's circuit
//!   breakers with a mandatory per-lane cross-check against the
//!   bit-exact reference.
//! - [`server`] — the thread-per-connection TCP front-end plus a
//!   Prometheus `/metrics` endpoint, with slow-client write timeouts
//!   and strict malformed-frame teardown.
//! - [`loadgen`] — an open-loop, seeded load generator and verifier:
//!   bursts, slow clients and adversarial frames, with client-side
//!   escape detection and a full every-request-answered audit.
//!
//! The service contract, end to end: **no request is ever dropped
//! silently** (every outcome is a typed `Ok`, `Overloaded`,
//! `DeadlineExceeded` or `Malformed` response) and **no wrong answer
//! ever escapes** (the batch path answers only cross-checked lanes; the
//! engine path is escape-checked internally).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod loadgen;
pub mod server;
pub mod service;
pub mod wire;
