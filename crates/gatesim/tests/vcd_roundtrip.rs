//! Round-trips a traced simulation through the VCD writer: a minimal
//! parser reconstructs the waveform from the emitted text and checks it
//! against the simulator's recorded events and final net values.

use std::collections::HashMap;

use mfm_gatesim::trace::write_vcd;
use mfm_gatesim::{Netlist, Simulator, TechLibrary};

/// A VCD document reduced to what the writer emits: header fields, the
/// id→name variable map, initial values and timestamped transitions.
struct ParsedVcd {
    timescale: String,
    vars: HashMap<String, String>,
    initial: HashMap<String, bool>,
    /// (time, id, value) in document order.
    transitions: Vec<(u64, String, bool)>,
}

fn parse_vcd(text: &str) -> ParsedVcd {
    let mut timescale = String::new();
    let mut vars = HashMap::new();
    let mut initial = HashMap::new();
    let mut transitions = Vec::new();
    let mut in_defs = true;
    let mut in_dumpvars = false;
    let mut time = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if in_defs {
            if let Some(rest) = line.strip_prefix("$timescale ") {
                timescale = rest.trim_end_matches(" $end").to_owned();
            } else if let Some(rest) = line.strip_prefix("$var wire 1 ") {
                let rest = rest.trim_end_matches(" $end");
                let (id, name) = rest.split_once(' ').expect("var id and name");
                assert!(
                    vars.insert(id.to_owned(), name.to_owned()).is_none(),
                    "duplicate var id {id}"
                );
            } else if line == "$enddefinitions $end" {
                in_defs = false;
            }
            continue;
        }
        if line == "$dumpvars" {
            in_dumpvars = true;
            continue;
        }
        if line == "$end" {
            in_dumpvars = false;
            continue;
        }
        if let Some(t) = line.strip_prefix('#') {
            assert!(!in_dumpvars, "timestamp inside $dumpvars");
            time = t.parse().expect("timestamp");
            continue;
        }
        let (value, id) = line.split_at(1);
        let value = match value {
            "0" => false,
            "1" => true,
            other => panic!("unexpected value char {other:?} in {line:?}"),
        };
        if in_dumpvars {
            initial.insert(id.to_owned(), value);
        } else {
            transitions.push((time, id.to_owned(), value));
        }
    }
    ParsedVcd {
        timescale,
        vars,
        initial,
        transitions,
    }
}

#[test]
fn vcd_round_trips_header_vars_and_transitions() {
    // A 2-bit ripple chain gives transitions at distinct times within
    // each settle.
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let a = n.input("a");
    let b = n.input("b");
    let x = n.xor2(a, b);
    let y = n.and2(x, b);
    let z = n.not(y);
    let mut sim = Simulator::new(&n);
    sim.enable_trace();
    for v in [0b01u128, 0b11, 0b10, 0b00, 0b11] {
        sim.set_bus(&[a, b], v);
        sim.settle();
    }
    let watched = [("a", a), ("b", b), ("x", x), ("y", y), ("z", z)];
    let events = sim.trace().expect("trace enabled");
    let vcd = write_vcd(&n, &watched, events, sim.initial_trace_values());

    let parsed = parse_vcd(&vcd);

    // Header: timescale matches the simulator's 0.1 ps tick.
    assert_eq!(parsed.timescale, "100 fs");

    // Vars: one unique printable id per watched signal, names preserved.
    assert_eq!(parsed.vars.len(), watched.len());
    let mut names: Vec<&str> = parsed.vars.values().map(String::as_str).collect();
    names.sort_unstable();
    assert_eq!(names, ["a", "b", "x", "y", "z"]);
    for id in parsed.vars.keys() {
        assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "id {id:?}");
    }

    // Every watched signal has an initial value in $dumpvars.
    assert_eq!(parsed.initial.len(), watched.len());

    // Transitions: reconstruct (time, name, value) and compare with the
    // simulator's event list filtered to the watched nets, in order.
    let net_name: HashMap<u32, &str> = watched
        .iter()
        .map(|(name, net)| (net.index() as u32, *name))
        .collect();
    let expected: Vec<(u64, &str, bool)> = events
        .iter()
        .filter_map(|&(t, net, v)| net_name.get(&net).map(|&name| (t, name, v)))
        .collect();
    let got: Vec<(u64, &str, bool)> = parsed
        .transitions
        .iter()
        .map(|(t, id, v)| (*t, parsed.vars[id].as_str(), *v))
        .collect();
    assert!(!got.is_empty(), "expected some transitions");
    assert_eq!(got, expected);

    // Timestamps never decrease in document order.
    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));

    // Replaying initial values + transitions lands on the simulator's
    // final state for every watched net.
    for (name, net) in watched {
        let id = parsed
            .vars
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(id, _)| id.clone())
            .expect("var listed");
        let mut value = parsed.initial[&id];
        for (_, tid, v) in &parsed.transitions {
            if *tid == id {
                value = *v;
            }
        }
        assert_eq!(value, sim.read_net(net), "final value of {name}");
    }
}
