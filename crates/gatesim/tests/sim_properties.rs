//! Property tests of the event-driven simulator against a direct
//! topological evaluation: whatever glitches occur (and however inertial
//! cancellation filters them), the *settled* values must equal the pure
//! combinational function of the inputs.
//!
//! Random netlists and vectors come from a deterministic seeded stream.

use mfm_gatesim::{CellKind, NetId, Netlist, Simulator, TechLibrary};
use mfm_prng::Rng;

/// Combinational cell kinds usable in random netlists.
const KINDS: [CellKind; 15] = [
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::And2,
    CellKind::And3,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Maj3,
];

/// Builds a random DAG netlist: cells only reference earlier nets, so
/// instantiation order is a topological order.
fn random_netlist(
    n_inputs: usize,
    cell_choices: &[(usize, usize, usize, usize, usize)],
) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let inputs = n.input_bus("in", n_inputs);
    let mut nets: Vec<NetId> = inputs.clone();
    for &(kind_idx, a, b, c, d) in cell_choices {
        let kind = KINDS[kind_idx % KINDS.len()];
        let pick = |i: usize| nets[i % nets.len()];
        let ins: Vec<NetId> = (0..kind.arity())
            .map(|slot| pick([a, b, c, d][slot]))
            .collect();
        let out = n.cell(kind, &ins);
        nets.push(out);
    }
    let outputs: Vec<NetId> = nets.iter().rev().take(8).copied().collect();
    n.output_bus("out", &outputs);
    (n, inputs, outputs)
}

/// Draws a random cell list of 1..=max_cells entries.
fn random_cells(
    rng: &mut Rng,
    max_cells: u64,
    fan: u64,
) -> Vec<(usize, usize, usize, usize, usize)> {
    let len = rng.range_u64(1, max_cells + 1) as usize;
    (0..len)
        .map(|_| {
            (
                rng.range_u64(0, 15) as usize,
                rng.range_u64(0, fan) as usize,
                rng.range_u64(0, fan) as usize,
                rng.range_u64(0, fan) as usize,
                rng.range_u64(0, fan) as usize,
            )
        })
        .collect()
}

/// Evaluates the netlist directly in topological (creation) order.
fn reference_eval(n: &Netlist, inputs: &[NetId], value: u64) -> Vec<bool> {
    let mut vals = vec![false; n.net_count()];
    vals[n.one().index()] = true;
    for (i, net) in inputs.iter().enumerate() {
        vals[net.index()] = (value >> i) & 1 == 1;
    }
    for cell in n.cells() {
        let a = vals[cell.inputs[0].index()];
        let b = vals[cell.inputs[1].index()];
        let c = vals[cell.inputs[2].index()];
        let d = vals[cell.inputs[3].index()];
        vals[cell.output.index()] = cell.kind.eval(a, b, c, d);
    }
    vals
}

const NETLIST_CASES: usize = if cfg!(debug_assertions) { 64 } else { 256 };

#[test]
fn settled_values_match_reference() {
    let mut rng = Rng::new(0x5E77);
    for case in 0..NETLIST_CASES {
        let cells = random_cells(&mut rng, 120, 64);
        let (n, inputs, outputs) = random_netlist(10, &cells);
        assert!(n.check().is_ok());
        let mut sim = Simulator::new(&n);
        let vectors = rng.range_u64(1, 6);
        for _ in 0..vectors {
            let v = rng.next_u64() & 0x3FF;
            sim.set_bus(&inputs, v as u128);
            sim.settle();
            let want = reference_eval(&n, &inputs, v);
            for &o in &outputs {
                assert_eq!(
                    sim.read_net(o),
                    want[o.index()],
                    "case {case}: net {o:?} after vector {v:#x}"
                );
            }
        }
    }
}

/// After settling, re-applying the same inputs produces no events.
#[test]
fn settle_is_idempotent() {
    let mut rng = Rng::new(0x1DE4);
    for _ in 0..NETLIST_CASES {
        let cells = random_cells(&mut rng, 60, 32);
        let (n, inputs, _) = random_netlist(8, &cells);
        let mut sim = Simulator::new(&n);
        let v = rng.next_u64() & 0xFF;
        sim.set_bus(&inputs, v as u128);
        sim.settle();
        sim.set_bus(&inputs, v as u128);
        let events = sim.settle();
        assert_eq!(events, 0, "same inputs must cause no transitions");
    }
}

/// Toggling an input there and back leaves every output at its original
/// value.
#[test]
fn there_and_back_restores_state() {
    let mut rng = Rng::new(0x7AB8);
    for _ in 0..NETLIST_CASES {
        let cells = random_cells(&mut rng, 60, 32);
        let (n, inputs, outputs) = random_netlist(8, &cells);
        let mut sim = Simulator::new(&n);
        let base = (rng.next_u64() & 0xFF) as u128;
        let flip_bit = rng.range_u64(0, 8);
        sim.set_bus(&inputs, base);
        sim.settle();
        let before: Vec<bool> = outputs.iter().map(|&o| sim.read_net(o)).collect();
        sim.set_bus(&inputs, base ^ (1 << flip_bit));
        sim.settle();
        sim.set_bus(&inputs, base);
        sim.settle();
        let after: Vec<bool> = outputs.iter().map(|&o| sim.read_net(o)).collect();
        assert_eq!(before, after);
    }
}
