//! Property tests of the event-driven simulator against a direct
//! topological evaluation: whatever glitches occur (and however inertial
//! cancellation filters them), the *settled* values must equal the pure
//! combinational function of the inputs.

use mfm_gatesim::{CellKind, NetId, Netlist, Simulator, TechLibrary};
use proptest::prelude::*;

/// Combinational cell kinds usable in random netlists.
const KINDS: [CellKind; 15] = [
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::And2,
    CellKind::And3,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Maj3,
];

/// Builds a random DAG netlist: cells only reference earlier nets, so
/// instantiation order is a topological order.
fn random_netlist(
    n_inputs: usize,
    cell_choices: &[(usize, usize, usize, usize, usize)],
) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let inputs = n.input_bus("in", n_inputs);
    let mut nets: Vec<NetId> = inputs.clone();
    for &(kind_idx, a, b, c, d) in cell_choices {
        let kind = KINDS[kind_idx % KINDS.len()];
        let pick = |i: usize| nets[i % nets.len()];
        let ins: Vec<NetId> = (0..kind.arity())
            .map(|slot| pick([a, b, c, d][slot]))
            .collect();
        let out = n.cell(kind, &ins);
        nets.push(out);
    }
    let outputs: Vec<NetId> = nets.iter().rev().take(8).copied().collect();
    n.output_bus("out", &outputs);
    (n, inputs, outputs)
}

/// Evaluates the netlist directly in topological (creation) order.
fn reference_eval(n: &Netlist, inputs: &[NetId], value: u64) -> Vec<bool> {
    let mut vals = vec![false; n.net_count()];
    vals[n.one().index()] = true;
    for (i, net) in inputs.iter().enumerate() {
        vals[net.index()] = (value >> i) & 1 == 1;
    }
    for cell in n.cells() {
        let a = vals[cell.inputs[0].index()];
        let b = vals[cell.inputs[1].index()];
        let c = vals[cell.inputs[2].index()];
        let d = vals[cell.inputs[3].index()];
        vals[cell.output.index()] = cell.kind.eval(a, b, c, d);
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn settled_values_match_reference(
        cells in proptest::collection::vec(
            (0usize..15, 0usize..64, 0usize..64, 0usize..64, 0usize..64),
            1..120,
        ),
        vectors in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let (n, inputs, outputs) = random_netlist(10, &cells);
        prop_assert!(n.check().is_ok());
        let mut sim = Simulator::new(&n);
        for v in vectors {
            sim.set_bus(&inputs, (v & 0x3FF) as u128);
            sim.settle();
            let want = reference_eval(&n, &inputs, v & 0x3FF);
            for &o in &outputs {
                prop_assert_eq!(
                    sim.read_net(o),
                    want[o.index()],
                    "net {:?} after vector {:#x}",
                    o,
                    v
                );
            }
        }
    }

    /// After settling, re-applying the same inputs produces no events.
    #[test]
    fn settle_is_idempotent(
        cells in proptest::collection::vec(
            (0usize..15, 0usize..32, 0usize..32, 0usize..32, 0usize..32),
            1..60,
        ),
        v in any::<u64>(),
    ) {
        let (n, inputs, _) = random_netlist(8, &cells);
        let mut sim = Simulator::new(&n);
        sim.set_bus(&inputs, (v & 0xFF) as u128);
        sim.settle();
        sim.set_bus(&inputs, (v & 0xFF) as u128);
        let events = sim.settle();
        prop_assert_eq!(events, 0, "same inputs must cause no transitions");
    }

    /// Toggle counts are conserved: toggling an input there and back leaves
    /// every net at its original value (and an even toggle count).
    #[test]
    fn there_and_back_restores_state(
        cells in proptest::collection::vec(
            (0usize..15, 0usize..32, 0usize..32, 0usize..32, 0usize..32),
            1..60,
        ),
        v in any::<u64>(),
        flip_bit in 0usize..8,
    ) {
        let (n, inputs, outputs) = random_netlist(8, &cells);
        let mut sim = Simulator::new(&n);
        let base = (v & 0xFF) as u128;
        sim.set_bus(&inputs, base);
        sim.settle();
        let before: Vec<bool> = outputs.iter().map(|&o| sim.read_net(o)).collect();
        sim.set_bus(&inputs, base ^ (1 << flip_bit));
        sim.settle();
        sim.set_bus(&inputs, base);
        sim.settle();
        let after: Vec<bool> = outputs.iter().map(|&o| sim.read_net(o)).collect();
        prop_assert_eq!(before, after);
    }
}
