//! Gate-level netlist modelling for the SOCC'17 multi-format multiplier
//! reproduction.
//!
//! The paper evaluates its designs by synthesizing them into a 45 nm
//! low-power standard-cell library (FO4 = 64 ps, NAND2 = 1.06 µm²) and
//! estimating power from simulated switching activity. This crate is the
//! open substitute for that flow:
//!
//! - [`tech`] — a calibrated 45 nm-style cell library: per-cell delay,
//!   area and switching energy.
//! - [`netlist`] — a structural netlist builder with hierarchical block
//!   attribution (every cell belongs to a named block such as `PPGEN` or
//!   `TREE`, so results decompose the way the paper's tables do).
//! - [`sim`] — an event-driven two-valued simulator with per-cell
//!   transport delays. Because events propagate with real delays, **glitches
//!   are simulated**, which is what makes the paper's combinational-versus-
//!   pipelined power comparison (Table III) reproducible.
//! - [`compiled`] — a compiled bit-parallel engine: the netlist lowered
//!   once into a levelized program evaluated over `u64` words (64 lanes
//!   per pass), for correctness-only workloads — fault classification,
//!   batteries and equivalence sweeps — where glitch timing is
//!   irrelevant. Differentially tested against [`sim`].
//! - [`sta`] — topological static timing analysis: critical path per
//!   pipeline stage with per-block delay decomposition.
//! - [`power`] — activity-based power: `P = Σ toggles × E_sw × f` plus
//!   leakage, attributed per block.
//! - [`vector`] — helpers for driving multi-bit buses with integers.
//!
//! # Example
//!
//! ```
//! use mfm_gatesim::netlist::Netlist;
//! use mfm_gatesim::tech::TechLibrary;
//! use mfm_gatesim::sim::Simulator;
//!
//! let mut n = Netlist::new(TechLibrary::cmos45lp());
//! let a = n.input_bus("a", 4);
//! let b = n.input_bus("b", 4);
//! let sum: Vec<_> = a.iter().zip(&b).map(|(&x, &y)| n.xor2(x, y)).collect();
//! n.output_bus("sum", &sum);
//!
//! let mut sim = Simulator::new(&n);
//! sim.set_bus(&a, 0b1100);
//! sim.set_bus(&b, 0b1010);
//! sim.settle();
//! assert_eq!(sim.read_bus(&sum), 0b0110);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compiled;
pub mod export;
pub mod fault;
pub mod netlist;
pub mod power;
pub mod report;
pub mod sim;
pub mod sta;
pub mod tech;
pub mod trace;
pub mod vector;

pub use compiled::{
    first_lanes, lane_mask, CompiledFaultSim, CompiledNetlist, CompiledSim, LaneWord, ALL_LANES,
    LANES, LANE_WORDS, NO_LANES,
};
pub use fault::{CampaignRunner, CampaignStats, FaultKind, FaultOutcome, FaultSite};
pub use netlist::{
    BlockId, Cell, CellId, Driver, Levelization, NetId, Netlist, NetlistError, UndrivenRef,
};
pub use power::{LivePowerTrace, PowerBreakdown, PowerEstimator, PowerSample};
pub use sim::Simulator;
pub use sta::{StaReport, TimingAnalysis};
pub use tech::{CellKind, TechLibrary};
