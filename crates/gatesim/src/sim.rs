//! Event-driven gate-level simulation with inertial delays.
//!
//! The simulator propagates value changes through the netlist with each
//! cell's real propagation delay, so transient *glitches* — multiple
//! transitions of one net within a single evaluation — are simulated and
//! counted. Glitch activity is what differentiates the power of the
//! combinational and pipelined multipliers in the paper's Table III, so
//! this fidelity is essential.
//!
//! Delays are **inertial**: when a cell re-evaluates while an output
//! change is still pending (i.e. within one propagation delay), the new
//! schedule cancels the pending one — pulses narrower than the cell delay
//! are filtered, exactly as a real gate's output capacitance filters them.
//! A pure transport-delay model would propagate arbitrarily narrow pulses
//! and grossly overestimate glitch power.
//!
//! Two usage patterns:
//!
//! - **Combinational**: [`Simulator::set_bus`] + [`Simulator::settle`] per
//!   input vector; every vector counts as one operation.
//! - **Sequential**: [`Simulator::step_cycle`] applies inputs, clocks all
//!   DFFs once and settles; registered values move one stage per call.

use crate::netlist::{Driver, Levelization, NetId, Netlist};
use crate::tech::CellKind;
use mfm_telemetry::{Counter, Histogram, Registry};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Time is tracked in tenths of picoseconds to keep event ordering exact.
type Time = u64;

const TIME_SCALE: f64 = 10.0; // ticks per picosecond

/// Telemetry handles held by an instrumented simulator (see
/// [`Simulator::attach_telemetry`]). When absent, the hot loop pays a
/// single `Option` branch per settle — nothing else.
#[derive(Debug)]
struct SimTelemetry {
    /// `sim.settles` — settle passes completed.
    settles: Counter,
    /// `sim.events` — committed transitions (includes glitches).
    events: Counter,
    /// `sim.cycles` — clock edges issued.
    cycles: Counter,
    /// `sim.settle_events` — committed transitions per settle pass.
    settle_events: Histogram,
    /// Settles per per-block toggle-accumulation window.
    window: u64,
    /// Settles seen since the last window flush.
    settles_in_window: u64,
    /// `sim.block_toggles.<BLOCK>` counters, indexed by block slot.
    block_toggles: Vec<Counter>,
    /// Top-level block slot per net (`u32::MAX` for input/const nets).
    net_block: Vec<u32>,
    /// Toggle snapshot at the last window flush.
    last_toggles: Vec<u64>,
}

impl SimTelemetry {
    /// Accumulates per-block toggle deltas since the last flush into
    /// the `sim.block_toggles.*` counters and rebases the snapshot.
    fn flush_blocks(&mut self, toggles: &[u64]) {
        self.settles_in_window = 0;
        let mut per_block = vec![0u64; self.block_toggles.len()];
        for (ni, (&now, last)) in toggles.iter().zip(self.last_toggles.iter_mut()).enumerate() {
            // `saturating_sub` guards against a snapshot staled by
            // `reset_activity` (which rebases the snapshot itself).
            let delta = now.saturating_sub(*last);
            *last = now;
            if delta != 0 {
                let slot = self.net_block[ni];
                if slot != u32::MAX {
                    per_block[slot as usize] += delta;
                }
            }
        }
        for (counter, n) in self.block_toggles.iter().zip(per_block) {
            if n != 0 {
                counter.add(n);
            }
        }
    }
}

/// A fault overlaid on one net (see [`Simulator::inject_stuck_at`] and
/// [`Simulator::inject_transient`]).
#[derive(Debug, Clone, Copy)]
struct ActiveFault {
    /// The value the net is forced to while the fault is active.
    forced: bool,
    /// Tick at which a transient fault heals; `None` for stuck-at faults.
    expires: Option<Time>,
}

/// An event-driven two-valued simulator over a [`Netlist`].
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    /// Shared levelization: topo order + CSR net→fanout map, borrowed
    /// from the netlist's cache (computed once per netlist, not per
    /// simulator).
    lev: &'a Levelization,
    heap: BinaryHeap<Reverse<(Time, u64, u32, bool)>>,
    seq: u64,
    now: Time,
    /// Output transitions per net since the last [`Simulator::reset_activity`].
    toggles: Vec<u64>,
    /// Sequence number of the newest scheduled event per net; older
    /// pending events are stale (inertial cancellation).
    newest: Vec<u64>,
    /// Per-cell integer delay in ticks.
    delays: Vec<Time>,
    /// DFF cell indices, in instantiation order.
    dff_cells: Vec<u32>,
    /// Clock cycles issued since the last reset.
    cycles: u64,
    /// Total committed events since the last reset (includes glitches).
    events: u64,
    /// Committed-transition recording for VCD export, when enabled.
    trace: Option<Vec<crate::trace::TraceEvent>>,
    /// Net values at the moment tracing was enabled.
    trace_initial: Vec<bool>,
    /// Faults overlaid on nets, keyed by net index. A `BTreeMap` keeps
    /// iteration (and thus event ordering on clear) deterministic.
    faults: BTreeMap<u32, ActiveFault>,
    /// When set, [`Simulator::settle`] runs the zero-delay semantics of
    /// [`Simulator::set_zero_delay`] instead of inertial-delay event
    /// propagation.
    zero_delay: bool,
    /// Committed-transition ceiling per settle pass, when set (see
    /// [`Simulator::set_settle_budget`]).
    settle_budget: Option<u64>,
    /// Latched when a settle pass was aborted by the budget; cleared by
    /// [`Simulator::take_budget_exceeded`].
    budget_exceeded: bool,
    /// Metrics handles, when attached (see
    /// [`Simulator::attach_telemetry`]).
    telemetry: Option<SimTelemetry>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator and initializes every net to its settled value
    /// for all-zero inputs and all-zero register state.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (validate with
    /// [`Netlist::check`] first for a recoverable error).
    pub fn new(netlist: &'a Netlist) -> Self {
        let lev = netlist
            .levelization()
            .expect("Simulator requires an acyclic netlist");
        let mut delays = Vec::with_capacity(netlist.cell_count());
        for cell in netlist.cells() {
            let d = netlist.tech().params(cell.kind).delay_ps;
            delays.push((d * TIME_SCALE).round() as Time);
        }
        let dff_cells = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::Dff)
            .map(|(i, _)| i as u32)
            .collect();

        let mut sim = Simulator {
            netlist,
            values: vec![false; netlist.net_count()],
            lev,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            toggles: vec![0; netlist.net_count()],
            newest: vec![0; netlist.net_count()],
            delays,
            dff_cells,
            cycles: 0,
            events: 0,
            trace: None,
            trace_initial: Vec::new(),
            faults: BTreeMap::new(),
            zero_delay: false,
            settle_budget: None,
            budget_exceeded: false,
            telemetry: None,
        };
        // Constant-1 net.
        sim.values[netlist.one().index()] = true;
        // Settle the all-zero state without counting activity.
        for &cell_id in lev.order() {
            let cell = &netlist.cells()[cell_id.index()];
            let out = sim.eval_cell(cell_id.index());
            sim.values[cell.output.index()] = out;
        }
        sim
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Attaches metrics to this simulator:
    ///
    /// - counters `sim.settles`, `sim.events`, `sim.cycles`;
    /// - histogram `sim.settle_events` (committed transitions per
    ///   settle pass — the glitching profile);
    /// - counters `sim.block_toggles.<BLOCK>` per top-level netlist
    ///   block, accumulated every `window` settles (per-settle
    ///   attribution would scan every net on the hot path).
    ///
    /// Re-attaching replaces the previous registration (flushing it
    /// first). Without telemetry the simulator pays one `Option`
    /// branch per settle.
    pub fn attach_telemetry(&mut self, registry: &Registry, window: u64) {
        self.flush_telemetry();
        let mut names: Vec<&str> = Vec::new();
        let mut net_block = vec![u32::MAX; self.netlist.net_count()];
        for cell in self.netlist.cells() {
            let name = self.netlist.top_level_block_name(cell.block);
            let slot = names.iter().position(|&n| n == name).unwrap_or_else(|| {
                names.push(name);
                names.len() - 1
            });
            net_block[cell.output.index()] = slot as u32;
        }
        let block_toggles = names
            .iter()
            .map(|n| registry.counter(&format!("sim.block_toggles.{n}")))
            .collect();
        self.telemetry = Some(SimTelemetry {
            settles: registry.counter("sim.settles"),
            events: registry.counter("sim.events"),
            cycles: registry.counter("sim.cycles"),
            settle_events: registry.histogram("sim.settle_events"),
            window: window.max(1),
            settles_in_window: 0,
            block_toggles,
            net_block,
            last_toggles: self.toggles.clone(),
        });
    }

    /// Forces a per-block toggle flush mid-window (call before taking a
    /// registry snapshot). No-op when no telemetry is attached.
    pub fn flush_telemetry(&mut self) {
        if let Some(t) = &mut self.telemetry {
            t.flush_blocks(&self.toggles);
        }
    }

    /// Flushes and removes the attached telemetry, if any.
    pub fn detach_telemetry(&mut self) {
        self.flush_telemetry();
        self.telemetry = None;
    }

    /// Whether telemetry is attached.
    pub fn has_telemetry(&self) -> bool {
        self.telemetry.is_some()
    }

    #[inline]
    fn eval_cell(&self, idx: usize) -> bool {
        let cell = &self.netlist.cells()[idx];
        let a = self.values[cell.inputs[0].index()];
        let b = self.values[cell.inputs[1].index()];
        let c = self.values[cell.inputs[2].index()];
        let d = self.values[cell.inputs[3].index()];
        cell.kind.eval(a, b, c, d)
    }

    /// Schedules a value on a net at the current time (used for primary
    /// inputs). Takes effect on the next [`Simulator::settle`].
    pub fn set_net(&mut self, net: NetId, value: bool) {
        debug_assert!(matches!(
            self.netlist.driver(net),
            Driver::Input | Driver::Const0 | Driver::Const1
        ));
        self.schedule(self.now, net, value);
    }

    /// Schedules an integer value onto a bus (LSB first).
    pub fn set_bus(&mut self, bus: &[NetId], value: u128) {
        for (i, &net) in bus.iter().enumerate() {
            self.set_net(net, (value >> i) & 1 == 1);
        }
    }

    /// Reads a net's current value.
    pub fn read_net(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads a bus as an integer (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 128 bits.
    pub fn read_bus(&self, bus: &[NetId]) -> u128 {
        assert!(bus.len() <= 128, "bus too wide for u128");
        let mut v = 0u128;
        for (i, &net) in bus.iter().enumerate() {
            if self.values[net.index()] {
                v |= 1 << i;
            }
        }
        v
    }

    /// The value a net's driver currently produces (ignoring any fault).
    /// For primary inputs the externally applied `event_val` is kept.
    fn driven_value(&self, net: NetId, event_val: bool) -> bool {
        match self.netlist.driver(net) {
            Driver::Cell(c) => self.eval_cell(c.index()),
            Driver::Const0 => false,
            Driver::Const1 => true,
            Driver::Input => event_val,
        }
    }

    /// Forces a net to `value` until [`Simulator::clear_fault`] removes the
    /// fault — a stuck-at-0/1 fault. The netlist is untouched; the fault is
    /// an overlay inside the simulator, so campaigns over thousands of
    /// sites reuse one netlist and one simulator.
    ///
    /// Takes effect on the next [`Simulator::settle`] (or
    /// [`Simulator::step_cycle`]), like a primary-input change.
    pub fn inject_stuck_at(&mut self, net: NetId, value: bool) {
        self.faults.insert(
            net.0,
            ActiveFault {
                forced: value,
                expires: None,
            },
        );
        self.schedule(self.now, net, value);
    }

    /// Flips a net for `width_ps` picoseconds of simulated time — a
    /// transient SEU (single-event upset). The net is forced to the
    /// complement of its current value; after the window the fault heals
    /// itself and the net returns to whatever its driver produces.
    pub fn inject_transient(&mut self, net: NetId, width_ps: f64) {
        let width = ((width_ps * TIME_SCALE).round() as Time).max(1);
        let flipped = !self.values[net.index()];
        let expires = self.now + width;
        self.faults.insert(
            net.0,
            ActiveFault {
                forced: flipped,
                expires: Some(expires),
            },
        );
        self.schedule(self.now, net, flipped);
        // Wake-up event at the heal time; the committed value is recomputed
        // from the driver when it matures.
        self.schedule(expires, net, flipped);
    }

    /// Removes the fault on `net` (if any) and schedules the net back to
    /// its driven value. Settle afterwards to propagate the repair.
    pub fn clear_fault(&mut self, net: NetId) {
        if self.faults.remove(&net.0).is_some() {
            let v = self.driven_value(net, self.values[net.index()]);
            self.schedule(self.now, net, v);
        }
    }

    /// Removes every active fault (see [`Simulator::clear_fault`]).
    pub fn clear_faults(&mut self) {
        let nets: Vec<u32> = self.faults.keys().copied().collect();
        for ni in nets {
            self.clear_fault(NetId(ni));
        }
    }

    /// Number of currently active faults (transients disappear when their
    /// window matures during a settle).
    pub fn active_faults(&self) -> usize {
        self.faults.len()
    }

    /// The currently active *stuck-at* faults as `(net, forced value)`
    /// pairs, in deterministic net order. Transient faults (which are
    /// time-dependent and only meaningful to the event-driven engine) are
    /// excluded — this is the overlay a compiled correctness check
    /// replays (see [`crate::compiled`]).
    pub fn stuck_faults(&self) -> Vec<(NetId, bool)> {
        self.faults
            .iter()
            .filter(|(_, f)| f.expires.is_none())
            .map(|(&ni, f)| (NetId(ni), f.forced))
            .collect()
    }

    fn schedule(&mut self, at: Time, net: NetId, value: bool) {
        self.seq += 1;
        self.newest[net.index()] = self.seq;
        self.heap.push(Reverse((at, self.seq, net.0, value)));
    }

    /// Caps the committed transitions of every following settle pass —
    /// the gate-sim half of a runaway-simulation watchdog. A settle pass
    /// that commits more than `budget` transitions is **aborted**: all
    /// pending events are dropped, [`Simulator::take_budget_exceeded`]
    /// latches, and the net state is left mid-propagation (inconsistent
    /// with the inputs). Callers that trip the budget must treat the
    /// operation's outputs as garbage and re-drive or repair the
    /// simulator before trusting it again. `None` (the default) disables
    /// the cap.
    ///
    /// An acyclic netlist always quiesces, so a generous budget (a few
    /// multiples of the worst observed settle, e.g. from the
    /// `sim.settle_events` histogram) never fires on healthy hardware;
    /// it exists to bound the work a glitch-storming fault site can cost
    /// per operation.
    pub fn set_settle_budget(&mut self, budget: Option<u64>) {
        self.settle_budget = budget;
    }

    /// The configured settle budget, if any.
    pub fn settle_budget(&self) -> Option<u64> {
        self.settle_budget
    }

    /// Returns whether a settle pass was aborted by the budget since the
    /// last call, and clears the latch.
    pub fn take_budget_exceeded(&mut self) -> bool {
        std::mem::take(&mut self.budget_exceeded)
    }

    /// Rebuilds every combinational net from the current primary inputs,
    /// register outputs and fault overlays with one zero-delay
    /// topological re-evaluation, discarding all pending events. DFF
    /// outputs (sequential state) are left untouched. This is the repair
    /// primitive for a budget-aborted settle (see
    /// [`Simulator::set_settle_budget`]): it restores a consistent net
    /// state without replaying the glitch storm. Transition counters are
    /// **not** advanced — repair work is not workload activity — and
    /// expired transient faults are dropped.
    pub fn recompute(&mut self) {
        self.heap.clear();
        let now = self.now;
        self.faults.retain(|_, f| f.expires.is_none_or(|e| now < e));
        // Force faulted primary inputs first; cell outputs are forced in
        // the topo pass below.
        for (&ni, f) in &self.faults {
            self.values[ni as usize] = f.forced;
        }
        for &cell_id in self.lev.order() {
            let cell = &self.netlist.cells()[cell_id.index()];
            let out = cell.output;
            self.values[out.index()] = match self.faults.get(&out.0) {
                Some(f) => f.forced,
                None => self.eval_cell(cell_id.index()),
            };
        }
    }

    /// Switches the simulator between inertial-delay event propagation
    /// (the default) and **zero-delay** settling.
    ///
    /// Under zero delay a [`Simulator::settle`] applies every pending
    /// source event (primary inputs, DFF Q writes, fault forces) —
    /// newest schedule per net wins, as under inertial cancellation —
    /// and then re-evaluates the combinational logic in one topological
    /// pass, counting exactly one toggle per net whose settled value
    /// changed. No intermediate (glitch) transitions exist, so per-net
    /// toggle counts equal the XOR/popcount activity sweep of the
    /// compiled engine on the same vectors (`tests/power_parity.rs`
    /// pins this bit-level vs word-level parity). This is the reference
    /// semantics the glitch-inflation calibration divides by.
    ///
    /// Transient (SEU) faults are timing-dependent and meaningless at
    /// zero delay; injecting one while the mode is active is
    /// unsupported (debug builds assert).
    pub fn set_zero_delay(&mut self, on: bool) {
        self.zero_delay = on;
    }

    /// Whether zero-delay settling is active.
    pub fn zero_delay(&self) -> bool {
        self.zero_delay
    }

    /// Zero-delay settle: drain pending source events, then one
    /// topological re-evaluation counting settled-state deltas.
    fn settle_zero_delay(&mut self) -> u64 {
        let mut committed = 0u64;
        // Apply pending source events in schedule order; per net the
        // newest schedule wins, mirroring inertial cancellation.
        let mut pending: Vec<(u64, u32, bool)> = Vec::with_capacity(self.heap.len());
        while let Some(Reverse((_, seq, net, val))) = self.heap.pop() {
            pending.push((seq, net, val));
        }
        pending.sort_unstable();
        for (seq, net, val) in pending {
            let ni = net as usize;
            let mut val = val;
            if let Some(&f) = self.faults.get(&net) {
                debug_assert!(
                    f.expires.is_none(),
                    "transient faults are timing-dependent; unsupported at zero delay"
                );
                val = f.forced;
            } else if self.newest[ni] != seq {
                continue; // superseded by a newer schedule
            }
            if self.values[ni] != val {
                self.values[ni] = val;
                self.toggles[ni] += 1;
                committed += 1;
                if let Some(tr) = &mut self.trace {
                    tr.push((self.now, net, val));
                }
            }
        }
        // Each combinational net settles directly to its fixed point:
        // at most one counted transition per net, never a glitch.
        for &cell_id in self.lev.order() {
            let cell = &self.netlist.cells()[cell_id.index()];
            let out = cell.output;
            let v = match self.faults.get(&out.0) {
                Some(f) => f.forced,
                None => self.eval_cell(cell_id.index()),
            };
            if self.values[out.index()] != v {
                self.values[out.index()] = v;
                self.toggles[out.index()] += 1;
                committed += 1;
                if let Some(tr) = &mut self.trace {
                    tr.push((self.now, out.0, v));
                }
            }
        }
        self.events += committed;
        if let Some(t) = &mut self.telemetry {
            t.settles.inc();
            t.events.add(committed);
            t.settle_events.observe(committed as f64);
            t.settles_in_window += 1;
            if t.settles_in_window >= t.window {
                t.flush_blocks(&self.toggles);
            }
        }
        committed
    }

    /// Propagates all pending events until the netlist is quiescent.
    /// Returns the number of committed transitions (including glitches
    /// — unless zero-delay mode is active, see
    /// [`Simulator::set_zero_delay`]).
    pub fn settle(&mut self) -> u64 {
        if self.zero_delay {
            return self.settle_zero_delay();
        }
        let mut committed = 0u64;
        let mut touched: Vec<u32> = Vec::new();
        let mut affected: Vec<u32> = Vec::new();
        while let Some(&Reverse((t, _, _, _))) = self.heap.peek() {
            if self.settle_budget.is_some_and(|b| committed > b) {
                // Watchdog abort: drop everything still in flight. Any
                // armed transient faults are abandoned mid-pulse too —
                // the caller is expected to repair (clear faults and
                // re-settle) before reuse.
                self.budget_exceeded = true;
                self.heap.clear();
                break;
            }
            self.now = t;
            touched.clear();
            // Commit every *current* (non-cancelled) event at this
            // timestamp. An event is stale if the driving cell scheduled a
            // newer value before this one matured — inertial filtering.
            while let Some(&Reverse((t2, seq, net, val))) = self.heap.peek() {
                if t2 != t {
                    break;
                }
                self.heap.pop();
                let ni = net as usize;
                let mut val = val;
                if let Some(&f) = self.faults.get(&net) {
                    // Faulted nets bypass inertial cancellation: the forced
                    // value must land no matter how the driver glitches, and
                    // a transient's heal event must never be filtered.
                    if f.expires.is_some_and(|e| t2 >= e) {
                        self.faults.remove(&net);
                        val = self.driven_value(NetId(net), val);
                    } else {
                        val = f.forced;
                    }
                } else if self.newest[ni] != seq {
                    continue; // cancelled by a newer schedule
                }
                if self.values[ni] != val {
                    self.values[ni] = val;
                    self.toggles[ni] += 1;
                    committed += 1;
                    touched.push(net);
                    if let Some(tr) = &mut self.trace {
                        tr.push((t, net, val));
                    }
                }
            }
            // Evaluate each affected combinational cell once.
            affected.clear();
            for &net in &touched {
                affected.extend_from_slice(self.lev.fanout_of(NetId(net)));
            }
            affected.sort_unstable();
            affected.dedup();
            for &ci in &affected {
                let out_net = self.netlist.cells()[ci as usize].output;
                let new_val = self.eval_cell(ci as usize);
                self.schedule(t + self.delays[ci as usize], out_net, new_val);
            }
        }
        self.events += committed;
        if let Some(t) = &mut self.telemetry {
            t.settles.inc();
            t.events.add(committed);
            t.settle_events.observe(committed as f64);
            t.settles_in_window += 1;
            if t.settles_in_window >= t.window {
                t.flush_blocks(&self.toggles);
            }
        }
        committed
    }

    /// Applies one clock cycle to a sequential netlist:
    ///
    /// 1. samples every DFF's D input (the values settled in the previous
    ///    cycle),
    /// 2. drives the sampled values onto the Q outputs after the clk→q
    ///    delay,
    /// 3. applies `inputs` (bus, value) pairs at the same clock edge,
    /// 4. settles the combinational logic.
    ///
    /// Returns the number of committed transitions in the cycle.
    pub fn step_cycle(&mut self, inputs: &[(&[NetId], u128)]) -> u64 {
        // Sample D inputs *before* anything changes.
        let sampled: Vec<(u32, bool)> = self
            .dff_cells
            .iter()
            .map(|&ci| {
                let cell = &self.netlist.cells()[ci as usize];
                (ci, self.values[cell.inputs[0].index()])
            })
            .collect();
        // Clock edge at a fresh timestamp.
        let edge = self.now;
        for (ci, d) in sampled {
            let cell = &self.netlist.cells()[ci as usize];
            self.schedule(edge + self.delays[ci as usize], cell.output, d);
        }
        for (bus, value) in inputs {
            self.set_bus(bus, *value);
        }
        self.cycles += 1;
        if let Some(t) = &self.telemetry {
            t.cycles.inc();
        }
        self.settle()
    }

    /// Transition counts per net since the last reset.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Total committed transitions since the last reset.
    pub fn total_events(&self) -> u64 {
        self.events
    }

    /// Clock cycles issued since the last reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Starts recording committed transitions for VCD export
    /// (see [`crate::trace::write_vcd`]). Snapshot of the current values
    /// becomes the VCD initial state.
    pub fn enable_trace(&mut self) {
        self.trace_initial = self.values.clone();
        self.trace = Some(Vec::new());
    }

    /// The recorded transitions, if tracing is enabled.
    pub fn trace(&self) -> Option<&[crate::trace::TraceEvent]> {
        self.trace.as_deref()
    }

    /// Net values snapshot taken when tracing was enabled.
    pub fn initial_trace_values(&self) -> &[bool] {
        &self.trace_initial
    }

    /// Clears all activity counters (toggles, events, cycles) without
    /// touching net state. Call after warm-up vectors.
    ///
    /// Attached telemetry counters are *not* cleared (registry metrics
    /// are monotonic); pending per-block toggles are flushed and the
    /// window snapshot rebased so later windows stay consistent.
    pub fn reset_activity(&mut self) {
        if let Some(t) = &mut self.telemetry {
            t.flush_blocks(&self.toggles);
            t.last_toggles.iter_mut().for_each(|v| *v = 0);
        }
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.events = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::tech::TechLibrary;

    fn fresh() -> Netlist {
        Netlist::new(TechLibrary::cmos45lp())
    }

    #[test]
    fn zero_delay_counts_settled_transitions_without_glitches() {
        // Hazard circuit: y = a AND delay3(!a). Under inertial delays a
        // rising edge on `a` raises y briefly before the slow inverted
        // path pulls it back down — a glitch the toggle counters see.
        // Under zero delay only settled-state transitions exist, so y
        // (which settles to 0 for every input) never toggles.
        let mut n = fresh();
        let a = n.input("a");
        let na = n.not(a);
        let nb = n.not(na);
        let nc = n.not(nb);
        let y = n.and2(a, nc);
        let mut zd = Simulator::new(&n);
        zd.set_zero_delay(true);
        assert!(zd.zero_delay());
        zd.set_net(a, true);
        zd.settle();
        assert!(!zd.read_net(y));
        assert_eq!(zd.toggles()[y.index()], 0, "no glitch at zero delay");
        assert_eq!(zd.toggles()[a.index()], 1);
        assert_eq!(zd.toggles()[na.index()], 1);
        // The inertial-delay run on the same stimulus sees the hazard.
        let mut ed = Simulator::new(&n);
        ed.set_net(a, true);
        ed.settle();
        assert!(!ed.read_net(y), "same fixed point");
        assert!(
            ed.toggles()[y.index()] >= 2,
            "inertial run counts the glitch (got {})",
            ed.toggles()[y.index()]
        );
    }

    #[test]
    fn zero_delay_respects_stuck_faults_and_newest_event_wins() {
        let mut n = fresh();
        let a = n.input("a");
        let y = n.not(a);
        let mut sim = Simulator::new(&n);
        sim.set_zero_delay(true);
        // Two schedules before one settle: only the newest lands, so
        // `a` counts a single toggle, exactly like one compiled pass.
        sim.set_net(a, true);
        sim.set_net(a, false);
        sim.set_net(a, true);
        sim.settle();
        assert!(sim.read_net(a) && !sim.read_net(y));
        assert_eq!(sim.toggles()[a.index()], 1);
        assert_eq!(sim.toggles()[y.index()], 1);
        // Stuck-at forces override both events and drivers.
        sim.inject_stuck_at(y, true);
        sim.settle();
        assert!(sim.read_net(y));
        sim.set_net(a, false);
        sim.settle();
        assert!(sim.read_net(y), "fault holds against the driver");
        sim.clear_fault(y);
        sim.settle();
        assert!(sim.read_net(y), "!a with a=0 drives 1 anyway");
    }

    #[test]
    fn xor_bus() {
        let mut n = fresh();
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let x: Vec<_> = a.iter().zip(&b).map(|(&p, &q)| n.xor2(p, q)).collect();
        let mut sim = Simulator::new(&n);
        sim.set_bus(&a, 0xF0);
        sim.set_bus(&b, 0x3C);
        sim.settle();
        assert_eq!(sim.read_bus(&x), 0xF0 ^ 0x3C);
    }

    #[test]
    fn full_adder_all_inputs() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let (s, co) = n.full_adder(a, b, c);
        let mut sim = Simulator::new(&n);
        for v in 0..8u128 {
            sim.set_bus(&[a, b, c], v);
            sim.settle();
            let ones = v.count_ones() as u128;
            assert_eq!(sim.read_net(s) as u128, ones & 1, "v={v}");
            assert_eq!(sim.read_net(co) as u128, (ones >> 1) & 1, "v={v}");
        }
    }

    #[test]
    fn initial_state_is_settled() {
        // A NAND of two zero inputs is 1 at t=0 — no events needed.
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let y = n.nand2(a, b);
        let mut sim = Simulator::new(&n);
        assert!(sim.read_net(y));
        let events = sim.settle();
        assert_eq!(events, 0, "nothing pending after construction");
    }

    #[test]
    fn glitches_are_counted() {
        // y = a XOR delay(a): logically constant 0, but a transition on
        // `a` reaches the XOR at two different times. With four inverters
        // the pulse (4 × inv delay ≈ 90 ps) is wider than the XOR delay
        // (≈ 58 ps), so it propagates: a glitch.
        let mut n = fresh();
        let a = n.input("a");
        let mut d = a;
        for _ in 0..4 {
            d = n.cell(CellKind::Inv, &[d]);
        }
        let y = n.cell(CellKind::Xor2, &[a, d]);
        let mut sim = Simulator::new(&n);
        sim.set_net(a, true);
        sim.settle();
        assert!(!sim.read_net(y), "final value is 0");
        assert_eq!(
            sim.toggles()[y.index()],
            2,
            "the XOR output pulsed high and back: a glitch"
        );
    }

    #[test]
    fn narrow_pulses_are_inertially_filtered() {
        // With only two inverters the skew (≈ 45 ps) is narrower than the
        // XOR's propagation delay (≈ 58 ps): the re-evaluation cancels the
        // pending change and no glitch emerges.
        let mut n = fresh();
        let a = n.input("a");
        let i1 = n.cell(CellKind::Inv, &[a]);
        let i2 = n.cell(CellKind::Inv, &[i1]);
        let y = n.cell(CellKind::Xor2, &[a, i2]);
        let mut sim = Simulator::new(&n);
        sim.set_net(a, true);
        sim.settle();
        assert!(!sim.read_net(y));
        assert_eq!(
            sim.toggles()[y.index()],
            0,
            "pulse narrower than the gate delay must be filtered"
        );
    }

    #[test]
    fn dff_pipeline_moves_one_stage_per_cycle() {
        let mut n = fresh();
        let d = n.input("d");
        let q1 = n.dff(d);
        let q2 = n.dff(q1);
        let mut sim = Simulator::new(&n);
        // step_cycle samples D *before* applying inputs, so the first edge
        // captures the initial d = 0.
        sim.step_cycle(&[(&[d], 1)]);
        let q1_after_1 = sim.read_net(q1);
        let q2_after_1 = sim.read_net(q2);
        sim.step_cycle(&[(&[d], 1)]);
        let q1_after_2 = sim.read_net(q1);
        let q2_after_2 = sim.read_net(q2);
        sim.step_cycle(&[(&[d], 1)]);
        let q2_after_3 = sim.read_net(q2);
        // Sampling precedes input application: first edge captures d=0.
        assert!(!q1_after_1);
        assert!(!q2_after_1);
        assert!(q1_after_2, "second edge captures d=1 set in cycle 1");
        assert!(!q2_after_2);
        assert!(q2_after_3, "value reaches stage 2 one cycle later");
    }

    #[test]
    fn activity_reset() {
        let mut n = fresh();
        let a = n.input("a");
        let y = n.not(a);
        let mut sim = Simulator::new(&n);
        sim.set_net(a, true);
        sim.settle();
        assert!(sim.total_events() > 0);
        sim.reset_activity();
        assert_eq!(sim.total_events(), 0);
        assert_eq!(sim.toggles()[y.index()], 0);
        // State is preserved across the reset.
        assert!(!sim.read_net(y));
    }

    #[test]
    fn stuck_at_overrides_driver_until_cleared() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.not(y);
        let mut sim = Simulator::new(&n);
        sim.set_bus(&[a, b], 0b11);
        sim.settle();
        assert!(sim.read_net(y) && !sim.read_net(z));
        // Stuck-at-0 on the AND output: downstream logic sees the fault.
        sim.inject_stuck_at(y, false);
        sim.settle();
        assert!(!sim.read_net(y) && sim.read_net(z));
        // Driver glitching cannot overwrite the forced value.
        sim.set_bus(&[a, b], 0b01);
        sim.settle();
        sim.set_bus(&[a, b], 0b11);
        sim.settle();
        assert!(!sim.read_net(y), "fault persists across input changes");
        assert_eq!(sim.active_faults(), 1);
        // Clearing restores the driven value.
        sim.clear_fault(y);
        sim.settle();
        assert!(sim.read_net(y) && !sim.read_net(z));
        assert_eq!(sim.active_faults(), 0);
    }

    #[test]
    fn transient_flip_heals_after_window() {
        let mut n = fresh();
        let a = n.input("a");
        let y = n.buf(a);
        let z = n.not(y);
        let mut sim = Simulator::new(&n);
        sim.set_net(a, true);
        sim.settle();
        assert!(sim.read_net(y) && !sim.read_net(z));
        // SEU on y: a wide pulse propagates through the inverter, then the
        // fault heals itself and the settled state is fault-free.
        let z_toggles_before = sim.toggles()[z.index()];
        sim.inject_transient(y, 500.0);
        sim.settle();
        assert_eq!(sim.active_faults(), 0, "transient healed during settle");
        assert!(sim.read_net(y) && !sim.read_net(z));
        assert_eq!(
            sim.toggles()[z.index()],
            z_toggles_before + 2,
            "the upset pulsed the inverter output there and back"
        );
    }

    #[test]
    fn faulted_dff_input_is_captured() {
        let mut n = fresh();
        let d = n.input("d");
        let q = n.dff(d);
        let mut sim = Simulator::new(&n);
        // d is driven 1 but stuck at 0: the register must capture 0.
        sim.inject_stuck_at(d, false);
        sim.step_cycle(&[(&[d], 1)]);
        sim.step_cycle(&[(&[d], 1)]);
        assert!(!sim.read_net(q), "register captured the faulted D value");
        sim.clear_fault(d);
        sim.step_cycle(&[(&[d], 1)]);
        sim.step_cycle(&[(&[d], 1)]);
        assert!(sim.read_net(q), "repairing the fault restores operation");
    }

    #[test]
    fn telemetry_counts_settles_events_cycles() {
        use mfm_telemetry::Registry;
        let mut n = fresh();
        let a = n.input("a");
        let y = n.in_block("BLK", |n| n.not(a));
        let d = n.dff(y);
        let _ = d;
        let reg = Registry::new();
        let mut sim = Simulator::new(&n);
        sim.attach_telemetry(&reg, 2);
        for i in 0..4u128 {
            sim.step_cycle(&[(&[a], i & 1)]);
        }
        assert_eq!(reg.counter("sim.cycles").get(), 4);
        assert_eq!(reg.counter("sim.settles").get(), 4);
        assert_eq!(reg.counter("sim.events").get(), sim.total_events());
        assert_eq!(reg.histogram("sim.settle_events").count(), 4);
        // Windowed per-block attribution: after a flush, the BLK counter
        // carries exactly the inverter output's toggles.
        sim.flush_telemetry();
        assert_eq!(
            reg.counter("sim.block_toggles.BLK").get(),
            sim.toggles()[y.index()]
        );
        let s = reg.snapshot_json();
        mfm_telemetry::json::check(&s).unwrap();
    }

    #[test]
    fn telemetry_survives_activity_reset() {
        use mfm_telemetry::Registry;
        let mut n = fresh();
        let a = n.input("a");
        let y = n.in_block("B", |n| n.not(a));
        let reg = Registry::new();
        let mut sim = Simulator::new(&n);
        sim.attach_telemetry(&reg, 1000); // window never fires on its own
        sim.set_net(a, true);
        sim.settle();
        let toggles_before = sim.toggles()[y.index()];
        sim.reset_activity(); // must flush pending deltas, not drop them
        sim.set_net(a, false);
        sim.settle();
        sim.flush_telemetry();
        assert_eq!(
            reg.counter("sim.block_toggles.B").get(),
            toggles_before + sim.toggles()[y.index()],
            "registry metrics are monotonic across reset_activity"
        );
    }

    #[test]
    fn settle_budget_aborts_runaway_settles() {
        // A 64-stage inverter chain: one input edge commits 64+ events.
        let mut n = fresh();
        let a = n.input("a");
        let mut d = a;
        for _ in 0..64 {
            d = n.cell(CellKind::Inv, &[d]);
        }
        let mut sim = Simulator::new(&n);
        sim.set_settle_budget(Some(8));
        sim.set_net(a, true);
        let committed = sim.settle();
        assert!(sim.take_budget_exceeded(), "budget must abort the pass");
        assert!(committed <= 10, "aborted near the cap, not at the end");
        assert!(!sim.take_budget_exceeded(), "latch clears on read");
        // With the budget lifted, re-driving the input settles fully and
        // the chain ends consistent again.
        sim.set_settle_budget(None);
        sim.set_bus(&[a], 0);
        sim.settle();
        sim.set_net(a, true);
        sim.settle();
        assert!(!sim.take_budget_exceeded());
        assert!(sim.read_net(d), "even chain: output follows the input");
        // A generous budget never fires on a healthy settle.
        sim.set_settle_budget(Some(10_000));
        sim.set_net(a, false);
        sim.settle();
        assert!(!sim.take_budget_exceeded());
        assert!(!sim.read_net(d));
    }

    #[test]
    fn wide_bus_roundtrip() {
        let mut n = fresh();
        let a = n.input_bus("a", 128);
        let buf: Vec<_> = a.iter().map(|&x| n.buf(x)).collect();
        let mut sim = Simulator::new(&n);
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        sim.set_bus(&a, v);
        sim.settle();
        assert_eq!(sim.read_bus(&buf), v);
    }
}
