//! Fault models and fault-injection campaigns.
//!
//! A shared multi-format datapath is a shared failure domain: one stuck-at
//! or particle-induced upset corrupts every format that flows through it.
//! This module provides the machinery to quantify that exposure on the
//! gate-level netlist:
//!
//! - [`FaultKind`] — stuck-at-0/1 on any net, or a transient SEU flip with
//!   a configurable time window. Faults are *overlaid* on the simulator
//!   ([`Simulator::inject_stuck_at`], [`Simulator::inject_transient`]), so
//!   a campaign over thousands of sites reuses a single netlist.
//! - [`enumerate_stuck_sites`] — every cell-output net of the netlist,
//!   both polarities, tagged with the top-level block (`PPGEN`, `TREE`,
//!   `CPA`, …) of the driving cell.
//! - [`CampaignRunner`] — injects each site, hands the faulted simulator
//!   to a caller-supplied classifier that drives operand vectors, and
//!   aggregates per-block [masked / detected / silent](FaultOutcome)
//!   counts into a [`CampaignStats`].
//!
//! The classifier is a closure so that this crate stays ignorant of
//! operand formats; `mfm-evalkit` supplies one that drives multiplier
//! operands and consults the `mfmult::selfcheck` residue checker.

use crate::netlist::{Driver, NetId, Netlist};
use crate::report::Table;
use crate::sim::Simulator;
use mfm_prng::Rng;
use std::collections::BTreeMap;

/// The supported fault models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Net permanently forced to 0.
    StuckAt0,
    /// Net permanently forced to 1.
    StuckAt1,
    /// Net inverted for a window of the given width in picoseconds, then
    /// self-healing (a single-event upset).
    Transient {
        /// Width of the upset window in picoseconds.
        width_ps: f64,
    },
}

impl FaultKind {
    /// Applies this fault to `net` on a running simulator.
    pub fn inject(self, sim: &mut Simulator<'_>, net: NetId) {
        match self {
            FaultKind::StuckAt0 => sim.inject_stuck_at(net, false),
            FaultKind::StuckAt1 => sim.inject_stuck_at(net, true),
            FaultKind::Transient { width_ps } => sim.inject_transient(net, width_ps),
        }
    }
}

/// One injectable fault location: a net plus the fault applied to it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSite {
    /// The faulted net.
    pub net: NetId,
    /// The fault model applied at this site.
    pub kind: FaultKind,
    /// Top-level block name of the net's driving cell (`PPGEN`, `TREE`,
    /// `CPA`, …; `input` for primary inputs).
    pub block: String,
}

/// Enumerates stuck-at-0 and stuck-at-1 sites on every cell-output net,
/// in deterministic (netlist) order.
///
/// Primary inputs and constant nets are excluded: input faults are
/// operand corruptions (visible to any end-to-end check by construction)
/// and constants have no driver to fight.
pub fn enumerate_stuck_sites(netlist: &Netlist) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for cell in netlist.cells() {
        if let Driver::Cell(_) = netlist.driver(cell.output) {
            let block = netlist.top_level_block_name(cell.block).to_string();
            for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                sites.push(FaultSite {
                    net: cell.output,
                    kind,
                    block: block.clone(),
                });
            }
        }
    }
    sites
}

/// Deterministically samples `count` sites from `sites` (seeded shuffle,
/// stable across runs and platforms). Returns all sites if `count`
/// exceeds the population.
pub fn sample_sites(mut sites: Vec<FaultSite>, count: usize, seed: u64) -> Vec<FaultSite> {
    let mut rng = Rng::new(seed);
    rng.shuffle(&mut sites);
    sites.truncate(count);
    sites
}

/// Classification of one faulted operation relative to the fault-free
/// reference result and the online checker's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The delivered result was unaffected by the fault.
    Masked,
    /// The result was corrupted and the online check flagged it.
    Detected,
    /// The result was corrupted and no check fired — silent data
    /// corruption, the outcome a self-checking design must eliminate.
    Silent,
}

/// Per-block outcome counters of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Fault sites attributed to this block.
    pub sites: usize,
    /// Operations whose result was unaffected.
    pub masked: u64,
    /// Corrupted operations flagged by the checker.
    pub detected: u64,
    /// Corrupted operations that no check caught.
    pub silent: u64,
}

impl BlockStats {
    fn record(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::Detected => self.detected += 1,
            FaultOutcome::Silent => self.silent += 1,
        }
    }

    /// Total classified operations.
    pub fn ops(&self) -> u64 {
        self.masked + self.detected + self.silent
    }

    /// Detected fraction of corrupting operations (1.0 when nothing
    /// corrupted).
    pub fn detection_rate(&self) -> f64 {
        let corrupted = self.detected + self.silent;
        if corrupted == 0 {
            1.0
        } else {
            self.detected as f64 / corrupted as f64
        }
    }
}

/// Aggregated campaign results, keyed by block name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Outcome counters per top-level block.
    pub per_block: BTreeMap<String, BlockStats>,
}

impl CampaignStats {
    /// Records one classified operation under `block`.
    pub fn record(&mut self, block: &str, outcome: FaultOutcome) {
        self.per_block
            .entry(block.to_string())
            .or_default()
            .record(outcome);
    }

    /// Notes one more fault site under `block`.
    pub fn add_site(&mut self, block: &str) {
        self.per_block.entry(block.to_string()).or_default().sites += 1;
    }

    /// Merges another campaign's counters into this one (per-block field
    /// sums). This is the shard-merge primitive for parallel campaigns:
    /// merging shard stats in any order yields the same result as one
    /// sequential aggregation over the union of their sites.
    pub fn merge(&mut self, other: &CampaignStats) {
        for (name, b) in &other.per_block {
            let e = self.per_block.entry(name.clone()).or_default();
            e.sites += b.sites;
            e.masked += b.masked;
            e.detected += b.detected;
            e.silent += b.silent;
        }
    }

    /// Summed counters over all blocks.
    pub fn totals(&self) -> BlockStats {
        let mut t = BlockStats::default();
        for b in self.per_block.values() {
            t.sites += b.sites;
            t.masked += b.masked;
            t.detected += b.detected;
            t.silent += b.silent;
        }
        t
    }

    /// Renders the per-block coverage table (plus a TOTAL row).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "block", "sites", "ops", "masked", "detected", "silent", "det.rate",
        ]);
        let mut row = |name: &str, b: &BlockStats| {
            t.row_owned(vec![
                name.to_string(),
                b.sites.to_string(),
                b.ops().to_string(),
                b.masked.to_string(),
                b.detected.to_string(),
                b.silent.to_string(),
                format!("{:.3}", b.detection_rate()),
            ]);
        };
        for (name, b) in &self.per_block {
            row(name, b);
        }
        let totals = self.totals();
        row("TOTAL", &totals);
        t
    }
}

/// Drives a fault-injection campaign over a list of sites.
///
/// The runner owns the mechanics — inject, classify, repair, verify the
/// repair — while the `classify` closure owns the semantics: it drives
/// operand vectors through the faulted simulator and returns one
/// [`FaultOutcome`] per vector.
pub struct CampaignRunner<'a> {
    netlist: &'a Netlist,
    sites: Vec<FaultSite>,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner over the given sites.
    pub fn new(netlist: &'a Netlist, sites: Vec<FaultSite>) -> Self {
        CampaignRunner { netlist, sites }
    }

    /// The sites this runner will inject.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Runs the campaign: for each site, injects the fault into a shared
    /// simulator, lets `classify` drive vectors and classify the outcomes,
    /// then clears the fault and re-settles so the next site starts from a
    /// healthy netlist.
    pub fn run<F>(&self, mut classify: F) -> CampaignStats
    where
        F: FnMut(&mut Simulator<'_>, &FaultSite) -> Vec<FaultOutcome>,
    {
        let mut stats = CampaignStats::default();
        let mut sim = Simulator::new(self.netlist);
        for site in &self.sites {
            stats.add_site(&site.block);
            site.kind.inject(&mut sim, site.net);
            sim.settle();
            for outcome in classify(&mut sim, site) {
                stats.record(&site.block, outcome);
            }
            sim.clear_faults();
            sim.settle();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechLibrary;

    /// A 4-bit ripple-carry adder with blocks, as a campaign target.
    fn adder_netlist() -> (Netlist, Vec<NetId>, Vec<NetId>, Vec<NetId>) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let mut carry = n.zero();
        let mut sum = Vec::new();
        for i in 0..4 {
            n.begin_block(if i < 2 { "LO" } else { "HI" });
            let (s, co) = n.full_adder(a[i], b[i], carry);
            sum.push(s);
            carry = co;
            n.end_block();
        }
        sum.push(carry);
        n.output_bus("sum", &sum);
        (n, a, b, sum)
    }

    #[test]
    fn enumeration_covers_blocks_and_polarities() {
        let (n, ..) = adder_netlist();
        let sites = enumerate_stuck_sites(&n);
        assert_eq!(sites.len(), 2 * n.cell_count());
        assert!(sites.iter().any(|s| s.block == "LO"));
        assert!(sites.iter().any(|s| s.block == "HI"));
        assert!(sites.iter().any(|s| s.kind == FaultKind::StuckAt0));
        assert!(sites.iter().any(|s| s.kind == FaultKind::StuckAt1));
    }

    #[test]
    fn sampling_is_deterministic() {
        let (n, ..) = adder_netlist();
        let all = enumerate_stuck_sites(&n);
        let s1 = sample_sites(all.clone(), 10, 42);
        let s2 = sample_sites(all.clone(), 10, 42);
        let s3 = sample_sites(all, 10, 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3, "different seeds pick different sites");
        assert_eq!(s1.len(), 10);
    }

    #[test]
    fn campaign_classifies_adder_faults() {
        let (n, a, b, sum) = adder_netlist();
        let sites = enumerate_stuck_sites(&n);
        let runner = CampaignRunner::new(&n, sites);
        // Reference model: plain addition; "checker": none (every
        // corruption is silent). The campaign must label every outcome and
        // find at least one corrupting site per block.
        let vectors = [(3u128, 5u128), (15, 15), (0, 0), (9, 6)];
        let stats = runner.run(|sim, _site| {
            vectors
                .iter()
                .map(|&(x, y)| {
                    sim.set_bus(&a, x);
                    sim.set_bus(&b, y);
                    sim.settle();
                    if sim.read_bus(&sum) == x + y {
                        FaultOutcome::Masked
                    } else {
                        FaultOutcome::Silent
                    }
                })
                .collect()
        });
        let totals = stats.totals();
        assert_eq!(totals.sites, 2 * n.cell_count());
        assert_eq!(totals.ops(), totals.sites as u64 * vectors.len() as u64);
        for blk in ["LO", "HI"] {
            let b = &stats.per_block[blk];
            assert!(b.silent > 0, "{blk}: some corruption observed");
            assert!(b.masked > 0, "{blk}: some masking observed");
        }
        // With no checker the detection rate is zero everywhere corrupted.
        assert_eq!(totals.detected, 0);
    }

    #[test]
    fn campaign_leaves_simulator_healthy() {
        let (n, a, b, sum) = adder_netlist();
        let sites = sample_sites(enumerate_stuck_sites(&n), 16, 7);
        let runner = CampaignRunner::new(&n, sites);
        runner.run(|_, _| vec![]);
        // A fresh run over the same netlist still computes correctly.
        let mut sim = Simulator::new(&n);
        sim.set_bus(&a, 7);
        sim.set_bus(&b, 8);
        sim.settle();
        assert_eq!(sim.read_bus(&sum), 15);
    }
}
