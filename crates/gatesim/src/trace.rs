//! VCD waveform tracing.
//!
//! [`Simulator::enable_trace`](crate::sim::Simulator::enable_trace)
//! records every committed transition; [`write_vcd`] renders the
//! recording as a Value Change Dump viewable in GTKWave & co. — including
//! the glitches the power model charges for, which makes the
//! combinational-vs-pipelined activity difference of Table III directly
//! visible.

use crate::netlist::{NetId, Netlist};
use std::fmt::Write as _;

/// A recorded transition: (time in 0.1 ps ticks, net, new value).
pub type TraceEvent = (u64, u32, bool);

/// VCD identifier for the n-th variable (printable ASCII 33..=126).
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Renders recorded events as a VCD document.
///
/// `watched` selects the nets to include, as named single-bit signals
/// (use bus bit names like `sum[3]` for buses). Initial values are taken
/// from `initial`, indexed by net.
///
/// # Example
///
/// ```
/// use mfm_gatesim::{Netlist, Simulator, TechLibrary};
/// use mfm_gatesim::trace::write_vcd;
///
/// let mut n = Netlist::new(TechLibrary::cmos45lp());
/// let a = n.input("a");
/// let y = n.not(a);
/// let mut sim = Simulator::new(&n);
/// sim.enable_trace();
/// sim.set_net(a, true);
/// sim.settle();
/// let vcd = write_vcd(&n, &[("a", a), ("y", y)], sim.trace().unwrap(), sim.initial_trace_values());
/// assert!(vcd.contains("$timescale 100 fs $end"));
/// ```
pub fn write_vcd(
    _netlist: &Netlist,
    watched: &[(&str, NetId)],
    events: &[TraceEvent],
    initial: &[bool],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date mfm-gatesim $end");
    let _ = writeln!(out, "$version mfm-gatesim 0.1 $end");
    let _ = writeln!(out, "$timescale 100 fs $end");
    let _ = writeln!(out, "$scope module top $end");
    let mut ids = std::collections::HashMap::new();
    for (i, (name, net)) in watched.iter().enumerate() {
        let id = vcd_id(i);
        let _ = writeln!(out, "$var wire 1 {id} {name} $end");
        ids.insert(net.index() as u32, id);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    for (name_idx, (_, net)) in watched.iter().enumerate() {
        let v = initial.get(net.index()).copied().unwrap_or(false);
        let _ = writeln!(out, "{}{}", v as u8, vcd_id(name_idx));
    }
    let _ = writeln!(out, "$end");
    let mut last_time = u64::MAX;
    for &(t, net, val) in events {
        if let Some(id) = ids.get(&net) {
            if t != last_time {
                let _ = writeln!(out, "#{t}");
                last_time = t;
            }
            let _ = writeln!(out, "{}{}", val as u8, id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::tech::TechLibrary;

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn traced_simulation_produces_ordered_vcd() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        let y = n.and2(x, a);
        let mut sim = Simulator::new(&n);
        sim.enable_trace();
        for v in [0b01u128, 0b11, 0b10, 0b00] {
            sim.set_bus(&[a, b], v);
            sim.settle();
        }
        let events = sim.trace().unwrap();
        assert!(!events.is_empty());
        // Timestamps are non-decreasing.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));

        let vcd = write_vcd(
            &n,
            &[("a", a), ("b", b), ("x", x), ("y", y)],
            events,
            sim.initial_trace_values(),
        );
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$dumpvars"));
        // Four declared vars.
        assert_eq!(vcd.matches("$var wire 1 ").count(), 4);
        // At least one timestamped change section.
        assert!(vcd.contains('#'));
    }

    #[test]
    fn untraced_simulator_returns_none() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let _y = n.not(a);
        let sim = Simulator::new(&n);
        assert!(sim.trace().is_none());
    }
}
