//! Activity-based power estimation.
//!
//! Dynamic energy is `Σ_cells toggles(output) × E_sw(kind)`; for sequential
//! netlists every DFF additionally draws its internal clock energy each
//! cycle. Leakage is proportional to area. Power at a frequency `f` is
//! `E_per_op × f + P_leak`, mirroring the paper's methodology of estimating
//! at 100 MHz and scaling linearly ("to have an easily scalable value to
//! any frequency").

use crate::compiled::CompiledSim;
use crate::netlist::Netlist;
use crate::sim::Simulator;
use crate::tech::CellKind;
use mfm_telemetry::Gauge;
use std::collections::HashMap;

/// Energy and power figures derived from one activity measurement.
#[derive(Debug, Clone)]
pub struct PowerBreakdown {
    /// Number of operations (input vectors or clock cycles) measured.
    pub ops: u64,
    /// Average switched energy per operation, in picojoules (data activity).
    pub dynamic_pj_per_op: f64,
    /// Average clock-tree/register energy per cycle, in picojoules.
    pub clock_pj_per_op: f64,
    /// Leakage power in milliwatts (frequency independent).
    pub leakage_mw: f64,
    /// Per-top-level-block dynamic energy, `(name, pJ/op)`, sorted by name.
    pub per_block_pj: Vec<(String, f64)>,
    /// Per-cell-kind dynamic energy, pJ/op.
    pub per_kind_pj: Vec<(CellKind, f64)>,
    /// Total committed transitions per op (a glitching metric).
    pub transitions_per_op: f64,
}

impl PowerBreakdown {
    /// Total power in milliwatts at the given clock frequency.
    ///
    /// One operation is assumed per clock cycle, as in the paper.
    pub fn total_mw_at(&self, freq_mhz: f64) -> f64 {
        // pJ/op × ops/s = pJ × 1e6 × MHz / s = µW × MHz → mW needs /1e3.
        (self.dynamic_pj_per_op + self.clock_pj_per_op) * freq_mhz * 1e-3 + self.leakage_mw
    }

    /// Dynamic-only power in milliwatts at the given frequency.
    pub fn dynamic_mw_at(&self, freq_mhz: f64) -> f64 {
        (self.dynamic_pj_per_op + self.clock_pj_per_op) * freq_mhz * 1e-3
    }

    /// Energy per operation in picojoules (dynamic + clock).
    pub fn energy_pj_per_op(&self) -> f64 {
        self.dynamic_pj_per_op + self.clock_pj_per_op
    }
}

/// Computes power figures from a simulator's accumulated activity.
#[derive(Debug)]
pub struct PowerEstimator;

impl PowerEstimator {
    /// Derives a [`PowerBreakdown`] from the activity recorded in `sim`.
    ///
    /// `ops` is the number of operations the activity corresponds to: the
    /// number of input vectors for a combinational run, or the number of
    /// clock cycles for a sequential run (pass `sim.cycles()`).
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0`.
    pub fn from_activity(netlist: &Netlist, sim: &Simulator<'_>, ops: u64) -> PowerBreakdown {
        Self::from_toggles(
            netlist,
            sim.toggles(),
            sim.total_events(),
            sim.cycles(),
            ops,
        )
    }

    /// Derives a [`PowerBreakdown`] from raw activity counters, without a
    /// live simulator. `toggles` is a per-net committed-transition count
    /// (as returned by [`Simulator::toggles`]), `events` the total
    /// committed transitions and `cycles` the clock-cycle count — the
    /// merged sums of several independent runs are valid inputs, which is
    /// what thread-sharded Monte-Carlo campaigns feed in.
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0` or `toggles` is shorter than the net array.
    pub fn from_toggles(
        netlist: &Netlist,
        toggles: &[u64],
        events: u64,
        cycles: u64,
        ops: u64,
    ) -> PowerBreakdown {
        assert!(ops > 0, "power estimation needs at least one operation");
        assert!(
            toggles.len() >= netlist.net_count(),
            "toggle counters must cover every net"
        );
        let tech = netlist.tech();

        let mut total_fj = 0.0f64;
        let mut per_block: HashMap<&str, f64> = HashMap::new();
        let mut per_kind: HashMap<CellKind, f64> = HashMap::new();
        for cell in netlist.cells() {
            // Self (internal + output) energy per output transition.
            let t = toggles[cell.output.index()] as f64;
            let mut e = t * tech.params(cell.kind).energy_fj;
            // Input-pin energy: every transition of a driving net charges
            // this cell's gate capacitance — the fanout-load component of
            // dynamic power.
            let in_fj = tech.params(cell.kind).input_fj;
            for &inp in &cell.inputs[..cell.kind.arity()] {
                e += toggles[inp.index()] as f64 * in_fj;
            }
            if e == 0.0 {
                continue;
            }
            total_fj += e;
            *per_block
                .entry(netlist.top_level_block_name(cell.block))
                .or_insert(0.0) += e;
            *per_kind.entry(cell.kind).or_insert(0.0) += e;
        }

        let clock_fj = cycles as f64 * netlist.dff_count() as f64 * tech.dff_clock_energy_fj;

        let mut per_block_pj: Vec<(String, f64)> = per_block
            .into_iter()
            .map(|(k, fj)| (k.to_owned(), fj / 1000.0 / ops as f64))
            .collect();
        per_block_pj.sort_by(|a, b| a.0.cmp(&b.0));
        let mut per_kind_pj: Vec<(CellKind, f64)> = per_kind
            .into_iter()
            .map(|(k, fj)| (k, fj / 1000.0 / ops as f64))
            .collect();
        per_kind_pj.sort_by_key(|(k, _)| format!("{k:?}"));

        PowerBreakdown {
            ops,
            dynamic_pj_per_op: total_fj / 1000.0 / ops as f64,
            clock_pj_per_op: clock_fj / 1000.0 / ops as f64,
            leakage_mw: netlist.area_um2() * tech.leakage_nw_per_um2 * 1e-6,
            per_block_pj,
            per_kind_pj,
            transitions_per_op: events as f64 / ops as f64,
        }
    }

    /// [`PowerEstimator::from_toggles`] with per-block glitch-inflation
    /// factors applied — the estimator half of the compiled power path.
    ///
    /// `toggles` here are **zero-delay** counts (a [`CompiledSim`]
    /// activity sweep, or a zero-delay [`Simulator`] run); each cell's
    /// switched energy is multiplied by the calibration factor of its
    /// top-level block (`block_factors`, falling back to
    /// `default_factor` for unlisted blocks), recovering the
    /// glitch-inclusive energy the event-driven reference would report.
    /// `event_factor` scales the transition count the same way. Clock
    /// energy is exact under zero delay (one edge per cycle) and is
    /// **not** inflated.
    ///
    /// Factors come from `mfm_evalkit::calibrate`; this function lives
    /// here so the estimator stays dependency-free.
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0` or `toggles` is shorter than the net array.
    #[allow(clippy::too_many_arguments)]
    pub fn from_toggles_calibrated(
        netlist: &Netlist,
        toggles: &[u64],
        events: u64,
        cycles: u64,
        ops: u64,
        block_factors: &[(String, f64)],
        default_factor: f64,
        event_factor: f64,
    ) -> PowerBreakdown {
        assert!(ops > 0, "power estimation needs at least one operation");
        assert!(
            toggles.len() >= netlist.net_count(),
            "toggle counters must cover every net"
        );
        let tech = netlist.tech();
        let factors: HashMap<&str, f64> = block_factors
            .iter()
            .map(|(name, f)| (name.as_str(), *f))
            .collect();

        let mut total_fj = 0.0f64;
        let mut per_block: HashMap<&str, f64> = HashMap::new();
        let mut per_kind: HashMap<CellKind, f64> = HashMap::new();
        for cell in netlist.cells() {
            let t = toggles[cell.output.index()] as f64;
            let mut e = t * tech.params(cell.kind).energy_fj;
            let in_fj = tech.params(cell.kind).input_fj;
            for &inp in &cell.inputs[..cell.kind.arity()] {
                e += toggles[inp.index()] as f64 * in_fj;
            }
            if e == 0.0 {
                continue;
            }
            let block = netlist.top_level_block_name(cell.block);
            e *= factors.get(block).copied().unwrap_or(default_factor);
            total_fj += e;
            *per_block.entry(block).or_insert(0.0) += e;
            *per_kind.entry(cell.kind).or_insert(0.0) += e;
        }

        let clock_fj = cycles as f64 * netlist.dff_count() as f64 * tech.dff_clock_energy_fj;

        let mut per_block_pj: Vec<(String, f64)> = per_block
            .into_iter()
            .map(|(k, fj)| (k.to_owned(), fj / 1000.0 / ops as f64))
            .collect();
        per_block_pj.sort_by(|a, b| a.0.cmp(&b.0));
        let mut per_kind_pj: Vec<(CellKind, f64)> = per_kind
            .into_iter()
            .map(|(k, fj)| (k, fj / 1000.0 / ops as f64))
            .collect();
        per_kind_pj.sort_by_key(|(k, _)| format!("{k:?}"));

        PowerBreakdown {
            ops,
            dynamic_pj_per_op: total_fj / 1000.0 / ops as f64,
            clock_pj_per_op: clock_fj / 1000.0 / ops as f64,
            leakage_mw: netlist.area_um2() * tech.leakage_nw_per_um2 * 1e-6,
            per_block_pj,
            per_kind_pj,
            transitions_per_op: events as f64 * event_factor / ops as f64,
        }
    }
}

/// One window of the live power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Operation count at the end of this window (caller's op space).
    pub ops_end: u64,
    /// Operations inside the window.
    pub window_ops: u64,
    /// Average energy per operation inside the window, in picojoules
    /// (dynamic switching + clock).
    pub pj_per_op: f64,
}

/// A sliding-window pJ/op power trace over a running simulation.
///
/// [`PowerEstimator::from_activity`] reports only the final average;
/// this tracer lets activity be observed *over time*: call
/// [`LivePowerTrace::sample`] at window boundaries and each call yields
/// the energy per operation of just that window, computed from the
/// toggle deltas since the previous call. Per-net energy weights
/// (cell self energy on the output net plus fanout pin energy on every
/// driven input) are precomputed once, so a sample costs one pass over
/// the net array — pay it at window granularity, not per vector.
///
/// The baseline is the simulator's activity state at construction time:
/// build the tracer after warm-up (or after
/// [`Simulator::reset_activity`]).
///
/// The tracer is source-agnostic: it consumes raw counters
/// ([`LivePowerTrace::sample_counts`]), so the same instance can be fed
/// from an event-driven [`Simulator`], from a [`CompiledSim`] activity
/// sweep ([`LivePowerTrace::sample_compiled`]) or from merged shard
/// counters — no event-driven simulation is required to keep a live
/// power gauge next to a compiled service core. Compiled (zero-delay)
/// toggles undercount glitch energy; chain
/// [`LivePowerTrace::with_scale`] with a calibrated inflation factor to
/// report calibrated pJ/op.
#[derive(Debug)]
pub struct LivePowerTrace {
    /// Energy charged per toggle of each net, fJ.
    weights_fj: Vec<f64>,
    /// Clock energy per cycle (all DFFs), fJ.
    clock_fj_per_cycle: f64,
    /// Multiplier applied to each window's switched energy (clock
    /// energy included — at one op per cycle the paper's accounting —
    /// scale only makes sense ≥ 1 from glitch inflation).
    scale: f64,
    last_toggles: Vec<u64>,
    last_cycles: u64,
    last_ops: u64,
    samples: Vec<PowerSample>,
    gauge: Option<Gauge>,
}

impl LivePowerTrace {
    /// Builds a tracer baselined on `sim`'s current activity counters.
    pub fn new(netlist: &Netlist, sim: &Simulator<'_>) -> Self {
        Self::from_counts(netlist, sim.toggles(), sim.cycles())
    }

    /// Builds a tracer baselined on a compiled simulator's activity
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `sim` has activity counting disabled (see
    /// [`CompiledSim::enable_activity`]).
    pub fn new_compiled(netlist: &Netlist, sim: &CompiledSim<'_>) -> Self {
        Self::from_counts(netlist, sim.toggles(), sim.cycles())
    }

    /// Builds a tracer baselined on raw activity counters (any toggle
    /// source: an event-driven simulator, a compiled activity sweep, or
    /// merged shard counters).
    pub fn from_counts(netlist: &Netlist, toggles: &[u64], cycles: u64) -> Self {
        let tech = netlist.tech();
        let mut weights_fj = vec![0.0f64; netlist.net_count()];
        for cell in netlist.cells() {
            let p = tech.params(cell.kind);
            weights_fj[cell.output.index()] += p.energy_fj;
            for &inp in &cell.inputs[..cell.kind.arity()] {
                weights_fj[inp.index()] += p.input_fj;
            }
        }
        LivePowerTrace {
            weights_fj,
            clock_fj_per_cycle: netlist.dff_count() as f64 * tech.dff_clock_energy_fj,
            scale: 1.0,
            last_toggles: toggles.to_vec(),
            last_cycles: cycles,
            last_ops: 0,
            samples: Vec::new(),
            gauge: None,
        }
    }

    /// Mirrors each window's pJ/op into `gauge` (e.g. a registry's
    /// `power.live_pj_per_op`).
    pub fn with_gauge(mut self, gauge: Gauge) -> Self {
        self.gauge = Some(gauge);
        self
    }

    /// Multiplies every window's energy by `scale` — the live-gauge
    /// analogue of the per-block glitch-inflation calibration (use a
    /// netlist-level factor from `mfm_evalkit::calibrate` when sampling
    /// zero-delay toggle sources).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Closes the current window at `ops_total` operations (the
    /// caller's cumulative count) and returns its sample, or `None`
    /// when no operation completed since the last call.
    ///
    /// If the simulator's activity was reset since the last sample, the
    /// window is unmeasurable: the tracer rebases and returns `None`.
    pub fn sample(&mut self, sim: &Simulator<'_>, ops_total: u64) -> Option<PowerSample> {
        let (toggles, cycles) = (sim.toggles(), sim.cycles());
        self.sample_counts(toggles, cycles, ops_total)
    }

    /// [`LivePowerTrace::sample`] for a compiled toggle source.
    ///
    /// # Panics
    ///
    /// Panics if `sim` has activity counting disabled.
    pub fn sample_compiled(
        &mut self,
        sim: &CompiledSim<'_>,
        ops_total: u64,
    ) -> Option<PowerSample> {
        let (toggles, cycles) = (sim.toggles(), sim.cycles());
        self.sample_counts(toggles, cycles, ops_total)
    }

    /// Closes the current window from raw cumulative counters. `toggles`
    /// and `cycles` must be monotone between calls (a decrease is
    /// treated as an activity reset: the tracer rebases and returns
    /// `None`).
    pub fn sample_counts(
        &mut self,
        toggles: &[u64],
        cycles: u64,
        ops_total: u64,
    ) -> Option<PowerSample> {
        let window_ops = ops_total.saturating_sub(self.last_ops);
        let reset_detected = cycles < self.last_cycles
            || toggles
                .iter()
                .zip(&self.last_toggles)
                .any(|(&now, &last)| now < last);
        if reset_detected {
            self.last_toggles.copy_from_slice(toggles);
            self.last_cycles = cycles;
            self.last_ops = ops_total;
            return None;
        }
        if window_ops == 0 {
            return None;
        }
        let mut fj = (cycles - self.last_cycles) as f64 * self.clock_fj_per_cycle;
        for (i, (&now, last)) in toggles.iter().zip(self.last_toggles.iter_mut()).enumerate() {
            let delta = now - *last;
            if delta != 0 {
                fj += delta as f64 * self.weights_fj[i];
                *last = now;
            }
        }
        fj *= self.scale;
        self.last_cycles = cycles;
        self.last_ops = ops_total;
        let s = PowerSample {
            ops_end: ops_total,
            window_ops,
            pj_per_op: fj / 1000.0 / window_ops as f64,
        };
        if let Some(g) = &self.gauge {
            g.set(s.pj_per_op);
        }
        self.samples.push(s);
        Some(s)
    }

    /// Every sample taken so far, in order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// The most recent window's pJ/op, if any.
    pub fn latest_pj_per_op(&self) -> Option<f64> {
        self.samples.last().map(|s| s.pj_per_op)
    }

    /// Ops-weighted mean pJ/op over all samples (0.0 when empty).
    pub fn mean_pj_per_op(&self) -> f64 {
        let ops: u64 = self.samples.iter().map(|s| s.window_ops).sum();
        if ops == 0 {
            return 0.0;
        }
        let pj: f64 = self
            .samples
            .iter()
            .map(|s| s.pj_per_op * s.window_ops as f64)
            .sum();
        pj / ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::tech::TechLibrary;

    #[test]
    fn energy_scales_with_toggles() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let y = n.not(a);
        n.output_bus("y", &[y]);
        let mut sim = Simulator::new(&n);
        // Toggle the input 10 times → the inverter output toggles 10 times.
        for i in 0..10 {
            sim.set_net(a, i % 2 == 0);
            sim.settle();
        }
        let p = PowerEstimator::from_activity(&n, &sim, 10);
        let params = n.tech().params(crate::tech::CellKind::Inv);
        // 10 output toggles × self energy + 10 input toggles × pin energy.
        let expect_pj = 10.0 * (params.energy_fj + params.input_fj) / 1000.0 / 10.0;
        assert!((p.dynamic_pj_per_op - expect_pj).abs() < 1e-12);
        assert_eq!(p.clock_pj_per_op, 0.0, "no DFFs, no clock energy");
        assert!(p.leakage_mw > 0.0);
    }

    #[test]
    fn clock_energy_charged_per_cycle() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let d = n.input("d");
        let q = n.dff(d);
        n.output_bus("q", &[q]);
        let mut sim = Simulator::new(&n);
        for _ in 0..5 {
            sim.step_cycle(&[(&[d], 0)]);
        }
        let p = PowerEstimator::from_activity(&n, &sim, sim.cycles());
        assert_eq!(p.ops, 5);
        // Data never changes; only clock energy is drawn.
        assert_eq!(p.dynamic_pj_per_op, 0.0);
        let expect = n.tech().dff_clock_energy_fj / 1000.0;
        assert!((p.clock_pj_per_op - expect).abs() < 1e-12);
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let b = n.input("b");
        let y = n.xor2(a, b);
        n.output_bus("y", &[y]);
        let mut sim = Simulator::new(&n);
        for i in 0..4u128 {
            sim.set_bus(&[a, b], i);
            sim.settle();
        }
        let p = PowerEstimator::from_activity(&n, &sim, 4);
        let p100 = p.dynamic_mw_at(100.0);
        let p880 = p.dynamic_mw_at(880.0);
        assert!((p880 / p100 - 8.8).abs() < 1e-9);
        assert!(p.total_mw_at(100.0) > p100, "leakage adds on top");
    }

    #[test]
    fn live_trace_windows_sum_to_estimator_total() {
        // The ops-weighted mean of the live trace must equal the final
        // PowerEstimator average over the same run — same activity,
        // same weights, just accumulated window by window.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        let d = n.dff(x);
        n.output_bus("q", &[d]);
        let mut sim = Simulator::new(&n);
        let mut trace = LivePowerTrace::new(&n, &sim);
        let mut ops = 0u64;
        for i in 0..12u128 {
            sim.step_cycle(&[(&[a, b], i % 4)]);
            ops += 1;
            if ops.is_multiple_of(3) {
                assert!(trace.sample(&sim, ops).is_some());
            }
        }
        let p = PowerEstimator::from_activity(&n, &sim, sim.cycles());
        assert_eq!(trace.samples().len(), 4);
        assert!((trace.mean_pj_per_op() - p.energy_pj_per_op()).abs() < 1e-9);
        assert!(trace.latest_pj_per_op().unwrap() >= 0.0);
    }

    #[test]
    fn live_trace_handles_empty_window_and_reset() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let y = n.not(a);
        n.output_bus("y", &[y]);
        let mut sim = Simulator::new(&n);
        let mut trace = LivePowerTrace::new(&n, &sim);
        assert_eq!(trace.sample(&sim, 0), None, "no ops yet");
        sim.set_net(a, true);
        sim.settle();
        assert!(trace.sample(&sim, 1).is_some());
        // An activity reset makes the next window unmeasurable; the
        // tracer rebases instead of producing a bogus sample.
        sim.set_net(a, false);
        sim.settle();
        sim.reset_activity();
        assert_eq!(trace.sample(&sim, 2), None);
        sim.set_net(a, true);
        sim.settle();
        assert!(trace.sample(&sim, 3).is_some());
    }

    #[test]
    fn compiled_trace_matches_event_driven_on_glitch_free_logic() {
        // A single-gate circuit has no glitches, so the compiled
        // (zero-delay) toggle source and the event-driven source must
        // produce identical windows with scale 1.0.
        use crate::compiled::CompiledNetlist;
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let y = n.not(a);
        n.output_bus("y", &[y]);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut csim = CompiledSim::new(&prog);
        csim.enable_activity(1);
        let mut ctrace = LivePowerTrace::new_compiled(&n, &csim);
        let mut esim = Simulator::new(&n);
        let mut etrace = LivePowerTrace::new(&n, &esim);
        for i in 0..6u64 {
            csim.set_net_lane(a, 0, i % 2 == 0);
            csim.propagate();
            esim.set_net(a, i % 2 == 0);
            esim.settle();
        }
        let cs = ctrace.sample_compiled(&csim, 6).unwrap();
        let es = etrace.sample(&esim, 6).unwrap();
        assert_eq!(cs, es, "compiled and event-driven windows agree");
        assert!(cs.pj_per_op > 0.0);
        // The scale hook inflates the window linearly.
        let zeros = vec![0u64; n.net_count()];
        let scaled = LivePowerTrace::from_counts(&n, &zeros, 0).with_scale(2.0);
        let mut scaled = scaled;
        let s = scaled
            .sample_counts(csim.toggles(), csim.cycles(), 6)
            .unwrap();
        assert!((s.pj_per_op - 2.0 * cs.pj_per_op).abs() < 1e-12);
    }

    #[test]
    fn per_block_attribution_sums_to_total() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input("a");
        let b = n.input("b");
        let x = n.in_block("A", |n| n.xor2(a, b));
        let y = n.in_block("B", |n| n.and2(x, a));
        n.output_bus("y", &[y]);
        let mut sim = Simulator::new(&n);
        for i in 0..8u128 {
            sim.set_bus(&[a, b], i % 4);
            sim.settle();
        }
        let p = PowerEstimator::from_activity(&n, &sim, 8);
        let sum: f64 = p.per_block_pj.iter().map(|(_, e)| e).sum();
        assert!((sum - p.dynamic_pj_per_op).abs() < 1e-12);
    }
}
