//! Static timing analysis: longest combinational paths, per-block
//! decomposition and minimum clock period.
//!
//! Arrival times are propagated in topological order. Sources are primary
//! inputs (arrival 0) and DFF outputs (arrival = clk→q). Sinks are DFF D
//! pins (which add the setup time to the required period) and primary
//! output nets. The critical path is traced back through the argmax input
//! of every cell and reported as *segments* — consecutive runs of cells in
//! the same top-level block — which is exactly how the paper's Table I/II
//! decompose their critical paths (pre-comp | PPGEN | TREE | CPA).

use crate::netlist::{CellId, Driver, NetId, Netlist};
use crate::tech::CellKind;

/// One run of consecutive critical-path cells within a top-level block.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Top-level block name.
    pub block: String,
    /// Delay contributed by this segment, in picoseconds.
    pub delay_ps: f64,
    /// Number of cells in this segment.
    pub cells: usize,
}

/// The result of a timing analysis.
#[derive(Debug, Clone)]
pub struct StaReport {
    /// Longest combinational delay from any source to any net, in ps.
    pub critical_delay_ps: f64,
    /// Cells on the critical path, source to sink.
    pub critical_path: Vec<CellId>,
    /// Critical path decomposed into per-block segments, in path order.
    pub segments: Vec<PathSegment>,
    /// Minimum clock period in ps: the worst of (arrival at a DFF D pin +
    /// setup) and (arrival at a primary output). Equals
    /// `critical_delay_ps` for purely combinational netlists.
    pub min_period_ps: f64,
    /// Longest delay of each path class, in ps:
    /// input→output, input→register, register→register, register→output.
    /// `None` when the class has no path.
    pub class_delays: PathClassDelays,
}

/// Longest delay per path class (all in picoseconds, setup not included).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathClassDelays {
    /// Primary input → primary output.
    pub in_to_out: Option<f64>,
    /// Primary input → DFF D pin.
    pub in_to_reg: Option<f64>,
    /// DFF Q → DFF D pin (includes clk→q).
    pub reg_to_reg: Option<f64>,
    /// DFF Q → primary output (includes clk→q).
    pub reg_to_out: Option<f64>,
}

impl StaReport {
    /// Maximum clock frequency in MHz implied by [`StaReport::min_period_ps`].
    pub fn max_freq_mhz(&self) -> f64 {
        1.0e6 / self.min_period_ps
    }

    /// Critical delay in FO4 units for the given FO4 delay.
    pub fn critical_delay_fo4(&self, fo4_ps: f64) -> f64 {
        self.critical_delay_ps / fo4_ps
    }
}

/// Runs static timing analysis over a netlist.
#[derive(Debug)]
pub struct TimingAnalysis<'a> {
    netlist: &'a Netlist,
    /// Arrival time per net in ps (0 for unreached nets).
    arrival: Vec<f64>,
    /// Which source class reaches each net: bit0 = from input, bit1 = from register.
    reach: Vec<u8>,
    /// For tracing: the cell driving each net's worst arrival, if any.
    worst_cell: Vec<Option<CellId>>,
    /// For tracing: the input net responsible for the worst arrival.
    worst_input: Vec<Option<NetId>>,
}

const FROM_INPUT: u8 = 1;
const FROM_REG: u8 = 2;

impl<'a> TimingAnalysis<'a> {
    /// Analyzes the netlist.
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle; validate with [`Netlist::check`]
    /// first for a recoverable error.
    pub fn new(netlist: &'a Netlist) -> Self {
        let order = netlist
            .levelization()
            .expect("TimingAnalysis requires an acyclic netlist")
            .order();
        let tech = netlist.tech();
        let clk2q = tech.params(CellKind::Dff).delay_ps;

        let mut arrival = vec![0.0f64; netlist.net_count()];
        let mut reach = vec![0u8; netlist.net_count()];
        let mut worst_cell: Vec<Option<CellId>> = vec![None; netlist.net_count()];
        let mut worst_input: Vec<Option<NetId>> = vec![None; netlist.net_count()];

        for &net in netlist.inputs() {
            reach[net.index()] = FROM_INPUT;
        }
        for (_, cell) in netlist.dffs() {
            arrival[cell.output.index()] = clk2q;
            reach[cell.output.index()] = FROM_REG;
        }

        for &cell_id in order {
            let cell = &netlist.cells()[cell_id.index()];
            let d = tech.params(cell.kind).delay_ps;
            let mut best = f64::NEG_INFINITY;
            let mut best_in = cell.inputs[0];
            let mut r = 0u8;
            for &inp in &cell.inputs[..cell.kind.arity()] {
                r |= reach[inp.index()];
                if arrival[inp.index()] > best {
                    best = arrival[inp.index()];
                    best_in = inp;
                }
            }
            let out = cell.output.index();
            arrival[out] = best + d;
            reach[out] = r;
            worst_cell[out] = Some(cell_id);
            worst_input[out] = Some(best_in);
        }

        TimingAnalysis {
            netlist,
            arrival,
            reach,
            worst_cell,
            worst_input,
        }
    }

    /// Arrival time of a net in ps.
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// Builds the full report.
    pub fn report(&self) -> StaReport {
        let netlist = self.netlist;
        let tech = netlist.tech();
        let setup = tech.dff_setup_ps;

        // Find the global worst net (critical path endpoint).
        let mut worst_net: Option<NetId> = None;
        let mut worst = 0.0f64;
        // Endpoints: DFF D pins and primary outputs; fall back to all nets
        // for netlists without declared outputs.
        let mut endpoints: Vec<NetId> = Vec::new();
        for (_, cell) in netlist.dffs() {
            endpoints.push(cell.inputs[0]);
        }
        for (_, nets) in netlist.output_buses() {
            endpoints.extend(nets.iter().copied());
        }
        if endpoints.is_empty() {
            endpoints = (0..netlist.net_count() as u32).map(NetId).collect();
        }
        for &net in &endpoints {
            if self.arrival[net.index()] > worst {
                worst = self.arrival[net.index()];
                worst_net = Some(net);
            }
        }

        let critical_path = worst_net.map(|n| self.trace(n)).unwrap_or_default();
        let segments = self.segment(&critical_path);

        // Path classes and min period.
        let mut class = PathClassDelays::default();
        let upd = |slot: &mut Option<f64>, v: f64| {
            if slot.is_none_or(|cur| v > cur) {
                *slot = Some(v);
            }
        };
        let mut min_period = 0.0f64;
        for (_, cell) in netlist.dffs() {
            let d_pin = cell.inputs[0];
            let a = self.arrival[d_pin.index()];
            let r = self.reach[d_pin.index()];
            if r & FROM_INPUT != 0 {
                upd(&mut class.in_to_reg, a);
            }
            if r & FROM_REG != 0 {
                upd(&mut class.reg_to_reg, a);
            }
            if r == 0 {
                // Constant-fed register: still needs setup.
                upd(&mut class.in_to_reg, a);
            }
            min_period = min_period.max(a + setup);
        }
        for (_, nets) in netlist.output_buses() {
            for &net in nets {
                let a = self.arrival[net.index()];
                let r = self.reach[net.index()];
                if r & FROM_INPUT != 0 {
                    upd(&mut class.in_to_out, a);
                }
                if r & FROM_REG != 0 {
                    upd(&mut class.reg_to_out, a);
                }
                min_period = min_period.max(a);
            }
        }
        if min_period == 0.0 {
            min_period = worst;
        }

        StaReport {
            critical_delay_ps: worst,
            critical_path,
            segments,
            min_period_ps: min_period,
            class_delays: class,
        }
    }

    /// Per-cell timing slack against a target period: `required − arrival`
    /// of each cell's output net. Required times are propagated backward
    /// from DFF D pins (period − setup) and primary outputs (period).
    /// Cells whose outputs reach no timing endpoint get `f64::INFINITY`.
    pub fn cell_slacks(&self, period_ps: f64) -> Vec<f64> {
        let netlist = self.netlist;
        let tech = netlist.tech();
        let mut required = vec![f64::INFINITY; netlist.net_count()];
        for (_, cell) in netlist.dffs() {
            let r = period_ps - tech.dff_setup_ps;
            let d = cell.inputs[0].index();
            required[d] = required[d].min(r);
        }
        for (_, nets) in netlist.output_buses() {
            for &net in nets {
                required[net.index()] = required[net.index()].min(period_ps);
            }
        }
        let order = netlist
            .levelization()
            .expect("acyclic (checked in new)")
            .order();
        for &cell_id in order.iter().rev() {
            let cell = &netlist.cells()[cell_id.index()];
            let d = tech.params(cell.kind).delay_ps;
            let r_out = required[cell.output.index()];
            if r_out.is_finite() {
                let r_in = r_out - d;
                for &inp in &cell.inputs[..cell.kind.arity()] {
                    let ri = &mut required[inp.index()];
                    *ri = ri.min(r_in);
                }
            }
        }
        netlist
            .cells()
            .iter()
            .map(|c| required[c.output.index()] - self.arrival[c.output.index()])
            .collect()
    }

    /// Area with a first-order gate-sizing model: synthesis under a timing
    /// constraint upsizes cells on near-critical paths. Cells are weighted
    /// by slack relative to `period_ps`:
    ///
    /// | slack / period | weight |
    /// |---|---|
    /// | < 5 %  | 1.7 |
    /// | < 15 % | 1.35 |
    /// | < 30 % | 1.1 |
    /// | else   | 1.0 |
    ///
    /// This approximates why the paper's radix-4 unit — whose large
    /// reduction tree puts many more cells near the critical path — comes
    /// out *larger* than radix-16 after synthesis even though its cell
    /// count advantage per partial product is small.
    pub fn sized_area_um2(&self, period_ps: f64) -> f64 {
        let netlist = self.netlist;
        let tech = netlist.tech();
        let slacks = self.cell_slacks(period_ps);
        netlist
            .cells()
            .iter()
            .zip(&slacks)
            .map(|(c, &s)| {
                let rel = s / period_ps;
                let w = if rel < 0.05 {
                    1.7
                } else if rel < 0.15 {
                    1.35
                } else if rel < 0.30 {
                    1.1
                } else {
                    1.0
                };
                tech.params(c.kind).area_um2 * w
            })
            .sum()
    }

    /// Traces the critical path ending at `net`, source to sink.
    fn trace(&self, net: NetId) -> Vec<CellId> {
        let mut path = Vec::new();
        let mut cur = net;
        while let Some(cell_id) = self.worst_cell[cur.index()] {
            path.push(cell_id);
            match self.worst_input[cur.index()] {
                Some(prev) => cur = prev,
                None => break,
            }
            // Stop at DFF outputs (their `worst_cell` is None because DFFs
            // are not in the combinational topo order).
            if let Driver::Cell(c) = self.netlist.driver(cur) {
                if self.netlist.cells()[c.index()].kind == CellKind::Dff {
                    break;
                }
            }
        }
        path.reverse();
        path
    }

    /// Collapses a path into per-top-level-block segments.
    fn segment(&self, path: &[CellId]) -> Vec<PathSegment> {
        let netlist = self.netlist;
        let tech = netlist.tech();
        let mut out: Vec<PathSegment> = Vec::new();
        for &cell_id in path {
            let cell = &netlist.cells()[cell_id.index()];
            let block = netlist.top_level_block_name(cell.block).to_owned();
            let d = tech.params(cell.kind).delay_ps;
            match out.last_mut() {
                Some(seg) if seg.block == block => {
                    seg.delay_ps += d;
                    seg.cells += 1;
                }
                _ => out.push(PathSegment {
                    block,
                    delay_ps: d,
                    cells: 1,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::tech::TechLibrary;

    fn fresh() -> Netlist {
        Netlist::new(TechLibrary::cmos45lp())
    }

    #[test]
    fn chain_delay_adds_up() {
        let mut n = fresh();
        let a = n.input("a");
        let mut x = a;
        for _ in 0..10 {
            x = n.cell(CellKind::Inv, &[x]);
        }
        n.output_bus("y", &[x]);
        let sta = TimingAnalysis::new(&n).report();
        let inv = n.tech().params(CellKind::Inv).delay_ps;
        assert!((sta.critical_delay_ps - 10.0 * inv).abs() < 1e-9);
        assert_eq!(sta.critical_path.len(), 10);
        assert_eq!(sta.segments.len(), 1);
        assert_eq!(sta.segments[0].cells, 10);
    }

    #[test]
    fn worst_of_two_paths_wins() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        // Slow path: XOR chain; fast path: single NAND.
        let mut slow = a;
        for _ in 0..5 {
            slow = n.cell(CellKind::Xor2, &[slow, b]);
        }
        let fast = n.nand2(a, b);
        let y = n.and2(slow, fast);
        n.output_bus("y", &[y]);
        let sta = TimingAnalysis::new(&n).report();
        let xor = n.tech().params(CellKind::Xor2).delay_ps;
        let and = n.tech().params(CellKind::And2).delay_ps;
        assert!((sta.critical_delay_ps - (5.0 * xor + and)).abs() < 1e-9);
    }

    #[test]
    fn segments_follow_blocks() {
        let mut n = fresh();
        let a = n.input("a");
        let stage1 = n.in_block("STAGE1", |n| {
            let x = n.cell(CellKind::Inv, &[a]);
            n.cell(CellKind::Inv, &[x])
        });
        let out = n.in_block("STAGE2", |n| n.cell(CellKind::Inv, &[stage1]));
        n.output_bus("y", &[out]);
        let sta = TimingAnalysis::new(&n).report();
        assert_eq!(sta.segments.len(), 2);
        assert_eq!(sta.segments[0].block, "STAGE1");
        assert_eq!(sta.segments[0].cells, 2);
        assert_eq!(sta.segments[1].block, "STAGE2");
    }

    #[test]
    fn min_period_includes_register_overhead() {
        let mut n = fresh();
        let a = n.input("a");
        let x = n.cell(CellKind::Xor2, &[a, a]); // not folded: raw cell
        let q = n.dff(x);
        let y = n.cell(CellKind::Xor2, &[q, q]);
        let q2 = n.dff(y);
        n.output_bus("y", &[q2]);
        let sta = TimingAnalysis::new(&n).report();
        let tech = n.tech();
        let xor = tech.params(CellKind::Xor2).delay_ps;
        let clk2q = tech.params(CellKind::Dff).delay_ps;
        let setup = tech.dff_setup_ps;
        // reg→reg path: clk2q + xor + setup; in→reg path: xor + setup.
        let expect = (clk2q + xor + setup).max(xor + setup);
        assert!((sta.min_period_ps - expect).abs() < 1e-9);
        assert_eq!(sta.class_delays.reg_to_reg, Some(clk2q + xor));
        assert_eq!(sta.class_delays.in_to_reg, Some(xor));
        assert!(sta.max_freq_mhz() > 0.0);
    }

    #[test]
    fn combinational_min_period_is_critical_delay() {
        let mut n = fresh();
        let a = n.input("a");
        let y = n.cell(CellKind::Inv, &[a]);
        n.output_bus("y", &[y]);
        let sta = TimingAnalysis::new(&n).report();
        assert_eq!(sta.min_period_ps, sta.critical_delay_ps);
        assert_eq!(
            sta.class_delays.in_to_out,
            Some(n.tech().params(CellKind::Inv).delay_ps)
        );
    }
}
