//! Bit-vector helpers for driving and reading buses.

/// Converts a slice of bits (LSB first) to an integer.
///
/// # Panics
///
/// Panics if more than 128 bits are given.
pub fn bits_to_u128(bits: &[bool]) -> u128 {
    assert!(bits.len() <= 128);
    bits.iter()
        .enumerate()
        .fold(0u128, |acc, (i, &b)| acc | ((b as u128) << i))
}

/// Converts the low `width` bits of `value` to a bit vector (LSB first).
pub fn u128_to_bits(value: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Sign-extends a `width`-bit two's-complement value held in a `u128` to
/// an `i128`.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 128.
pub fn sign_extend(value: u128, width: u32) -> i128 {
    assert!((1..=128).contains(&width));
    if width == 128 {
        return value as i128;
    }
    let masked = value & ((1u128 << width) - 1);
    let sign = 1u128 << (width - 1);
    if masked & sign != 0 {
        (masked as i128) - (1i128 << width)
    } else {
        masked as i128
    }
}

/// Truncates an `i128` to a `width`-bit two's-complement pattern in a `u128`.
pub fn truncate(value: i128, width: u32) -> u128 {
    if width == 128 {
        value as u128
    } else {
        (value as u128) & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let v = 0b1011_0010u128;
        assert_eq!(bits_to_u128(&u128_to_bits(v, 8)), v);
        assert_eq!(u128_to_bits(v, 4), vec![false, true, false, false]);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(u128::MAX, 128), -1);
    }

    #[test]
    fn truncate_roundtrip() {
        for v in [-8i128, -1, 0, 3, 7] {
            assert_eq!(sign_extend(truncate(v, 4), 4), v);
        }
        assert_eq!(truncate(-1, 128), u128::MAX);
    }
}
