//! Fixed-width text tables for the benchmark binaries.
//!
//! The table/figure regeneration binaries print their results in the same
//! tabular form the paper uses; this module is the tiny formatter they
//! share.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use mfm_gatesim::report::Table;
///
/// let mut t = Table::new(&["format", "power [mW]"]);
/// t.row(&["int64", "8.90"]);
/// t.row(&["binary64", "7.20"]);
/// let s = t.to_string();
/// assert!(s.contains("int64"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The body rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether a cell reads as a number — possibly carrying one of the
    /// unit suffixes the report binaries print (`%`, `K`, `x`). Numeric
    /// cells are right-aligned so magnitudes line up by digit.
    fn is_numeric(cell: &str) -> bool {
        let t = cell.trim();
        let t = t.strip_suffix(['%', 'K', 'x']).unwrap_or(t);
        !t.is_empty() && t.parse::<f64>().is_ok()
    }

    /// Whether every non-empty body cell of column `i` is numeric
    /// (empty columns stay left-aligned).
    fn column_is_numeric(&self, i: usize) -> bool {
        let mut seen = false;
        for row in &self.rows {
            if let Some(cell) = row.get(i) {
                if cell.is_empty() {
                    continue;
                }
                if !Self::is_numeric(cell) {
                    return false;
                }
                seen = true;
            }
        }
        seen
    }

    /// Renders the table as GitHub-flavoured Markdown, right-aligning
    /// numeric columns. Pipes inside cells are escaped.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let cols = self.widths().len();
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let _ = write!(out, "|");
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, " {} |", esc(cell));
            }
            let _ = writeln!(out);
        };
        line(&self.headers, &mut out);
        let _ = write!(out, "|");
        for i in 0..cols {
            let _ = write!(
                out,
                "{}|",
                if self.column_is_numeric(i) {
                    "---:"
                } else {
                    "---"
                }
            );
        }
        let _ = writeln!(out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < w.len() {
                    w[i] = w[i].max(cell.len());
                } else {
                    w.push(cell.len());
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let sep: String = w
            .iter()
            .map(|&n| "-".repeat(n + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String], align_numeric: bool| -> String {
            w.iter()
                .enumerate()
                .map(|(i, &n)| {
                    let cell = cells.get(i).map(String::as_str).unwrap_or("");
                    if align_numeric && Table::is_numeric(cell) {
                        format!(" {cell:>n$} ")
                    } else {
                        format!(" {cell:<n$} ")
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&self.headers, false))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row, true))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(&["format", "power [mW]"]);
        t.row(&["int64", "8.90"]);
        t.row(&["binary64", "107.25"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // Both numbers end at the same column (right-aligned)...
        let end = |l: &str| l.trim_end().len();
        assert_eq!(end(lines[2]), end(lines[3]));
        // ...while the label column stays left-aligned.
        assert!(lines[2].starts_with(" int64 "));
        // Suffixed numbers count as numeric, words do not.
        assert!(Table::is_numeric(" 12.5% "));
        assert!(Table::is_numeric("1.38x"));
        assert!(Table::is_numeric("170K"));
        assert!(!Table::is_numeric("int64"));
        assert!(!Table::is_numeric("%"));
    }

    #[test]
    fn markdown_marks_numeric_columns() {
        let mut t = Table::new(&["name", "pJ/op", "note"]);
        t.row(&["a|b", "1.5", "ok"]);
        t.row(&["c", "2", ""]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| name | pJ/op | note |");
        assert_eq!(lines[1], "|---|---:|---|");
        assert!(lines[2].contains("a\\|b"));
        assert_eq!(lines[3], "| c | 2 |  |");
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
        t.row(&[]);
        let s = t.to_string();
        assert!(s.contains('1') && s.contains('2'));
    }
}
