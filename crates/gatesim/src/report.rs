//! Fixed-width text tables for the benchmark binaries.
//!
//! The table/figure regeneration binaries print their results in the same
//! tabular form the paper uses; this module is the tiny formatter they
//! share.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use mfm_gatesim::report::Table;
///
/// let mut t = Table::new(&["format", "power [mW]"]);
/// t.row(&["int64", "8.90"]);
/// t.row(&["binary64", "7.20"]);
/// let s = t.to_string();
/// assert!(s.contains("int64"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < w.len() {
                    w[i] = w[i].max(cell.len());
                } else {
                    w.push(cell.len());
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let sep: String = w
            .iter()
            .map(|&n| "-".repeat(n + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            w.iter()
                .enumerate()
                .map(|(i, &n)| {
                    let cell = cells.get(i).map(String::as_str).unwrap_or("");
                    format!(" {cell:<n$} ")
                })
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
        t.row(&[]);
        let s = t.to_string();
        assert!(s.contains('1') && s.contains('2'));
    }
}
