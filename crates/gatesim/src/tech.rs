//! Technology library: per-cell delay, area and switching energy.
//!
//! The default library, [`TechLibrary::cmos45lp`], models the 45 nm
//! low-power standard-cell library the paper uses: its FO4 inverter delay
//! is 64 ps and the NAND2 footprint is 1.06 µm². Per-cell numbers follow
//! logical-effort-style ratios under a moderate-fanout load; they are *not*
//! tuned to reproduce the paper's absolute results (see DESIGN.md §6).

/// The kinds of standard cells the netlist builder can instantiate.
///
/// The set matches what a synthesizer maps datapath logic to: simple static
/// CMOS gates, a transmission-gate mux, complex AOI/OAI gates, a majority
/// gate (the carry function of a full adder) and a D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; output = `sel ? a1 : a0`.
    Mux2,
    /// AND-OR-invert 2-1: output = `!((a & b) | c)`.
    Aoi21,
    /// AND-OR-invert 2-2: output = `!((a & b) | (c & d))` — the workhorse
    /// of one-hot mux structures.
    Aoi22,
    /// OR-AND-invert 2-1: output = `!((a | b) & c)`.
    Oai21,
    /// 3-input majority (full-adder carry).
    Maj3,
    /// Rising-edge D flip-flop.
    Dff,
}

impl CellKind {
    /// Number of data inputs this cell kind takes.
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Mux2
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Maj3 => 3,
            CellKind::Aoi22 => 4,
        }
    }

    /// Evaluates the combinational function of this cell kind.
    ///
    /// For [`CellKind::Dff`] this returns the D input unchanged (the
    /// sequential behaviour lives in the simulator).
    ///
    /// For [`CellKind::Mux2`] the input order is `[a0, a1, sel]`.
    #[inline]
    pub fn eval(self, a: bool, b: bool, c: bool, d: bool) -> bool {
        match self {
            CellKind::Inv => !a,
            CellKind::Buf | CellKind::Dff => a,
            CellKind::Nand2 => !(a & b),
            CellKind::Nand3 => !(a & b & c),
            CellKind::Nor2 => !(a | b),
            CellKind::Nor3 => !(a | b | c),
            CellKind::And2 => a & b,
            CellKind::And3 => a & b & c,
            CellKind::Or2 => a | b,
            CellKind::Or3 => a | b | c,
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
            CellKind::Mux2 => {
                if c {
                    b
                } else {
                    a
                }
            }
            CellKind::Aoi21 => !((a & b) | c),
            CellKind::Aoi22 => !((a & b) | (c & d)),
            CellKind::Oai21 => !((a | b) & c),
            CellKind::Maj3 => (a & b) | (a & c) | (b & c),
        }
    }

    /// All cell kinds, for iteration in reports and tests.
    pub const ALL: [CellKind; 18] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::And3,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Aoi22,
        CellKind::Oai21,
        CellKind::Maj3,
        CellKind::Dff,
    ];

    fn index(self) -> usize {
        match self {
            CellKind::Inv => 0,
            CellKind::Buf => 1,
            CellKind::Nand2 => 2,
            CellKind::Nand3 => 3,
            CellKind::Nor2 => 4,
            CellKind::Nor3 => 5,
            CellKind::And2 => 6,
            CellKind::And3 => 7,
            CellKind::Or2 => 8,
            CellKind::Or3 => 9,
            CellKind::Xor2 => 10,
            CellKind::Xnor2 => 11,
            CellKind::Mux2 => 12,
            CellKind::Aoi21 => 13,
            CellKind::Aoi22 => 14,
            CellKind::Oai21 => 15,
            CellKind::Maj3 => 16,
            CellKind::Dff => 17,
        }
    }
}

/// Physical parameters of one cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Propagation delay input→output in picoseconds (for a DFF: clk→q).
    pub delay_ps: f64,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Self energy per output transition (internal + output drain
    /// capacitance), in femtojoules.
    pub energy_fj: f64,
    /// Energy charged into one *input pin* of this cell per transition of
    /// the driving net, in femtojoules. Total dynamic energy of a net
    /// toggle = driver self energy + Σ fanout input energies.
    pub input_fj: f64,
}

/// A technology library: parameters for every [`CellKind`] plus a few
/// global quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    /// Human-readable library name.
    pub name: String,
    /// FO4 inverter delay in picoseconds; the unit the paper quotes delays in.
    pub fo4_ps: f64,
    /// NAND2 cell area in µm²; the unit the paper quotes areas in.
    pub nand2_area_um2: f64,
    /// DFF setup time in picoseconds (added to stage delay when computing
    /// the minimum clock period).
    pub dff_setup_ps: f64,
    /// Energy drawn by a DFF's internal clock buffering every clock cycle,
    /// independent of data activity, in femtojoules.
    pub dff_clock_energy_fj: f64,
    /// Leakage power density in nanowatts per µm².
    pub leakage_nw_per_um2: f64,
    params: Vec<CellParams>,
}

impl TechLibrary {
    /// The default 45 nm low-power library model (FO4 = 64 ps,
    /// NAND2 = 1.06 µm², matching the constants the paper reports).
    ///
    /// Delay ratios are logical-effort style under a fanout-of-2..3 load;
    /// energies scale roughly with input capacitance (area).
    pub fn cmos45lp() -> Self {
        use CellKind::*;
        let fo4 = 64.0;
        // (kind, delay in FO4 units, area in NAND2 units,
        //  self energy fJ/transition, input-pin energy fJ/transition)
        let table: [(CellKind, f64, f64, f64, f64); 18] = [
            (Inv, 0.35, 0.75, 0.55, 0.20),
            (Buf, 0.60, 1.10, 0.90, 0.20),
            (Nand2, 0.45, 1.00, 0.85, 0.25),
            (Nand3, 0.62, 1.50, 1.20, 0.25),
            (Nor2, 0.52, 1.00, 0.90, 0.25),
            (Nor3, 0.75, 1.55, 1.30, 0.25),
            (And2, 0.65, 1.25, 1.05, 0.25),
            (And3, 0.82, 1.75, 1.40, 0.25),
            (Or2, 0.68, 1.25, 1.10, 0.25),
            (Or3, 0.88, 1.80, 1.45, 0.25),
            // Areas follow transistor counts relative to NAND2 (4T):
            // XOR2/XNOR2 ≈ 10T, MUX2 ≈ 10T, MAJ3 (mirror carry) ≈ 12T.
            // XOR/MUX input pins drive two transistor gates each.
            (Xor2, 0.90, 2.50, 2.10, 0.45),
            (Xnor2, 0.90, 2.50, 2.10, 0.45),
            (Mux2, 0.75, 2.40, 1.90, 0.40),
            (Aoi21, 0.58, 1.50, 1.15, 0.25),
            (Aoi22, 0.62, 2.00, 1.45, 0.25),
            (Oai21, 0.58, 1.50, 1.15, 0.25),
            (Maj3, 0.95, 3.00, 2.40, 0.45),
            (Dff, 1.70, 4.25, 3.00, 0.30), // delay = clk→q
        ];
        let nand2_area = 1.06;
        let mut params = vec![
            CellParams {
                delay_ps: 0.0,
                area_um2: 0.0,
                energy_fj: 0.0,
                input_fj: 0.0,
            };
            18
        ];
        for (kind, d_fo4, a_nand2, e_fj, i_fj) in table {
            params[kind.index()] = CellParams {
                delay_ps: d_fo4 * fo4,
                area_um2: a_nand2 * nand2_area,
                energy_fj: e_fj,
                input_fj: i_fj,
            };
        }
        TechLibrary {
            name: "cmos45lp".to_owned(),
            fo4_ps: fo4,
            nand2_area_um2: nand2_area,
            dff_setup_ps: 0.85 * fo4,
            // Clock pin plus the flop's share of local clock buffering —
            // the format-independent power floor of a pipelined unit.
            dff_clock_energy_fj: 4.5,
            leakage_nw_per_um2: 2.0,
            params,
        }
    }

    /// Parameters for a cell kind.
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.params[kind.index()]
    }

    /// Returns a copy of the library with every switching-energy figure
    /// (cell self energy and input-pin energy) scaled by `factor`.
    /// Used by the sensitivity ablation to show the reproduced power
    /// orderings do not hinge on the calibration constants.
    pub fn with_energy_scale(mut self, factor: f64) -> Self {
        for p in &mut self.params {
            p.energy_fj *= factor;
            p.input_fj *= factor;
        }
        self.name = format!("{} (energy x{factor})", self.name);
        self
    }

    /// Returns a copy with the per-DFF clock energy replaced.
    pub fn with_clock_energy_fj(mut self, fj: f64) -> Self {
        self.dff_clock_energy_fj = fj;
        self
    }

    /// Returns a copy with every cell delay scaled by `factor` (FO4 and
    /// setup scale along).
    pub fn with_delay_scale(mut self, factor: f64) -> Self {
        for p in &mut self.params {
            p.delay_ps *= factor;
        }
        self.fo4_ps *= factor;
        self.dff_setup_ps *= factor;
        self
    }

    /// Converts a delay in picoseconds to FO4 units.
    pub fn ps_to_fo4(&self, ps: f64) -> f64 {
        ps / self.fo4_ps
    }

    /// Converts an area in µm² to NAND2-equivalent gate count.
    pub fn um2_to_nand2(&self, um2: f64) -> f64 {
        um2 / self.nand2_area_um2
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::cmos45lp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let lib = TechLibrary::cmos45lp();
        assert_eq!(lib.fo4_ps, 64.0);
        assert_eq!(lib.nand2_area_um2, 1.06);
    }

    #[test]
    fn every_kind_has_positive_params() {
        let lib = TechLibrary::cmos45lp();
        for kind in CellKind::ALL {
            let p = lib.params(kind);
            assert!(p.delay_ps > 0.0, "{kind:?}");
            assert!(p.area_um2 > 0.0, "{kind:?}");
            assert!(p.energy_fj > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn truth_tables() {
        use CellKind::*;
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    for d in [false, true] {
                        assert_eq!(Nand2.eval(a, b, c, d), !(a && b));
                        assert_eq!(Nor3.eval(a, b, c, d), !(a || b || c));
                        assert_eq!(Xor2.eval(a, b, c, d), a ^ b);
                        assert_eq!(Mux2.eval(a, b, c, d), if c { b } else { a });
                        assert_eq!(Aoi21.eval(a, b, c, d), !((a && b) || c));
                        assert_eq!(Aoi22.eval(a, b, c, d), !((a && b) || (c && d)));
                        assert_eq!(Oai21.eval(a, b, c, d), !((a || b) && c));
                        assert_eq!(Maj3.eval(a, b, c, d), (a as u8 + b as u8 + c as u8) >= 2);
                    }
                }
            }
        }
    }

    #[test]
    fn relative_delays_are_sane() {
        let lib = TechLibrary::cmos45lp();
        // An XOR is slower than a NAND; a DFF clk→q is the slowest element.
        assert!(lib.params(CellKind::Xor2).delay_ps > lib.params(CellKind::Nand2).delay_ps);
        assert!(lib.params(CellKind::Dff).delay_ps > lib.params(CellKind::Xor2).delay_ps);
        // Pipeline overhead (clk→q + setup) is in the 2–3 FO4 range the
        // paper quotes.
        let overhead = lib.params(CellKind::Dff).delay_ps + lib.dff_setup_ps;
        let fo4 = lib.ps_to_fo4(overhead);
        assert!((2.0..=3.5).contains(&fo4), "pipeline overhead {fo4} FO4");
    }

    #[test]
    fn arity_matches_eval_signature() {
        for kind in CellKind::ALL {
            assert!(kind.arity() >= 1 && kind.arity() <= 4);
        }
        assert_eq!(CellKind::Aoi22.arity(), 4);
    }
}
