//! Structural netlist representation and builder.
//!
//! A [`Netlist`] is a flat list of standard cells connected by nets, with
//! every cell attributed to a named *block* (e.g. `PPGEN`, `TREE`, `CPA`).
//! Blocks are what the paper's tables decompose delay and power over, so
//! attribution is first-class here.
//!
//! Netlists are built programmatically: each gate method allocates the
//! output net and returns its [`NetId`]. Constant inputs are folded where
//! the logic function collapses, mimicking the constant propagation a
//! synthesizer performs (important for the dual-lane multiplier, where
//! lane blanking ties many inputs to constants).

use crate::tech::{CellKind, TechLibrary};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a net (a single-bit wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

/// Identifier of a hierarchy block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u16);

impl NetId {
    /// Index into per-net arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CellId {
    /// Index into per-cell arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Index into per-block arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// The root block every netlist starts with.
    pub const ROOT: BlockId = BlockId(0);
}

/// One cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The standard-cell kind.
    pub kind: CellKind,
    /// Input nets; unused slots repeat the first input.
    pub inputs: [NetId; 4],
    /// Output net (single-output cells only).
    pub output: NetId,
    /// The hierarchy block this cell belongs to.
    pub block: BlockId,
}

impl Cell {
    /// The distinct input nets of this cell (its arity-many pins,
    /// deduplicated): the first `len` entries of the returned array.
    pub fn distinct_inputs(&self) -> ([NetId; 4], usize) {
        let mut ins: [NetId; 4] = self.inputs;
        let arity = self.kind.arity();
        let mut len = 0usize;
        for i in 0..arity {
            if !ins[..len].contains(&self.inputs[i]) {
                ins[len] = self.inputs[i];
                len += 1;
            }
        }
        (ins, len)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// A primary input.
    Input,
    /// Constant zero.
    Const0,
    /// Constant one.
    Const1,
    /// The output of a cell.
    Cell(CellId),
}

/// Errors detected by [`Netlist::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A combinational cycle exists through the listed cell.
    CombinationalCycle(CellId),
    /// A named output bus references an undriven net.
    UndrivenOutput(String, NetId),
    /// A cell input pin references an undriven net.
    UndrivenCellInput(CellId, NetId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through cell {}", c.0)
            }
            NetlistError::UndrivenOutput(name, n) => {
                write!(f, "output bus {name} references undriven net {}", n.0)
            }
            NetlistError::UndrivenCellInput(c, n) => {
                write!(f, "cell {} consumes undriven net {}", c.0, n.0)
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// One reference to a net this netlist never allocated (typically a
/// [`NetId`] leaked from a *different* netlist). Returned by
/// [`Netlist::undriven_refs`], which backs both [`Netlist::check`] and the
/// `mfm-lint` structural-hygiene pass, so the two can never drift apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndrivenRef {
    /// Input pin `pin` of `cell` consumes the undriven net.
    CellInput {
        /// The consuming cell.
        cell: CellId,
        /// The consuming input pin index.
        pin: usize,
        /// The undriven net.
        net: NetId,
    },
    /// Bit `bit` of the named output bus references the undriven net.
    OutputBus {
        /// The output bus name.
        name: String,
        /// The bit index within the bus (LSB = 0).
        bit: usize,
        /// The undriven net.
        net: NetId,
    },
}

/// Cached levelized view of the combinational logic.
///
/// Computed once per netlist (lazily, via [`Netlist::levelization`]) and
/// shared by the event-driven simulator, static timing analysis and the
/// compiled bit-parallel engine:
///
/// - a deterministic topological order of the combinational cells, sorted
///   by logic level (then by cell index within a level),
/// - the logic level of every cell (DFFs are level 0 sources),
/// - a CSR (offsets + flat indices) mapping each net to the combinational
///   cells it feeds, replacing the per-simulator `Vec<Vec<u32>>` fanout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    order: Vec<CellId>,
    level: Vec<u32>,
    max_level: u32,
    fanout_offsets: Vec<u32>,
    fanout_cells: Vec<u32>,
    sink_offsets: Vec<u32>,
    sink_cells: Vec<u32>,
}

impl Levelization {
    /// Topological order of the combinational cells, sorted by
    /// `(logic level, cell index)`. DFFs are excluded.
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// Logic level of a cell: `0` for cells fed only by primary inputs,
    /// constants or DFF outputs, otherwise `1 + max(level of fanins)`.
    /// DFFs report level `0`.
    pub fn level_of(&self, cell: CellId) -> u32 {
        self.level[cell.index()]
    }

    /// The deepest combinational level in the netlist.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Indices of the combinational cells fed by `net`, ascending and
    /// deduplicated (a cell using the net on several pins appears once).
    pub fn fanout_of(&self, net: NetId) -> &[u32] {
        let lo = self.fanout_offsets[net.index()] as usize;
        let hi = self.fanout_offsets[net.index() + 1] as usize;
        &self.fanout_cells[lo..hi]
    }

    /// Indices of **all** cells consuming `net` — DFFs included, unlike
    /// [`Levelization::fanout_of`] — ascending and deduplicated. This is
    /// the static-analysis hook: zero-fanout and dead-cone detection need
    /// register sinks, which the simulator-facing CSR deliberately omits.
    pub fn consumers_of(&self, net: NetId) -> &[u32] {
        let lo = self.sink_offsets[net.index()] as usize;
        let hi = self.sink_offsets[net.index() + 1] as usize;
        &self.sink_cells[lo..hi]
    }
}

/// A structural gate-level netlist.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Netlist {
    tech: TechLibrary,
    cells: Vec<Cell>,
    drivers: Vec<Driver>,
    const0: NetId,
    const1: NetId,
    inputs: Vec<NetId>,
    input_buses: Vec<(String, Vec<NetId>)>,
    output_buses: Vec<(String, Vec<NetId>)>,
    blocks: Vec<String>,
    block_stack: Vec<BlockId>,
    inv_cache: HashMap<NetId, NetId>,
    dff_cache: HashMap<NetId, NetId>,
    topo: OnceLock<Result<Levelization, NetlistError>>,
}

impl Netlist {
    /// Creates an empty netlist over the given technology library.
    pub fn new(tech: TechLibrary) -> Self {
        let mut n = Netlist {
            tech,
            cells: Vec::new(),
            drivers: Vec::new(),
            const0: NetId(0),
            const1: NetId(0),
            inputs: Vec::new(),
            input_buses: Vec::new(),
            output_buses: Vec::new(),
            blocks: vec!["TOP".to_owned()],
            block_stack: vec![BlockId::ROOT],
            inv_cache: HashMap::new(),
            dff_cache: HashMap::new(),
            topo: OnceLock::new(),
        };
        n.const0 = n.alloc_net(Driver::Const0);
        n.const1 = n.alloc_net(Driver::Const1);
        n
    }

    /// The technology library this netlist is built on.
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    fn alloc_net(&mut self, driver: Driver) -> NetId {
        // Every structural mutation allocates a net (cell outputs included),
        // so this is the single invalidation point for the cached
        // levelization.
        if self.topo.get().is_some() {
            self.topo = OnceLock::new();
        }
        let id = NetId(self.drivers.len() as u32);
        self.drivers.push(driver);
        id
    }

    /// Number of nets (including the two constants).
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// All cells, in instantiation order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The driver of a net.
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// The constant-0 net.
    pub fn zero(&self) -> NetId {
        self.const0
    }

    /// The constant-1 net.
    pub fn one(&self) -> NetId {
        self.const1
    }

    /// Returns the constant net for `value`.
    pub fn lit(&self, value: bool) -> NetId {
        if value {
            self.const1
        } else {
            self.const0
        }
    }

    /// Returns `Some(value)` if `net` is one of the constant nets.
    pub fn const_value(&self, net: NetId) -> Option<bool> {
        match self.drivers[net.index()] {
            Driver::Const0 => Some(false),
            Driver::Const1 => Some(true),
            _ => None,
        }
    }

    /// The cell driving `net`, if it is a cell output (as opposed to a
    /// primary input or constant).
    pub fn driver_cell(&self, net: NetId) -> Option<CellId> {
        match self.drivers[net.index()] {
            Driver::Cell(c) => Some(c),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Hierarchy blocks
    // ------------------------------------------------------------------

    /// Opens a nested block; subsequent cells are attributed to it.
    /// Block names are path-joined with `/`.
    pub fn begin_block(&mut self, name: &str) -> BlockId {
        let parent = *self.block_stack.last().expect("block stack never empty");
        let path = if parent == BlockId::ROOT {
            name.to_owned()
        } else {
            format!("{}/{}", self.blocks[parent.index()], name)
        };
        let id = BlockId(self.blocks.len() as u16);
        self.blocks.push(path);
        self.block_stack.push(id);
        id
    }

    /// Closes the innermost open block.
    ///
    /// # Panics
    ///
    /// Panics if called with no open block.
    pub fn end_block(&mut self) {
        assert!(self.block_stack.len() > 1, "end_block without begin_block");
        self.block_stack.pop();
    }

    /// Runs `f` with a block opened, closing it afterwards.
    pub fn in_block<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.begin_block(name);
        let r = f(self);
        self.end_block();
        r
    }

    /// The currently open block.
    pub fn current_block(&self) -> BlockId {
        *self.block_stack.last().expect("block stack never empty")
    }

    /// Full path name of a block.
    pub fn block_name(&self, id: BlockId) -> &str {
        &self.blocks[id.index()]
    }

    /// Number of blocks (including the root).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The *top-level* block a cell belongs to: the first path component.
    /// Cells in the root block report `"TOP"`.
    pub fn top_level_block_name(&self, id: BlockId) -> &str {
        let path = self.block_name(id);
        path.split('/').next().unwrap_or(path)
    }

    // ------------------------------------------------------------------
    // Primary I/O
    // ------------------------------------------------------------------

    /// Declares a single-bit primary input.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.alloc_net(Driver::Input);
        self.inputs.push(id);
        self.input_buses.push((name.to_owned(), vec![id]));
        id
    }

    /// Declares a `width`-bit primary input bus, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        let nets: Vec<NetId> = (0..width).map(|_| self.alloc_net(Driver::Input)).collect();
        self.inputs.extend(&nets);
        self.input_buses.push((name.to_owned(), nets.clone()));
        nets
    }

    /// Declares a named output bus (LSB first).
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        self.output_buses.push((name.to_owned(), nets.to_vec()));
    }

    /// All primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Named input buses.
    pub fn input_buses(&self) -> &[(String, Vec<NetId>)] {
        &self.input_buses
    }

    /// Named output buses.
    pub fn output_buses(&self) -> &[(String, Vec<NetId>)] {
        &self.output_buses
    }

    /// Looks up an output bus by name.
    pub fn output_bus_named(&self, name: &str) -> Option<&[NetId]> {
        self.output_buses
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.as_slice())
    }

    // ------------------------------------------------------------------
    // Cell instantiation
    // ------------------------------------------------------------------

    /// Instantiates a raw cell without constant folding.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        debug_assert_eq!(inputs.len(), kind.arity(), "{kind:?} arity");
        let out = self.alloc_net(Driver::Cell(CellId(self.cells.len() as u32)));
        let mut ins = [inputs[0]; 4];
        ins[..inputs.len()].copy_from_slice(inputs);
        self.cells.push(Cell {
            kind,
            inputs: ins,
            output: out,
            block: self.current_block(),
        });
        out
    }

    /// Inverter (folds constants; at most one inverter per net — repeated
    /// calls return the existing cell's output).
    pub fn not(&mut self, a: NetId) -> NetId {
        match self.const_value(a) {
            Some(v) => self.lit(!v),
            None => {
                if let Some(&out) = self.inv_cache.get(&a) {
                    return out;
                }
                let out = self.cell(CellKind::Inv, &[a]);
                self.inv_cache.insert(a, out);
                out
            }
        }
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        match self.const_value(a) {
            Some(v) => self.lit(v),
            None => self.cell(CellKind::Buf, &[a]),
        }
    }

    /// 2-input AND (folds constants and `a & a`).
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => self.zero(),
            (Some(true), _) => self.bufless(b),
            (_, Some(true)) => self.bufless(a),
            _ if a == b => self.bufless(a),
            _ => self.cell(CellKind::And2, &[a, b]),
        }
    }

    /// 2-input OR (folds constants and `a | a`).
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => self.one(),
            (Some(false), _) => self.bufless(b),
            (_, Some(false)) => self.bufless(a),
            _ if a == b => self.bufless(a),
            _ => self.cell(CellKind::Or2, &[a, b]),
        }
    }

    /// 2-input XOR (folds constants and `a ^ a`).
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) => self.bufless(b),
            (_, Some(false)) => self.bufless(a),
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.zero(),
            _ => self.cell(CellKind::Xor2, &[a, b]),
        }
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) => self.bufless(b),
            (_, Some(true)) => self.bufless(a),
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ if a == b => self.one(),
            _ => self.cell(CellKind::Xnor2, &[a, b]),
        }
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => self.one(),
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => self.cell(CellKind::Nand2, &[a, b]),
        }
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => self.zero(),
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ => self.cell(CellKind::Nor2, &[a, b]),
        }
    }

    /// 3-input AND.
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        if self.const_value(a).is_some()
            || self.const_value(b).is_some()
            || self.const_value(c).is_some()
        {
            let ab = self.and2(a, b);
            return self.and2(ab, c);
        }
        self.cell(CellKind::And3, &[a, b, c])
    }

    /// 3-input OR.
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        if self.const_value(a).is_some()
            || self.const_value(b).is_some()
            || self.const_value(c).is_some()
        {
            let ab = self.or2(a, b);
            return self.or2(ab, c);
        }
        self.cell(CellKind::Or3, &[a, b, c])
    }

    /// 2:1 mux: returns `sel ? a1 : a0` (folds constants).
    pub fn mux2(&mut self, sel: NetId, a0: NetId, a1: NetId) -> NetId {
        match self.const_value(sel) {
            Some(false) => return self.bufless(a0),
            Some(true) => return self.bufless(a1),
            None => {}
        }
        if a0 == a1 {
            return self.bufless(a0);
        }
        match (self.const_value(a0), self.const_value(a1)) {
            (Some(false), Some(true)) => return self.bufless(sel),
            (Some(true), Some(false)) => return self.not(sel),
            (Some(false), None) => return self.and2(sel, a1),
            (None, Some(false)) => {
                let ns = self.not(sel);
                return self.and2(ns, a0);
            }
            (Some(true), None) => {
                let ns = self.not(sel);
                return self.or2(ns, a1);
            }
            (None, Some(true)) => return self.or2(sel, a0),
            _ => {}
        }
        self.cell(CellKind::Mux2, &[a0, a1, sel])
    }

    /// 3-input majority (folds constants).
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let consts = [
            self.const_value(a),
            self.const_value(b),
            self.const_value(c),
        ];
        match consts {
            [Some(x), Some(y), Some(z)] => return self.lit((x as u8 + y as u8 + z as u8) >= 2),
            [Some(false), _, _] => return self.and2(b, c),
            [_, Some(false), _] => return self.and2(a, c),
            [_, _, Some(false)] => return self.and2(a, b),
            [Some(true), _, _] => return self.or2(b, c),
            [_, Some(true), _] => return self.or2(a, c),
            [_, _, Some(true)] => return self.or2(a, b),
            _ => {}
        }
        self.cell(CellKind::Maj3, &[a, b, c])
    }

    /// AOI21: `!((a & b) | c)`.
    pub fn aoi21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        if self.const_value(a).is_some()
            || self.const_value(b).is_some()
            || self.const_value(c).is_some()
        {
            let ab = self.and2(a, b);
            let abc = self.or2(ab, c);
            return self.not(abc);
        }
        self.cell(CellKind::Aoi21, &[a, b, c])
    }

    /// AOI22: `!((a & b) | (c & d))` (folds constants).
    pub fn aoi22(&mut self, a: NetId, b: NetId, c: NetId, d: NetId) -> NetId {
        if self.const_value(a).is_some()
            || self.const_value(b).is_some()
            || self.const_value(c).is_some()
            || self.const_value(d).is_some()
        {
            let ab = self.and2(a, b);
            let cd = self.and2(c, d);
            let s = self.or2(ab, cd);
            return self.not(s);
        }
        self.cell(CellKind::Aoi22, &[a, b, c, d])
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, c: NetId) -> (NetId, NetId) {
        let ab = self.xor2(a, b);
        let sum = self.xor2(ab, c);
        let carry = self.maj3(a, b, c);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        (self.xor2(a, b), self.and2(a, b))
    }

    /// Rising-edge D flip-flop; returns the Q net.
    pub fn dff(&mut self, d: NetId) -> NetId {
        // Two single-clock flops with the same D always hold the same Q;
        // share one cell per registered net.
        if let Some(&out) = self.dff_cache.get(&d) {
            return out;
        }
        let out = self.cell(CellKind::Dff, &[d]);
        self.dff_cache.insert(d, out);
        out
    }

    /// Registers a whole bus; returns the Q nets.
    pub fn dff_bus(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&bit| self.dff(bit)).collect()
    }

    /// Like `buf`, but does not insert a cell: returns the net unchanged.
    /// Used by folding paths that just forward a value.
    fn bufless(&mut self, a: NetId) -> NetId {
        a
    }

    // ------------------------------------------------------------------
    // Analysis helpers
    // ------------------------------------------------------------------

    /// Total cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.tech.params(c.kind).area_um2)
            .sum()
    }

    /// Area as a NAND2-equivalent gate count.
    pub fn area_nand2(&self) -> f64 {
        self.tech.um2_to_nand2(self.area_um2())
    }

    /// Cell count per kind.
    pub fn count_by_kind(&self) -> HashMap<CellKind, usize> {
        let mut m = HashMap::new();
        for c in &self.cells {
            *m.entry(c.kind).or_insert(0) += 1;
        }
        m
    }

    /// Area per top-level block, as `(name, µm²)` sorted by name.
    pub fn area_by_block(&self) -> Vec<(String, f64)> {
        let mut m: HashMap<&str, f64> = HashMap::new();
        for c in &self.cells {
            let name = self.top_level_block_name(c.block);
            *m.entry(name).or_insert(0.0) += self.tech.params(c.kind).area_um2;
        }
        let mut v: Vec<(String, f64)> = m.into_iter().map(|(k, a)| (k.to_owned(), a)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All DFF cells.
    pub fn dffs(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::Dff)
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Number of DFF cells.
    pub fn dff_count(&self) -> usize {
        self.dffs().count()
    }

    /// Computes a topological order of the *combinational* cells.
    /// DFFs are excluded (their outputs are sources, their inputs sinks).
    ///
    /// The order is served from the cached [`Levelization`] (cells sorted
    /// by logic level, then by index), so repeated calls after the netlist
    /// is built are cheap.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// logic contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<CellId>, NetlistError> {
        self.levelization().map(|lev| lev.order().to_vec())
    }

    /// The cached levelization: topological order, per-cell logic levels
    /// and the net→fanout CSR. Computed on first use and invalidated by
    /// any structural mutation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// logic contains a cycle.
    pub fn levelization(&self) -> Result<&Levelization, NetlistError> {
        match self.topo.get_or_init(|| self.compute_levelization()) {
            Ok(lev) => Ok(lev),
            Err(e) => Err(e.clone()),
        }
    }

    fn compute_levelization(&self) -> Result<Levelization, NetlistError> {
        let n = self.cells.len();
        let nets = self.drivers.len();

        // CSR net → combinational fanout cells, deduplicated per cell.
        // Counting pass, prefix sum, fill pass: iterating cells in
        // ascending order keeps each net's slice sorted ascending. A
        // second CSR keeps *all* sinks (DFFs included) for static
        // analysis; see [`Levelization::consumers_of`].
        let mut fanout_offsets = vec![0u32; nets + 1];
        let mut sink_offsets = vec![0u32; nets + 1];
        for c in &self.cells {
            let (ins, len) = c.distinct_inputs();
            for &inp in &ins[..len] {
                sink_offsets[inp.index() + 1] += 1;
                if c.kind != CellKind::Dff {
                    fanout_offsets[inp.index() + 1] += 1;
                }
            }
        }
        for i in 0..nets {
            fanout_offsets[i + 1] += fanout_offsets[i];
            sink_offsets[i + 1] += sink_offsets[i];
        }
        let mut fanout_cells = vec![0u32; fanout_offsets[nets] as usize];
        let mut sink_cells = vec![0u32; sink_offsets[nets] as usize];
        let mut cursor: Vec<u32> = fanout_offsets[..nets].to_vec();
        let mut sink_cursor: Vec<u32> = sink_offsets[..nets].to_vec();
        // in-degree = number of distinct input nets driven by comb cells
        let mut indeg = vec![0u32; n];
        for (i, c) in self.cells.iter().enumerate() {
            let (ins, len) = c.distinct_inputs();
            for &inp in &ins[..len] {
                sink_cells[sink_cursor[inp.index()] as usize] = i as u32;
                sink_cursor[inp.index()] += 1;
            }
            if c.kind == CellKind::Dff {
                continue;
            }
            for &inp in &ins[..len] {
                fanout_cells[cursor[inp.index()] as usize] = i as u32;
                cursor[inp.index()] += 1;
                if let Driver::Cell(src) = self.drivers[inp.index()] {
                    if self.cells[src.index()].kind != CellKind::Dff {
                        indeg[i] += 1;
                    }
                }
            }
        }

        // Kahn's algorithm; levels finalize when a cell is popped because
        // all its combinational fanins are already done.
        let mut level = vec![0u32; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&i| self.cells[i as usize].kind != CellKind::Dff && indeg[i as usize] == 0)
            .collect();
        let mut max_level = 0u32;
        while let Some(i) = stack.pop() {
            let c = &self.cells[i as usize];
            let mut lv = 0u32;
            for &inp in &c.inputs[..c.kind.arity()] {
                if let Driver::Cell(src) = self.drivers[inp.index()] {
                    if self.cells[src.index()].kind != CellKind::Dff {
                        lv = lv.max(level[src.index()] + 1);
                    }
                }
            }
            level[i as usize] = lv;
            max_level = max_level.max(lv);
            order.push(i);
            let lo = fanout_offsets[c.output.index()] as usize;
            let hi = fanout_offsets[c.output.index() + 1] as usize;
            for &j in &fanout_cells[lo..hi] {
                indeg[j as usize] -= 1;
                if indeg[j as usize] == 0 {
                    stack.push(j);
                }
            }
        }
        let comb_count = self
            .cells
            .iter()
            .filter(|c| c.kind != CellKind::Dff)
            .count();
        if order.len() != comb_count {
            // Find a cell still blocked to report.
            let blocked = (0..n)
                .find(|&i| self.cells[i].kind != CellKind::Dff && indeg[i] > 0)
                .expect("cycle implies a blocked cell");
            return Err(NetlistError::CombinationalCycle(CellId(blocked as u32)));
        }
        order.sort_unstable_by_key(|&i| (level[i as usize], i));
        Ok(Levelization {
            order: order.into_iter().map(CellId).collect(),
            level,
            max_level,
            fanout_offsets,
            fanout_cells,
            sink_offsets,
            sink_cells,
        })
    }

    /// Every reference to a net this netlist never allocated — cell input
    /// pins first (in cell order), then output-bus bits. Within one
    /// netlist every allocated net has a driver by construction, so a hit
    /// here means a [`NetId`] produced by a *different* netlist leaked in.
    ///
    /// Both [`Netlist::check`] and the `mfm-lint` hygiene pass report
    /// through this single routine.
    pub fn undriven_refs(&self) -> Vec<UndrivenRef> {
        let nets = self.drivers.len();
        let mut refs = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            for (pin, &inp) in c.inputs[..c.kind.arity()].iter().enumerate() {
                if inp.index() >= nets {
                    refs.push(UndrivenRef::CellInput {
                        cell: CellId(i as u32),
                        pin,
                        net: inp,
                    });
                }
            }
        }
        for (name, bus) in &self.output_buses {
            for (bit, &net) in bus.iter().enumerate() {
                if net.index() >= nets {
                    refs.push(UndrivenRef::OutputBus {
                        name: name.clone(),
                        bit,
                        net,
                    });
                }
            }
        }
        refs
    }

    /// Rewires one input pin of an existing cell to another net,
    /// invalidating the cached levelization.
    ///
    /// This is an ECO-style structural edit. Its main use in this
    /// repository is *seeding defects for the lint test-suite* — wiring a
    /// cross-lane operand bit into a blanking gate, closing a
    /// combinational loop — so every `mfm-lint` rule can be shown to fire
    /// on a netlist that actually contains its defect.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is not below the cell's arity.
    pub fn rewire_input(&mut self, cell: CellId, pin: usize, net: NetId) {
        let arity = self.cells[cell.index()].kind.arity();
        assert!(pin < arity, "pin {pin} out of range for arity {arity}");
        if self.topo.get().is_some() {
            self.topo = OnceLock::new();
        }
        // A rewired inverter or flop no longer computes what its cache
        // entry promised; drop all memoized cells.
        self.inv_cache.clear();
        self.dff_cache.clear();
        let c = &mut self.cells[cell.index()];
        // Unused trailing slots mirror pin 0 (see `Cell::inputs`); keep
        // that invariant when pin 0 itself is rewired.
        if pin == 0 {
            for slot in arity..4 {
                if c.inputs[slot] == c.inputs[0] {
                    c.inputs[slot] = net;
                }
            }
        }
        c.inputs[pin] = net;
    }

    /// Validates the netlist: acyclic combinational logic and fully driven
    /// nets — on *every* cell input pin, not only the output buses.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn check(&self) -> Result<(), NetlistError> {
        if let Some(r) = self.undriven_refs().into_iter().next() {
            return Err(match r {
                UndrivenRef::CellInput { cell, net, .. } => {
                    NetlistError::UndrivenCellInput(cell, net)
                }
                UndrivenRef::OutputBus { name, net, .. } => NetlistError::UndrivenOutput(name, net),
            });
        }
        self.topo_order()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Netlist {
        Netlist::new(TechLibrary::cmos45lp())
    }

    #[test]
    fn constant_folding_and() {
        let mut n = fresh();
        let a = n.input("a");
        let zero = n.zero();
        let one = n.one();
        assert_eq!(n.and2(a, zero), n.zero());
        assert_eq!(n.and2(a, one), a);
        assert_eq!(n.and2(a, a), a);
        assert_eq!(n.cell_count(), 0, "all folded");
        let b = n.input("b");
        let _ = n.and2(a, b);
        assert_eq!(n.cell_count(), 1);
    }

    #[test]
    fn constant_folding_xor_mux_maj() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let one = n.one();
        let zero = n.zero();
        assert_eq!(n.xor2(a, zero), a);
        assert_eq!(n.xor2(a, a), n.zero());
        assert_eq!(n.mux2(zero, a, b), a);
        assert_eq!(n.mux2(one, a, b), b);
        assert_eq!(n.mux2(a, zero, one), a);
        // maj3 with one constant collapses to and/or
        let m0 = n.maj3(a, b, zero);
        let m1 = n.maj3(a, b, one);
        assert!(n.const_value(m0).is_none());
        assert!(n.const_value(m1).is_none());
        assert_eq!(n.count_by_kind().get(&CellKind::Maj3), None);
    }

    #[test]
    fn block_attribution() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        n.begin_block("PPGEN");
        let x = n.xor2(a, b);
        n.begin_block("row0");
        let _y = n.and2(x, a);
        n.end_block();
        n.end_block();
        let _z = n.or2(x, a);
        assert_eq!(n.block_count(), 3);
        let areas = n.area_by_block();
        let names: Vec<&str> = areas.iter().map(|(s, _)| s.as_str()).collect();
        assert!(names.contains(&"PPGEN"));
        assert!(names.contains(&"TOP"));
        // Nested block rolls up to its top-level parent.
        assert!(!names.contains(&"row0"));
        assert_eq!(n.block_name(BlockId(2)), "PPGEN/row0");
    }

    #[test]
    fn topo_order_covers_all_comb_cells() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let (s, c) = n.full_adder(a, b, n.zero());
        let q = n.dff(s);
        let _t = n.and2(q, c);
        let order = n.topo_order().unwrap();
        let comb = n.cells().iter().filter(|c| c.kind != CellKind::Dff).count();
        assert_eq!(order.len(), comb);
    }

    #[test]
    fn check_passes_for_valid_netlist() {
        let mut n = fresh();
        let a = n.input_bus("a", 2);
        let s = n.xor2(a[0], a[1]);
        n.output_bus("s", &[s]);
        assert!(n.check().is_ok());
    }

    #[test]
    fn area_accounting() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let _x = n.xor2(a, b);
        let _y = n.nand2(a, b);
        let tech = TechLibrary::cmos45lp();
        let expect = tech.params(CellKind::Xor2).area_um2 + tech.params(CellKind::Nand2).area_um2;
        assert!((n.area_um2() - expect).abs() < 1e-9);
        assert!(n.area_nand2() > 0.0);
    }

    #[test]
    fn full_adder_truth_table_via_structure() {
        // Structural spot-check without a simulator: the nets exist and the
        // cell kinds are as expected.
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let (_s, _c) = n.full_adder(a, b, cin);
        let kinds = n.count_by_kind();
        assert_eq!(kinds[&CellKind::Xor2], 2);
        assert_eq!(kinds[&CellKind::Maj3], 1);
    }

    #[test]
    fn dff_bus_and_counts() {
        let mut n = fresh();
        let a = n.input_bus("a", 8);
        let q = n.dff_bus(&a);
        assert_eq!(q.len(), 8);
        assert_eq!(n.dff_count(), 8);
    }
}
