//! Compiled bit-parallel ("PPSFP"-style) gate evaluation.
//!
//! [`CompiledNetlist::compile`] lowers a [`Netlist`] once into a flat,
//! levelized program: gates sorted by logic level with their net indices
//! resolved, plus the DFF D→Q pairs. [`CompiledSim`] then evaluates the
//! program over `u64` words — bit `l` of every word is an independent
//! simulation *lane*, so one pass over the gate array evaluates **64
//! input vectors (or 64 fault machines) at once** with no event queue, no
//! heap allocation and perfect streaming access over the op array.
//!
//! # Division of labour
//!
//! The event-driven [`crate::sim::Simulator`] stays the source of truth
//! for everything *timing-dependent*: toggle counts, glitch power, settle
//! budgets and transient (SEU) faults. The compiled engine serves
//! *correctness-only* paths — fault classification, recompute checks,
//! scrub batteries, equivalence sweeps — where only the settled value
//! matters. For acyclic two-valued logic the settled state of the
//! event-driven simulator is a pure function of the primary inputs,
//! register state and stuck-at overlay (inertial delays only filter
//! transient glitches, never change the fixed point), so the two engines
//! agree bit-for-bit on final values; `tests/compiled_equivalence.rs`
//! checks this differentially.
//!
//! # Fault overlay
//!
//! [`CompiledSim::inject_stuck_at`] forces a net per *lane*: a 64-bit
//! mask selects the lanes in which the net is stuck, so a single pass can
//! carry 64 different fault machines (one per lane) next to a fault-free
//! reference lane. [`CompiledFaultSim`] packages the one-fault-per-lane
//! pattern used by fault-coverage campaigns.

use crate::netlist::{NetId, Netlist, NetlistError};
use crate::tech::CellKind;

/// One lowered gate: resolved input/output net indices, in level order.
#[derive(Debug, Clone, Copy)]
struct GateOp {
    kind: CellKind,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    out: u32,
}

/// A [`Netlist`] lowered into a flat, levelized evaluation program.
///
/// Compiling is done once per netlist; the program is immutable and can
/// be shared (`&CompiledNetlist` is `Sync`) by any number of
/// [`CompiledSim`] instances across threads.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    net_count: usize,
    one: u32,
    ops: Vec<GateOp>,
    /// `(d_net, q_net)` per DFF, in instantiation order.
    dffs: Vec<(u32, u32)>,
}

impl CompiledNetlist {
    /// Lowers `netlist` into a levelized program, reusing the netlist's
    /// cached [`Levelization`](crate::netlist::Levelization).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// logic contains a cycle.
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        let lev = netlist.levelization()?;
        let cells = netlist.cells();
        let ops = lev
            .order()
            .iter()
            .map(|&cid| {
                let c = &cells[cid.index()];
                GateOp {
                    kind: c.kind,
                    a: c.inputs[0].index() as u32,
                    b: c.inputs[1].index() as u32,
                    c: c.inputs[2].index() as u32,
                    d: c.inputs[3].index() as u32,
                    out: c.output.index() as u32,
                }
            })
            .collect();
        let dffs = netlist
            .dffs()
            .map(|(_, c)| (c.inputs[0].index() as u32, c.output.index() as u32))
            .collect();
        Ok(CompiledNetlist {
            net_count: netlist.net_count(),
            one: netlist.one().index() as u32,
            ops,
            dffs,
        })
    }

    /// Number of nets in the compiled program.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of combinational gate ops per pass.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of DFFs in the program.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }
}

#[inline]
fn eval_word(kind: CellKind, a: u64, b: u64, c: u64, d: u64) -> u64 {
    match kind {
        CellKind::Inv => !a,
        CellKind::Buf | CellKind::Dff => a,
        CellKind::Nand2 => !(a & b),
        CellKind::Nand3 => !(a & b & c),
        CellKind::Nor2 => !(a | b),
        CellKind::Nor3 => !(a | b | c),
        CellKind::And2 => a & b,
        CellKind::And3 => a & b & c,
        CellKind::Or2 => a | b,
        CellKind::Or3 => a | b | c,
        CellKind::Xor2 => a ^ b,
        CellKind::Xnor2 => !(a ^ b),
        // Inputs are [a0, a1, sel]: sel picks a1.
        CellKind::Mux2 => (c & b) | (!c & a),
        CellKind::Aoi21 => !((a & b) | c),
        CellKind::Aoi22 => !((a & b) | (c & d)),
        CellKind::Oai21 => !((a | b) & c),
        CellKind::Maj3 => (a & b) | (a & c) | (b & c),
    }
}

/// Bit-parallel evaluator over a [`CompiledNetlist`]: 64 lanes per pass.
///
/// All state is plain `u64` words, all evaluation is pure integer
/// arithmetic in a deterministic order — results are bit-identical
/// across runs, thread counts and machines.
#[derive(Debug, Clone)]
pub struct CompiledSim<'p> {
    prog: &'p CompiledNetlist,
    /// One word per net; bit `l` is lane `l`'s value.
    words: Vec<u64>,
    /// Per-net stuck lane mask (0 = unfaulted) and forced values.
    fault_mask: Vec<u64>,
    fault_value: Vec<u64>,
    /// Nets with a non-zero fault mask, for cheap clearing/pre-forcing.
    faulted: Vec<u32>,
}

impl<'p> CompiledSim<'p> {
    /// Creates a simulator with all-zero inputs and register state,
    /// settled (constants applied, one propagation pass done).
    pub fn new(prog: &'p CompiledNetlist) -> Self {
        let mut sim = CompiledSim {
            prog,
            words: vec![0; prog.net_count],
            fault_mask: vec![0; prog.net_count],
            fault_value: vec![0; prog.net_count],
            faulted: Vec::new(),
        };
        sim.words[prog.one as usize] = !0;
        sim.propagate();
        sim
    }

    /// The compiled program this simulator runs.
    pub fn program(&self) -> &'p CompiledNetlist {
        self.prog
    }

    /// Sets one net in one lane.
    pub fn set_net_lane(&mut self, net: NetId, lane: usize, value: bool) {
        debug_assert!(lane < 64);
        let w = &mut self.words[net.index()];
        *w = (*w & !(1 << lane)) | ((value as u64) << lane);
    }

    /// Drives an integer onto a bus (LSB first) in one lane.
    pub fn set_bus_lane(&mut self, bus: &[NetId], lane: usize, value: u128) {
        for (i, &net) in bus.iter().enumerate() {
            self.set_net_lane(net, lane, (value >> i) & 1 == 1);
        }
    }

    /// Drives the same integer onto a bus in **all** 64 lanes.
    pub fn set_bus_all(&mut self, bus: &[NetId], value: u128) {
        for (i, &net) in bus.iter().enumerate() {
            self.words[net.index()] = if (value >> i) & 1 == 1 { !0 } else { 0 };
        }
    }

    /// Reads one net in one lane.
    pub fn read_net_lane(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < 64);
        (self.words[net.index()] >> lane) & 1 == 1
    }

    /// Reads a bus (LSB first) in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 128 bits.
    pub fn read_bus_lane(&self, bus: &[NetId], lane: usize) -> u128 {
        assert!(bus.len() <= 128, "bus too wide for u128");
        let mut v = 0u128;
        for (i, &net) in bus.iter().enumerate() {
            if self.read_net_lane(net, lane) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Forces `net` to `value` in the lanes selected by `lanes` until
    /// [`CompiledSim::clear_faults`]. Faults on the same net merge: each
    /// lane keeps the most recent forced value, so one net can be
    /// stuck-at-0 in one lane and stuck-at-1 in another.
    pub fn inject_stuck_at(&mut self, net: NetId, lanes: u64, value: bool) {
        let ni = net.index();
        if self.fault_mask[ni] == 0 && lanes != 0 {
            self.faulted.push(ni as u32);
        }
        self.fault_mask[ni] |= lanes;
        if value {
            self.fault_value[ni] |= lanes;
        } else {
            self.fault_value[ni] &= !lanes;
        }
    }

    /// Removes every fault overlay (values are refreshed on the next
    /// [`CompiledSim::propagate`]).
    pub fn clear_faults(&mut self) {
        for &ni in &self.faulted {
            self.fault_mask[ni as usize] = 0;
            self.fault_value[ni as usize] = 0;
        }
        self.faulted.clear();
    }

    #[inline]
    fn overlay(&mut self, ni: usize) {
        let m = self.fault_mask[ni];
        self.words[ni] = (self.words[ni] & !m) | (self.fault_value[ni] & m);
    }

    /// One full pass over the levelized gate array: recomputes every
    /// combinational net in all 64 lanes from the current inputs,
    /// register words and fault overlay. DFF outputs are left untouched.
    pub fn propagate(&mut self) {
        // Force faulted source nets (inputs, constants, DFF outputs)
        // first; gate outputs are blended as they are produced.
        for i in 0..self.faulted.len() {
            self.overlay(self.faulted[i] as usize);
        }
        for i in 0..self.prog.ops.len() {
            let op = self.prog.ops[i];
            let w = eval_word(
                op.kind,
                self.words[op.a as usize],
                self.words[op.b as usize],
                self.words[op.c as usize],
                self.words[op.d as usize],
            );
            let out = op.out as usize;
            let m = self.fault_mask[out];
            self.words[out] = (w & !m) | (self.fault_value[out] & m);
        }
    }

    /// One clock cycle: samples every DFF's D word, writes the Q words,
    /// then propagates the combinational logic. Primary inputs keep
    /// whatever per-lane values were last driven — the compiled analogue
    /// of holding the input buses constant across the edge.
    pub fn step_cycle(&mut self) {
        // Sample all D words before writing any Q (same-edge semantics).
        let sampled: Vec<u64> = self
            .prog
            .dffs
            .iter()
            .map(|&(d, _)| self.words[d as usize])
            .collect();
        for (&(_, q), w) in self.prog.dffs.iter().zip(sampled) {
            self.words[q as usize] = w;
        }
        self.propagate();
    }

    /// Evaluates up to 64 input vectors in one pass.
    ///
    /// `inputs` pairs each driven bus with one value per lane; every
    /// value slice must have the same length `n ≤ 64` (lanes `n..64` are
    /// driven with vector 0 as a harmless filler). Returns, per output
    /// bus, the `n` per-lane results.
    ///
    /// # Panics
    ///
    /// Panics if value slices disagree in length or exceed 64 lanes.
    pub fn run_batch(
        &mut self,
        inputs: &[(&[NetId], &[u128])],
        outputs: &[&[NetId]],
    ) -> Vec<Vec<u128>> {
        let n = inputs.first().map_or(0, |(_, v)| v.len());
        assert!(n <= 64, "at most 64 lanes per pass");
        for (bus, values) in inputs {
            assert_eq!(values.len(), n, "lane count mismatch across buses");
            self.set_bus_all(bus, values.first().copied().unwrap_or(0));
            for (lane, &v) in values.iter().enumerate() {
                self.set_bus_lane(bus, lane, v);
            }
        }
        self.propagate();
        outputs
            .iter()
            .map(|bus| (0..n).map(|lane| self.read_bus_lane(bus, lane)).collect())
            .collect()
    }
}

/// One-fault-per-lane packaging of [`CompiledSim`] for fault campaigns:
/// lane `l` carries fault machine `l`, so a single propagation pass
/// classifies up to 64 faulty machines against their shared input vector
/// (or a per-lane vector — lanes are fully independent).
#[derive(Debug, Clone)]
pub struct CompiledFaultSim<'p> {
    sim: CompiledSim<'p>,
}

impl<'p> CompiledFaultSim<'p> {
    /// Creates a fault simulator over `prog` with no faults assigned.
    pub fn new(prog: &'p CompiledNetlist) -> Self {
        CompiledFaultSim {
            sim: CompiledSim::new(prog),
        }
    }

    /// Assigns a stuck-at fault to one lane.
    pub fn assign_fault(&mut self, lane: usize, net: NetId, forced: bool) {
        debug_assert!(lane < 64);
        self.sim.inject_stuck_at(net, 1u64 << lane, forced);
    }
}

impl<'p> std::ops::Deref for CompiledFaultSim<'p> {
    type Target = CompiledSim<'p>;
    fn deref(&self) -> &Self::Target {
        &self.sim
    }
}

impl std::ops::DerefMut for CompiledFaultSim<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::Simulator;
    use crate::tech::TechLibrary;

    fn fresh() -> Netlist {
        Netlist::new(TechLibrary::cmos45lp())
    }

    #[test]
    fn eval_word_matches_scalar_eval_for_all_kinds() {
        for kind in CellKind::ALL {
            for bits in 0..16u64 {
                let (a, b, c, d) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                let scalar = kind.eval(a, b, c, d);
                let word = eval_word(
                    kind,
                    if a { !0 } else { 0 },
                    if b { !0 } else { 0 },
                    if c { !0 } else { 0 },
                    if d { !0 } else { 0 },
                );
                assert_eq!(
                    word,
                    if scalar { !0 } else { 0 },
                    "{kind:?} bits={bits:04b}"
                );
            }
        }
    }

    #[test]
    fn full_adder_all_lanes() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let (s, co) = n.full_adder(a, b, cin);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        // All 8 input combinations in 8 lanes of one pass.
        for v in 0..8usize {
            sim.set_bus_lane(&[a, b, cin], v, v as u128);
        }
        sim.propagate();
        for v in 0..8usize {
            let ones = (v as u32).count_ones();
            assert_eq!(sim.read_net_lane(s, v), ones & 1 == 1, "v={v}");
            assert_eq!(sim.read_net_lane(co, v), ones >= 2, "v={v}");
        }
    }

    #[test]
    fn run_batch_matches_event_driven() {
        let mut n = fresh();
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let sum: Vec<_> = {
            let mut carry = n.zero();
            let mut out = Vec::new();
            for (&x, &y) in a.iter().zip(&b) {
                let (s, c1) = n.full_adder(x, y, carry);
                out.push(s);
                carry = c1;
            }
            out.push(carry);
            out
        };
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut csim = CompiledSim::new(&prog);
        let av: Vec<u128> = (0..64).map(|i| (i * 37 + 11) as u128 & 0xFF).collect();
        let bv: Vec<u128> = (0..64).map(|i| (i * 101 + 3) as u128 & 0xFF).collect();
        let got = csim.run_batch(&[(&a, &av), (&b, &bv)], &[&sum]);
        let mut esim = Simulator::new(&n);
        for lane in 0..64 {
            esim.set_bus(&a, av[lane]);
            esim.set_bus(&b, bv[lane]);
            esim.settle();
            assert_eq!(got[0][lane], esim.read_bus(&sum), "lane {lane}");
            assert_eq!(got[0][lane], av[lane] + bv[lane]);
        }
    }

    #[test]
    fn per_lane_faults_are_independent() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.not(y);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut fsim = CompiledFaultSim::new(&prog);
        fsim.assign_fault(1, y, false); // lane 1: y stuck-at-0
        fsim.assign_fault(2, y, true); // lane 2: y stuck-at-1
        fsim.set_bus_all(&[a, b], 0b11);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 0), "lane 0 fault-free");
        assert!(!fsim.read_net_lane(z, 0));
        assert!(!fsim.read_net_lane(y, 1), "lane 1 stuck at 0");
        assert!(fsim.read_net_lane(z, 1));
        fsim.set_bus_all(&[a, b], 0b00);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 2), "lane 2 stuck at 1");
        assert!(!fsim.read_net_lane(z, 2));
        assert!(!fsim.read_net_lane(y, 0));
        fsim.clear_faults();
        fsim.set_bus_all(&[a, b], 0b11);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 1) && fsim.read_net_lane(y, 2));
    }

    #[test]
    fn dff_pipeline_moves_one_stage_per_cycle() {
        let mut n = fresh();
        let d = n.input("d");
        let q1 = n.dff(d);
        let q2 = n.dff(q1);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        sim.set_bus_all(&[d], 1);
        sim.step_cycle();
        assert!(sim.read_net_lane(q1, 0) && !sim.read_net_lane(q2, 0));
        sim.step_cycle();
        assert!(
            sim.read_net_lane(q2, 0),
            "value reaches stage 2 one cycle later"
        );
    }
}
