//! Compiled bit-parallel ("PPSFP"-style) gate evaluation.
//!
//! [`CompiledNetlist::compile`] lowers a [`Netlist`] once into a flat,
//! levelized program: gates sorted by logic level with their net indices
//! resolved, plus the DFF D→Q pairs. [`CompiledSim`] then evaluates the
//! program over [`LaneWord`] chunks (`[u64; 4]`) — bit `l` of the chunk
//! is an independent simulation *lane*, so one pass over the gate array
//! evaluates **[`LANES`] (256) input vectors (or 256 fault machines) at
//! once** with no event queue, no heap allocation and perfect streaming
//! access over the op array.
//!
//! # Division of labour
//!
//! The event-driven [`crate::sim::Simulator`] stays the source of truth
//! for everything *timing-dependent*: glitch power, settle budgets and
//! transient (SEU) faults. The compiled engine serves value-level paths
//! — fault classification, recompute checks, scrub batteries,
//! equivalence sweeps — where only the settled value matters. For
//! acyclic two-valued logic the settled state of the event-driven
//! simulator is a pure function of the primary inputs, register state
//! and stuck-at overlay (inertial delays only filter transient glitches,
//! never change the fixed point), so the two engines agree bit-for-bit
//! on final values; `tests/compiled_equivalence.rs` checks this
//! differentially.
//!
//! # Activity engine
//!
//! [`CompiledSim::enable_activity`] turns on bit-parallel toggle
//! counting: after every [`CompiledSim::propagate`] the simulator XORs
//! each net's new chunk against its previous chunk and popcounts the
//! active lanes, accumulating **zero-delay** toggle counts for up to 256
//! vectors in a single sweep. Zero-delay counts see only settled-state
//! transitions — glitches filtered by real gate delays never appear —
//! so power estimation scales them by a per-block glitch-inflation
//! factor calibrated against the event-driven simulator (see
//! `mfm_evalkit::calibrate`). The exact-parity contract — compiled
//! toggle counts equal an event-driven run with zero delays on the same
//! vectors — is asserted in `tests/power_parity.rs`.
//!
//! # Fault overlay
//!
//! [`CompiledSim::inject_stuck_at`] forces a net per *lane*: a 256-bit
//! [`LaneWord`] mask selects the lanes in which the net is stuck, so a
//! single pass can carry 256 different fault machines (one per lane)
//! next to a fault-free reference lane. [`CompiledFaultSim`] packages
//! the one-fault-per-lane pattern used by fault-coverage campaigns.

use crate::netlist::{NetId, Netlist, NetlistError};
use crate::tech::CellKind;

/// Lanes evaluated per pass (bits in a [`LaneWord`]).
pub const LANES: usize = 256;

/// `u64` chunks in a [`LaneWord`].
pub const LANE_WORDS: usize = LANES / 64;

/// One 256-lane machine word: bit `l` (chunk `l / 64`, bit `l % 64`) is
/// lane `l`. Used both for per-net values and for lane masks.
pub type LaneWord = [u64; LANE_WORDS];

/// Mask selecting no lanes.
pub const NO_LANES: LaneWord = [0; LANE_WORDS];

/// Mask selecting all [`LANES`] lanes.
pub const ALL_LANES: LaneWord = [!0; LANE_WORDS];

/// Mask selecting exactly `lane`.
///
/// # Panics
///
/// Panics if `lane >= LANES`.
#[must_use]
pub fn lane_mask(lane: usize) -> LaneWord {
    assert!(lane < LANES, "lane {lane} out of range");
    let mut m = NO_LANES;
    m[lane / 64] = 1u64 << (lane % 64);
    m
}

/// Mask selecting lanes `0..n`.
///
/// # Panics
///
/// Panics if `n > LANES`.
#[must_use]
pub fn first_lanes(n: usize) -> LaneWord {
    assert!(n <= LANES, "lane count {n} out of range");
    let mut m = NO_LANES;
    for (k, chunk) in m.iter_mut().enumerate() {
        let lo = k * 64;
        if n >= lo + 64 {
            *chunk = !0;
        } else if n > lo {
            *chunk = (1u64 << (n - lo)) - 1;
        }
    }
    m
}

/// One lowered gate: resolved input/output net indices, in level order.
#[derive(Debug, Clone, Copy)]
struct GateOp {
    kind: CellKind,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    out: u32,
}

/// A [`Netlist`] lowered into a flat, levelized evaluation program.
///
/// Compiling is done once per netlist; the program is immutable and can
/// be shared (`&CompiledNetlist` is `Sync`) by any number of
/// [`CompiledSim`] instances across threads.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    net_count: usize,
    one: u32,
    ops: Vec<GateOp>,
    /// `(d_net, q_net)` per DFF, in instantiation order.
    dffs: Vec<(u32, u32)>,
}

impl CompiledNetlist {
    /// Lowers `netlist` into a levelized program, reusing the netlist's
    /// cached [`Levelization`](crate::netlist::Levelization).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// logic contains a cycle.
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        let lev = netlist.levelization()?;
        let cells = netlist.cells();
        let ops = lev
            .order()
            .iter()
            .map(|&cid| {
                let c = &cells[cid.index()];
                GateOp {
                    kind: c.kind,
                    a: c.inputs[0].index() as u32,
                    b: c.inputs[1].index() as u32,
                    c: c.inputs[2].index() as u32,
                    d: c.inputs[3].index() as u32,
                    out: c.output.index() as u32,
                }
            })
            .collect();
        let dffs = netlist
            .dffs()
            .map(|(_, c)| (c.inputs[0].index() as u32, c.output.index() as u32))
            .collect();
        Ok(CompiledNetlist {
            net_count: netlist.net_count(),
            one: netlist.one().index() as u32,
            ops,
            dffs,
        })
    }

    /// Number of nets in the compiled program.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of combinational gate ops per pass.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of DFFs in the program.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }
}

#[inline]
fn eval_chunk(kind: CellKind, a: u64, b: u64, c: u64, d: u64) -> u64 {
    match kind {
        CellKind::Inv => !a,
        CellKind::Buf | CellKind::Dff => a,
        CellKind::Nand2 => !(a & b),
        CellKind::Nand3 => !(a & b & c),
        CellKind::Nor2 => !(a | b),
        CellKind::Nor3 => !(a | b | c),
        CellKind::And2 => a & b,
        CellKind::And3 => a & b & c,
        CellKind::Or2 => a | b,
        CellKind::Or3 => a | b | c,
        CellKind::Xor2 => a ^ b,
        CellKind::Xnor2 => !(a ^ b),
        // Inputs are [a0, a1, sel]: sel picks a1.
        CellKind::Mux2 => (c & b) | (!c & a),
        CellKind::Aoi21 => !((a & b) | c),
        CellKind::Aoi22 => !((a & b) | (c & d)),
        CellKind::Oai21 => !((a | b) & c),
        CellKind::Maj3 => (a & b) | (a & c) | (b & c),
    }
}

#[inline]
fn eval_word(kind: CellKind, a: LaneWord, b: LaneWord, c: LaneWord, d: LaneWord) -> LaneWord {
    std::array::from_fn(|i| eval_chunk(kind, a[i], b[i], c[i], d[i]))
}

/// Per-net zero-delay toggle accumulation (see the module docs).
#[derive(Debug, Clone)]
struct Activity {
    /// Each net's chunk as of the previous settled state.
    prev: Vec<LaneWord>,
    /// Lanes whose transitions are counted.
    mask: LaneWord,
    /// Per-net toggle counts summed over active lanes.
    toggles: Vec<u64>,
    /// Total toggles across all nets (Σ `toggles`).
    events: u64,
}

/// Bit-parallel evaluator over a [`CompiledNetlist`]: [`LANES`] (256)
/// lanes per pass.
///
/// All state is plain [`LaneWord`] chunks, all evaluation is pure
/// integer arithmetic in a deterministic order — results are
/// bit-identical across runs, thread counts and machines.
#[derive(Debug, Clone)]
pub struct CompiledSim<'p> {
    prog: &'p CompiledNetlist,
    /// One chunk per net; bit `l` is lane `l`'s value.
    words: Vec<LaneWord>,
    /// Per-net stuck lane mask (all-zero = unfaulted) and forced values.
    fault_mask: Vec<LaneWord>,
    fault_value: Vec<LaneWord>,
    /// Nets with a non-zero fault mask, for cheap clearing/pre-forcing.
    faulted: Vec<u32>,
    /// Clock edges since construction (or the last activity reset).
    cycles: u64,
    /// Toggle accumulation, when enabled.
    activity: Option<Activity>,
}

impl<'p> CompiledSim<'p> {
    /// Creates a simulator with all-zero inputs and register state,
    /// settled (constants applied, one propagation pass done), with
    /// activity counting disabled.
    pub fn new(prog: &'p CompiledNetlist) -> Self {
        let mut sim = CompiledSim {
            prog,
            words: vec![NO_LANES; prog.net_count],
            fault_mask: vec![NO_LANES; prog.net_count],
            fault_value: vec![NO_LANES; prog.net_count],
            faulted: Vec::new(),
            cycles: 0,
            activity: None,
        };
        sim.words[prog.one as usize] = ALL_LANES;
        sim.propagate();
        sim
    }

    /// The compiled program this simulator runs.
    pub fn program(&self) -> &'p CompiledNetlist {
        self.prog
    }

    /// Sets one net in one lane.
    pub fn set_net_lane(&mut self, net: NetId, lane: usize, value: bool) {
        debug_assert!(lane < LANES);
        let w = &mut self.words[net.index()][lane / 64];
        let bit = 1u64 << (lane % 64);
        *w = (*w & !bit) | if value { bit } else { 0 };
    }

    /// Drives an integer onto a bus (LSB first) in one lane.
    pub fn set_bus_lane(&mut self, bus: &[NetId], lane: usize, value: u128) {
        for (i, &net) in bus.iter().enumerate() {
            self.set_net_lane(net, lane, (value >> i) & 1 == 1);
        }
    }

    /// Drives the same integer onto a bus in **all** lanes.
    pub fn set_bus_all(&mut self, bus: &[NetId], value: u128) {
        for (i, &net) in bus.iter().enumerate() {
            self.words[net.index()] = if (value >> i) & 1 == 1 {
                ALL_LANES
            } else {
                NO_LANES
            };
        }
    }

    /// Reads one net in one lane.
    pub fn read_net_lane(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        (self.words[net.index()][lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Reads a bus (LSB first) in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 128 bits.
    pub fn read_bus_lane(&self, bus: &[NetId], lane: usize) -> u128 {
        assert!(bus.len() <= 128, "bus too wide for u128");
        let mut v = 0u128;
        for (i, &net) in bus.iter().enumerate() {
            if self.read_net_lane(net, lane) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Forces `net` to `value` in the lanes selected by `lanes` until
    /// [`CompiledSim::clear_faults`]. Faults on the same net merge: each
    /// lane keeps the most recent forced value, so one net can be
    /// stuck-at-0 in one lane and stuck-at-1 in another.
    pub fn inject_stuck_at(&mut self, net: NetId, lanes: LaneWord, value: bool) {
        let ni = net.index();
        if self.fault_mask[ni] == NO_LANES && lanes != NO_LANES {
            self.faulted.push(ni as u32);
        }
        for (k, &lane_bits) in lanes.iter().enumerate() {
            self.fault_mask[ni][k] |= lane_bits;
            if value {
                self.fault_value[ni][k] |= lane_bits;
            } else {
                self.fault_value[ni][k] &= !lane_bits;
            }
        }
    }

    /// Removes every fault overlay (values are refreshed on the next
    /// [`CompiledSim::propagate`]).
    pub fn clear_faults(&mut self) {
        for &ni in &self.faulted {
            self.fault_mask[ni as usize] = NO_LANES;
            self.fault_value[ni as usize] = NO_LANES;
        }
        self.faulted.clear();
    }

    #[inline]
    fn overlay(&mut self, ni: usize) {
        for k in 0..LANE_WORDS {
            let m = self.fault_mask[ni][k];
            self.words[ni][k] = (self.words[ni][k] & !m) | (self.fault_value[ni][k] & m);
        }
    }

    /// One full pass over the levelized gate array: recomputes every
    /// combinational net in all lanes from the current inputs, register
    /// words and fault overlay. DFF outputs are left untouched. With
    /// activity enabled, finishes with the XOR/popcount toggle sweep.
    pub fn propagate(&mut self) {
        // Force faulted source nets (inputs, constants, DFF outputs)
        // first; gate outputs are blended as they are produced.
        for i in 0..self.faulted.len() {
            self.overlay(self.faulted[i] as usize);
        }
        for i in 0..self.prog.ops.len() {
            let op = self.prog.ops[i];
            let w = eval_word(
                op.kind,
                self.words[op.a as usize],
                self.words[op.b as usize],
                self.words[op.c as usize],
                self.words[op.d as usize],
            );
            let out = op.out as usize;
            let m = self.fault_mask[out];
            let f = self.fault_value[out];
            self.words[out] = std::array::from_fn(|k| (w[k] & !m[k]) | (f[k] & m[k]));
        }
        let Self {
            words, activity, ..
        } = self;
        if let Some(act) = activity {
            for (t, (w, p)) in act
                .toggles
                .iter_mut()
                .zip(words.iter().zip(act.prev.iter_mut()))
            {
                let mut n = 0u64;
                for k in 0..LANE_WORDS {
                    n += u64::from(((w[k] ^ p[k]) & act.mask[k]).count_ones());
                }
                *t += n;
                act.events += n;
                *p = *w;
            }
        }
    }

    /// One clock cycle: samples every DFF's D word, writes the Q words,
    /// then propagates the combinational logic. Primary inputs keep
    /// whatever per-lane values were last driven — the compiled analogue
    /// of holding the input buses constant across the edge.
    pub fn step_cycle(&mut self) {
        self.cycles += 1;
        // Sample all D words before writing any Q (same-edge semantics).
        let sampled: Vec<LaneWord> = self
            .prog
            .dffs
            .iter()
            .map(|&(d, _)| self.words[d as usize])
            .collect();
        for (&(_, q), w) in self.prog.dffs.iter().zip(sampled) {
            self.words[q as usize] = w;
        }
        self.propagate();
    }

    /// Clock edges since construction or the last
    /// [`CompiledSim::reset_activity`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Turns on zero-delay toggle counting over lanes `0..lanes`,
    /// baselined at the current settled state. Counters (toggles,
    /// events, cycles) start at zero. Each subsequent
    /// [`CompiledSim::propagate`] adds one settled-state transition per
    /// changed net per active lane.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > LANES`.
    pub fn enable_activity(&mut self, lanes: usize) {
        self.activity = Some(Activity {
            prev: self.words.clone(),
            mask: first_lanes(lanes),
            toggles: vec![0; self.prog.net_count],
            events: 0,
        });
        self.cycles = 0;
    }

    /// Restricts toggle counting to lanes `0..lanes` (for a partial
    /// final round). The baseline state of the newly-masked lanes keeps
    /// tracking the simulator, so re-widening later never counts stale
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if activity counting is not enabled or `lanes > LANES`.
    pub fn set_active_lanes(&mut self, lanes: usize) {
        let act = self.activity.as_mut().expect("activity not enabled");
        act.mask = first_lanes(lanes);
    }

    /// Zeroes toggle/event/cycle counters and rebases the activity
    /// baseline at the current settled state.
    ///
    /// # Panics
    ///
    /// Panics if activity counting is not enabled.
    pub fn reset_activity(&mut self) {
        let Self {
            words, activity, ..
        } = self;
        let act = activity.as_mut().expect("activity not enabled");
        act.prev.copy_from_slice(words);
        act.toggles.iter_mut().for_each(|t| *t = 0);
        act.events = 0;
        self.cycles = 0;
    }

    /// Per-net zero-delay toggle counts summed over active lanes.
    ///
    /// # Panics
    ///
    /// Panics if activity counting is not enabled.
    pub fn toggles(&self) -> &[u64] {
        &self
            .activity
            .as_ref()
            .expect("activity not enabled")
            .toggles
    }

    /// Total zero-delay toggles across all nets (Σ of
    /// [`CompiledSim::toggles`]).
    ///
    /// # Panics
    ///
    /// Panics if activity counting is not enabled.
    pub fn activity_events(&self) -> u64 {
        self.activity.as_ref().expect("activity not enabled").events
    }

    /// Whether toggle counting is enabled.
    pub fn activity_enabled(&self) -> bool {
        self.activity.is_some()
    }

    /// Evaluates up to [`LANES`] input vectors in one pass.
    ///
    /// `inputs` pairs each driven bus with one value per lane; every
    /// value slice must have the same length `n ≤ LANES` (lanes
    /// `n..LANES` are driven with vector 0 as a harmless filler).
    /// Returns, per output bus, the `n` per-lane results.
    ///
    /// # Panics
    ///
    /// Panics if value slices disagree in length or exceed [`LANES`]
    /// lanes.
    pub fn run_batch(
        &mut self,
        inputs: &[(&[NetId], &[u128])],
        outputs: &[&[NetId]],
    ) -> Vec<Vec<u128>> {
        let n = inputs.first().map_or(0, |(_, v)| v.len());
        assert!(n <= LANES, "at most {LANES} lanes per pass");
        for (bus, values) in inputs {
            assert_eq!(values.len(), n, "lane count mismatch across buses");
            self.set_bus_all(bus, values.first().copied().unwrap_or(0));
            for (lane, &v) in values.iter().enumerate() {
                self.set_bus_lane(bus, lane, v);
            }
        }
        self.propagate();
        outputs
            .iter()
            .map(|bus| (0..n).map(|lane| self.read_bus_lane(bus, lane)).collect())
            .collect()
    }
}

/// One-fault-per-lane packaging of [`CompiledSim`] for fault campaigns:
/// lane `l` carries fault machine `l`, so a single propagation pass
/// classifies up to [`LANES`] faulty machines against their shared input
/// vector (or a per-lane vector — lanes are fully independent).
#[derive(Debug, Clone)]
pub struct CompiledFaultSim<'p> {
    sim: CompiledSim<'p>,
}

impl<'p> CompiledFaultSim<'p> {
    /// Creates a fault simulator over `prog` with no faults assigned.
    pub fn new(prog: &'p CompiledNetlist) -> Self {
        CompiledFaultSim {
            sim: CompiledSim::new(prog),
        }
    }

    /// Assigns a stuck-at fault to one lane.
    pub fn assign_fault(&mut self, lane: usize, net: NetId, forced: bool) {
        debug_assert!(lane < LANES);
        self.sim.inject_stuck_at(net, lane_mask(lane), forced);
    }
}

impl<'p> std::ops::Deref for CompiledFaultSim<'p> {
    type Target = CompiledSim<'p>;
    fn deref(&self) -> &Self::Target {
        &self.sim
    }
}

impl std::ops::DerefMut for CompiledFaultSim<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::Simulator;
    use crate::tech::TechLibrary;

    fn fresh() -> Netlist {
        Netlist::new(TechLibrary::cmos45lp())
    }

    #[test]
    fn lane_mask_helpers_cover_all_chunks() {
        assert_eq!(first_lanes(0), NO_LANES);
        assert_eq!(first_lanes(LANES), ALL_LANES);
        assert_eq!(first_lanes(64), [!0, 0, 0, 0]);
        assert_eq!(first_lanes(65), [!0, 1, 0, 0]);
        assert_eq!(first_lanes(200), [!0, !0, !0, (1u64 << 8) - 1]);
        for lane in [0usize, 1, 63, 64, 127, 128, 200, 255] {
            let m = lane_mask(lane);
            assert_eq!(m[lane / 64], 1u64 << (lane % 64), "lane {lane}");
            assert_eq!(m.iter().map(|c| c.count_ones()).sum::<u32>(), 1);
        }
    }

    #[test]
    fn eval_word_matches_scalar_eval_for_all_kinds() {
        for kind in CellKind::ALL {
            for bits in 0..16u64 {
                let (a, b, c, d) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                let scalar = kind.eval(a, b, c, d);
                let to_word = |v: bool| if v { ALL_LANES } else { NO_LANES };
                let word = eval_word(kind, to_word(a), to_word(b), to_word(c), to_word(d));
                assert_eq!(
                    word,
                    if scalar { ALL_LANES } else { NO_LANES },
                    "{kind:?} bits={bits:04b}"
                );
            }
        }
    }

    #[test]
    fn full_adder_all_lanes() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let (s, co) = n.full_adder(a, b, cin);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        // All 8 input combinations in 8 lanes of one pass — placed in
        // the top chunk to exercise cross-chunk lane addressing.
        for v in 0..8usize {
            sim.set_bus_lane(&[a, b, cin], 192 + v, v as u128);
        }
        sim.propagate();
        for v in 0..8usize {
            let ones = (v as u32).count_ones();
            assert_eq!(sim.read_net_lane(s, 192 + v), ones & 1 == 1, "v={v}");
            assert_eq!(sim.read_net_lane(co, 192 + v), ones >= 2, "v={v}");
        }
    }

    #[test]
    fn run_batch_matches_event_driven() {
        let mut n = fresh();
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let sum: Vec<_> = {
            let mut carry = n.zero();
            let mut out = Vec::new();
            for (&x, &y) in a.iter().zip(&b) {
                let (s, c1) = n.full_adder(x, y, carry);
                out.push(s);
                carry = c1;
            }
            out.push(carry);
            out
        };
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut csim = CompiledSim::new(&prog);
        let av: Vec<u128> = (0..LANES).map(|i| (i * 37 + 11) as u128 & 0xFF).collect();
        let bv: Vec<u128> = (0..LANES).map(|i| (i * 101 + 3) as u128 & 0xFF).collect();
        let got = csim.run_batch(&[(&a, &av), (&b, &bv)], &[&sum]);
        let mut esim = Simulator::new(&n);
        for lane in 0..LANES {
            esim.set_bus(&a, av[lane]);
            esim.set_bus(&b, bv[lane]);
            esim.settle();
            assert_eq!(got[0][lane], esim.read_bus(&sum), "lane {lane}");
            assert_eq!(got[0][lane], (av[lane] + bv[lane]) & 0x1FF);
        }
    }

    #[test]
    fn per_lane_faults_are_independent() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.not(y);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut fsim = CompiledFaultSim::new(&prog);
        // Faults across chunk boundaries: lanes 1 and 200.
        fsim.assign_fault(1, y, false); // lane 1: y stuck-at-0
        fsim.assign_fault(200, y, true); // lane 200: y stuck-at-1
        fsim.set_bus_all(&[a, b], 0b11);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 0), "lane 0 fault-free");
        assert!(!fsim.read_net_lane(z, 0));
        assert!(!fsim.read_net_lane(y, 1), "lane 1 stuck at 0");
        assert!(fsim.read_net_lane(z, 1));
        fsim.set_bus_all(&[a, b], 0b00);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 200), "lane 200 stuck at 1");
        assert!(!fsim.read_net_lane(z, 200));
        assert!(!fsim.read_net_lane(y, 0));
        fsim.clear_faults();
        fsim.set_bus_all(&[a, b], 0b11);
        fsim.propagate();
        assert!(fsim.read_net_lane(y, 1) && fsim.read_net_lane(y, 200));
    }

    #[test]
    fn dff_pipeline_moves_one_stage_per_cycle() {
        let mut n = fresh();
        let d = n.input("d");
        let q1 = n.dff(d);
        let q2 = n.dff(q1);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        sim.set_bus_all(&[d], 1);
        sim.step_cycle();
        assert!(sim.read_net_lane(q1, 0) && !sim.read_net_lane(q2, 0));
        sim.step_cycle();
        assert!(
            sim.read_net_lane(q2, 0),
            "value reaches stage 2 one cycle later"
        );
        assert_eq!(sim.cycles(), 2);
    }

    #[test]
    fn activity_counts_settled_transitions_in_active_lanes_only() {
        let mut n = fresh();
        let a = n.input("a");
        let b = n.input("b");
        let y = n.xor2(a, b);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        sim.enable_activity(LANES);
        // a rises in lanes 0 and 100: a toggles twice, y toggles twice.
        sim.set_net_lane(a, 0, true);
        sim.set_net_lane(a, 100, true);
        sim.propagate();
        assert_eq!(sim.toggles()[a.index()], 2);
        assert_eq!(sim.toggles()[y.index()], 2);
        assert_eq!(sim.toggles()[b.index()], 0);
        assert_eq!(sim.activity_events(), 4);
        // Restrict to lane 0 only: lane 100 transitions stop counting.
        sim.set_active_lanes(1);
        sim.set_net_lane(b, 0, true);
        sim.set_net_lane(b, 100, true);
        sim.propagate();
        assert_eq!(sim.toggles()[b.index()], 1);
        assert_eq!(sim.toggles()[y.index()], 3);
        // Reset rebases the baseline: an identical state adds nothing.
        sim.reset_activity();
        sim.propagate();
        assert_eq!(sim.activity_events(), 0);
    }

    #[test]
    fn activity_baseline_tracks_masked_lanes() {
        let mut n = fresh();
        let a = n.input("a");
        let y = n.buf(a);
        let prog = CompiledNetlist::compile(&n).unwrap();
        let mut sim = CompiledSim::new(&prog);
        sim.enable_activity(1);
        // Lane 5 is masked: its transition must never be counted, even
        // after the mask is widened to include it again.
        sim.set_net_lane(a, 5, true);
        sim.propagate();
        assert_eq!(sim.activity_events(), 0);
        sim.set_active_lanes(64);
        sim.propagate();
        assert_eq!(sim.activity_events(), 0, "stale transition not counted");
        sim.set_net_lane(a, 5, false);
        sim.propagate();
        assert_eq!(sim.toggles()[a.index()], 1);
        assert_eq!(sim.toggles()[y.index()], 1);
    }
}
