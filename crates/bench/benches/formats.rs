//! Microbenches: the softfloat reference multiply (all rounding modes)
//! and the paper-mode multiply.

use mfm_bench::microbench::{BenchReport, Group};
use mfm_evalkit::workload::OperandGen;
use mfm_softfloat::mul::mul_bits;
use mfm_softfloat::paper::paper_mul_bits;
use mfm_softfloat::{RoundingMode, BINARY32, BINARY64};
use std::hint::black_box;

fn main() {
    let mut report = BenchReport::new("formats");
    let mut gen = OperandGen::new(11);
    let pairs: Vec<(u64, u64)> = (0..1024)
        .map(|_| (gen.b64_normal(400), gen.b64_normal(400)))
        .collect();

    let mut group = Group::new("softfloat_binary64");
    for mode in RoundingMode::ALL {
        let mut i = 0usize;
        group.bench(&format!("{mode:?}"), || {
            let (x, y) = pairs[i & 1023];
            i += 1;
            black_box(mul_bits(&BINARY64, black_box(x), black_box(y), mode))
        });
    }
    let mut i = 0usize;
    group.bench("paper_mode", || {
        let (x, y) = pairs[i & 1023];
        i += 1;
        black_box(paper_mul_bits(&BINARY64, black_box(x), black_box(y)))
    });
    group.finish_report(&mut report);

    let mut gen = OperandGen::new(12);
    let pairs32: Vec<(u64, u64)> = (0..1024)
        .map(|_| (gen.b32_normal(40) as u64, gen.b32_normal(40) as u64))
        .collect();
    let mut group = Group::new("softfloat_binary32");
    let mut i = 0usize;
    group.bench("softfloat_binary32_rne", || {
        let (x, y) = pairs32[i & 1023];
        i += 1;
        black_box(mul_bits(&BINARY32, x, y, RoundingMode::NearestEven))
    });
    group.finish_report(&mut report);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
