//! Microbenches: event-driven simulation throughput of the four adder
//! architectures (vectors/second through the gate-level simulator).

use mfm_arith::adder::{build_adder, AdderKind};
use mfm_bench::microbench::{BenchReport, Group};
use mfm_gatesim::{Netlist, Simulator, TechLibrary};
use std::hint::black_box;

fn main() {
    let mut report = BenchReport::new("adders");
    let mut group = Group::new("adder_sim_64bit");
    for kind in AdderKind::ALL {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let a = n.input_bus("a", 64);
        let b = n.input_bus("b", 64);
        let zero = n.zero();
        let ports = build_adder(&mut n, kind, &a, &b, zero);
        n.output_bus("sum", &ports.sum);
        let mut sim = Simulator::new(&n);
        let mut s = 0x9E37_79B9u128;
        group.bench(&format!("{kind:?}"), || {
            s = s.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
            sim.set_bus(&a, s & u64::MAX as u128);
            sim.set_bus(&b, (s >> 32) & u64::MAX as u128);
            sim.settle();
            black_box(sim.read_bus(&ports.sum))
        });
    }
    group.finish_report(&mut report);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
