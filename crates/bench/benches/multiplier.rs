//! Criterion benches: software throughput of the functional multi-format
//! unit per format (millions of multiplications per second on the host).

use criterion::{criterion_group, criterion_main, Criterion};
use mfm_evalkit::workload::OperandGen;
use mfmult::{Format, FunctionalUnit};
use std::hint::black_box;

fn bench_functional_unit(c: &mut Criterion) {
    let unit = FunctionalUnit::new();
    let mut group = c.benchmark_group("functional_unit");
    for format in Format::ALL {
        let mut gen = OperandGen::new(1);
        let ops: Vec<_> = (0..1024).map(|_| gen.operation(format)).collect();
        group.bench_function(format!("{format:?}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let op = ops[i & 1023];
                i += 1;
                black_box(unit.execute(black_box(op)))
            })
        });
    }
    group.finish();
}

fn bench_vs_host(c: &mut Criterion) {
    let unit = FunctionalUnit::new();
    let mut gen = OperandGen::new(2);
    let pairs: Vec<(f64, f64)> = (0..1024)
        .map(|_| {
            (
                f64::from_bits(gen.b64_normal(100)),
                f64::from_bits(gen.b64_normal(100)),
            )
        })
        .collect();
    let mut group = c.benchmark_group("binary64_multiply");
    group.bench_function("functional_unit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (x, y) = pairs[i & 1023];
            i += 1;
            black_box(unit.mul_f64(black_box(x), black_box(y)))
        })
    });
    group.bench_function("host_fpu", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (x, y) = pairs[i & 1023];
            i += 1;
            black_box(black_box(x) * black_box(y))
        })
    });
    group.finish();
}

fn bench_dual_issue(c: &mut Criterion) {
    // Dual binary32 completes two multiplications per execute call.
    let unit = FunctionalUnit::new();
    let mut gen = OperandGen::new(3);
    let quads: Vec<(f32, f32, f32, f32)> = (0..1024)
        .map(|_| {
            (
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
            )
        })
        .collect();
    c.bench_function("dual_binary32_two_products", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (x, y, w, z) = quads[i & 1023];
            i += 1;
            black_box(unit.mul_dual_f32(x, y, w, z))
        })
    });
}

criterion_group!(benches, bench_functional_unit, bench_vs_host, bench_dual_issue);
criterion_main!(benches);
