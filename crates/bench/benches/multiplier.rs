//! Microbenches: software throughput of the functional multi-format
//! unit per format (millions of multiplications per second on the host).

use mfm_bench::microbench::{BenchReport, Group};
use mfm_evalkit::workload::OperandGen;
use mfmult::{Format, FunctionalUnit};
use std::hint::black_box;

fn bench_functional_unit(report: &mut BenchReport) {
    let unit = FunctionalUnit::new();
    let mut group = Group::new("functional_unit");
    for format in Format::ALL {
        let mut gen = OperandGen::new(1);
        let ops: Vec<_> = (0..1024).map(|_| gen.operation(format)).collect();
        let mut i = 0usize;
        group.bench(&format!("{format:?}"), || {
            let op = ops[i & 1023];
            i += 1;
            black_box(unit.execute(black_box(op)))
        });
    }
    group.finish_report(report);
}

fn bench_vs_host(report: &mut BenchReport) {
    let unit = FunctionalUnit::new();
    let mut gen = OperandGen::new(2);
    let pairs: Vec<(f64, f64)> = (0..1024)
        .map(|_| {
            (
                f64::from_bits(gen.b64_normal(100)),
                f64::from_bits(gen.b64_normal(100)),
            )
        })
        .collect();
    let mut group = Group::new("binary64_multiply");
    let mut i = 0usize;
    group.bench("functional_unit", || {
        let (x, y) = pairs[i & 1023];
        i += 1;
        black_box(unit.mul_f64(black_box(x), black_box(y)))
    });
    let mut i = 0usize;
    group.bench("host_fpu", || {
        let (x, y) = pairs[i & 1023];
        i += 1;
        black_box(black_box(x) * black_box(y))
    });
    group.finish_report(report);
}

fn bench_dual_issue(report: &mut BenchReport) {
    // Dual binary32 completes two multiplications per execute call.
    let unit = FunctionalUnit::new();
    let mut gen = OperandGen::new(3);
    let quads: Vec<(f32, f32, f32, f32)> = (0..1024)
        .map(|_| {
            (
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
                f32::from_bits(gen.b32_normal(20)),
            )
        })
        .collect();
    let mut group = Group::new("dual_issue");
    let mut i = 0usize;
    group.bench("dual_binary32_two_products", || {
        let (x, y, w, z) = quads[i & 1023];
        i += 1;
        black_box(unit.mul_dual_f32(x, y, w, z))
    });
    group.finish_report(report);
}

fn main() {
    let mut report = BenchReport::new("multiplier");
    bench_functional_unit(&mut report);
    bench_vs_host(&mut report);
    bench_dual_issue(&mut report);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
