//! Microbenches of the evaluation substrate itself: netlist
//! construction, static timing analysis and gate-level simulation of the
//! complete multipliers (one operation through ~20k cells).

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_bench::microbench::{BenchReport, Group};
use mfm_gatesim::{Netlist, Simulator, TechLibrary, TimingAnalysis};
use mfmult::structural::build_unit;
use std::hint::black_box;

fn bench_netlist_build(report: &mut BenchReport) {
    let mut group = Group::new("netlist_build");
    group.bench("radix16_multiplier", || {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        black_box(build_multiplier(&mut n, MultiplierConfig::radix16()));
        black_box(n.cell_count())
    });
    group.bench("multi_format_unit", || {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        black_box(build_unit(&mut n));
        black_box(n.cell_count())
    });
    group.finish_report(report);
}

fn bench_sta(report: &mut BenchReport) {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    build_multiplier(&mut n, MultiplierConfig::radix16());
    let mut group = Group::new("sta");
    group.bench("radix16_multiplier", || {
        black_box(TimingAnalysis::new(&n).report().critical_delay_ps)
    });
    group.finish_report(report);
}

fn bench_gate_sim(report: &mut BenchReport) {
    let mut group = Group::new("gate_sim_one_multiply");
    for (name, cfg) in [
        ("radix16", MultiplierConfig::radix16()),
        ("radix4", MultiplierConfig::radix4()),
    ] {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        let mut sim = Simulator::new(&n);
        let mut s = 0xDEAD_BEEFu128;
        group.bench(name, || {
            s = s.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
            sim.set_bus(&ports.x, s & u64::MAX as u128);
            sim.set_bus(&ports.y, (s >> 17) & u64::MAX as u128);
            sim.settle();
            black_box(sim.read_bus(&ports.p))
        });
    }
    group.finish_report(report);
}

fn main() {
    let mut report = BenchReport::new("tables");
    bench_netlist_build(&mut report);
    bench_sta(&mut report);
    bench_gate_sim(&mut report);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
