//! Criterion benches of the evaluation substrate itself: netlist
//! construction, static timing analysis and gate-level simulation of the
//! complete multipliers (one operation through ~20k cells).

use criterion::{criterion_group, criterion_main, Criterion};
use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_gatesim::{Netlist, Simulator, TechLibrary, TimingAnalysis};
use mfmult::structural::build_unit;
use std::hint::black_box;

fn bench_netlist_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_build");
    group.sample_size(20);
    group.bench_function("radix16_multiplier", |b| {
        b.iter(|| {
            let mut n = Netlist::new(TechLibrary::cmos45lp());
            black_box(build_multiplier(&mut n, MultiplierConfig::radix16()));
            black_box(n.cell_count())
        })
    });
    group.bench_function("multi_format_unit", |b| {
        b.iter(|| {
            let mut n = Netlist::new(TechLibrary::cmos45lp());
            black_box(build_unit(&mut n));
            black_box(n.cell_count())
        })
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    build_multiplier(&mut n, MultiplierConfig::radix16());
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    group.bench_function("radix16_multiplier", |b| {
        b.iter(|| black_box(TimingAnalysis::new(&n).report().critical_delay_ps))
    });
    group.finish();
}

fn bench_gate_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_sim_one_multiply");
    group.sample_size(30);
    for (name, cfg) in [
        ("radix16", MultiplierConfig::radix16()),
        ("radix4", MultiplierConfig::radix4()),
    ] {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        group.bench_function(name, |b| {
            let mut sim = Simulator::new(&n);
            let mut s = 0xDEAD_BEEFu128;
            b.iter(|| {
                s = s.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
                sim.set_bus(&ports.x, s & u64::MAX as u128);
                sim.set_bus(&ports.y, (s >> 17) & u64::MAX as u128);
                sim.settle();
                black_box(sim.read_bus(&ports.p))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_netlist_build, bench_sta, bench_gate_sim);
criterion_main!(benches);
