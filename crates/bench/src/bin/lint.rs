//! Static lint gate: runs all `mfm-lint` passes over every built unit,
//! prints the per-block findings table and the proved isolation facts,
//! and exits non-zero on any finding not covered by the committed
//! allowlist.
//!
//! Usage: `lint [--unit NAME] [--pass NAME]... [--baseline <path>] [--write-baseline] [--json <path>]`
//!
//! - `--baseline` defaults to `lint_baseline.json` at the repo root (next
//!   to the workspace `Cargo.toml`); pass an explicit path in CI.
//! - `--write-baseline` regenerates the allowlist covering the current
//!   findings with placeholder reasons — edit the reasons by hand before
//!   committing (the parser rejects `TODO` reasons).
//! - `--unit` restricts the run to one unit (the gate is still applied,
//!   against that unit's slice of the baseline).
//! - `--pass` restricts the run to the named passes (repeatable, or
//!   comma-separated: `hygiene`, `constants`, `redundancy`, `isolation`);
//!   the gate then only covers the selected passes' findings.

use mfm_bench::cli;
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_lint::baseline::{self, Baseline};
use mfm_lint::{lint_unit_passes, standard_units, PassSet, UnitReport};
use mfm_telemetry::json::{JsonArray, JsonObject};
use mfm_telemetry::Registry;
use std::collections::BTreeMap;

fn default_baseline_path() -> std::path::PathBuf {
    // bench lives at crates/bench; the baseline is committed at the repo
    // root so it is visible (and reviewable) next to the top-level docs.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint_baseline.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--unit" | "--baseline" | "--json" | "--pass" => {
                it.next();
            }
            "--write-baseline" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: lint [--unit NAME] [--pass NAME]... \
                     [--baseline <path>] [--write-baseline] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let unit_filter = cli::arg_str(&args, "--unit");
    let pass_names: Vec<String> = {
        let mut names = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--pass" {
                if let Some(v) = it.next() {
                    names.extend(v.split(',').map(str::to_owned));
                }
            }
        }
        names
    };
    let passes = if pass_names.is_empty() {
        PassSet::all()
    } else {
        let mut set = PassSet::none();
        for name in &pass_names {
            if !set.enable(name) {
                eprintln!(
                    "unknown pass {name:?}; available: {}",
                    PassSet::names().join(", ")
                );
                std::process::exit(2);
            }
        }
        set
    };
    let baseline_path = cli::arg_str(&args, "--baseline")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_baseline_path);

    let registry = Registry::new();
    println!("=== mfm-lint: static netlist analysis over every built unit ===\n");

    let reports: Vec<UnitReport> = {
        let _span = registry.span("lint");
        standard_units()
            .iter()
            .filter(|u| unit_filter.as_deref().is_none_or(|f| u.name == f))
            .map(|u| lint_unit_passes(u, passes))
            .collect()
    };
    if reports.is_empty() {
        eprintln!("no unit matches --unit {:?}", unit_filter.unwrap());
        std::process::exit(2);
    }

    // Per-unit summary.
    let mut summary = Table::new(&["unit", "cells", "nets", "proofs", "findings"]);
    for r in &reports {
        summary.row_owned(vec![
            r.unit.clone(),
            r.cells.to_string(),
            r.nets.to_string(),
            r.proofs.len().to_string(),
            r.findings.len().to_string(),
        ]);
        registry
            .counter(&format!("lint.findings.{}", r.unit))
            .add(r.findings.len() as u64);
    }
    println!("{summary}");

    // Per-block findings table.
    let mut by_block: BTreeMap<(String, String, String), u64> = BTreeMap::new();
    for r in &reports {
        for f in &r.findings {
            *by_block
                .entry((r.unit.clone(), f.block.clone(), f.rule.code().to_owned()))
                .or_insert(0) += 1;
        }
    }
    if !by_block.is_empty() {
        let mut t = Table::new(&["unit", "block", "rule", "count"]);
        for ((unit, block, rule), count) in &by_block {
            t.row_owned(vec![
                unit.clone(),
                block.clone(),
                rule.clone(),
                count.to_string(),
            ]);
        }
        println!("findings per block:\n{t}");
    }

    println!("proved isolation facts:");
    for r in &reports {
        for p in &r.proofs {
            println!("  [{}] {p}", r.unit);
        }
    }
    println!();

    if cli::has_flag(&args, "--write-baseline") {
        let b = Baseline::covering(&reports);
        std::fs::write(&baseline_path, b.to_json() + "\n").expect("write baseline");
        println!(
            "wrote {} ({} entries) — edit the TODO reasons before committing",
            baseline_path.display(),
            b.entries.len()
        );
        return;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: bad baseline {}: {e}", baseline_path.display());
                std::process::exit(2);
            }
        },
        Err(_) => {
            println!(
                "note: no baseline at {} — gating on zero findings",
                baseline_path.display()
            );
            Baseline::default()
        }
    };
    let slice = match &unit_filter {
        Some(f) => Baseline {
            entries: baseline
                .entries
                .iter()
                .filter(|e| &e.unit == f)
                .cloned()
                .collect(),
        },
        None => baseline,
    };
    let gate = baseline::diff(&reports, &slice);

    for (e, actual) in &gate.stale {
        println!(
            "note: stale baseline entry ({}, {}, {}): max {} but only {} found — ratchet it down",
            e.unit, e.rule, e.block, e.max, actual
        );
    }
    for v in &gate.violations {
        println!(
            "UNBASELINED: {} findings for ({}, {}, {}), baseline allows {}:",
            v.count, v.unit, v.rule, v.block, v.allowed
        );
        for m in v.messages.iter().take(8) {
            println!("    {m}");
        }
        if v.messages.len() > 8 {
            println!("    ... and {} more", v.messages.len() - 8);
        }
    }

    if let Some(path) = cli::json_path(&args) {
        let mut run = RunReport::new("lint");
        run.param("units", &reports.len().to_string())
            .param(
                "findings",
                &reports
                    .iter()
                    .map(|r| r.findings.len())
                    .sum::<usize>()
                    .to_string(),
            )
            .param("unbaselined", &gate.violations.len().to_string())
            .param("gate", if gate.passed() { "pass" } else { "fail" });
        let mut t = Table::new(&["unit", "block", "rule", "count"]);
        for ((unit, block, rule), count) in &by_block {
            t.row_owned(vec![
                unit.clone(),
                block.clone(),
                rule.clone(),
                count.to_string(),
            ]);
        }
        run.add_table("findings per block", t);
        let mut units = JsonArray::new();
        for r in &reports {
            units.push_raw(&r.to_json());
        }
        let mut lint = JsonObject::new();
        lint.field_raw("units", &units.finish());
        lint.field_bool("gate_passed", gate.passed());
        run.add_section("lint", &lint.finish());
        run.with_telemetry(&registry);
        run.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }

    if gate.passed() {
        println!("lint gate PASSED: every finding is covered by the reasoned baseline");
    } else {
        println!(
            "lint gate FAILED: {} unbaselined finding group(s)",
            gate.violations.len()
        );
        std::process::exit(1);
    }
}
