//! Deterministic chaos run over the resilient pool engine: a seeded
//! fault schedule (SEUs, stuck-ats, glitch storms, field replacements)
//! applied to a pool of self-checking units mid-workload, judged by the
//! two invariants of `mfm-resilient`: **zero wrong answers escape** and
//! **capacity degrades and recovers**.
//!
//! Usage: `chaos [--units N] [--ops N] [--faults N] [--seed S] [--comb]
//! [--quad] [--json <path>]` (defaults: 4 units, 300 ops, 60 faults,
//! seed 2017, 3-stage pipelined build).
//!
//! The run is bit-reproducible: no wall clock is sampled anywhere, so
//! the same seed produces byte-identical output (and `--json` report).
//! Exits 1 if any wrong answer escaped.

use mfm_bench::cli;
use mfm_evalkit::chaos::{run_chaos_campaign, ChaosCampaignConfig};
use mfm_evalkit::runreport::RunReport;
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" | "--units" | "--ops" | "--faults" | "--json" => {
                it.next();
            }
            "--quad" | "--comb" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: chaos [--units N] [--ops N] \
                     [--faults N] [--seed S] [--comb] [--quad] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = ChaosCampaignConfig {
        seed: cli::arg_value(&args, "--seed", 2017),
        units: cli::arg_value(&args, "--units", 4) as usize,
        ops: cli::arg_value(&args, "--ops", 300),
        faults: cli::arg_value(&args, "--faults", 60) as usize,
        pipelined: !cli::has_flag(&args, "--comb"),
        quad_lanes: cli::has_flag(&args, "--quad"),
        ..ChaosCampaignConfig::default()
    };
    println!("=== Chaos run: resilient pool under a seeded fault schedule ===\n");
    // No registry spans here: spans record wall time, which would break
    // bit-reproducibility of the --json report.
    let registry = Registry::new();
    let report = run_chaos_campaign(&cfg, Some(&registry));
    println!("{report}");
    println!(
        "\ninvariant 1 (zero escapes): {}",
        if report.escapes == 0 {
            "PASS — every delivered result matched the softfloat reference".to_string()
        } else {
            format!("FAIL — {} wrong answer(s) escaped", report.escapes)
        }
    );
    println!(
        "invariant 2 (degrade & recover): capacity {} -> min {} -> final {} of {}, \
         {} recovery cycle(s), {} retired",
        cfg.units,
        report.min_hw_capacity(),
        report.final_hw_capacity(),
        cfg.units,
        report.recovery_cycles,
        report.retired
    );
    if report.recovery_cycles == 0 {
        println!("note: no quarantined unit completed a recovery cycle under this seed");
    }

    if let Some(path) = cli::json_path(&args) {
        let mut run = RunReport::new("chaos");
        report.to_run_report(&mut run);
        run.param("pipelined", if cfg.pipelined { "true" } else { "false" })
            .param("quad", if cfg.quad_lanes { "true" } else { "false" })
            .with_telemetry(&registry);
        run.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }

    if report.escapes > 0 {
        std::process::exit(1);
    }
}
