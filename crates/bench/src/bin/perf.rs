//! Performance microbenchmarks for the two gate-evaluation engines:
//! event-driven settle, compiled batch evaluation (64- and 256-lane,
//! the latter with the activity engine counting toggles), the
//! fault-coverage campaign (sequential event-driven vs compiled +
//! thread-sharded) and Monte-Carlo power measurement (sequential
//! event-driven vs event-driven sharded vs compiled+calibrated).
//!
//! Usage: `perf [--quick] [--threads N] [--json <path>]`
//! (defaults: full sizes, 4 threads, `BENCH_gatesim.json`).
//!
//! The JSON report is machine-readable: one entry per benchmark with
//! `name`, `ns_per_op`, `throughput` (ops/s) and `threads`, plus a
//! `summary` object with the derived speedups the performance work
//! targets: the fault-campaign speedup (compiled+sharded over
//! sequential event-driven), the Monte-Carlo speedup (compiled
//! activity engine over sequential event-driven, same operand
//! population) and the thread-only Monte-Carlo speedup (event-driven
//! sharded over sequential — near 1× on a 1-CPU container). The
//! glitch-inflation calibration run is *not* timed: it is a one-time
//! cost per netlist, amortized over every measurement that follows.
//!
//! The summary also carries the power-parity fields the `power-parity`
//! CI job gates on: calibrated-compiled vs event-driven pJ/op on the
//! identical sharded operand population, and their relative error.
//!
//! Before the timing comparison the compiled+sharded campaign report is
//! asserted equal to the sequential one — the speedup claim is only
//! meaningful if both paths compute the same answer.

use std::time::Instant;

use mfm_bench::cli;
use mfm_evalkit::calibrate::GlitchCalibration;
use mfm_evalkit::faultcov::{fault_coverage, fault_coverage_parallel, FaultCoverageConfig};
use mfm_evalkit::montecarlo::{measure_unit, measure_unit_compiled_sharded, measure_unit_sharded};
use mfm_evalkit::shard::shard_seed;
use mfm_evalkit::workload::OperandGen;
use mfm_gatesim::report::Table;
use mfm_gatesim::{CompiledNetlist, CompiledSim, Netlist, Simulator, TechLibrary, LANES};
use mfm_telemetry::json::{self, JsonArray, JsonObject};
use mfmult::selfcheck::{run_raw, run_raw_compiled};
use mfmult::structural::build_unit;
use mfmult::{Format, Operation};

/// One measured benchmark.
struct Entry {
    name: &'static str,
    ns_per_op: f64,
    /// Operations per second (the op is named per benchmark: a vector
    /// for the engines, a classified fault×vector for the campaigns).
    throughput: f64,
    threads: usize,
}

fn entry(name: &'static str, ops: u64, elapsed_ns: f64, threads: usize) -> Entry {
    let ns_per_op = elapsed_ns / ops as f64;
    Entry {
        name,
        ns_per_op,
        throughput: 1e9 / ns_per_op,
        threads,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" | "--json" => {
                it.next();
            }
            "--quick" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: perf [--quick] [--threads N] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let quick = cli::has_flag(&args, "--quick");
    let threads = cli::arg_value(&args, "--threads", 4).max(1) as usize;
    let path =
        cli::json_path(&args).unwrap_or_else(|| std::path::PathBuf::from("BENCH_gatesim.json"));

    // Benchmark sizes: `--quick` is the CI smoke configuration.
    let (settle_vecs, batch_vecs, mc_ops) = if quick {
        (40, 512, 24)
    } else {
        (200, 4096, 120)
    };
    let fault_cfg = FaultCoverageConfig {
        seed: 2017,
        sites: if quick { 64 } else { 192 },
        vectors_per_format: if quick { 1 } else { 2 },
        quad_lanes: false,
    };

    println!("=== Gate-evaluation performance: event-driven vs compiled 64-lane ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_unit(&mut n);
    let prog = CompiledNetlist::compile(&n).expect("unit netlist is acyclic");
    let mut gen = OperandGen::new(99);
    let mut entries: Vec<Entry> = Vec::new();

    // 1. Event-driven settle: one full input-to-output evaluation per
    //    random int64 vector.
    {
        let ops: Vec<Operation> = (0..settle_vecs)
            .map(|_| gen.operation(Format::Int64))
            .collect();
        let mut sim = Simulator::new(&n);
        run_raw(&mut sim, &ports, ops[0]); // warm-up
        let t0 = Instant::now();
        for &op in &ops {
            std::hint::black_box(run_raw(&mut sim, &ports, op));
        }
        let dt = t0.elapsed().as_nanos() as f64;
        entries.push(entry("settle.event_driven", settle_vecs as u64, dt, 1));
    }

    // 2. Compiled batch evaluation: the same computation, 64 vectors per
    //    propagation pass.
    {
        let ops: Vec<Operation> = (0..batch_vecs)
            .map(|_| gen.operation(Format::Int64))
            .collect();
        let mut sim = CompiledSim::new(&prog);
        run_raw_compiled(&mut sim, &ports, &ops[..64]); // warm-up
        let t0 = Instant::now();
        for chunk in ops.chunks(64) {
            std::hint::black_box(run_raw_compiled(&mut sim, &ports, chunk));
        }
        let dt = t0.elapsed().as_nanos() as f64;
        entries.push(entry("batch.compiled", batch_vecs as u64, dt, 1));
    }

    // 2b. Compiled batch at the full 256-lane word with the activity
    //     engine enabled: every pass also XOR+popcounts all nets, so
    //     this prices the toggle-counting sweep the power path rides on.
    {
        let ops: Vec<Operation> = (0..batch_vecs)
            .map(|_| gen.operation(Format::Int64))
            .collect();
        let mut sim = CompiledSim::new(&prog);
        run_raw_compiled(&mut sim, &ports, &ops[..LANES]); // warm-up
        sim.enable_activity(LANES);
        let t0 = Instant::now();
        for chunk in ops.chunks(LANES) {
            std::hint::black_box(run_raw_compiled(&mut sim, &ports, chunk));
        }
        let dt = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(sim.activity_events());
        entries.push(entry("batch.compiled_256", batch_vecs as u64, dt, 1));
    }

    // 3. Fault-coverage campaign: sequential event-driven vs compiled +
    //    sharded. The op here is one classified (site, format, vector)
    //    triple. Equality is asserted before the timing is trusted.
    let classifications = {
        let t0 = Instant::now();
        let seq = fault_coverage(&fault_cfg);
        let seq_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        let par = fault_coverage_parallel(&fault_cfg, threads);
        let par_ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(
            par, seq,
            "compiled+sharded campaign must reproduce the sequential report bit for bit"
        );
        let ops = seq.blocks.totals().ops();
        entries.push(entry("faultcov.sequential", ops, seq_ns, 1));
        entries.push(entry("faultcov.compiled_sharded", ops, par_ns, threads));
        ops
    };

    // 4. Monte-Carlo power: sequential event-driven vs event-driven
    //    sharded vs compiled+calibrated, 4 logical shards, seed 5. The
    //    calibration run happens outside the timer: it is a one-time
    //    per-netlist cost (persisted alongside the netlist in real
    //    flows). The compiled entry measures many more operations than
    //    the event-driven ones — ns/op is flat in ops for the
    //    event-driven engine, while the compiled engine only amortizes
    //    its per-shard setup once the 256 lanes fill, which is exactly
    //    how it is used. The parity fields compare the two estimators
    //    on the *identical* mc_ops sharded population (untimed).
    let (ed_power, compiled_power) = {
        let cal_ops = if quick { 8 } else { 24 };
        let mc_compiled_ops = if quick { 1024 } else { 4096 };
        let cal = GlitchCalibration::run(&n, &prog, &ports, cal_ops, shard_seed(5, 1 << 32));

        let t0 = Instant::now();
        std::hint::black_box(measure_unit(&n, &ports, Format::Binary64, mc_ops, 5));
        let seq_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        let ed = measure_unit_sharded(&n, &ports, Format::Binary64, mc_ops, 5, 4, threads);
        let par_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        std::hint::black_box(measure_unit_compiled_sharded(
            &n,
            &prog,
            &ports,
            Format::Binary64,
            mc_compiled_ops,
            5,
            4,
            threads,
            Some(&cal),
        ));
        let compiled_ns = t0.elapsed().as_nanos() as f64;
        let compiled = measure_unit_compiled_sharded(
            &n,
            &prog,
            &ports,
            Format::Binary64,
            mc_ops,
            5,
            4,
            threads,
            Some(&cal),
        );
        entries.push(entry("montecarlo.sequential", mc_ops as u64, seq_ns, 1));
        entries.push(entry("montecarlo.sharded", mc_ops as u64, par_ns, threads));
        entries.push(entry(
            "montecarlo.compiled_sharded",
            mc_compiled_ops as u64,
            compiled_ns,
            threads,
        ));
        (ed, compiled)
    };

    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .expect("entry recorded above")
    };
    let fault_speedup =
        find("faultcov.sequential").ns_per_op / find("faultcov.compiled_sharded").ns_per_op;
    let mc_speedup =
        find("montecarlo.sequential").ns_per_op / find("montecarlo.compiled_sharded").ns_per_op;
    let mc_threaded_speedup =
        find("montecarlo.sequential").ns_per_op / find("montecarlo.sharded").ns_per_op;
    let power_error = (compiled_power.energy_pj_per_op() - ed_power.energy_pj_per_op()).abs()
        / ed_power.energy_pj_per_op();

    let mut t = Table::new(&["benchmark", "ns/op", "ops/s", "threads"]);
    for e in &entries {
        t.row_owned(vec![
            e.name.to_string(),
            format!("{:.1}", e.ns_per_op),
            format!("{:.2e}", e.throughput),
            e.threads.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "fault campaign: {classifications} classifications, {fault_speedup:.1}x speedup (compiled+sharded over event-driven)"
    );
    println!(
        "monte-carlo:    {mc_speedup:.1}x compiled activity engine, {mc_threaded_speedup:.2}x event-driven sharded ({threads} threads)"
    );
    println!(
        "power parity:   calibrated {:.2} pJ/op vs event-driven {:.2} pJ/op ({:+.2}% error)",
        compiled_power.energy_pj_per_op(),
        ed_power.energy_pj_per_op(),
        (compiled_power.energy_pj_per_op() / ed_power.energy_pj_per_op() - 1.0) * 100.0
    );

    let mut arr = JsonArray::new();
    for e in &entries {
        let mut o = JsonObject::new();
        o.field_str("name", e.name)
            .field_f64("ns_per_op", e.ns_per_op)
            .field_f64("throughput", e.throughput)
            .field_u64("threads", e.threads as u64);
        arr.push_raw(&o.finish());
    }
    let mut summary = JsonObject::new();
    summary
        .field_f64("fault_campaign_speedup", fault_speedup)
        .field_f64("montecarlo_speedup", mc_speedup)
        .field_f64("montecarlo_threaded_speedup", mc_threaded_speedup)
        .field_f64("power_pj_per_op_event_driven", ed_power.energy_pj_per_op())
        .field_f64(
            "power_pj_per_op_compiled",
            compiled_power.energy_pj_per_op(),
        )
        .field_f64("power_error", power_error);
    let mut root = JsonObject::new();
    root.field_str("bench", "gatesim_perf")
        .field_bool("quick", quick)
        .field_u64("threads", threads as u64)
        .field_raw("entries", &arr.finish())
        .field_raw("summary", &summary.finish());
    let doc = root.finish() + "\n";
    json::check(&doc).expect("perf report is valid JSON");
    std::fs::write(&path, doc).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
