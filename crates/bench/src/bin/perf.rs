//! Performance microbenchmarks for the two gate-evaluation engines:
//! event-driven settle, compiled 64-lane batch evaluation, the
//! fault-coverage campaign (sequential event-driven vs compiled +
//! thread-sharded) and Monte-Carlo power measurement (sequential vs
//! sharded).
//!
//! Usage: `perf [--quick] [--threads N] [--json <path>]`
//! (defaults: full sizes, 4 threads, `BENCH_gatesim.json`).
//!
//! The JSON report is machine-readable: one entry per benchmark with
//! `name`, `ns_per_op`, `throughput` (ops/s) and `threads`, plus a
//! `summary` object with the two derived speedups the performance work
//! targets: the fault-campaign speedup (compiled+sharded over
//! sequential event-driven) and the Monte-Carlo wall-clock speedup
//! (sharded over sequential). The fault-campaign speedup comes from
//! 64-lane bit-parallelism and is visible on a single core; the
//! Monte-Carlo speedup needs real cores (each shard runs a full
//! event-driven simulator), so on a 1-CPU container it hovers near 1×.
//!
//! Before the timing comparison the compiled+sharded campaign report is
//! asserted equal to the sequential one — the speedup claim is only
//! meaningful if both paths compute the same answer.

use std::time::Instant;

use mfm_bench::cli;
use mfm_evalkit::faultcov::{fault_coverage, fault_coverage_parallel, FaultCoverageConfig};
use mfm_evalkit::montecarlo::{measure_unit, measure_unit_sharded};
use mfm_evalkit::workload::OperandGen;
use mfm_gatesim::report::Table;
use mfm_gatesim::{CompiledNetlist, CompiledSim, Netlist, Simulator, TechLibrary};
use mfm_telemetry::json::{self, JsonArray, JsonObject};
use mfmult::selfcheck::{run_raw, run_raw_compiled};
use mfmult::structural::build_unit;
use mfmult::{Format, Operation};

/// One measured benchmark.
struct Entry {
    name: &'static str,
    ns_per_op: f64,
    /// Operations per second (the op is named per benchmark: a vector
    /// for the engines, a classified fault×vector for the campaigns).
    throughput: f64,
    threads: usize,
}

fn entry(name: &'static str, ops: u64, elapsed_ns: f64, threads: usize) -> Entry {
    let ns_per_op = elapsed_ns / ops as f64;
    Entry {
        name,
        ns_per_op,
        throughput: 1e9 / ns_per_op,
        threads,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" | "--json" => {
                it.next();
            }
            "--quick" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: perf [--quick] [--threads N] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let quick = cli::has_flag(&args, "--quick");
    let threads = cli::arg_value(&args, "--threads", 4).max(1) as usize;
    let path =
        cli::json_path(&args).unwrap_or_else(|| std::path::PathBuf::from("BENCH_gatesim.json"));

    // Benchmark sizes: `--quick` is the CI smoke configuration.
    let (settle_vecs, batch_vecs, mc_ops) = if quick {
        (40, 512, 24)
    } else {
        (200, 4096, 120)
    };
    let fault_cfg = FaultCoverageConfig {
        seed: 2017,
        sites: if quick { 64 } else { 192 },
        vectors_per_format: if quick { 1 } else { 2 },
        quad_lanes: false,
    };

    println!("=== Gate-evaluation performance: event-driven vs compiled 64-lane ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_unit(&mut n);
    let prog = CompiledNetlist::compile(&n).expect("unit netlist is acyclic");
    let mut gen = OperandGen::new(99);
    let mut entries: Vec<Entry> = Vec::new();

    // 1. Event-driven settle: one full input-to-output evaluation per
    //    random int64 vector.
    {
        let ops: Vec<Operation> = (0..settle_vecs)
            .map(|_| gen.operation(Format::Int64))
            .collect();
        let mut sim = Simulator::new(&n);
        run_raw(&mut sim, &ports, ops[0]); // warm-up
        let t0 = Instant::now();
        for &op in &ops {
            std::hint::black_box(run_raw(&mut sim, &ports, op));
        }
        let dt = t0.elapsed().as_nanos() as f64;
        entries.push(entry("settle.event_driven", settle_vecs as u64, dt, 1));
    }

    // 2. Compiled batch evaluation: the same computation, 64 vectors per
    //    propagation pass.
    {
        let ops: Vec<Operation> = (0..batch_vecs)
            .map(|_| gen.operation(Format::Int64))
            .collect();
        let mut sim = CompiledSim::new(&prog);
        run_raw_compiled(&mut sim, &ports, &ops[..64]); // warm-up
        let t0 = Instant::now();
        for chunk in ops.chunks(64) {
            std::hint::black_box(run_raw_compiled(&mut sim, &ports, chunk));
        }
        let dt = t0.elapsed().as_nanos() as f64;
        entries.push(entry("batch.compiled", batch_vecs as u64, dt, 1));
    }

    // 3. Fault-coverage campaign: sequential event-driven vs compiled +
    //    sharded. The op here is one classified (site, format, vector)
    //    triple. Equality is asserted before the timing is trusted.
    let classifications = {
        let t0 = Instant::now();
        let seq = fault_coverage(&fault_cfg);
        let seq_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        let par = fault_coverage_parallel(&fault_cfg, threads);
        let par_ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(
            par, seq,
            "compiled+sharded campaign must reproduce the sequential report bit for bit"
        );
        let ops = seq.blocks.totals().ops();
        entries.push(entry("faultcov.sequential", ops, seq_ns, 1));
        entries.push(entry("faultcov.compiled_sharded", ops, par_ns, threads));
        ops
    };

    // 4. Monte-Carlo power: sequential vs sharded (4 logical shards).
    {
        let t0 = Instant::now();
        std::hint::black_box(measure_unit(&n, &ports, Format::Binary64, mc_ops, 5));
        let seq_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        std::hint::black_box(measure_unit_sharded(
            &n,
            &ports,
            Format::Binary64,
            mc_ops,
            5,
            4,
            threads,
        ));
        let par_ns = t0.elapsed().as_nanos() as f64;
        entries.push(entry("montecarlo.sequential", mc_ops as u64, seq_ns, 1));
        entries.push(entry("montecarlo.sharded", mc_ops as u64, par_ns, threads));
    }

    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .expect("entry recorded above")
    };
    let fault_speedup =
        find("faultcov.sequential").ns_per_op / find("faultcov.compiled_sharded").ns_per_op;
    let mc_speedup = find("montecarlo.sequential").ns_per_op / find("montecarlo.sharded").ns_per_op;

    let mut t = Table::new(&["benchmark", "ns/op", "ops/s", "threads"]);
    for e in &entries {
        t.row_owned(vec![
            e.name.to_string(),
            format!("{:.1}", e.ns_per_op),
            format!("{:.2e}", e.throughput),
            e.threads.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "fault campaign: {classifications} classifications, {fault_speedup:.1}x speedup (compiled+sharded over event-driven)"
    );
    println!("monte-carlo:    {mc_speedup:.2}x wall-clock speedup at {threads} threads");

    let mut arr = JsonArray::new();
    for e in &entries {
        let mut o = JsonObject::new();
        o.field_str("name", e.name)
            .field_f64("ns_per_op", e.ns_per_op)
            .field_f64("throughput", e.throughput)
            .field_u64("threads", e.threads as u64);
        arr.push_raw(&o.finish());
    }
    let mut summary = JsonObject::new();
    summary
        .field_f64("fault_campaign_speedup", fault_speedup)
        .field_f64("montecarlo_speedup", mc_speedup);
    let mut root = JsonObject::new();
    root.field_str("bench", "gatesim_perf")
        .field_bool("quick", quick)
        .field_u64("threads", threads as u64)
        .field_raw("entries", &arr.finish())
        .field_raw("summary", &summary.finish());
    let doc = root.finish() + "\n";
    json::check(&doc).expect("perf report is valid JSON");
    std::fs::write(&path, doc).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
