//! Regenerates Table IV: the binary interchange format parameters of
//! IEEE 754-2008.
//!
//! Usage: `table4 [--json <path>]`.

use mfm_bench::cli;
use mfm_evalkit::experiments::table4;
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = Registry::new();
    let t4 = {
        let _span = registry.span("table4");
        table4()
    };
    println!("=== Table IV: IEEE 754-2008 binary formats ===\n");
    println!("{t4}");
    println!("(exact reproduction — these are the standard's constants)");

    if let Some(path) = cli::json_path(&args) {
        let mut report = RunReport::new("table4");
        let mut t = Table::new(&["format", "p", "emax", "emin", "bias"]);
        for (name, p, emax, emin, bias) in &t4.rows {
            t.row_owned(vec![
                name.clone(),
                p.to_string(),
                emax.to_string(),
                emin.to_string(),
                bias.to_string(),
            ]);
        }
        report
            .add_table("Table IV IEEE 754-2008 binary formats", t)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
