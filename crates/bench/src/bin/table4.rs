//! Regenerates Table IV: the binary interchange format parameters of
//! IEEE 754-2008.

use mfm_evalkit::experiments::table4;

fn main() {
    println!("=== Table IV: IEEE 754-2008 binary formats ===\n");
    println!("{}", table4());
    println!("(exact reproduction — these are the standard's constants)");
}
