//! Seeded stuck-at fault-injection campaign over the structural unit,
//! classifying every vector masked/detected/silent under the
//! `mfmult::selfcheck` checker and printing per-block, per-format and
//! per-tier coverage tables.
//!
//! Usage: `faults [--sites N] [--vectors N] [--seed S] [--quad] [--threads N] [--json <path>]`
//! (defaults: 500 sites, 4 vectors per site and format, seed 2017).
//!
//! `--threads N` switches to the compiled bit-parallel campaign
//! ([`fault_coverage_parallel`]) sharded over N worker threads. The
//! report — and the JSON file — is byte-identical for any N, and
//! identical to the sequential event-driven campaign for the same seed;
//! only the wall-clock changes. (Telemetry in this mode is written once
//! from the final totals, so no wall-clock-dependent span can leak into
//! the JSON.)

use mfm_bench::cli;
use mfm_evalkit::faultcov::{
    fault_coverage_observed, fault_coverage_parallel, FaultCoverageConfig,
};
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" | "--sites" | "--vectors" | "--threads" | "--json" => {
                it.next();
            }
            "--quad" => {}
            other => {
                eprintln!("unknown argument {other}; usage: faults [--sites N] [--vectors N] [--seed S] [--quad] [--threads N] [--json <path>]");
                std::process::exit(2);
            }
        }
    }
    let cfg = FaultCoverageConfig {
        seed: cli::arg_value(&args, "--seed", 2017),
        sites: cli::arg_value(&args, "--sites", 500) as usize,
        vectors_per_format: cli::arg_value(&args, "--vectors", 4) as usize,
        quad_lanes: cli::has_flag(&args, "--quad"),
    };
    let threads = cli::arg_str(&args, "--threads").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--threads needs a numeric value");
            std::process::exit(2);
        })
    });
    let registry = Registry::new();
    println!("=== Fault-injection campaign: residue/self-check coverage ===\n");
    let report = match threads {
        // Compiled bit-parallel path: telemetry is written once from the
        // final totals (no span — a span embeds wall-clock microseconds,
        // which would break byte-identical JSON across thread counts).
        Some(t) => {
            let report = fault_coverage_parallel(&cfg, t.max(1));
            let totals = report.blocks.totals();
            registry
                .counter("faultcov.sites_done")
                .add(report.sites_run as u64);
            registry.counter("faultcov.vectors").add(totals.ops());
            registry.counter("faultcov.masked").add(totals.masked);
            registry.counter("faultcov.detected").add(totals.detected);
            registry.counter("faultcov.silent").add(totals.silent);
            registry
                .gauge("faultcov.detection_rate")
                .set(totals.detection_rate());
            report
        }
        None => {
            let _span = registry.span("faults");
            fault_coverage_observed(&cfg, Some(&registry))
        }
    };
    println!("{report}");
    let totals = report.blocks.totals();
    println!(
        "\n{} corrupting vectors, {} detected, {} silent (detection rate {:.3})",
        totals.detected + totals.silent,
        totals.detected,
        totals.silent,
        report.detection_rate()
    );
    if report.silent() == 0 {
        println!("self-checking delivered no silently corrupted product");
    } else {
        println!(
            "WARNING: {} silent corruptions slipped through",
            report.silent()
        );
    }

    if let Some(path) = cli::json_path(&args) {
        let mut run = RunReport::new("faults");
        run.param("sites", &cfg.sites.to_string())
            .param("vectors_per_format", &cfg.vectors_per_format.to_string())
            .param("seed", &cfg.seed.to_string())
            .param("quad", if cfg.quad_lanes { "true" } else { "false" })
            .param("sites_run", &report.sites_run.to_string())
            .param("silent", &report.silent().to_string())
            .param("detection_rate", &format!("{:.4}", report.detection_rate()));
        let mut blocks = Table::new(&["block", "sites", "masked", "detected", "silent"]);
        for (name, s) in &report.blocks.per_block {
            blocks.row_owned(vec![
                name.clone(),
                s.sites.to_string(),
                s.masked.to_string(),
                s.detected.to_string(),
                s.silent.to_string(),
            ]);
        }
        run.add_table("outcomes per hardware block", blocks);
        let mut formats = Table::new(&["format", "ops", "masked", "detected", "silent", "rate"]);
        for (name, c) in &report.formats {
            formats.row_owned(vec![
                name.to_string(),
                c.ops().to_string(),
                c.masked.to_string(),
                c.detected.to_string(),
                c.silent.to_string(),
                format!("{:.3}", c.detection_rate()),
            ]);
        }
        run.add_table("outcomes per operand format", formats);
        let mut tiers = Table::new(&["checker tier", "detections"]);
        for (name, n) in &report.detections_by_tier {
            tiers.row_owned(vec![name.to_string(), n.to_string()]);
        }
        run.add_table("detections by first checker tier", tiers)
            .with_telemetry(&registry);
        run.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
