//! Seeded stuck-at fault-injection campaign over the structural unit,
//! classifying every vector masked/detected/silent under the
//! `mfmult::selfcheck` checker and printing per-block, per-format and
//! per-tier coverage tables.
//!
//! Usage: `faults [--sites N] [--vectors N] [--seed S] [--quad]`
//! (defaults: 500 sites, 4 vectors per site and format, seed 2017).

use mfm_evalkit::faultcov::{fault_coverage, FaultCoverageConfig};

fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("{name} needs a numeric value");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" | "--sites" | "--vectors" => {
                it.next();
            }
            "--quad" => {}
            other => {
                eprintln!("unknown argument {other}; usage: faults [--sites N] [--vectors N] [--seed S] [--quad]");
                std::process::exit(2);
            }
        }
    }
    let cfg = FaultCoverageConfig {
        seed: arg_value(&args, "--seed", 2017),
        sites: arg_value(&args, "--sites", 500) as usize,
        vectors_per_format: arg_value(&args, "--vectors", 4) as usize,
        quad_lanes: args.iter().any(|a| a == "--quad"),
    };
    println!("=== Fault-injection campaign: residue/self-check coverage ===\n");
    let report = fault_coverage(&cfg);
    println!("{report}");
    let totals = report.blocks.totals();
    println!(
        "\n{} corrupting vectors, {} detected, {} silent (detection rate {:.3})",
        totals.detected + totals.silent,
        totals.detected,
        totals.silent,
        report.detection_rate()
    );
    if report.silent() == 0 {
        println!("self-checking delivered no silently corrupted product");
    } else {
        println!(
            "WARNING: {} silent corruptions slipped through",
            report.silent()
        );
    }
}
