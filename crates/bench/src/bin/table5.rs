//! Regenerates Table V: power dissipation and power efficiency of the
//! 3-stage pipelined multi-format unit for each format.
//!
//! Usage: `table5 [--ops N] [--seed S]` (default: 300 operations/format).

use mfm_bench::paper_values;
use mfm_evalkit::experiments::table5;

fn arg_value(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let ops = arg_value("--ops", 300) as usize;
    let seed = arg_value("--seed", 2017);
    let want_quad = std::env::args().any(|a| a == "--quad");
    let t = table5(ops, seed);
    println!("=== Table V: power and power efficiency per format ===\n");
    println!("{t}");
    println!(
        "--- paper (fmax = {:.0} MHz, cycle {:.0} ps) ---",
        paper_values::PIPE.1,
        paper_values::PIPE.0
    );
    for (name, p100, pmax, gflops, eff) in paper_values::T5 {
        println!(
            "  {name:18} {p100:5.2} mW @100   {pmax:6.2} mW @fmax   {gflops:4.2} GFLOPS   {eff:6.2} GFLOPS/W"
        );
    }
    println!("\nshape check:");
    let find = |n: &str| t.rows.iter().find(|r| r.format == n).expect("row");
    let int = find("int64");
    let b64 = find("binary64");
    let dual = find("binary32 (dual)");
    let single = find("binary32 (single)");
    println!(
        "  power ordering int64 > binary64 > dual b32 > single b32: {:.2} > {:.2} > {:.2} > {:.2}",
        int.power_mw_100, b64.power_mw_100, dual.power_mw_100, single.power_mw_100
    );
    println!(
        "  binary64/int64 power ratio: {:.2} (paper 0.81)",
        b64.power_mw_100 / int.power_mw_100
    );
    println!(
        "  efficiency ordering dual >> single > binary64 > int64: {:.1} > {:.1} > {:.1} > {:.1} GFLOPS/W",
        dual.efficiency_gflops_w,
        single.efficiency_gflops_w,
        b64.efficiency_gflops_w,
        int.efficiency_gflops_w
    );
    println!(
        "  dual/single efficiency: {:.2}x (paper {:.2}x)",
        dual.efficiency_gflops_w / single.efficiency_gflops_w,
        38.68 / 26.53
    );

    if want_quad {
        use mfm_evalkit::montecarlo::measure_unit;
        use mfm_gatesim::{Netlist, TechLibrary, TimingAnalysis};
        use mfmult::pipeline::{build_pipelined_unit_opts, PipelinePlacement};
        use mfmult::{Format, UnitOptions};
        println!("\n=== Extension: quad binary16 row (quad-enabled unit build) ===");
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit_opts(
            &mut n,
            PipelinePlacement::Fig5,
            UnitOptions { quad_lanes: true },
        );
        let fmax = TimingAnalysis::new(&n).report().max_freq_mhz();
        let p = measure_unit(&n, &u, Format::QuadBinary16, ops, seed);
        let p100 = p.total_mw_at(100.0);
        let pmax = p.total_mw_at(fmax);
        let gflops = 4.0 * fmax * 1e-3;
        println!(
            "  binary16 (quad)    {p100:5.2} mW @100   {pmax:6.2} mW @fmax   {gflops:4.2} GFLOPS   {:6.2} GFLOPS/W",
            gflops / (pmax * 1e-3)
        );
        println!(
            "  four half-precision multiplications per cycle extend the paper's\n  \
             precision/power trade-off one format further down."
        );
    }
}
