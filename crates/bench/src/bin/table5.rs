//! Regenerates Table V: power dissipation and power efficiency of the
//! 3-stage pipelined multi-format unit for each format.
//!
//! Usage: `table5 [--ops N] [--seed S] [--quad] [--compiled]
//! [--cal-ops N] [--threads N] [--json <path>]`
//! (default: 300 operations/format).
//!
//! With `--compiled` the rows come from the 256-lane compiled activity
//! engine with per-block glitch-inflation calibration instead of the
//! event-driven simulator — hundreds of times faster, within the ±5 %
//! parity contract of `tests/power_parity.rs`. The calibration itself
//! runs `--cal-ops` event-driven operations per format (the one-time
//! cost), then every measured row is compiled-only.

use mfm_bench::{cli, paper_values};
use mfm_evalkit::experiments::{table5, table5_compiled};
use mfm_evalkit::montecarlo::measure_unit_traced;
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, TechLibrary, TimingAnalysis};
use mfm_telemetry::Registry;
use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
use mfmult::Format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops = cli::arg_value(&args, "--ops", 300) as usize;
    let seed = cli::arg_value(&args, "--seed", 2017);
    let want_quad = cli::has_flag(&args, "--quad");
    let compiled = cli::has_flag(&args, "--compiled");
    let registry = Registry::new();
    let (t, cal) = {
        let _span = registry.span("table5");
        if compiled {
            let cal_ops = cli::arg_value(&args, "--cal-ops", (ops / 4).max(8) as u64) as usize;
            let threads = cli::arg_value(&args, "--threads", 4).max(1) as usize;
            let (t, cal) = table5_compiled(ops, cal_ops, seed, 4, threads);
            (t, Some(cal))
        } else {
            (table5(ops, seed), None)
        }
    };
    println!("=== Table V: power and power efficiency per format ===\n");
    println!("{t}");
    if let Some(cal) = &cal {
        println!("--- compiled activity engine, glitch-inflation calibration ({} event-driven ops/format) ---", cal.ops);
        for fc in &cal.formats {
            println!(
                "  {:18} inflation {:.3}  (event-driven {:.2} pJ/op, zero-delay {:.2} pJ/op)",
                fc.format.label(),
                fc.default_factor,
                fc.event_driven_pj_per_op,
                fc.zero_delay_pj_per_op
            );
        }
        println!();
    }
    println!(
        "--- paper (fmax = {:.0} MHz, cycle {:.0} ps) ---",
        paper_values::PIPE.1,
        paper_values::PIPE.0
    );
    for (name, p100, pmax, gflops, eff) in paper_values::T5 {
        println!(
            "  {name:18} {p100:5.2} mW @100   {pmax:6.2} mW @fmax   {gflops:4.2} GFLOPS   {eff:6.2} GFLOPS/W"
        );
    }
    println!("\nshape check:");
    let find = |n: &str| t.rows.iter().find(|r| r.format == n).expect("row");
    let int = find("int64");
    let b64 = find("binary64");
    let dual = find("binary32 (dual)");
    let single = find("binary32 (single)");
    println!(
        "  power ordering int64 > binary64 > dual b32 > single b32: {:.2} > {:.2} > {:.2} > {:.2}",
        int.power_mw_100, b64.power_mw_100, dual.power_mw_100, single.power_mw_100
    );
    println!(
        "  binary64/int64 power ratio: {:.2} (paper 0.81)",
        b64.power_mw_100 / int.power_mw_100
    );
    println!(
        "  efficiency ordering dual >> single > binary64 > int64: {:.1} > {:.1} > {:.1} > {:.1} GFLOPS/W",
        dual.efficiency_gflops_w,
        single.efficiency_gflops_w,
        b64.efficiency_gflops_w,
        int.efficiency_gflops_w
    );
    println!(
        "  dual/single efficiency: {:.2}x (paper {:.2}x)",
        dual.efficiency_gflops_w / single.efficiency_gflops_w,
        38.68 / 26.53
    );

    if want_quad {
        use mfm_evalkit::montecarlo::measure_unit;
        use mfmult::pipeline::build_pipelined_unit_opts;
        use mfmult::UnitOptions;
        println!("\n=== Extension: quad binary16 row (quad-enabled unit build) ===");
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit_opts(
            &mut n,
            PipelinePlacement::Fig5,
            UnitOptions {
                quad_lanes: true,
                ..UnitOptions::default()
            },
        );
        let fmax = TimingAnalysis::new(&n).report().max_freq_mhz();
        let p = measure_unit(&n, &u, Format::QuadBinary16, ops, seed);
        let p100 = p.total_mw_at(100.0);
        let pmax = p.total_mw_at(fmax);
        let gflops = 4.0 * fmax * 1e-3;
        println!(
            "  binary16 (quad)    {p100:5.2} mW @100   {pmax:6.2} mW @fmax   {gflops:4.2} GFLOPS   {:6.2} GFLOPS/W",
            gflops / (pmax * 1e-3)
        );
        println!(
            "  four half-precision multiplications per cycle extend the paper's\n  \
             precision/power trade-off one format further down."
        );
    }

    if let Some(path) = cli::json_path(&args) {
        // Re-measure binary64 with the convergence trace so the JSON
        // carries a full breakdown plus the Monte-Carlo mc.* telemetry.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let sta = TimingAnalysis::new(&n).report();
        let window = (ops / 4).max(1);
        let (p, points) =
            measure_unit_traced(&n, &u, Format::Binary64, ops, seed, window, Some(&registry));

        let mut report = RunReport::new("table5");
        report
            .param("ops", &ops.to_string())
            .param("seed", &seed.to_string())
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("binary64", &p);
        let mut tbl = Table::new(&["format", "mW @100MHz", "mW @fmax", "GFLOPS", "GFLOPS/W"]);
        for r in &t.rows {
            tbl.row_owned(vec![
                r.format.clone(),
                format!("{:.2}", r.power_mw_100),
                format!("{:.2}", r.power_mw_fmax),
                format!("{:.2}", r.throughput_gflops),
                format!("{:.2}", r.efficiency_gflops_w),
            ]);
        }
        report.add_table("Table V power and efficiency per format", tbl);
        let mut conv = Table::new(&["ops", "window pJ/op", "mean pJ/op", "stddev"]);
        for pt in &points {
            conv.row_owned(vec![
                pt.ops.to_string(),
                format!("{:.2}", pt.window_pj_per_op),
                format!("{:.2}", pt.mean_pj_per_op),
                format!("{:.3}", pt.stddev_pj_per_op),
            ]);
        }
        report
            .add_table("Monte-Carlo convergence (binary64)", conv)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
