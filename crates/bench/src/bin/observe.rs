//! Streams JSON-lines telemetry for a mixed-format workload on the
//! self-checking pipelined unit: per-window operation counts and live
//! pJ/op, incident records as they happen, and a final registry
//! snapshot. A single-event upset is scheduled halfway through the run
//! so the incident path is always exercised.
//!
//! Usage: `observe [--ops N] [--window N] [--seed S] [--compiled]
//! [--cal-ops N] [--json <path>] [--prom <path>]` (defaults: 400 ops,
//! window 50).
//!
//! `--compiled` runs the same mixed workload through the 256-lane
//! compiled activity engine instead of the event-driven self-checking
//! unit: the live pJ/op comes from zero-delay toggle counts scaled by a
//! glitch-inflation factor calibrated on `--cal-ops` event-driven
//! operations (default 24). SEU injection needs event timing, so the
//! compiled mode reports no incidents.
//!
//! Line shapes (one JSON object per line on stdout):
//!
//! - `{"event":"start", ...}` — run parameters and netlist size;
//! - `{"event":"incident", ...}` — a self-check incident (see
//!   `mfmult::selfcheck::Incident::to_json`);
//! - `{"event":"window", ...}` — op counts per format, cycles, live
//!   window pJ/op and running mean;
//! - `{"event":"snapshot","metrics":{...}}` — final registry snapshot.

use mfm_bench::cli;
use mfm_evalkit::calibrate::GlitchCalibration;
use mfm_evalkit::runreport::RunReport;
use mfm_evalkit::workload::OperandGen;
use mfm_gatesim::{
    CompiledNetlist, CompiledSim, LivePowerTrace, Netlist, PowerEstimator, TechLibrary,
    TimingAnalysis, LANES,
};
use mfm_telemetry::json::JsonObject;
use mfm_telemetry::Registry;
use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
use mfmult::selfcheck::SelfCheckingUnit;
use mfmult::Format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops = cli::arg_value(&args, "--ops", 400);
    let window = cli::arg_value(&args, "--window", 50).max(1);
    let seed = cli::arg_value(&args, "--seed", 2017);
    if cli::has_flag(&args, "--compiled") {
        run_compiled(&args, ops, window, seed);
        return;
    }

    let registry = Registry::new();
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
    let sta = TimingAnalysis::new(&n).report();
    let mut unit = SelfCheckingUnit::new(&n, ports);
    unit.attach_telemetry(&registry);
    unit.sim_mut().attach_telemetry(&registry, 64);
    let seu_edge = unit.ports().latency + 1;
    let seu_net = unit.ports().chk_p0[0];
    let mut trace = LivePowerTrace::new(&n, &*unit.sim_mut())
        .with_gauge(registry.gauge("observe.pj_per_op.window"));

    let mut start = JsonObject::new();
    start
        .field_str("event", "start")
        .field_u64("ops", ops)
        .field_u64("window", window)
        .field_u64("seed", seed)
        .field_u64("cells", n.cell_count() as u64)
        .field_u64("nets", n.net_count() as u64)
        .field_f64("area_um2", n.area_um2())
        .field_f64("max_freq_mhz", sta.max_freq_mhz());
    println!("{}", start.finish());

    let mut gen = OperandGen::new(seed);
    let mut counts = [0u64; 4];
    let mut incidents_seen = 0usize;
    // Upset an int64 op near the middle of the run: a P0-LSB flip
    // corrupts the delivered product directly (float formats may mask
    // it in rounding).
    let seu_op = (ops / 2) & !3;
    for i in 0..ops {
        let slot = (i % Format::ALL.len() as u64) as usize;
        let op = gen.operation(Format::ALL[slot]);
        if i == seu_op {
            // Flip the P0 LSB across the output-latching edge of the
            // next operation: the checker rejects the result, the retry
            // recovers, and two incident lines appear below.
            unit.schedule_seu(seu_edge, seu_net);
        }
        let _ = unit.execute(op);
        counts[slot] += 1;
        while incidents_seen < unit.incidents().len() {
            println!("{}", unit.incidents()[incidents_seen].to_json());
            incidents_seen += 1;
        }
        let done = i + 1;
        if done.is_multiple_of(window) || done == ops {
            let sample = trace.sample(&*unit.sim_mut(), done);
            let mut by_format = JsonObject::new();
            for (slot, f) in Format::ALL.iter().enumerate() {
                by_format.field_u64(f.label(), counts[slot]);
            }
            let mut line = JsonObject::new();
            line.field_str("event", "window")
                .field_u64("ops", done)
                .field_u64("cycles", unit.sim_mut().cycles())
                .field_u64("incidents", incidents_seen as u64)
                .field_raw("ops_by_format", &by_format.finish());
            if let Some(s) = sample {
                line.field_f64("pj_per_op_window", s.pj_per_op);
            }
            line.field_f64("pj_per_op_mean", trace.mean_pj_per_op());
            println!("{}", line.finish());
        }
    }
    unit.sim_mut().flush_telemetry();

    let mut snap = JsonObject::new();
    snap.field_str("event", "snapshot")
        .field_raw("metrics", &registry.snapshot_json());
    println!("{}", snap.finish());

    if let Some(path) = cli::arg_str(&args, "--prom") {
        std::fs::write(&path, registry.prometheus()).expect("write prometheus file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli::json_path(&args) {
        let cycles = unit.sim_mut().cycles();
        let p = PowerEstimator::from_activity(&n, &*unit.sim_mut(), cycles);
        let mut report = RunReport::new("observe");
        report
            .param("ops", &ops.to_string())
            .param("window", &window.to_string())
            .param("seed", &seed.to_string())
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("mixed_format", &p)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        eprintln!("wrote {}", path.display());
    }
}

/// Uniform per-block factors for an evenly mixed workload: the mean of
/// each block's per-format glitch-inflation factor (and the mean
/// default/event factors), since every format contributes one op in
/// four.
fn mixed_factors(cal: &GlitchCalibration) -> (Vec<(String, f64)>, f64, f64) {
    let n = cal.formats.len().max(1) as f64;
    let mut blocks: Vec<(String, f64)> = Vec::new();
    for c in &cal.formats {
        for (block, f) in &c.per_block {
            match blocks.iter_mut().find(|(b, _)| b == block) {
                Some((_, sum)) => *sum += f / n,
                None => blocks.push((block.clone(), f / n)),
            }
        }
    }
    let default = cal.formats.iter().map(|c| c.default_factor).sum::<f64>() / n;
    let event = cal.formats.iter().map(|c| c.event_factor).sum::<f64>() / n;
    (blocks, default, event)
}

/// The `--compiled` mode: the same mixed-format stream, evaluated up to
/// [`LANES`] operations per clock edge on the compiled engine, with the
/// live pJ/op fed from calibrated zero-delay toggle counts.
fn run_compiled(args: &[String], ops: u64, window: u64, seed: u64) {
    let cal_ops = cli::arg_value(args, "--cal-ops", 24).max(1) as usize;
    let registry = Registry::new();
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
    let sta = TimingAnalysis::new(&n).report();
    let prog = CompiledNetlist::compile(&n).expect("pipelined unit is acyclic");
    let cal_seed = mfm_evalkit::shard::shard_seed(seed, 1 << 32);
    let cal = GlitchCalibration::run(&n, &prog, &ports, cal_ops, cal_seed);
    let (blocks, default_factor, event_factor) = mixed_factors(&cal);

    let mut start = JsonObject::new();
    start
        .field_str("event", "start")
        .field_str("mode", "compiled")
        .field_u64("ops", ops)
        .field_u64("window", window)
        .field_u64("seed", seed)
        .field_u64("lanes", LANES as u64)
        .field_u64("cal_ops", cal_ops as u64)
        .field_f64("glitch_inflation", default_factor)
        .field_u64("cells", n.cell_count() as u64)
        .field_u64("nets", n.net_count() as u64)
        .field_f64("area_um2", n.area_um2())
        .field_f64("max_freq_mhz", sta.max_freq_mhz());
    println!("{}", start.finish());

    let mut gen = OperandGen::new(seed);
    let mut sim = CompiledSim::new(&prog);
    let width = (ops.min(LANES as u64)).max(1) as usize;
    let mut counts = [0u64; 4];
    // Pipeline fill (unmeasured), mixed formats per lane like the
    // event-driven stream.
    let drive = |sim: &mut CompiledSim<'_>,
                 gen: &mut OperandGen,
                 counts: &mut [u64; 4],
                 done: u64,
                 nn: usize| {
        for lane in 0..nn {
            let slot = ((done + lane as u64) % Format::ALL.len() as u64) as usize;
            let f = Format::ALL[slot];
            let op = gen.operation(f);
            sim.set_bus_lane(&ports.frmt, lane, u128::from(f.encoding()));
            sim.set_bus_lane(&ports.xa, lane, op.xa as u128);
            sim.set_bus_lane(&ports.yb, lane, op.yb as u128);
            counts[slot] += 1;
        }
    };
    for _ in 0..ports.latency {
        let mut warm = [0u64; 4];
        drive(&mut sim, &mut gen, &mut warm, 0, width);
        sim.step_cycle();
    }
    sim.enable_activity(width);
    // Clock accounting is one edge per measured op (each active lane is
    // an independent time-slice of the same machine), so the tracer is
    // fed `done` for both cycles and ops.
    let mut trace = LivePowerTrace::from_counts(&n, &vec![0; n.net_count()], 0)
        .with_scale(default_factor)
        .with_gauge(registry.gauge("observe.pj_per_op.window"));
    let ops_counter = registry.counter("observe.ops");
    let mut active = width;
    let mut done = 0u64;
    let mut next_window = window;
    while done < ops {
        let nn = (ops - done).min(width as u64) as usize;
        if nn != active {
            sim.set_active_lanes(nn);
            active = nn;
        }
        drive(&mut sim, &mut gen, &mut counts, done, nn);
        sim.step_cycle();
        done += nn as u64;
        ops_counter.add(nn as u64);
        if done >= next_window || done == ops {
            while next_window <= done {
                next_window += window;
            }
            let sample = trace.sample_counts(sim.toggles(), done, done);
            let mut by_format = JsonObject::new();
            for (slot, f) in Format::ALL.iter().enumerate() {
                by_format.field_u64(f.label(), counts[slot]);
            }
            let mut line = JsonObject::new();
            line.field_str("event", "window")
                .field_u64("ops", done)
                .field_u64("edges", sim.cycles())
                .field_u64("incidents", 0)
                .field_raw("ops_by_format", &by_format.finish());
            if let Some(s) = sample {
                line.field_f64("pj_per_op_window", s.pj_per_op);
            }
            line.field_f64("pj_per_op_mean", trace.mean_pj_per_op());
            println!("{}", line.finish());
        }
    }

    let mut snap = JsonObject::new();
    snap.field_str("event", "snapshot")
        .field_raw("metrics", &registry.snapshot_json());
    println!("{}", snap.finish());

    if let Some(path) = cli::arg_str(args, "--prom") {
        std::fs::write(&path, registry.prometheus()).expect("write prometheus file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli::json_path(args) {
        let p = PowerEstimator::from_toggles_calibrated(
            &n,
            sim.toggles(),
            sim.activity_events(),
            done,
            done,
            &blocks,
            default_factor,
            event_factor,
        );
        let mut report = RunReport::new("observe");
        report
            .param("ops", &ops.to_string())
            .param("window", &window.to_string())
            .param("seed", &seed.to_string())
            .param("mode", "compiled")
            .param("cal_ops", &cal_ops.to_string())
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("mixed_format", &p)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        eprintln!("wrote {}", path.display());
    }
}
