//! Streams JSON-lines telemetry for a mixed-format workload on the
//! self-checking pipelined unit: per-window operation counts and live
//! pJ/op, incident records as they happen, and a final registry
//! snapshot. A single-event upset is scheduled halfway through the run
//! so the incident path is always exercised.
//!
//! Usage: `observe [--ops N] [--window N] [--seed S] [--json <path>]
//! [--prom <path>]` (defaults: 400 ops, window 50).
//!
//! Line shapes (one JSON object per line on stdout):
//!
//! - `{"event":"start", ...}` — run parameters and netlist size;
//! - `{"event":"incident", ...}` — a self-check incident (see
//!   `mfmult::selfcheck::Incident::to_json`);
//! - `{"event":"window", ...}` — op counts per format, cycles, live
//!   window pJ/op and running mean;
//! - `{"event":"snapshot","metrics":{...}}` — final registry snapshot.

use mfm_bench::cli;
use mfm_evalkit::runreport::RunReport;
use mfm_evalkit::workload::OperandGen;
use mfm_gatesim::{LivePowerTrace, Netlist, PowerEstimator, TechLibrary, TimingAnalysis};
use mfm_telemetry::json::JsonObject;
use mfm_telemetry::Registry;
use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
use mfmult::selfcheck::SelfCheckingUnit;
use mfmult::Format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops = cli::arg_value(&args, "--ops", 400);
    let window = cli::arg_value(&args, "--window", 50).max(1);
    let seed = cli::arg_value(&args, "--seed", 2017);

    let registry = Registry::new();
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
    let sta = TimingAnalysis::new(&n).report();
    let mut unit = SelfCheckingUnit::new(&n, ports);
    unit.attach_telemetry(&registry);
    unit.sim_mut().attach_telemetry(&registry, 64);
    let seu_edge = unit.ports().latency + 1;
    let seu_net = unit.ports().chk_p0[0];
    let mut trace = LivePowerTrace::new(&n, &*unit.sim_mut())
        .with_gauge(registry.gauge("observe.pj_per_op.window"));

    let mut start = JsonObject::new();
    start
        .field_str("event", "start")
        .field_u64("ops", ops)
        .field_u64("window", window)
        .field_u64("seed", seed)
        .field_u64("cells", n.cell_count() as u64)
        .field_u64("nets", n.net_count() as u64)
        .field_f64("area_um2", n.area_um2())
        .field_f64("max_freq_mhz", sta.max_freq_mhz());
    println!("{}", start.finish());

    let mut gen = OperandGen::new(seed);
    let mut counts = [0u64; 4];
    let mut incidents_seen = 0usize;
    // Upset an int64 op near the middle of the run: a P0-LSB flip
    // corrupts the delivered product directly (float formats may mask
    // it in rounding).
    let seu_op = (ops / 2) & !3;
    for i in 0..ops {
        let slot = (i % Format::ALL.len() as u64) as usize;
        let op = gen.operation(Format::ALL[slot]);
        if i == seu_op {
            // Flip the P0 LSB across the output-latching edge of the
            // next operation: the checker rejects the result, the retry
            // recovers, and two incident lines appear below.
            unit.schedule_seu(seu_edge, seu_net);
        }
        let _ = unit.execute(op);
        counts[slot] += 1;
        while incidents_seen < unit.incidents().len() {
            println!("{}", unit.incidents()[incidents_seen].to_json());
            incidents_seen += 1;
        }
        let done = i + 1;
        if done.is_multiple_of(window) || done == ops {
            let sample = trace.sample(&*unit.sim_mut(), done);
            let mut by_format = JsonObject::new();
            for (slot, f) in Format::ALL.iter().enumerate() {
                by_format.field_u64(f.label(), counts[slot]);
            }
            let mut line = JsonObject::new();
            line.field_str("event", "window")
                .field_u64("ops", done)
                .field_u64("cycles", unit.sim_mut().cycles())
                .field_u64("incidents", incidents_seen as u64)
                .field_raw("ops_by_format", &by_format.finish());
            if let Some(s) = sample {
                line.field_f64("pj_per_op_window", s.pj_per_op);
            }
            line.field_f64("pj_per_op_mean", trace.mean_pj_per_op());
            println!("{}", line.finish());
        }
    }
    unit.sim_mut().flush_telemetry();

    let mut snap = JsonObject::new();
    snap.field_str("event", "snapshot")
        .field_raw("metrics", &registry.snapshot_json());
    println!("{}", snap.finish());

    if let Some(path) = cli::arg_str(&args, "--prom") {
        std::fs::write(&path, registry.prometheus()).expect("write prometheus file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli::json_path(&args) {
        let cycles = unit.sim_mut().cycles();
        let p = PowerEstimator::from_activity(&n, &*unit.sim_mut(), cycles);
        let mut report = RunReport::new("observe");
        report
            .param("ops", &ops.to_string())
            .param("window", &window.to_string())
            .param("seed", &seed.to_string())
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("mixed_format", &p)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        eprintln!("wrote {}", path.display());
    }
}
