//! Exports the reproduction's netlists as structural Verilog.
//!
//! Usage: `export_verilog [radix16|radix4|radix8|unit|unit_pipelined|reducer|quad] [out.v]`
//!
//! Without an output path the Verilog is printed to stdout.

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_gatesim::export::to_verilog;
use mfm_gatesim::{Netlist, TechLibrary};
use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
use mfmult::quad::build_quad_lane_array;
use mfmult::reduce::build_reducer;
use mfmult::structural::build_unit;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "unit".to_owned());
    let out_path = std::env::args().nth(2);

    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let module = match which.as_str() {
        "radix16" => {
            build_multiplier(&mut n, MultiplierConfig::radix16());
            "mult64_radix16"
        }
        "radix4" => {
            build_multiplier(&mut n, MultiplierConfig::radix4());
            "mult64_radix4"
        }
        "radix8" => {
            build_multiplier(&mut n, MultiplierConfig::radix8());
            "mult64_radix8"
        }
        "unit" => {
            build_unit(&mut n);
            "mfmult_comb"
        }
        "unit_pipelined" => {
            build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
            "mfmult_pipe3"
        }
        "reducer" => {
            build_reducer(&mut n);
            "b64_to_b32_reducer"
        }
        "quad" => {
            build_quad_lane_array(&mut n);
            "quad_b16_array"
        }
        other => {
            eprintln!(
                "unknown design {other}; use radix16|radix4|radix8|unit|unit_pipelined|reducer|quad"
            );
            std::process::exit(2);
        }
    };

    let v = to_verilog(&n, module);
    eprintln!(
        "// {} cells, {} nets, {} DFFs",
        n.cell_count(),
        n.net_count(),
        n.dff_count()
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, v).expect("write verilog");
            eprintln!("wrote {p}");
        }
        None => print!("{v}"),
    }
}
