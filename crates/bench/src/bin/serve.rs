//! Multiplication-as-a-service front-end: binds the TCP request and
//! Prometheus metrics listeners and serves until killed.
//!
//! Usage: `serve [--addr A] [--metrics-addr A] [--units N] [--spares N]
//! [--patrol N] [--pending N] [--queue N] [--tick-micros N]
//! [--deadline-ticks N] [--seed S] [--chaos N] [--byzantine P]
//! [--incident-dir D] [--pipelined]` (defaults: 127.0.0.1:7117
//! requests, 127.0.0.1:7118 metrics, 4 units, 1 hot spare, patrol
//! slices of 8 battery ops, pending cap 256, engine queue 8,
//! 500 µs/tick, 400-tick default deadline, seed 2017, no chaos,
//! incident reports kept in-memory only, combinational build).
//!
//! The metrics listener also serves `/healthz`, `/statusz` and
//! `/tracez`; `--incident-dir D` persists every flight-recorder
//! incident report as `D/incident_<n>.json`.
//!
//! `--chaos N` arms a seeded plan of N fault events (stuck-ats, SEUs,
//! glitch storms, field replacements) injected underneath live traffic,
//! keyed by admitted-request ordinal — the service must keep its
//! zero-escape and no-silent-drop contract while the hardware misbehaves.
//! `--byzantine P` makes P percent of those fault events scrub-clean
//! Byzantine output latches that only the redundancy tier can catch.
//!
//! The process prints the bound addresses on stdout (`listening <addr>` /
//! `metrics <addr>`) so scripts can scrape them, then parks; stop it with
//! a signal.

use mfm_bench::cli;
use mfm_resilient::chaos::ChaosPlanConfig;
use mfm_server::server::{spawn, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" | "--metrics-addr" | "--units" | "--spares" | "--patrol" | "--pending"
            | "--queue" | "--tick-micros" | "--deadline-ticks" | "--seed" | "--chaos"
            | "--byzantine" | "--incident-dir" => {
                it.next();
            }
            "--pipelined" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: serve [--addr A] [--metrics-addr A] \
                     [--units N] [--spares N] [--patrol N] [--pending N] [--queue N] \
                     [--tick-micros N] [--deadline-ticks N] [--seed S] [--chaos N] \
                     [--byzantine P] [--incident-dir D] [--pipelined]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut cfg = ServerConfig {
        addr: cli::arg_str(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7117".to_string()),
        metrics_addr: cli::arg_str(&args, "--metrics-addr")
            .unwrap_or_else(|| "127.0.0.1:7118".to_string()),
        pipelined: cli::has_flag(&args, "--pipelined"),
        incident_dir: cli::arg_str(&args, "--incident-dir").map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    cfg.service.seed = cli::arg_value(&args, "--seed", 2017);
    cfg.service.units = cli::arg_value(&args, "--units", 4) as usize;
    cfg.service.engine.spares = cli::arg_value(&args, "--spares", 1) as usize;
    cfg.service.engine.patrol_slice = cli::arg_value(&args, "--patrol", 8) as usize;
    cfg.service.pending_cap = cli::arg_value(&args, "--pending", 256) as usize;
    cfg.service.engine.queue_depth = cli::arg_value(&args, "--queue", 8) as usize;
    cfg.service.micros_per_tick = cli::arg_value(&args, "--tick-micros", 500);
    cfg.service.default_deadline_ticks = cli::arg_value(&args, "--deadline-ticks", 400);
    let faults = cli::arg_value(&args, "--chaos", 0) as usize;
    if faults > 0 {
        cfg.chaos = Some(ChaosPlanConfig {
            seed: cfg.service.seed ^ 0x00c4_a055,
            units: cfg.service.units,
            ops: 512,
            faults,
            byzantine_fraction: cli::arg_value(&args, "--byzantine", 0).min(100) as f64 / 100.0,
            ..ChaosPlanConfig::default()
        });
    }
    let handle = spawn(cfg);
    println!("listening {}", handle.addr);
    println!("metrics {}", handle.metrics_addr);
    // Park until killed; the listeners run on their own threads.
    loop {
        std::thread::park();
    }
}
