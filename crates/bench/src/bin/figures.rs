//! Structural reports for the paper's figures plus the ablation studies.
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5|fig6|adders|all] [--json <path>]`
//! (default: all).

use mfm_arith::adder::{build_adder, AdderKind};
use mfm_arith::tree::dadda_stage_count;
use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_bench::cli;
use mfm_evalkit::experiments::{activity_sweep, placement_study, sensitivity};
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, TechLibrary, TimingAnalysis};
use mfm_softfloat::paper::speculative_round;
use mfm_telemetry::Registry;
use mfmult::lanes::dual_occupancy;
use mfmult::reduce::build_reducer;
use mfmult::structural::build_unit;

fn fig1() {
    println!("=== Fig. 1: partial product generation ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    build_multiplier(&mut n, MultiplierConfig::radix16());
    let mut t = Table::new(&["block", "area [um2]", "share"]);
    let total = n.area_um2();
    for (b, a) in n.area_by_block() {
        t.row_owned(vec![
            b,
            format!("{a:.0}"),
            format!("{:.0}%", 100.0 * a / total),
        ]);
    }
    println!("{t}");
    println!(
        "PPGEN structure per row bit: one-hot 8:1 mux (4x AOI22 + 2x NAND2 \
         + OR2) followed by the complementing XOR; 17 rows x 67 bits.\n\
         The odd multiples 3X/5X/7X are pre-computed by three CPAs; 2X, 4X, \
         6X, 8X are wiring."
    );
}

fn fig2() {
    println!("=== Fig. 2: radix-16 multiplier block diagram ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    build_multiplier(&mut n, MultiplierConfig::radix16());
    let sta = TimingAnalysis::new(&n).report();
    let mut t = Table::new(&["critical path block", "delay [ps]", "cells"]);
    for s in &sta.segments {
        t.row_owned(vec![
            s.block.clone(),
            format!("{:.0}", s.delay_ps),
            s.cells.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "tree depths: radix-16 reduces height 17 in {} Dadda stages; \
         radix-4 reduces height 33 in {} (the paper's core argument).",
        dadda_stage_count(17),
        dadda_stage_count(33)
    );
}

fn fig3() {
    println!("=== Fig. 3: speculative normalize-and-round ===\n");
    // Demonstrate the speculation on three characteristic products.
    let cases: [(u64, u64, &str); 3] = [
        (1 << 52, 1 << 52, "1.0 x 1.0 (leading at 2p-2)"),
        ((1 << 53) - 1, (1 << 53) - 1, "max x max (leading at 2p-1)"),
        (
            1 << 52,
            (1 << 53) - 1,
            "1.0 x max (all-ones kept, guard clear)",
        ),
    ];
    let mut t = Table::new(&["case", "selected window", "exp +1", "inexact"]);
    for (ma, mb, name) in cases {
        let (_sig, inc, inexact) = speculative_round(53, ma, mb);
        t.row_owned(vec![
            name.to_owned(),
            if inc == 1 {
                "[105:53] (P1)"
            } else {
                "[104:52] (P0)"
            }
            .to_owned(),
            inc.to_string(),
            inexact.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Both roundings are computed by two CPAs with injections R1 = 2^(p-1),\n\
         R0 = 2^(p-2); the P0 adder's MSB selects (see mfm_softfloat::paper\n\
         for why the paper's literal 'P1[105]' select would mis-round)."
    );
}

fn fig4() {
    println!("=== Fig. 4: dual binary32 array arrangement ===\n");
    let occ = dual_occupancy();
    // Render a compact columns-x-height chart, MSB left.
    println!("column occupancy (PP bits; '.' = empty), columns 127..0:");
    let max_h = occ.iter().map(|e| e.0 + e.1 + e.2).max().unwrap_or(0);
    for level in (0..max_h).rev() {
        let mut line = String::with_capacity(128);
        for col in (0..128).rev() {
            let (pp, s, k) = occ[col];
            let total = pp + s + k;
            line.push(if total > level {
                if level < pp {
                    '#'
                } else if level < pp + s {
                    's'
                } else {
                    'k'
                }
            } else {
                '.'
            });
        }
        println!("  {line}");
    }
    println!(
        "\n'#' = partial-product bits, 's' = sign handling (+s / ~s), 'k' = \
         correction constant.\nLower product occupies columns 0..47, upper \
         columns 64..111; carries across\ncolumn 63/64 are killed in dual \
         mode (the seam)."
    );
}

fn fig5() {
    println!("=== Fig. 5: pipelined multi-format unit ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let _ = build_unit(&mut n);
    let sta = TimingAnalysis::new(&n).report();
    let mut t = Table::new(&["block (combinational path)", "delay [ps]"]);
    for s in &sta.segments {
        t.row_owned(vec![s.block.clone(), format!("{:.0}", s.delay_ps)]);
    }
    println!("{t}");
    println!("{}", placement_study());
    println!("paper: cycle 1120 ps (17.5 FO4), 880 MHz max, stage 2 critical.");
}

fn fig6() {
    println!("=== Fig. 6: binary64 -> binary32 reduction hardware ===\n");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let _ = build_reducer(&mut n);
    let sta = TimingAnalysis::new(&n).report();
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["cells".into(), n.cell_count().to_string()]);
    t.row_owned(vec!["area [um2]".into(), format!("{:.0}", n.area_um2())]);
    t.row_owned(vec![
        "area [NAND2]".into(),
        format!("{:.0}", n.area_nand2()),
    ]);
    t.row_owned(vec![
        "delay [ps]".into(),
        format!("{:.0}", sta.critical_delay_ps),
    ]);
    println!("{t}");
    println!(
        "components: 5-bit CPA (constant 11001 = (4096-896)>>7), 12-bit CPA \
         (constant 1011 1000 0001 = 4096-1151), OR tree over M[28:0], 2:1 \
         output mux — as drawn in Fig. 6."
    );
}

fn adders() {
    println!("=== Ablation A3: CPA architecture sweep ===\n");
    for width in [64usize, 128] {
        let mut t = Table::new(&["adder", "delay [ps]", "FO4", "area [um2]", "cells"]);
        for kind in AdderKind::ALL {
            let mut n = Netlist::new(TechLibrary::cmos45lp());
            let a = n.input_bus("a", width);
            let b = n.input_bus("b", width);
            let zero = n.zero();
            let ports = build_adder(&mut n, kind, &a, &b, zero);
            n.output_bus("sum", &ports.sum);
            let sta = TimingAnalysis::new(&n).report();
            t.row_owned(vec![
                format!("{kind:?}"),
                format!("{:.0}", sta.critical_delay_ps),
                format!("{:.1}", sta.critical_delay_ps / 64.0),
                format!("{:.0}", n.area_um2()),
                n.cell_count().to_string(),
            ]);
        }
        println!("{width}-bit adders:");
        println!("{t}");
    }
}

fn trees() {
    println!("=== Ablation: 3:2 (Dadda) vs 4:2 compressor trees ===\n");
    use mfm_arith::TreeStyle;
    use mfm_evalkit::montecarlo::measure_multiplier_combinational;
    let mut t = Table::new(&[
        "radix / tree",
        "delay [ps]",
        "area [um2]",
        "tree cells",
        "mW @100MHz",
    ]);
    for (name, cfg) in [
        ("r16 Dadda 3:2", MultiplierConfig::radix16()),
        (
            "r16 4:2",
            MultiplierConfig::radix16().with_tree(TreeStyle::FourTwo),
        ),
        ("r4 Dadda 3:2", MultiplierConfig::radix4()),
        (
            "r4 4:2",
            MultiplierConfig::radix4().with_tree(TreeStyle::FourTwo),
        ),
    ] {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        let sta = TimingAnalysis::new(&n).report();
        let tree_cells = n
            .cells()
            .iter()
            .filter(|c| n.top_level_block_name(c.block) == "TREE")
            .count();
        let p = measure_multiplier_combinational(&n, &ports, 120, 11);
        t.row_owned(vec![
            name.to_owned(),
            format!("{:.0}", sta.critical_delay_ps),
            format!("{:.0}", n.area_um2()),
            tree_cells.to_string(),
            format!("{:.2}", p.total_mw_at(100.0)),
        ]);
    }
    println!("{t}");
    println!(
        "Both styles are valid per the paper (\"3:2 or 4:2 carry-save \
         adders\"); Dadda\nminimizes compressor count, 4:2 rows give a more \
         regular structure."
    );
}

fn sensitivity_report() {
    println!("=== Ablation: calibration sensitivity of Table V ===\n");
    println!("{}", sensitivity(120, 2017));
    println!(
        "The power/efficiency orderings of Table V must hold across ±30% \
         switching-energy\nand 0.5–2x clock-energy perturbations of the \
         technology model."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Drop `--json <path>` before the positional figure selection.
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            it.next();
        } else {
            positional.push(a.clone());
        }
    }
    let which = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let registry = Registry::new();
    let span = registry.span(&format!("figures.{which}"));
    match which.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "adders" => adders(),
        "trees" => trees(),
        "activity" => {
            println!("=== Ablation: power vs input activity ===\n");
            println!("{}", activity_sweep(200, 2017));
        }
        "sensitivity" => sensitivity_report(),
        "all" => {
            fig1();
            println!();
            fig2();
            println!();
            fig3();
            println!();
            fig4();
            println!();
            fig5();
            println!();
            fig6();
            println!();
            adders();
            println!();
            trees();
            println!();
            sensitivity_report();
        }
        other => {
            eprintln!("unknown figure {other}; use fig1..fig6, adders, trees, sensitivity or all");
            std::process::exit(2);
        }
    }
    drop(span);

    if let Some(path) = cli::json_path(&args) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let _ = build_unit(&mut n);
        let sta = TimingAnalysis::new(&n).report();
        let mut report = RunReport::new("figures");
        report
            .param("which", &which)
            .with_netlist(&n)
            .with_sta(&sta)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
