//! Regenerates Table II: latency, area and critical path of the 64×64
//! radix-4 Booth multiplier. Pass `--radix8` to also build the radix-8
//! ablation the paper argues against implementing.
//!
//! Usage: `table2 [--radix8] [--json <path>]`.

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_bench::{cli, paper_values};
use mfm_evalkit::experiments::{table1, table2, table2_radix8};
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, TechLibrary, TimingAnalysis};
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_r8 = cli::has_flag(&args, "--radix8");
    let registry = Registry::new();
    let r4 = {
        let _span = registry.span("table2");
        table2()
    };
    println!("=== Table II: 64x64 radix-4 multiplier ===\n");
    println!("{r4}");
    println!("--- paper (45nm commercial synthesis) ---");
    for (b, ps) in paper_values::T2_PATH_PS {
        println!("  {b:8} {ps:6.0} ps");
    }
    let (ps, fo4, um2, nand2) = paper_values::T2_TOTALS;
    println!(
        "  TOTAL    {ps:6.0} ps ({fo4:.0} FO4), {um2:.0} um2 ({:.1}K NAND2)",
        nand2 / 1000.0
    );

    let r16 = table1();
    println!("\n=== Radix-4 vs radix-16 (Sec. II-A) ===");
    println!(
        "delay ratio r4/r16: measured {:.2} (paper {:.2}) — radix-4 is faster",
        r4.latency_ps / r16.latency_ps,
        paper_values::T2_TOTALS.0 / paper_values::T1_TOTALS.0
    );
    println!(
        "area  ratio r4/r16: measured {:.2} (paper {:.2}) — radix-4 is larger",
        r4.area_um2_sized / r16.area_um2_sized,
        paper_values::T2_TOTALS.2 / paper_values::T1_TOTALS.2
    );

    if want_r8 {
        let r8 = table2_radix8();
        println!("\n=== Ablation: radix-8 (not built in the paper) ===\n");
        println!("{r8}");
        println!(
            "radix-8 needs the 3X pre-computation like radix-16 but keeps a \
             deeper tree ({} rows vs 17): delay {:.0} ps, sized area {:.0} um2",
            22, r8.latency_ps, r8.area_um2_sized
        );
    }

    if let Some(path) = cli::json_path(&args) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        build_multiplier(&mut n, MultiplierConfig::radix4());
        let sta = TimingAnalysis::new(&n).report();
        let mut report = RunReport::new("table2");
        report
            .param("radix", "4")
            .param("radix8_ablation", if want_r8 { "true" } else { "false" })
            .with_netlist(&n)
            .with_sta(&sta);
        let mut t = Table::new(&["critical path", "delay [ps]"]);
        for (block, ps) in &r4.critical_path {
            t.row_owned(vec![block.clone(), format!("{ps:.1}")]);
        }
        t.row_owned(vec!["TOTAL".into(), format!("{:.1}", r4.latency_ps)]);
        report
            .add_table("Table II critical path", t)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
