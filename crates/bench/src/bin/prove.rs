//! SAT equivalence-proof gate: miters every mode-visible output of a
//! multi-format unit against the bit-blasted `mfm-softfloat` reference
//! and discharges the cones with the in-tree CDCL solver.
//!
//! Usage: `prove [--unit NAME] [--mode NAME] [--outputs PREFIX]...
//!               [--budget N] [--sweep-budget N] [--rounds N] [--no-sweep]
//!               [--max-unknown N] [--json <path>]`
//!
//! - `--unit` is `full` (alias `mfmult`, the default) or `quad`
//!   (alias `mfmult-quad`).
//! - `--mode` restricts to one mode (`int64`, `binary64`,
//!   `dual-binary32`, `quad-binary16`); default: every tied mode the
//!   unit declares.
//! - `--outputs` keeps only output labels starting with the prefix
//!   (repeatable, or comma-separated).
//! - `--budget` is the total conflict budget per output cone
//!   (shared across its case-split branches).
//! - `--max-unknown` fails the gate when more than N cones end
//!   `Unknown` (default: unlimited). Any `Refuted` cone always fails.
//!
//! Exit status: 1 on any refuted cone or on exceeding `--max-unknown`;
//! 0 otherwise.

use mfm_bench::cli;
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_lint::{prove_unit, standard_units, ConeVerdict, Mode, ProveOptions};
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--unit" | "--mode" | "--outputs" | "--budget" | "--sweep-budget" | "--rounds"
            | "--max-unknown" | "--json" => {
                it.next();
            }
            "--no-sweep" => {}
            other => {
                eprintln!(
                    "unknown argument {other}; usage: prove [--unit NAME] [--mode NAME] \
                     [--outputs PREFIX]... [--budget N] [--sweep-budget N] [--rounds N] \
                     [--no-sweep] [--max-unknown N] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    let unit_name = match cli::arg_str(&args, "--unit").as_deref() {
        None | Some("full") | Some("mfmult") => "mfmult",
        Some("quad") | Some("mfmult-quad") => "mfmult-quad",
        Some(other) => {
            eprintln!("unknown unit {other:?}; use full (mfmult) or quad (mfmult-quad)");
            std::process::exit(2);
        }
    };

    let mut opts = ProveOptions {
        budget: cli::arg_value(&args, "--budget", ProveOptions::default().budget),
        sweep_budget: cli::arg_value(
            &args,
            "--sweep-budget",
            ProveOptions::default().sweep_budget,
        ),
        rounds: cli::arg_value(&args, "--rounds", ProveOptions::default().rounds as u64) as usize,
        sweep: !cli::has_flag(&args, "--no-sweep"),
        ..ProveOptions::default()
    };
    if let Some(m) = cli::arg_str(&args, "--mode") {
        match Mode::from_name(&m) {
            Some(mode) => opts.modes = Some(vec![mode]),
            None => {
                eprintln!(
                    "unknown mode {m:?}; use int64, binary64, dual-binary32 or quad-binary16"
                );
                std::process::exit(2);
            }
        }
    }
    let output_filters: Vec<String> = {
        let mut v = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--outputs" {
                if let Some(p) = it.next() {
                    v.extend(p.split(',').map(str::to_owned));
                }
            }
        }
        v
    };
    if !output_filters.is_empty() {
        opts.outputs = Some(output_filters);
    }
    let max_unknown = cli::arg_str(&args, "--max-unknown").map(|s| {
        s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--max-unknown wants a number, got {s:?}");
            std::process::exit(2);
        })
    });

    let registry = Registry::new();
    println!("=== mfm-lint prove: SAT equivalence of {unit_name} against mfm-softfloat ===\n");

    let units = standard_units();
    let unit = units
        .iter()
        .find(|u| u.name == unit_name)
        .expect("standard unit");
    let report = {
        let _span = registry.span("prove");
        prove_unit(unit, &opts)
    };

    let mut t = Table::new(&[
        "mode",
        "cones",
        "proved",
        "structural",
        "refuted",
        "unknown",
        "merges",
        "conflicts",
    ]);
    for m in &report.modes {
        t.row_owned(vec![
            m.mode.clone(),
            m.cones.len().to_string(),
            m.count(ConeVerdict::Proved).to_string(),
            m.structural_proofs.to_string(),
            m.count(ConeVerdict::Refuted).to_string(),
            m.count(ConeVerdict::Unknown).to_string(),
            m.merges_proved.to_string(),
            m.conflicts.to_string(),
        ]);
        registry
            .counter(&format!("prove.conflicts.{}", m.mode))
            .add(m.conflicts);
    }
    println!("{t}");

    for m in &report.modes {
        for c in &m.cones {
            match c.verdict {
                ConeVerdict::Refuted => {
                    let cex = c.cex.as_ref().expect("refuted cone has a counterexample");
                    println!(
                        "REFUTED [{}] {}: xa={:#018x} yb={:#018x} netlist={} reference={} \
                         event={} compiled={} ({})",
                        m.mode,
                        c.output,
                        cex.xa,
                        cex.yb,
                        cex.netlist_value,
                        cex.reference_value,
                        cex.event_value,
                        cex.compiled_value,
                        if cex.confirmed() {
                            "confirmed on both backends"
                        } else {
                            "REPLAY DISAGREES"
                        }
                    );
                }
                ConeVerdict::Unknown => {
                    println!(
                        "unknown [{}] {}: budget exhausted after {} conflicts over {} case(s)",
                        m.mode, c.output, c.conflicts, c.cases
                    );
                }
                ConeVerdict::Proved => {}
            }
        }
    }
    println!(
        "\ntotals: {} proved, {} refuted, {} unknown",
        report.proved(),
        report.refuted(),
        report.unknown()
    );

    if let Some(path) = cli::json_path(&args) {
        let mut run = RunReport::new("prove");
        run.param("unit", &report.unit)
            .param("proved", &report.proved().to_string())
            .param("refuted", &report.refuted().to_string())
            .param("unknown", &report.unknown().to_string());
        run.add_section("prove", &report.to_json());
        run.with_telemetry(&registry);
        run.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }

    if report.refuted() > 0 {
        println!("prove gate FAILED: {} refuted cone(s)", report.refuted());
        std::process::exit(1);
    }
    if let Some(max) = max_unknown {
        if report.unknown() > max {
            println!(
                "prove gate FAILED: {} unknown cone(s), only {max} allowed",
                report.unknown()
            );
            std::process::exit(1);
        }
    }
    println!("prove gate PASSED: every checked cone proved (within the unknown allowance)");
}
