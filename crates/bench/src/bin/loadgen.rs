//! Open-loop load generator and contract verifier for the
//! multiplication service.
//!
//! Usage: `loadgen [--addr A] [--requests N] [--conns N] [--slow N]
//! [--garbage N] [--seed S] [--mean-gap MICROS] [--deadline MICROS]
//! [--critical N] [--statusz A] [--json <path>]` (defaults:
//! 127.0.0.1:7117, 512 requests over 4 connections, 1 slow client,
//! 2 adversarial-frame connections, seed 2017, 200 µs mean gap with
//! bursts, 0 = server-default deadline, no critical requests, no
//! statusz scrape).
//!
//! `--critical N` marks every N-th request with the wire-v3 `critical`
//! flag (server-side TMR voting); `--statusz A` scrapes the server's
//! `/statusz` redundancy counters from metrics address `A` after the
//! run, folding vote/hedge/patrol overhead into the report and JSON.
//!
//! Replays a seeded mixed-format arrival schedule against a running
//! `serve` instance, verifies **every** `Ok` bit-for-bit against the
//! softfloat reference, audits that every sent request got a typed
//! response, and that every adversarial frame got a typed `Malformed`.
//! Exits 1 if the service contract does not hold.

use mfm_bench::cli;
use mfm_server::loadgen::{run, LoadgenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" | "--requests" | "--conns" | "--slow" | "--garbage" | "--seed"
            | "--mean-gap" | "--deadline" | "--critical" | "--statusz" | "--json" => {
                it.next();
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: loadgen [--addr A] [--requests N] \
                     [--conns N] [--slow N] [--garbage N] [--seed S] [--mean-gap MICROS] \
                     [--deadline MICROS] [--critical N] [--statusz A] [--json <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut cfg = LoadgenConfig {
        addr: cli::arg_str(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7117".to_string()),
        seed: cli::arg_value(&args, "--seed", 2017),
        requests: cli::arg_value(&args, "--requests", 512),
        conns: cli::arg_value(&args, "--conns", 4) as usize,
        slow_conns: cli::arg_value(&args, "--slow", 1) as usize,
        garbage_conns: cli::arg_value(&args, "--garbage", 2) as usize,
        deadline_micros: cli::arg_value(&args, "--deadline", 0) as u32,
        critical_every: cli::arg_value(&args, "--critical", 0),
        statusz_addr: cli::arg_str(&args, "--statusz"),
        ..LoadgenConfig::default()
    };
    cfg.arrivals.seed = cfg.seed;
    cfg.arrivals.mean_gap_micros = cli::arg_value(&args, "--mean-gap", 200) as f64;

    println!("=== Service load run: open-loop mixed-format arrivals ===\n");
    let report = run(&cfg);
    println!(
        "sent {} | ok {} | overloaded {} | deadline-exceeded {} | unanswered {}",
        report.sent, report.ok, report.overloaded, report.deadline_exceeded, report.unanswered
    );
    println!(
        "garbage frames: {} sent, {} answered with typed Malformed",
        report.garbage_sent, report.garbage_acked
    );
    println!(
        "throughput {:.0} ops/s | shed rate {:.4} | latency p50 {} µs, p90 {} µs, p99 {} µs",
        report.ops_per_sec(),
        report.shed_rate(),
        report.p50_micros,
        report.p90_micros,
        report.p99_micros
    );
    println!(
        "phase split (Ok): queue p50 {} / p99 {} µs | exec p50 {} / p99 {} µs | transport p50 {} / p99 {} µs",
        report.phases.queue.p50,
        report.phases.queue.p99,
        report.phases.exec.p50,
        report.phases.exec.p99,
        report.phases.transport.p50,
        report.phases.transport.p99
    );
    if let Some(r) = report.redundancy {
        println!(
            "redundancy: {} votes ({} mismatched) | {} DMR batches, {} shadows | \
             {} masked | {} promotions | patrol {}/{} slices failed",
            r.votes,
            r.vote_mismatches,
            r.dmr_batches,
            r.dmr_shadows,
            r.masked,
            r.promotions,
            r.patrol_failures,
            r.patrol_slices
        );
    }
    println!(
        "zero escapes: {}",
        if report.escapes == 0 {
            "PASS — every Ok matched the softfloat reference bit-for-bit".to_string()
        } else {
            format!(
                "FAIL — {} wrong answer(s) escaped to a client",
                report.escapes
            )
        }
    );

    if let Some(path) = cli::json_path(&args) {
        std::fs::write(&path, report.to_json(&cfg)).expect("write JSON report");
        println!("wrote {}", path.display());
    }

    if !report.contract_holds() {
        eprintln!("service contract VIOLATED");
        std::process::exit(1);
    }
    println!("service contract holds: no silent drops, no escapes");
}
