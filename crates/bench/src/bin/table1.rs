//! Regenerates Table I: latency, area and critical path of the 64×64
//! radix-16 multiplier.
//!
//! Usage: `table1 [--json <path>]`.

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_bench::{cli, paper_values};
use mfm_evalkit::experiments::table1;
use mfm_evalkit::runreport::RunReport;
use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, TechLibrary, TimingAnalysis};
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = Registry::new();
    let r = {
        let _span = registry.span("table1");
        table1()
    };
    println!("=== Table I: 64x64 radix-16 multiplier ===\n");
    println!("{r}");
    println!("--- paper (45nm commercial synthesis) ---");
    for (b, ps) in paper_values::T1_PATH_PS {
        println!("  {b:8} {ps:6.0} ps");
    }
    let (ps, fo4, um2, nand2) = paper_values::T1_TOTALS;
    println!(
        "  TOTAL    {ps:6.0} ps ({fo4:.0} FO4), {um2:.0} um2 ({:.1}K NAND2)",
        nand2 / 1000.0
    );
    println!(
        "\nshape check: measured {:.0} ps ({:.1} FO4), sized area {:.0} um2 ({:.1}K NAND2)",
        r.latency_ps,
        r.latency_fo4,
        r.area_um2_sized,
        r.area_nand2 / 1000.0
    );

    if let Some(path) = cli::json_path(&args) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        build_multiplier(&mut n, MultiplierConfig::radix16());
        let sta = TimingAnalysis::new(&n).report();
        let mut report = RunReport::new("table1");
        report.param("radix", "16").with_netlist(&n).with_sta(&sta);
        let mut t = Table::new(&["critical path", "delay [ps]"]);
        for (block, ps) in &r.critical_path {
            t.row_owned(vec![block.clone(), format!("{ps:.1}")]);
        }
        t.row_owned(vec!["TOTAL".into(), format!("{:.1}", r.latency_ps)]);
        report
            .add_table("Table I critical path", t)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
