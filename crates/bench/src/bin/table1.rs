//! Regenerates Table I: latency, area and critical path of the 64×64
//! radix-16 multiplier.

use mfm_bench::paper_values;
use mfm_evalkit::experiments::table1;

fn main() {
    let r = table1();
    println!("=== Table I: 64x64 radix-16 multiplier ===\n");
    println!("{r}");
    println!("--- paper (45nm commercial synthesis) ---");
    for (b, ps) in paper_values::T1_PATH_PS {
        println!("  {b:8} {ps:6.0} ps");
    }
    let (ps, fo4, um2, nand2) = paper_values::T1_TOTALS;
    println!(
        "  TOTAL    {ps:6.0} ps ({fo4:.0} FO4), {um2:.0} um2 ({:.1}K NAND2)",
        nand2 / 1000.0
    );
    println!(
        "\nshape check: measured {:.0} ps ({:.1} FO4), sized area {:.0} um2 ({:.1}K NAND2)",
        r.latency_ps,
        r.latency_fo4,
        r.area_um2_sized,
        r.area_nand2 / 1000.0
    );
}
