//! Power estimator spot-check: per-block energy of the standalone
//! radix-16 vs radix-4 multipliers (event-driven), then the
//! multi-format unit through both estimators — event-driven reference
//! vs compiled zero-delay activity engine — with the per-format
//! glitch-inflation factors the calibration derives from the gap.

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_evalkit::calibrate::GlitchCalibration;
use mfm_evalkit::montecarlo::measure_multiplier_combinational;
use mfm_gatesim::{CompiledNetlist, Netlist, TechLibrary};
use mfmult::structural::build_unit;

fn main() {
    for (name, cfg) in [
        ("r16", MultiplierConfig::radix16()),
        ("r4", MultiplierConfig::radix4()),
    ] {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        let p = measure_multiplier_combinational(&n, &ports, 150, 2017);
        println!(
            "{name}: {:.1} pJ/op, {:.0} transitions/op",
            p.energy_pj_per_op(),
            p.transitions_per_op
        );
        for (b, e) in &p.per_block_pj {
            println!("   {b:8} {e:7.2} pJ");
        }
    }

    println!("\nunit: event-driven vs compiled zero-delay (glitch-inflation calibration)");
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_unit(&mut n);
    let prog = CompiledNetlist::compile(&n).expect("unit netlist is acyclic");
    let cal = GlitchCalibration::run(&n, &prog, &ports, 40, 2017);
    for fc in &cal.formats {
        println!(
            "   {:18} event {:7.2} pJ/op  zero-delay {:7.2} pJ/op  inflation {:.3}",
            fc.format.label(),
            fc.event_driven_pj_per_op,
            fc.zero_delay_pj_per_op,
            fc.default_factor
        );
    }
    if let Some(fc) = cal.formats.first() {
        let mut blocks = fc.per_block.clone();
        blocks.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("   most glitch-prone blocks ({}):", fc.format.label());
        for (block, factor) in blocks.iter().take(3) {
            println!("      {block:8} x{factor:.3}");
        }
    }
}
