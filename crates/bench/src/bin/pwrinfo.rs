use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_evalkit::montecarlo::measure_multiplier_combinational;
use mfm_gatesim::{Netlist, TechLibrary};
fn main() {
    for (name, cfg) in [
        ("r16", MultiplierConfig::radix16()),
        ("r4", MultiplierConfig::radix4()),
    ] {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        let p = measure_multiplier_combinational(&n, &ports, 150, 2017);
        println!(
            "{name}: {:.1} pJ/op, {:.0} transitions/op",
            p.energy_pj_per_op(),
            p.transitions_per_op
        );
        for (b, e) in &p.per_block_pj {
            println!("   {b:8} {e:7.2} pJ");
        }
    }
}
