//! Regenerates Table III: power dissipation at 100 MHz for the radix-4
//! and radix-16 multipliers, combinational and two-stage pipelined.
//!
//! Usage: `table3 [--vectors N] [--seed S]` (defaults: 400 vectors).

use mfm_bench::paper_values;
use mfm_evalkit::experiments::table3;

fn arg_value(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let vectors = arg_value("--vectors", 400) as usize;
    let seed = arg_value("--seed", 2017);
    let t = table3(vectors, seed);
    println!("=== Table III: power at 100 MHz, radix-4 vs radix-16 ===\n");
    println!("{t}");
    println!("--- paper ---");
    for (name, r4, r16, ratio) in paper_values::T3 {
        println!("  {name:20} r4 {r4:5.1} mW   r16 {r16:5.1} mW   ratio {ratio:.2}");
    }
    let comb = &t.rows[0];
    let pipe = &t.rows[1];
    println!("\nshape check:");
    println!(
        "  pipelining favours radix-16 (glitch suppression): ratio {:.2} -> {:.2} (paper 0.94 -> 0.89)",
        comb.3, pipe.3
    );
    println!(
        "  pipelined radix-16 wins: ratio {:.2} < 1 (paper 0.89)",
        pipe.3
    );
    if comb.3 >= 1.0 {
        println!(
            "  note: the combinational ratio ({:.2}) lands slightly above 1 in this \
             model (paper: 0.94);\n  see EXPERIMENTS.md — our event-driven glitch \
             model penalizes the radix-16 CPA/PPGEN more\n  than the authors' flow, \
             while the pipelined comparison (the paper's actual design point)\n  \
             reproduces with margin.",
            comb.3
        );
    }
}
