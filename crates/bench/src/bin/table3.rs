//! Regenerates Table III: power dissipation at 100 MHz for the radix-4
//! and radix-16 multipliers, combinational and two-stage pipelined.
//!
//! Usage: `table3 [--vectors N] [--seed S] [--json <path>]`
//! (defaults: 400 vectors).

use mfm_arith::{build_multiplier, MultiplierConfig};
use mfm_bench::{cli, paper_values};
use mfm_evalkit::experiments::table3;
use mfm_evalkit::runreport::RunReport;
use mfm_evalkit::workload::OperandGen;
use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, PowerEstimator, Simulator, TechLibrary, TimingAnalysis};
use mfm_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let vectors = cli::arg_value(&args, "--vectors", 400) as usize;
    let seed = cli::arg_value(&args, "--seed", 2017);
    let registry = Registry::new();
    let t = {
        let _span = registry.span("table3");
        table3(vectors, seed)
    };
    println!("=== Table III: power at 100 MHz, radix-4 vs radix-16 ===\n");
    println!("{t}");
    println!("--- paper ---");
    for (name, r4, r16, ratio) in paper_values::T3 {
        println!("  {name:20} r4 {r4:5.1} mW   r16 {r16:5.1} mW   ratio {ratio:.2}");
    }
    let comb = &t.rows[0];
    let pipe = &t.rows[1];
    println!("\nshape check:");
    println!(
        "  pipelining favours radix-16 (glitch suppression): ratio {:.2} -> {:.2} (paper 0.94 -> 0.89)",
        comb.3, pipe.3
    );
    println!(
        "  pipelined radix-16 wins: ratio {:.2} < 1 (paper 0.89)",
        pipe.3
    );
    if comb.3 >= 1.0 {
        println!(
            "  note: the combinational ratio ({:.2}) lands slightly above 1 in this \
             model (paper: 0.94);\n  see EXPERIMENTS.md — our event-driven glitch \
             model penalizes the radix-16 CPA/PPGEN more\n  than the authors' flow, \
             while the pipelined comparison (the paper's actual design point)\n  \
             reproduces with margin.",
            comb.3
        );
    }

    if let Some(path) = cli::json_path(&args) {
        // Re-measure the paper's design point (pipelined radix-16) with
        // the simulator instrumented, so the JSON carries a full power
        // breakdown plus the per-block toggle telemetry of the run.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, MultiplierConfig::radix16().pipelined());
        let sta = TimingAnalysis::new(&n).report();
        let mut sim = Simulator::new(&n);
        sim.attach_telemetry(&registry, 64);
        let mut gen = OperandGen::new(seed);
        for _ in 0..ports.latency {
            let (x, y) = gen.int64_pair();
            sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
        }
        sim.reset_activity();
        for _ in 0..vectors {
            let (x, y) = gen.int64_pair();
            sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
        }
        sim.flush_telemetry();
        let p = PowerEstimator::from_activity(&n, &sim, sim.cycles());

        let mut report = RunReport::new("table3");
        report
            .param("vectors", &vectors.to_string())
            .param("seed", &seed.to_string())
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("radix16_pipelined", &p);
        let mut tbl = Table::new(&["config", "radix-4 [mW]", "radix-16 [mW]", "ratio"]);
        for (name, r4, r16, ratio) in &t.rows {
            tbl.row_owned(vec![
                name.clone(),
                format!("{r4:.2}"),
                format!("{r16:.2}"),
                format!("{ratio:.2}"),
            ]);
        }
        report
            .add_table("Table III power at 100 MHz", tbl)
            .with_telemetry(&registry);
        report.write(&path).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
