//! Benchmark harness for the SOCC'17 multi-format multiplier reproduction.
//!
//! Binaries (run with `cargo run --release -p mfm-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — radix-16 64×64 latency/area/critical path |
//! | `table2` | Table II — radix-4 Booth (plus `--radix8` ablation) |
//! | `table3` | Table III — power @100 MHz, combinational vs pipelined |
//! | `table4` | Table IV — IEEE 754-2008 binary format parameters |
//! | `table5` | Table V — per-format power/throughput/efficiency |
//! | `figures` | Fig. 1–6 structural reports + ablation studies |
//!
//! Criterion benches (`cargo bench -p mfm-bench`): software throughput of
//! the functional unit per format, the softfloat reference, gate-level
//! simulation speed, and netlist construction/STA cost.
//!
//! Each table binary prints the measured values next to the paper's
//! published numbers so the reproduced *shape* can be checked at a glance
//! (absolute values differ — our substrate is a calibrated gate-level
//! model, not the authors' synthesis flow; see EXPERIMENTS.md).

/// Paper-published reference values, used by the binaries to print
/// paper-vs-measured comparisons.
pub mod paper_values {
    /// Table I: radix-16 critical path (pre-comp, PPGEN, TREE, CPA) in ps.
    pub const T1_PATH_PS: [(&str, f64); 4] = [
        ("precomp", 578.0),
        ("PPGEN", 258.0),
        ("TREE", 571.0),
        ("CPA", 445.0),
    ];
    /// Table I: total latency ps / FO4 / area µm² / NAND2.
    pub const T1_TOTALS: (f64, f64, f64, f64) = (1852.0, 29.0, 50_562.0, 47_800.0);
    /// Table II: radix-4 critical path in ps.
    pub const T2_PATH_PS: [(&str, f64); 3] =
        [("PPGEN", 313.0), ("TREE", 739.0), ("CPA", 454.0)];
    /// Table II totals.
    pub const T2_TOTALS: (f64, f64, f64, f64) = (1506.0, 23.0, 60_204.0, 56_900.0);
    /// Table III: (config, radix-4 mW, radix-16 mW, ratio).
    pub const T3: [(&str, f64, f64, f64); 2] = [
        ("Combinational", 12.3, 11.5, 0.94),
        ("two-stage pipelined", 8.7, 7.7, 0.89),
    ];
    /// Table V rows: (format, mW@100MHz, mW@880MHz, GFLOPS, GFLOPS/W).
    pub const T5: [(&str, f64, f64, f64, f64); 4] = [
        ("int64", 8.90, 78.32, 0.88, 11.24),
        ("binary64", 7.20, 63.36, 0.88, 13.89),
        ("binary32 (dual)", 5.17, 45.50, 1.76, 38.68),
        ("binary32 (single)", 3.77, 33.18, 0.88, 26.53),
    ];
    /// Pipelined unit: paper's critical path ps and max frequency MHz.
    pub const PIPE: (f64, f64) = (1120.0, 880.0);
}
