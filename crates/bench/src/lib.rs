//! Benchmark harness for the SOCC'17 multi-format multiplier reproduction.
//!
//! Binaries (run with `cargo run --release -p mfm-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — radix-16 64×64 latency/area/critical path |
//! | `table2` | Table II — radix-4 Booth (plus `--radix8` ablation) |
//! | `table3` | Table III — power @100 MHz, combinational vs pipelined |
//! | `table4` | Table IV — IEEE 754-2008 binary format parameters |
//! | `table5` | Table V — per-format power/throughput/efficiency |
//! | `figures` | Fig. 1–6 structural reports + ablation studies |
//! | `faults` | fault-injection campaign + residue-check coverage table |
//!
//! Microbenches (`cargo bench -p mfm-bench`, see [`microbench`]): software
//! throughput of the functional unit per format, the softfloat reference,
//! gate-level simulation speed, and netlist construction/STA cost.
//!
//! Each table binary prints the measured values next to the paper's
//! published numbers so the reproduced *shape* can be checked at a glance
//! (absolute values differ — our substrate is a calibrated gate-level
//! model, not the authors' synthesis flow; see EXPERIMENTS.md).

/// Minimal wall-clock benchmark harness.
///
/// The workspace builds in fully offline environments, so instead of an
/// external benchmark framework the `benches/` targets (all
/// `harness = false`) use this module: adaptive batch sizing, a warm-up
/// pass, best-of-N batch timing and a plain-text result table.
pub mod microbench {
    use mfm_gatesim::report::Table;
    use std::time::{Duration, Instant};

    /// Target wall time per measured batch.
    const BATCH: Duration = Duration::from_millis(10);
    /// Measured batches per benchmark (the minimum is reported).
    const ROUNDS: usize = 5;

    /// A named group of benchmarks printed as one table.
    pub struct Group {
        title: String,
        rows: Vec<(String, f64)>,
    }

    impl Group {
        /// Starts a group with a title.
        pub fn new(title: &str) -> Self {
            Group {
                title: title.to_string(),
                rows: Vec::new(),
            }
        }

        /// Measures `f` and records nanoseconds per call under `label`.
        pub fn bench<R, F: FnMut() -> R>(&mut self, label: &str, f: F) {
            let ns = time_ns_per_call(f);
            self.rows.push((label.to_string(), ns));
        }

        /// Prints the result table.
        pub fn finish(self) {
            let mut t = Table::new(&["benchmark", "ns/op", "ops/s"]);
            for (label, ns) in &self.rows {
                t.row_owned(vec![
                    label.clone(),
                    format!("{ns:.1}"),
                    format!("{:.2e}", 1e9 / ns),
                ]);
            }
            println!("{}\n{t}", self.title);
        }
    }

    /// Times one closure: warm-up, pick a batch size that runs for about
    /// [`BATCH`], then report the fastest of [`ROUNDS`] batches.
    pub fn time_ns_per_call<R, F: FnMut() -> R>(mut f: F) -> f64 {
        // Warm-up and initial calibration.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= BATCH || iters > 1 << 30 {
                break;
            }
            // Aim directly for the batch target once we have a signal.
            iters = if dt < Duration::from_micros(100) {
                iters * 16
            } else {
                let per = dt.as_nanos().max(1) / iters as u128;
                ((BATCH.as_nanos() / per).max(1) as u64).max(iters + 1)
            };
        }
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        best
    }
}

/// Paper-published reference values, used by the binaries to print
/// paper-vs-measured comparisons.
pub mod paper_values {
    /// Table I: radix-16 critical path (pre-comp, PPGEN, TREE, CPA) in ps.
    pub const T1_PATH_PS: [(&str, f64); 4] = [
        ("precomp", 578.0),
        ("PPGEN", 258.0),
        ("TREE", 571.0),
        ("CPA", 445.0),
    ];
    /// Table I: total latency ps / FO4 / area µm² / NAND2.
    pub const T1_TOTALS: (f64, f64, f64, f64) = (1852.0, 29.0, 50_562.0, 47_800.0);
    /// Table II: radix-4 critical path in ps.
    pub const T2_PATH_PS: [(&str, f64); 3] = [("PPGEN", 313.0), ("TREE", 739.0), ("CPA", 454.0)];
    /// Table II totals.
    pub const T2_TOTALS: (f64, f64, f64, f64) = (1506.0, 23.0, 60_204.0, 56_900.0);
    /// Table III: (config, radix-4 mW, radix-16 mW, ratio).
    pub const T3: [(&str, f64, f64, f64); 2] = [
        ("Combinational", 12.3, 11.5, 0.94),
        ("two-stage pipelined", 8.7, 7.7, 0.89),
    ];
    /// Table V rows: (format, mW@100MHz, mW@880MHz, GFLOPS, GFLOPS/W).
    pub const T5: [(&str, f64, f64, f64, f64); 4] = [
        ("int64", 8.90, 78.32, 0.88, 11.24),
        ("binary64", 7.20, 63.36, 0.88, 13.89),
        ("binary32 (dual)", 5.17, 45.50, 1.76, 38.68),
        ("binary32 (single)", 3.77, 33.18, 0.88, 26.53),
    ];
    /// Pipelined unit: paper's critical path ps and max frequency MHz.
    pub const PIPE: (f64, f64) = (1120.0, 880.0);
}
