//! Benchmark harness for the SOCC'17 multi-format multiplier reproduction.
//!
//! Binaries (run with `cargo run --release -p mfm-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — radix-16 64×64 latency/area/critical path |
//! | `table2` | Table II — radix-4 Booth (plus `--radix8` ablation) |
//! | `table3` | Table III — power @100 MHz, combinational vs pipelined |
//! | `table4` | Table IV — IEEE 754-2008 binary format parameters |
//! | `table5` | Table V — per-format power/throughput/efficiency |
//! | `figures` | Fig. 1–6 structural reports + ablation studies |
//! | `faults` | fault-injection campaign + residue-check coverage table |
//! | `chaos` | seeded chaos run over the resilient pool engine (zero-escape + capacity-recovery invariants) |
//! | `serve` | multiplication-as-a-service TCP front-end + Prometheus `/metrics` (optional chaos underneath) |
//! | `loadgen` | open-loop load generator/verifier against `serve` (bursts, slow clients, adversarial frames) |
//!
//! Microbenches (`cargo bench -p mfm-bench`, see [`microbench`]): software
//! throughput of the functional unit per format, the softfloat reference,
//! gate-level simulation speed, and netlist construction/STA cost.
//!
//! Each table binary prints the measured values next to the paper's
//! published numbers so the reproduced *shape* can be checked at a glance
//! (absolute values differ — our substrate is a calibrated gate-level
//! model, not the authors' synthesis flow; see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Shared command-line parsing for the table/figure/faults binaries.
///
/// Every binary takes `--json <path>` (write a
/// [`mfm_evalkit::runreport::RunReport`] there) next to its own numeric
/// flags; this module keeps the parsing in one place.
pub mod cli {
    /// The value following `name`, parsed, or `default` when absent.
    /// Exits with status 2 on an unparseable value (a typo should not
    /// silently run the default configuration).
    pub fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
        match args.iter().position(|a| a == name) {
            None => default,
            Some(i) => match args.get(i + 1).map(|v| v.parse()) {
                Some(Ok(v)) => v,
                _ => {
                    eprintln!("{name} needs a numeric value");
                    std::process::exit(2);
                }
            },
        }
    }

    /// The string value following `name`, if present. Exits with status
    /// 2 when the flag is given without a value.
    pub fn arg_str(args: &[String], name: &str) -> Option<String> {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        })
    }

    /// Whether the bare flag `name` is present.
    pub fn has_flag(args: &[String], name: &str) -> bool {
        args.iter().any(|a| a == name)
    }

    /// The `--json <path>` destination, if requested.
    pub fn json_path(args: &[String]) -> Option<std::path::PathBuf> {
        arg_str(args, "--json").map(std::path::PathBuf::from)
    }
}

/// Minimal wall-clock benchmark harness.
///
/// The workspace builds in fully offline environments, so instead of an
/// external benchmark framework the `benches/` targets (all
/// `harness = false`) use this module: adaptive batch sizing, a warm-up
/// pass, best-of-N batch timing and a plain-text result table.
pub mod microbench {
    use mfm_gatesim::report::Table;
    use mfm_telemetry::json::{self, JsonObject};
    use std::time::{Duration, Instant};

    /// Target wall time per measured batch.
    const BATCH: Duration = Duration::from_millis(10);
    /// Measured batches per benchmark (the minimum is reported).
    const ROUNDS: usize = 5;

    /// A named group of benchmarks printed as one table.
    pub struct Group {
        title: String,
        rows: Vec<(String, f64)>,
    }

    impl Group {
        /// Starts a group with a title.
        pub fn new(title: &str) -> Self {
            Group {
                title: title.to_string(),
                rows: Vec::new(),
            }
        }

        /// Measures `f` and records nanoseconds per call under `label`.
        pub fn bench<R, F: FnMut() -> R>(&mut self, label: &str, f: F) {
            let ns = time_ns_per_call(f);
            self.rows.push((label.to_string(), ns));
        }

        /// Prints the result table.
        pub fn finish(self) {
            let _ = self.finish_rows();
        }

        /// Prints the result table and records the group into `report`,
        /// so the run ends up in `results/bench_report.json`.
        pub fn finish_report(self, report: &mut BenchReport) {
            let title = self.title.clone();
            let rows = self.finish_rows();
            report.groups.push((title, rows));
        }

        fn finish_rows(self) -> Vec<(String, f64)> {
            let mut t = Table::new(&["benchmark", "ns/op", "ops/s"]);
            for (label, ns) in &self.rows {
                t.row_owned(vec![
                    label.clone(),
                    format!("{ns:.1}"),
                    format!("{:.2e}", 1e9 / ns),
                ]);
            }
            println!("{}\n{t}", self.title);
            self.rows
        }
    }

    /// Collects the groups of one bench target and writes (or merges
    /// into) a machine-readable JSON report.
    ///
    /// The document has the shape
    /// `{"benches":{"<target>":{"<group>":{"<label>":ns_per_op,…},…},…}}`.
    /// Each target replaces only its own key on write, so running the
    /// full `cargo bench -p mfm-bench` suite accumulates all four
    /// targets in one file. The default path is
    /// `results/bench_report.json`; the `MFM_BENCH_JSON` environment
    /// variable overrides it.
    pub struct BenchReport {
        name: String,
        groups: Vec<(String, Vec<(String, f64)>)>,
    }

    impl BenchReport {
        /// Starts an empty report for the named bench target.
        pub fn new(name: &str) -> Self {
            BenchReport {
                name: name.to_string(),
                groups: Vec::new(),
            }
        }

        /// This target's groups as one JSON object.
        fn to_json(&self) -> String {
            let mut o = JsonObject::new();
            for (title, rows) in &self.groups {
                let mut g = JsonObject::new();
                for (label, ns) in rows {
                    g.field_f64(label, *ns);
                }
                o.field_raw(title, &g.finish());
            }
            o.finish()
        }

        /// The report path: `$MFM_BENCH_JSON` or
        /// `results/bench_report.json` at the workspace root (cargo
        /// runs bench harnesses with the package as working directory,
        /// so a relative path would land inside `crates/bench`).
        pub fn default_path() -> std::path::PathBuf {
            std::env::var_os("MFM_BENCH_JSON")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                        .join("../../results/bench_report.json")
                })
        }

        /// Writes the report to [`BenchReport::default_path`], merging
        /// with any other targets' results already in the file (an
        /// unreadable or malformed file is overwritten).
        pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
            let path = Self::default_path();
            let mut targets: std::collections::BTreeMap<String, String> =
                std::collections::BTreeMap::new();
            if let Ok(existing) = std::fs::read_to_string(&path) {
                if let Ok(entries) = json::object_entries(&existing) {
                    for (k, v) in entries {
                        if k == "benches" {
                            if let Ok(benches) = json::object_entries(&v) {
                                targets.extend(benches);
                            }
                        }
                    }
                }
            }
            targets.insert(self.name.clone(), self.to_json());
            let mut benches = JsonObject::new();
            for (k, v) in &targets {
                benches.field_raw(k, v);
            }
            let mut root = JsonObject::new();
            root.field_raw("benches", &benches.finish());
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            std::fs::write(&path, root.finish() + "\n")?;
            Ok(path)
        }
    }

    /// Times one closure: warm-up, pick a batch size that runs for about
    /// [`BATCH`], then report the fastest of [`ROUNDS`] batches.
    pub fn time_ns_per_call<R, F: FnMut() -> R>(mut f: F) -> f64 {
        // Warm-up and initial calibration.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= BATCH || iters > 1 << 30 {
                break;
            }
            // Aim directly for the batch target once we have a signal.
            iters = if dt < Duration::from_micros(100) {
                iters * 16
            } else {
                let per = dt.as_nanos().max(1) / iters as u128;
                ((BATCH.as_nanos() / per).max(1) as u64).max(iters + 1)
            };
        }
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        best
    }
}

/// Paper-published reference values, used by the binaries to print
/// paper-vs-measured comparisons.
pub mod paper_values {
    /// Table I: radix-16 critical path (pre-comp, PPGEN, TREE, CPA) in ps.
    pub const T1_PATH_PS: [(&str, f64); 4] = [
        ("precomp", 578.0),
        ("PPGEN", 258.0),
        ("TREE", 571.0),
        ("CPA", 445.0),
    ];
    /// Table I: total latency ps / FO4 / area µm² / NAND2.
    pub const T1_TOTALS: (f64, f64, f64, f64) = (1852.0, 29.0, 50_562.0, 47_800.0);
    /// Table II: radix-4 critical path in ps.
    pub const T2_PATH_PS: [(&str, f64); 3] = [("PPGEN", 313.0), ("TREE", 739.0), ("CPA", 454.0)];
    /// Table II totals.
    pub const T2_TOTALS: (f64, f64, f64, f64) = (1506.0, 23.0, 60_204.0, 56_900.0);
    /// Table III: (config, radix-4 mW, radix-16 mW, ratio).
    pub const T3: [(&str, f64, f64, f64); 2] = [
        ("Combinational", 12.3, 11.5, 0.94),
        ("two-stage pipelined", 8.7, 7.7, 0.89),
    ];
    /// Table V rows: (format, mW@100MHz, mW@880MHz, GFLOPS, GFLOPS/W).
    pub const T5: [(&str, f64, f64, f64, f64); 4] = [
        ("int64", 8.90, 78.32, 0.88, 11.24),
        ("binary64", 7.20, 63.36, 0.88, 13.89),
        ("binary32 (dual)", 5.17, 45.50, 1.76, 38.68),
        ("binary32 (single)", 3.77, 33.18, 0.88, 26.53),
    ];
    /// Pipelined unit: paper's critical path ps and max frequency MHz.
    pub const PIPE: (f64, f64) = (1120.0, 880.0);
}
