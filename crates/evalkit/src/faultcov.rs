//! Seeded Monte-Carlo fault-coverage campaign for the self-checking unit.
//!
//! For every sampled stuck-at site (see
//! [`mfm_gatesim::fault::enumerate_stuck_sites`]) the campaign drives a
//! deterministic operand mix through the faulted gate-level unit and
//! classifies each vector against the bit-exact functional reference:
//!
//! - **masked** — the delivered `PH`/`PL`/flags are unaffected;
//! - **detected** — the result is corrupt and
//!   [`mfmult::selfcheck::check_raw`] rejects it (the detection is
//!   attributed to the first checker tier that fired: residue, injection
//!   invariant, product identity or output recompute);
//! - **silent** — the result is corrupt and every check passed. This is
//!   the outcome a self-checking design must drive to zero.
//!
//! Results aggregate per hardware block (`PPGEN`, `TREE`, `CPA`, …) and
//! per operand format, so the report answers the two questions the
//! robustness study asks: *where* do undetected faults live, and *which
//! formats* exercise them. The whole campaign is a pure function of
//! [`FaultCoverageConfig`] — same seed, same report.

use std::collections::BTreeMap;
use std::fmt;

use mfm_gatesim::fault::{enumerate_stuck_sites, sample_sites, CampaignRunner, CampaignStats};
use mfm_gatesim::netlist::Netlist;
use mfm_gatesim::report::Table;
use mfm_gatesim::tech::TechLibrary;
use mfm_gatesim::{CompiledFaultSim, CompiledNetlist, FaultKind, FaultOutcome, LANES};
use mfm_telemetry::Registry;
use mfmult::selfcheck::{check_raw, run_raw, run_raw_compiled, CheckError, RawOutputs};
use mfmult::{structural, Format, FunctionalUnit, MultResult, Operation};

use crate::shard::run_shards;
use crate::workload::OperandGen;

/// Campaign parameters. The report is a deterministic function of this
/// struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCoverageConfig {
    /// Seed for site sampling and operand generation.
    pub seed: u64,
    /// Number of stuck-at sites to sample from the netlist.
    pub sites: usize,
    /// Operand vectors driven per site *per format*.
    pub vectors_per_format: usize,
    /// Build the unit with the quad-binary16 extension lanes (adds the
    /// fifth format to the mix).
    pub quad_lanes: bool,
}

impl FaultCoverageConfig {
    /// A small smoke-test campaign.
    pub fn quick(seed: u64) -> Self {
        FaultCoverageConfig {
            seed,
            sites: 40,
            vectors_per_format: 2,
            quad_lanes: false,
        }
    }

    /// The full campaign of the robustness study: ≥500 stuck-at sites,
    /// four vectors per site and format.
    pub fn full(seed: u64) -> Self {
        FaultCoverageConfig {
            seed,
            sites: 500,
            vectors_per_format: 4,
            quad_lanes: false,
        }
    }
}

/// Masked/detected/silent counters (one classification per vector).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Vectors whose delivered result was unaffected.
    pub masked: u64,
    /// Corrupted vectors rejected by the checker.
    pub detected: u64,
    /// Corrupted vectors no check caught.
    pub silent: u64,
}

impl OutcomeCounts {
    fn record(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::Detected => self.detected += 1,
            FaultOutcome::Silent => self.silent += 1,
        }
    }

    /// Total classified vectors.
    pub fn ops(&self) -> u64 {
        self.masked + self.detected + self.silent
    }

    /// Detected fraction of corrupting vectors (1.0 when nothing
    /// corrupted).
    pub fn detection_rate(&self) -> f64 {
        let corrupted = self.detected + self.silent;
        if corrupted == 0 {
            1.0
        } else {
            self.detected as f64 / corrupted as f64
        }
    }
}

/// Results of one fault-coverage campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverageReport {
    /// The configuration that produced this report.
    pub config: FaultCoverageConfig,
    /// Sites actually run (≤ `config.sites`, bounded by the netlist).
    pub sites_run: usize,
    /// Outcomes per hardware block.
    pub blocks: CampaignStats,
    /// Outcomes per operand format.
    pub formats: BTreeMap<&'static str, OutcomeCounts>,
    /// Detections attributed to the first checker tier that fired.
    pub detections_by_tier: BTreeMap<&'static str, u64>,
}

impl FaultCoverageReport {
    /// Total silent corruptions across the campaign (the robustness
    /// study requires this to be zero).
    pub fn silent(&self) -> u64 {
        self.blocks.totals().silent
    }

    /// Overall detection rate over corrupting vectors.
    pub fn detection_rate(&self) -> f64 {
        self.blocks.totals().detection_rate()
    }

    /// Detections caught by the cheap residue tier alone (mod 3/15).
    pub fn residue_detections(&self) -> u64 {
        self.detections_by_tier.get("residue").copied().unwrap_or(0)
    }
}

impl fmt::Display for FaultCoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Stuck-at fault-coverage campaign: {} sites, {} vectors/format, seed {:#x}",
            self.sites_run, self.config.vectors_per_format, self.config.seed
        )?;
        writeln!(f)?;
        writeln!(f, "Per hardware block:")?;
        writeln!(f, "{}", self.blocks.table())?;
        writeln!(f, "Per operand format:")?;
        let mut t = Table::new(&["format", "ops", "masked", "detected", "silent", "det.rate"]);
        for (name, c) in &self.formats {
            t.row_owned(vec![
                name.to_string(),
                c.ops().to_string(),
                c.masked.to_string(),
                c.detected.to_string(),
                c.silent.to_string(),
                format!("{:.3}", c.detection_rate()),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "Detections by first-firing checker tier:")?;
        let mut t = Table::new(&["tier", "detections"]);
        for (tier, n) in &self.detections_by_tier {
            t.row_owned(vec![tier.to_string(), n.to_string()]);
        }
        write!(f, "{t}")
    }
}

fn format_name(f: Format) -> &'static str {
    match f {
        Format::Int64 => "int64",
        Format::Binary64 => "binary64",
        Format::DualBinary32 => "dual binary32",
        Format::SingleBinary32 => "single binary32",
        Format::QuadBinary16 => "quad binary16",
    }
}

fn tier_name(e: CheckError) -> &'static str {
    match e {
        CheckError::Residue { .. } => "residue",
        CheckError::InjectionInvariant { .. } => "injection invariant",
        CheckError::ProductIdentity { .. } => "product identity",
        CheckError::OutputMismatch => "output recompute",
        CheckError::Watchdog => "watchdog",
    }
}

/// The delivered-output view of a functional result: what the hardware
/// ports would carry for this operation (the structural flag bus has no
/// inexact wire, and the quad extension reports no flags).
pub fn hardware_view(r: &MultResult) -> (u64, u64, u8) {
    let lane = |f: mfm_softfloat::Flags| {
        (f.invalid() as u8) | ((f.overflow() as u8) << 1) | ((f.underflow() as u8) << 2)
    };
    match r.format {
        Format::Int64 => (r.ph, r.pl, 0),
        Format::QuadBinary16 => (r.ph, 0, 0),
        _ => (r.ph, 0, lane(r.flags_lo) | (lane(r.flags_hi) << 3)),
    }
}

/// Runs the campaign described by `config` and aggregates the report.
pub fn fault_coverage(config: &FaultCoverageConfig) -> FaultCoverageReport {
    fault_coverage_observed(config, None)
}

/// [`fault_coverage`] with live progress telemetry. When a `registry` is
/// given, the campaign keeps the counters `faultcov.{sites_done,
/// vectors, masked, detected, silent}` and the gauge
/// `faultcov.detection_rate` current while it runs, so a long campaign
/// can be watched from a metrics snapshot instead of waiting for the
/// final report. The report itself is byte-identical to the unobserved
/// run.
pub fn fault_coverage_observed(
    config: &FaultCoverageConfig,
    registry: Option<&Registry>,
) -> FaultCoverageReport {
    let telemetry = registry.map(|r| {
        (
            r.counter("faultcov.sites_done"),
            r.counter("faultcov.vectors"),
            r.counter("faultcov.masked"),
            r.counter("faultcov.detected"),
            r.counter("faultcov.silent"),
            r.gauge("faultcov.detection_rate"),
        )
    });
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = if config.quad_lanes {
        structural::build_unit_quad(&mut n)
    } else {
        structural::build_unit(&mut n)
    };
    let formats: Vec<Format> = if config.quad_lanes {
        vec![
            Format::Int64,
            Format::Binary64,
            Format::DualBinary32,
            Format::SingleBinary32,
            Format::QuadBinary16,
        ]
    } else {
        Format::ALL.to_vec()
    };

    let sites = sample_sites(enumerate_stuck_sites(&n), config.sites, config.seed);
    let runner = CampaignRunner::new(&n, sites);
    let sites_run = runner.sites().len();
    let reference = FunctionalUnit::new();

    let mut per_format: BTreeMap<&'static str, OutcomeCounts> = formats
        .iter()
        .map(|&f| (format_name(f), OutcomeCounts::default()))
        .collect();
    let mut by_tier: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut site_idx: u64 = 0;

    let blocks = runner.run(|sim, _site| {
        // Per-site operand stream derived from the campaign seed, so the
        // classification of a site does not depend on which sites were
        // sampled before it.
        site_idx += 1;
        let mut gen = OperandGen::new(config.seed ^ site_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut outcomes = Vec::new();
        for &fmt in &formats {
            for _ in 0..config.vectors_per_format {
                let op = gen.operation(fmt);
                let raw: RawOutputs = run_raw(sim, &ports, op);
                let golden = hardware_view(&reference.execute(op));
                let outcome = if (raw.ph, raw.pl, raw.flags) == golden {
                    FaultOutcome::Masked
                } else {
                    match check_raw(op, &raw) {
                        Err(e) => {
                            *by_tier.entry(tier_name(e)).or_insert(0) += 1;
                            FaultOutcome::Detected
                        }
                        Ok(()) => FaultOutcome::Silent,
                    }
                };
                per_format
                    .get_mut(format_name(fmt))
                    .unwrap()
                    .record(outcome);
                if let Some((_, vectors, masked, detected, silent, rate)) = &telemetry {
                    vectors.inc();
                    match outcome {
                        FaultOutcome::Masked => masked.inc(),
                        FaultOutcome::Detected => detected.inc(),
                        FaultOutcome::Silent => silent.inc(),
                    }
                    let corrupted = detected.get() + silent.get();
                    rate.set(if corrupted == 0 {
                        1.0
                    } else {
                        detected.get() as f64 / corrupted as f64
                    });
                }
                outcomes.push(outcome);
            }
        }
        if let Some((sites_done, ..)) = &telemetry {
            sites_done.inc();
        }
        outcomes
    });

    FaultCoverageReport {
        config: *config,
        sites_run,
        blocks,
        formats: per_format,
        detections_by_tier: by_tier,
    }
}

/// [`fault_coverage`] accelerated by the compiled bit-parallel engine
/// and deterministic thread sharding.
///
/// Sites are packed [`LANES`] (256) to a shard — one stuck-at fault
/// machine per lane of the `[u64; 4]` word — so a single propagation
/// pass classifies up to 256 faults against one vector. Shards run on up to `threads` scoped worker
/// threads ([`crate::shard::run_shards`]) and their partial statistics
/// merge in shard order.
///
/// The report is **bit-identical** to [`fault_coverage`] for the same
/// config at any `threads` value (including 1): every site derives its
/// operand stream from the campaign seed and its global site index —
/// exactly as the sequential campaign does — and each (site, vector)
/// classification is a pure function of those inputs, because the
/// compiled engine's settled values equal the event-driven simulator's
/// (see [`mfm_gatesim::compiled`]). `tests/compiled_equivalence.rs`
/// asserts the report equality wholesale.
pub fn fault_coverage_parallel(
    config: &FaultCoverageConfig,
    threads: usize,
) -> FaultCoverageReport {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = if config.quad_lanes {
        structural::build_unit_quad(&mut n)
    } else {
        structural::build_unit(&mut n)
    };
    let formats: Vec<Format> = if config.quad_lanes {
        vec![
            Format::Int64,
            Format::Binary64,
            Format::DualBinary32,
            Format::SingleBinary32,
            Format::QuadBinary16,
        ]
    } else {
        Format::ALL.to_vec()
    };
    let sites = sample_sites(enumerate_stuck_sites(&n), config.sites, config.seed);
    let prog = CompiledNetlist::compile(&n).expect("campaign netlist is acyclic");

    type Partial = (
        CampaignStats,
        BTreeMap<&'static str, OutcomeCounts>,
        BTreeMap<&'static str, u64>,
    );
    let shard_count = sites.len().div_ceil(LANES);
    let partials: Vec<Partial> = run_shards(shard_count, threads, |k| {
        let shard_sites = &sites[k * LANES..((k + 1) * LANES).min(sites.len())];
        let mut fsim = CompiledFaultSim::new(&prog);
        let mut stats = CampaignStats::default();
        let mut gens: Vec<OperandGen> = Vec::with_capacity(shard_sites.len());
        for (lane, site) in shard_sites.iter().enumerate() {
            stats.add_site(&site.block);
            let forced = match site.kind {
                FaultKind::StuckAt0 => false,
                FaultKind::StuckAt1 => true,
                FaultKind::Transient { .. } => {
                    unreachable!("stuck-at site universe contains no transients")
                }
            };
            fsim.assign_fault(lane, site.net, forced);
            // Same per-site stream as the sequential campaign: global
            // 1-based site index mixed into the campaign seed.
            let site_idx = (k * LANES + lane) as u64 + 1;
            gens.push(OperandGen::new(
                config.seed ^ site_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
        }
        let reference = FunctionalUnit::new();
        let mut per_format: BTreeMap<&'static str, OutcomeCounts> = formats
            .iter()
            .map(|&f| (format_name(f), OutcomeCounts::default()))
            .collect();
        let mut by_tier: BTreeMap<&'static str, u64> = BTreeMap::new();
        for &fmt in &formats {
            for _ in 0..config.vectors_per_format {
                let ops: Vec<Operation> = gens.iter_mut().map(|g| g.operation(fmt)).collect();
                let raws = run_raw_compiled(&mut fsim, &ports, &ops);
                for ((site, &op), raw) in shard_sites.iter().zip(&ops).zip(&raws) {
                    let golden = hardware_view(&reference.execute(op));
                    let outcome = if (raw.ph, raw.pl, raw.flags) == golden {
                        FaultOutcome::Masked
                    } else {
                        match check_raw(op, raw) {
                            Err(e) => {
                                *by_tier.entry(tier_name(e)).or_insert(0) += 1;
                                FaultOutcome::Detected
                            }
                            Ok(()) => FaultOutcome::Silent,
                        }
                    };
                    stats.record(&site.block, outcome);
                    per_format
                        .get_mut(format_name(fmt))
                        .unwrap()
                        .record(outcome);
                }
            }
        }
        (stats, per_format, by_tier)
    });

    let mut blocks = CampaignStats::default();
    let mut per_format: BTreeMap<&'static str, OutcomeCounts> = formats
        .iter()
        .map(|&f| (format_name(f), OutcomeCounts::default()))
        .collect();
    let mut by_tier: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (stats, pf, bt) in &partials {
        blocks.merge(stats);
        for (name, c) in pf {
            let e = per_format.entry(name).or_default();
            e.masked += c.masked;
            e.detected += c.detected;
            e.silent += c.silent;
        }
        for (tier, n) in bt {
            *by_tier.entry(tier).or_insert(0) += n;
        }
    }
    FaultCoverageReport {
        config: *config,
        sites_run: sites.len(),
        blocks,
        formats: per_format,
        detections_by_tier: by_tier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::Simulator;

    /// On healthy hardware the functional "hardware view" must equal the
    /// delivered ports bit for bit — the campaign's corruption test is
    /// only sound if this holds for every format.
    #[test]
    fn healthy_hardware_matches_functional_view() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = structural::build_unit_quad(&mut n);
        let mut sim = Simulator::new(&n);
        let reference = FunctionalUnit::new();
        let mut gen = OperandGen::new(0xFCC5);
        let formats = [
            Format::Int64,
            Format::Binary64,
            Format::DualBinary32,
            Format::SingleBinary32,
            Format::QuadBinary16,
        ];
        for round in 0..6 {
            for &fmt in &formats {
                let op = gen.operation(fmt);
                let raw = run_raw(&mut sim, &ports, op);
                let golden = hardware_view(&reference.execute(op));
                assert_eq!((raw.ph, raw.pl, raw.flags), golden, "round {round}: {op:?}");
            }
        }
    }

    #[test]
    fn observed_campaign_matches_report_and_counters() {
        let cfg = FaultCoverageConfig {
            seed: 11,
            sites: 4,
            vectors_per_format: 1,
            quad_lanes: false,
        };
        let registry = Registry::new();
        let observed = fault_coverage_observed(&cfg, Some(&registry));
        // Telemetry must not perturb the campaign.
        assert_eq!(observed, fault_coverage(&cfg));
        let totals = observed.blocks.totals();
        assert_eq!(registry.counter("faultcov.sites_done").get(), 4);
        assert_eq!(registry.counter("faultcov.vectors").get(), totals.ops());
        assert_eq!(registry.counter("faultcov.masked").get(), totals.masked);
        assert_eq!(registry.counter("faultcov.detected").get(), totals.detected);
        assert_eq!(registry.counter("faultcov.silent").get(), totals.silent);
        let rate = registry.gauge("faultcov.detection_rate").get();
        assert!((rate - totals.detection_rate()).abs() < 1e-12);
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_sequential() {
        // 66 sites so the lane packing crosses a shard boundary.
        let cfg = FaultCoverageConfig {
            seed: 2017,
            sites: 66,
            vectors_per_format: 1,
            quad_lanes: false,
        };
        let sequential = fault_coverage(&cfg);
        let inline = fault_coverage_parallel(&cfg, 1);
        let threaded = fault_coverage_parallel(&cfg, 4);
        assert_eq!(inline, sequential, "compiled path must match event-driven");
        assert_eq!(threaded, inline, "thread count must not change the report");
    }

    #[test]
    fn tiny_campaign_is_deterministic_and_consistent() {
        let cfg = FaultCoverageConfig {
            seed: 7,
            sites: 6,
            vectors_per_format: 1,
            quad_lanes: false,
        };
        let a = fault_coverage(&cfg);
        let b = fault_coverage(&cfg);
        assert_eq!(a, b, "same config must reproduce the same report");
        assert_eq!(a.sites_run, 6);
        let totals = a.blocks.totals();
        // Every vector of every site is classified exactly once, and the
        // per-format view partitions the same population.
        assert_eq!(totals.ops(), 6 * 4);
        let format_ops: u64 = a.formats.values().map(|c| c.ops()).sum();
        assert_eq!(format_ops, totals.ops());
        let format_silent: u64 = a.formats.values().map(|c| c.silent).sum();
        assert_eq!(format_silent, totals.silent);
    }
}
