//! Glitch-inflation calibration for the compiled activity engine.
//!
//! The compiled 256-lane activity sweep
//! ([`crate::montecarlo::compiled_activity`]) counts **zero-delay**
//! toggles: only settled-state transitions, never the glitches that real
//! gate delays produce and inertial filtering partially removes. The
//! event-driven [`Simulator`](mfm_gatesim::Simulator) models those
//! glitches and stays the source of truth for power. This module closes
//! the gap: a seeded calibration run measures the same workload on both
//! engines and regresses compiled zero-delay energy onto event-driven
//! energy **per top-level block**, producing per-block glitch-inflation
//! factors (plus an event-count factor for the `transitions_per_op`
//! metric). [`measure_unit_compiled_sharded`](crate::montecarlo::measure_unit_compiled_sharded)
//! then applies the factors via
//! [`PowerEstimator::from_toggles_calibrated`] — clock and leakage are
//! never inflated (both are exact in the compiled path).
//!
//! Calibration is per format because glitch activity is
//! workload-dependent: int64 exercises the full 64×64 array while the
//! binary32 modes gate most of it off, so their glitch ratios differ.
//! The factors generalize across seeds of the same operand
//! distribution; `tests/power_parity.rs` asserts calibrated compiled
//! energy stays within ±5 % of event-driven on a seed the calibration
//! never saw.
//!
//! A calibration is plain data and persists as JSON
//! ([`GlitchCalibration::to_json`] / [`GlitchCalibration::parse`]) so a
//! run can be stored alongside the netlist's benchmark results and
//! reused without re-running the event-driven reference.

use crate::montecarlo::{compiled_activity, measure_unit};
use mfm_gatesim::{CompiledNetlist, Netlist, PowerEstimator};
use mfm_telemetry::json::{self, JsonArray, JsonObject};
use mfmult::{Format, StructuralPorts};

/// Calibration result for one operating format.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatCal {
    /// The format this calibration applies to.
    pub format: Format,
    /// Per-top-level-block glitch-inflation factors
    /// `(block, event-driven pJ / zero-delay pJ)`, in the block order of
    /// the event-driven breakdown.
    pub per_block: Vec<(String, f64)>,
    /// Whole-unit dynamic-energy ratio, used for blocks without an entry
    /// in [`FormatCal::per_block`].
    pub default_factor: f64,
    /// Event-driven / zero-delay ratio of committed transitions per
    /// operation (scales the `transitions_per_op` glitching metric).
    pub event_factor: f64,
    /// Event-driven reference energy, pJ/op, at calibration time.
    pub event_driven_pj_per_op: f64,
    /// Uncalibrated compiled zero-delay energy, pJ/op, at calibration
    /// time. `event_driven_pj_per_op / zero_delay_pj_per_op` is the
    /// headline glitch-inflation ratio for the format.
    pub zero_delay_pj_per_op: f64,
}

/// A per-format set of glitch-inflation factors tying the compiled
/// zero-delay activity engine to the event-driven reference (see the
/// module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlitchCalibration {
    /// Operations per format used for the calibration run.
    pub ops: u64,
    /// Calibration seed (both engines consumed the same streams).
    pub seed: u64,
    /// One entry per calibrated format.
    pub formats: Vec<FormatCal>,
}

impl GlitchCalibration {
    /// Runs the calibration: for every paper format ([`Format::ALL`]),
    /// measures `ops` operations at `seed` on the event-driven simulator
    /// ([`measure_unit`]) and on the compiled activity engine
    /// ([`compiled_activity`]), and takes the per-block energy ratio as
    /// that block's glitch-inflation factor. Blocks the zero-delay run
    /// never toggles fall back to 1.0 (nothing to inflate).
    ///
    /// `prog` must be compiled from `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0`.
    pub fn run(
        netlist: &Netlist,
        prog: &CompiledNetlist,
        ports: &StructuralPorts,
        ops: usize,
        seed: u64,
    ) -> GlitchCalibration {
        assert!(ops > 0, "need at least one calibration operation");
        let formats = Format::ALL
            .iter()
            .map(|&format| {
                let ed = measure_unit(netlist, ports, format, ops, seed);
                let counts = compiled_activity(prog, ports, format, ops, seed);
                let measured_ops = if ports.latency > 0 {
                    counts.cycles
                } else {
                    ops as u64
                };
                let zd = PowerEstimator::from_toggles(
                    netlist,
                    &counts.toggles,
                    counts.events,
                    counts.cycles,
                    measured_ops,
                );
                let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 1.0 };
                let per_block = ed
                    .per_block_pj
                    .iter()
                    .map(|(block, ed_pj)| {
                        let zd_pj = zd
                            .per_block_pj
                            .iter()
                            .find(|(b, _)| b == block)
                            .map_or(0.0, |(_, pj)| *pj);
                        (block.clone(), ratio(*ed_pj, zd_pj))
                    })
                    .collect();
                FormatCal {
                    format,
                    per_block,
                    default_factor: ratio(ed.dynamic_pj_per_op, zd.dynamic_pj_per_op),
                    event_factor: ratio(ed.transitions_per_op, zd.transitions_per_op),
                    event_driven_pj_per_op: ed.energy_pj_per_op(),
                    zero_delay_pj_per_op: zd.energy_pj_per_op(),
                }
            })
            .collect();
        GlitchCalibration {
            ops: ops as u64,
            seed,
            formats,
        }
    }

    /// The calibration for `format`, if one was run.
    pub fn for_format(&self, format: Format) -> Option<&FormatCal> {
        self.formats.iter().find(|c| c.format == format)
    }

    /// Renders the calibration as JSON.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_u64("version", 1);
        root.field_u64("ops", self.ops);
        root.field_u64("seed", self.seed);
        let mut arr = JsonArray::new();
        for c in &self.formats {
            let mut o = JsonObject::new();
            o.field_str("format", c.format.label());
            o.field_f64("default_factor", c.default_factor);
            o.field_f64("event_factor", c.event_factor);
            o.field_f64("event_driven_pj_per_op", c.event_driven_pj_per_op);
            o.field_f64("zero_delay_pj_per_op", c.zero_delay_pj_per_op);
            let mut blocks = JsonArray::new();
            for (block, factor) in &c.per_block {
                let mut b = JsonObject::new();
                b.field_str("block", block);
                b.field_f64("factor", *factor);
                blocks.push_raw(&b.finish());
            }
            o.field_raw("per_block", &blocks.finish());
            arr.push_raw(&o.finish());
        }
        root.field_raw("formats", &arr.finish());
        root.finish()
    }

    /// Parses a calibration from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn parse(text: &str) -> Result<GlitchCalibration, String> {
        let mut cal = GlitchCalibration::default();
        for (key, value) in json::object_entries(text)? {
            match key.as_str() {
                "version" => {
                    if value.trim() != "1" {
                        return Err(format!("unsupported calibration version {value}"));
                    }
                }
                "ops" => cal.ops = parse_u64(&key, &value)?,
                "seed" => cal.seed = parse_u64(&key, &value)?,
                "formats" => {
                    for item in json::array_entries(&value)? {
                        cal.formats.push(parse_format_cal(&item)?);
                    }
                }
                other => return Err(format!("unknown calibration field {other:?}")),
            }
        }
        Ok(cal)
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("bad {key} {value:?}: {e}"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("bad {key} {value:?}: {e}"))
}

fn parse_str(key: &str, value: &str) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(json::unescape)
        .ok_or_else(|| format!("calibration field {key:?} must be a string, got {v}"))
}

fn format_from_label(label: &str) -> Result<Format, String> {
    [
        Format::Int64,
        Format::Binary64,
        Format::DualBinary32,
        Format::SingleBinary32,
        Format::QuadBinary16,
    ]
    .into_iter()
    .find(|f| f.label() == label)
    .ok_or_else(|| format!("unknown format label {label:?}"))
}

fn parse_format_cal(text: &str) -> Result<FormatCal, String> {
    let mut format = None;
    let mut per_block = Vec::new();
    let mut default_factor = None;
    let mut event_factor = None;
    let mut ed_pj = None;
    let mut zd_pj = None;
    for (key, value) in json::object_entries(text)? {
        match key.as_str() {
            "format" => format = Some(format_from_label(&parse_str(&key, &value)?)?),
            "default_factor" => default_factor = Some(parse_f64(&key, &value)?),
            "event_factor" => event_factor = Some(parse_f64(&key, &value)?),
            "event_driven_pj_per_op" => ed_pj = Some(parse_f64(&key, &value)?),
            "zero_delay_pj_per_op" => zd_pj = Some(parse_f64(&key, &value)?),
            "per_block" => {
                for item in json::array_entries(&value)? {
                    let mut block = None;
                    let mut factor = None;
                    for (k, v) in json::object_entries(&item)? {
                        match k.as_str() {
                            "block" => block = Some(parse_str(&k, &v)?),
                            "factor" => factor = Some(parse_f64(&k, &v)?),
                            other => return Err(format!("unknown per_block field {other:?}")),
                        }
                    }
                    per_block.push((
                        block.ok_or("per_block entry missing \"block\"")?,
                        factor.ok_or("per_block entry missing \"factor\"")?,
                    ));
                }
            }
            other => return Err(format!("unknown format calibration field {other:?}")),
        }
    }
    Ok(FormatCal {
        format: format.ok_or("format calibration missing \"format\"")?,
        per_block,
        default_factor: default_factor.ok_or("format calibration missing \"default_factor\"")?,
        event_factor: event_factor.ok_or("format calibration missing \"event_factor\"")?,
        event_driven_pj_per_op: ed_pj
            .ok_or("format calibration missing \"event_driven_pj_per_op\"")?,
        zero_delay_pj_per_op: zd_pj.ok_or("format calibration missing \"zero_delay_pj_per_op\"")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::measure_unit_compiled_sharded;
    use mfm_gatesim::TechLibrary;
    use mfmult::structural::build_unit;

    fn unit() -> (Netlist, StructuralPorts) {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        (n, u)
    }

    #[test]
    fn factors_inflate_zero_delay_toward_event_driven() {
        let (n, u) = unit();
        let prog = CompiledNetlist::compile(&n).unwrap();
        let cal = GlitchCalibration::run(&n, &prog, &u, 24, 11);
        assert_eq!(cal.formats.len(), Format::ALL.len());
        for c in &cal.formats {
            // Zero-delay counts can only miss glitches, never invent
            // transitions, so every factor is at least 1.
            assert!(
                c.default_factor >= 1.0,
                "{:?}: default factor {}",
                c.format,
                c.default_factor
            );
            assert!(c.event_factor >= 1.0);
            assert!(c.event_driven_pj_per_op >= c.zero_delay_pj_per_op);
            assert!(!c.per_block.is_empty());
        }
        // On the calibration workload itself, applying the per-block
        // factors to the same compiled run reproduces the event-driven
        // energy exactly: each block is scaled by ed/zd of that block.
        let c = cal.for_format(Format::Binary64).unwrap();
        let counts = crate::montecarlo::compiled_activity(&prog, &u, Format::Binary64, 24, 11);
        let measured = PowerEstimator::from_toggles_calibrated(
            &n,
            &counts.toggles,
            counts.events,
            counts.cycles,
            24,
            &c.per_block,
            c.default_factor,
            c.event_factor,
        );
        let err = (measured.energy_pj_per_op() - c.event_driven_pj_per_op).abs()
            / c.event_driven_pj_per_op;
        assert!(
            err < 1e-6,
            "calibrated self-error {:.6}% (got {:.4}, want {:.4})",
            err * 100.0,
            measured.energy_pj_per_op(),
            c.event_driven_pj_per_op
        );
    }

    #[test]
    fn sharded_compiled_measurement_is_thread_invariant_and_calibratable() {
        let (n, u) = unit();
        let prog = CompiledNetlist::compile(&n).unwrap();
        let cal = GlitchCalibration::run(&n, &prog, &u, 16, 7);
        let one =
            measure_unit_compiled_sharded(&n, &prog, &u, Format::Int64, 30, 9, 4, 1, Some(&cal));
        let four =
            measure_unit_compiled_sharded(&n, &prog, &u, Format::Int64, 30, 9, 4, 4, Some(&cal));
        assert_eq!(one.dynamic_pj_per_op, four.dynamic_pj_per_op);
        assert_eq!(one.transitions_per_op, four.transitions_per_op);
        assert_eq!(one.per_block_pj, four.per_block_pj);
        // Calibration inflates the raw zero-delay estimate.
        let raw = measure_unit_compiled_sharded(&n, &prog, &u, Format::Int64, 30, 9, 4, 1, None);
        assert!(one.dynamic_pj_per_op >= raw.dynamic_pj_per_op);
        assert!(raw.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (n, u) = unit();
        let prog = CompiledNetlist::compile(&n).unwrap();
        let cal = GlitchCalibration::run(&n, &prog, &u, 8, 3);
        let parsed = GlitchCalibration::parse(&cal.to_json()).unwrap();
        assert_eq!(parsed, cal);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(GlitchCalibration::parse("{\"version\": 2}").is_err());
        assert!(GlitchCalibration::parse("{\"bogus\": 1}").is_err());
        assert!(
            GlitchCalibration::parse("{\"formats\": [{\"format\": \"int65\"}]}").is_err(),
            "unknown format label"
        );
    }
}
