//! Evaluation kit for the SOCC'17 multi-format multiplier reproduction:
//! operand workloads, Monte-Carlo power measurement and one module per
//! table/figure of the paper's evaluation.
//!
//! - [`workload`] — pseudo-random operand generators per format (the
//!   paper's "Monte Carlo simulation by generating pseudo-random input
//!   patterns"), plus generators for reducible binary64 values (Sec. IV).
//! - [`montecarlo`] — drives a gate-level netlist with a workload and
//!   derives a [`mfm_gatesim::PowerBreakdown`], either event-driven or
//!   through the 256-lane compiled activity engine.
//! - [`calibrate`] — per-block glitch-inflation calibration tying the
//!   compiled zero-delay toggle counts to the event-driven reference.
//! - [`experiments`] — regenerates every table: each function returns a
//!   serializable report struct with a `Display` that prints the same
//!   rows the paper reports.
//! - [`faultcov`] — seeded stuck-at fault-coverage campaigns for the
//!   self-checking unit (`mfmult::selfcheck`): per-block and per-format
//!   masked/detected/silent classification.
//! - [`chaos`] — seeded chaos campaigns over the `mfm-resilient` pool
//!   engine: mixed-format traffic under scheduled SEUs, stuck-ats and
//!   glitch storms, judged by the zero-escape and capacity-recovery
//!   invariants.
//! - [`shard`] — deterministic thread sharding: fixed logical shard
//!   decomposition with per-shard PRNG streams and order-independent
//!   merge, so campaigns are bit-identical at any thread count.
//! - [`runreport`] — machine-readable JSON run reports aggregating
//!   netlist statistics, timing, power and telemetry snapshots (the
//!   `--json` output of every table/figure binary).
//!
//! # Example
//!
//! ```
//! use mfm_evalkit::workload::OperandGen;
//! use mfmult::Format;
//!
//! let mut gen = OperandGen::new(42);
//! let op = gen.operation(Format::Binary64);
//! assert_eq!(op.format, Format::Binary64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod calibrate;
pub mod chaos;
pub mod experiments;
pub mod faultcov;
pub mod montecarlo;
pub mod runreport;
pub mod shard;
pub mod workload;
