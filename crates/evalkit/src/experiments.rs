//! One function per table/figure of the paper's evaluation. Each returns
//! a serializable report whose `Display` prints rows in the paper's
//! layout; the `table*` binaries in `mfm-bench` are thin wrappers.

use crate::calibrate::GlitchCalibration;
use crate::montecarlo::{
    measure_multiplier_combinational, measure_multiplier_pipelined, measure_unit,
    measure_unit_compiled_sharded,
};
use mfm_arith::{build_multiplier, MultiplierConfig, Radix};
use mfm_gatesim::report::Table;
use mfm_gatesim::{CompiledNetlist, Netlist, TechLibrary, TimingAnalysis};
use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
use mfmult::Format;
use std::fmt;

/// Table I / Table II: latency, area and critical-path decomposition of a
/// 64×64 multiplier.
#[derive(Debug, Clone)]
pub struct MultiplierReport {
    /// Radix of the measured multiplier.
    pub radix: u32,
    /// Critical-path delay in ps.
    pub latency_ps: f64,
    /// Critical-path delay in FO4 units.
    pub latency_fo4: f64,
    /// Raw (unit-sized) cell area in µm².
    pub area_um2_raw: f64,
    /// Area under the slack-based sizing model, µm².
    pub area_um2_sized: f64,
    /// Sized area as NAND2-equivalent gate count.
    pub area_nand2: f64,
    /// Per-block critical-path segments `(block, ps)` in path order.
    pub critical_path: Vec<(String, f64)>,
    /// Number of cells.
    pub cells: usize,
}

impl fmt::Display for MultiplierReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "64x64 radix-{} multiplier", self.radix)?;
        let mut t = Table::new(&["critical path", "delay [ps]"]);
        for (block, ps) in &self.critical_path {
            t.row_owned(vec![block.clone(), format!("{ps:.0}")]);
        }
        t.row_owned(vec!["TOTAL".into(), format!("{:.0}", self.latency_ps)]);
        write!(f, "{t}")?;
        let mut t = Table::new(&["latency [ns]", "FO4", "area [um2]", "NAND2"]);
        t.row_owned(vec![
            format!("{:.3}", self.latency_ps / 1000.0),
            format!("{:.0}", self.latency_fo4),
            format!("{:.0}", self.area_um2_sized),
            format!("{:.1}K", self.area_nand2 / 1000.0),
        ]);
        write!(f, "{t}")
    }
}

fn multiplier_report(cfg: MultiplierConfig) -> MultiplierReport {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    build_multiplier(&mut n, cfg);
    let ta = TimingAnalysis::new(&n);
    let sta = ta.report();
    let sized = ta.sized_area_um2(sta.min_period_ps);
    MultiplierReport {
        radix: match cfg.radix {
            Radix::R4 => 4,
            Radix::R8 => 8,
            Radix::R16 => 16,
        },
        latency_ps: sta.critical_delay_ps,
        latency_fo4: sta.critical_delay_fo4(n.tech().fo4_ps),
        area_um2_raw: n.area_um2(),
        area_um2_sized: sized,
        area_nand2: n.tech().um2_to_nand2(sized),
        critical_path: sta
            .segments
            .iter()
            .map(|s| (s.block.clone(), s.delay_ps))
            .collect(),
        cells: n.cell_count(),
    }
}

/// Table I: the radix-16 baseline multiplier.
pub fn table1() -> MultiplierReport {
    multiplier_report(MultiplierConfig::radix16())
}

/// Table II: the radix-4 Booth comparison multiplier.
pub fn table2() -> MultiplierReport {
    multiplier_report(MultiplierConfig::radix4())
}

/// Ablation (the radix the paper declined to build): radix-8.
pub fn table2_radix8() -> MultiplierReport {
    multiplier_report(MultiplierConfig::radix8())
}

/// Table III: power at 100 MHz for radix-4 vs radix-16, combinational and
/// two-stage pipelined.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Monte-Carlo vectors per configuration.
    pub vectors: usize,
    /// `(configuration, radix-4 mW, radix-16 mW, ratio)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Power dissipation at 100 MHz ({} random vectors)",
            self.vectors
        )?;
        let mut t = Table::new(&["", "radix-4 [mW]", "radix-16 [mW]", "ratio"]);
        for (name, r4, r16, ratio) in &self.rows {
            t.row_owned(vec![
                name.clone(),
                format!("{r4:.2}"),
                format!("{r16:.2}"),
                format!("{ratio:.2}"),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the Table III experiment.
pub fn table3(vectors: usize, seed: u64) -> Table3 {
    let mut rows = Vec::new();
    // Combinational row.
    let mw = |cfg: MultiplierConfig| -> f64 {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, cfg);
        let p = if ports.latency == 0 {
            measure_multiplier_combinational(&n, &ports, vectors, seed)
        } else {
            measure_multiplier_pipelined(&n, &ports, vectors, seed)
        };
        p.total_mw_at(100.0)
    };
    let r4c = mw(MultiplierConfig::radix4());
    let r16c = mw(MultiplierConfig::radix16());
    rows.push(("Combinational".to_owned(), r4c, r16c, r16c / r4c));
    let r4p = mw(MultiplierConfig::radix4().pipelined());
    let r16p = mw(MultiplierConfig::radix16().pipelined());
    rows.push(("two-stage pipelined".to_owned(), r4p, r16p, r16p / r4p));
    Table3 { vectors, rows }
}

/// Table IV: the IEEE 754-2008 binary format parameters.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// `(quantity, binary16, binary32, binary64, binary128)` rows.
    pub rows: Vec<(String, i64, i64, i64, i64)>,
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["", "binary16", "binary32", "binary64", "binary128"]);
        for (q, a, b, c, d) in &self.rows {
            t.row_owned(vec![
                q.clone(),
                a.to_string(),
                b.to_string(),
                c.to_string(),
                d.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Regenerates Table IV from the softfloat format definitions.
pub fn table4() -> Table4 {
    use mfm_softfloat::{BINARY128, BINARY16, BINARY32, BINARY64};
    let fmts = [BINARY16, BINARY32, BINARY64, BINARY128];
    let row = |name: &str, f: &dyn Fn(&mfm_softfloat::BinaryFormat) -> i64| {
        (
            name.to_owned(),
            f(&fmts[0]),
            f(&fmts[1]),
            f(&fmts[2]),
            f(&fmts[3]),
        )
    };
    Table4 {
        rows: vec![
            row("storage (bits)", &|f| f.storage as i64),
            row("precision p (bits)", &|f| f.precision as i64),
            row("exponent length (bits)", &|f| f.exponent_bits as i64),
            row("Emax", &|f| f.emax as i64),
            row("bias", &|f| f.bias as i64),
            row("trailing significand f (bits)", &|f| {
                f.trailing_significand as i64
            }),
        ],
    }
}

/// Table V: power, throughput and power efficiency per format on the
/// 3-stage pipelined multi-format unit.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Operations measured per format.
    pub ops: usize,
    /// Maximum clock frequency from STA, MHz.
    pub fmax_mhz: f64,
    /// Rows in Table V order.
    pub rows: Vec<Table5Row>,
}

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Format name as printed.
    pub format: String,
    /// Power at 100 MHz, mW.
    pub power_mw_100: f64,
    /// Power at the unit's maximum frequency, mW.
    pub power_mw_fmax: f64,
    /// Throughput at fmax in GFLOPS (multiplications/s for int64).
    pub throughput_gflops: f64,
    /// Power efficiency at fmax, GFLOPS/W.
    pub efficiency_gflops_w: f64,
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Multi-format unit, 3-stage pipeline, fmax = {:.0} MHz ({} ops/format)",
            self.fmax_mhz, self.ops
        )?;
        let mut t = Table::new(&[
            "Format",
            "Power@100MHz [mW]",
            "Power@fmax [mW]",
            "throughput [GFLOPS]",
            "Power eff. [GFLOPS/W]",
        ]);
        for r in &self.rows {
            t.row_owned(vec![
                r.format.clone(),
                format!("{:.2}", r.power_mw_100),
                format!("{:.2}", r.power_mw_fmax),
                format!("{:.2}", r.throughput_gflops),
                format!("{:.2}", r.efficiency_gflops_w),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the Table V experiment.
pub fn table5(ops: usize, seed: u64) -> Table5 {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
    let sta = TimingAnalysis::new(&n).report();
    let fmax = sta.max_freq_mhz();

    let name = |f: Format| match f {
        Format::Int64 => "int64",
        Format::Binary64 => "binary64",
        Format::DualBinary32 => "binary32 (dual)",
        Format::SingleBinary32 => "binary32 (single)",
        Format::QuadBinary16 => "binary16 (quad)",
    };
    let rows = Format::ALL
        .iter()
        .map(|&fmt| {
            let p = measure_unit(&n, &u, fmt, ops, seed);
            let p100 = p.total_mw_at(100.0);
            let pfmax = p.total_mw_at(fmax);
            let throughput = fmt.ops_per_cycle() as f64 * fmax * 1e-3; // GFLOPS
            Table5Row {
                format: name(fmt).to_owned(),
                power_mw_100: p100,
                power_mw_fmax: pfmax,
                throughput_gflops: throughput,
                efficiency_gflops_w: throughput / (pfmax * 1e-3),
            }
        })
        .collect();
    Table5 {
        ops,
        fmax_mhz: fmax,
        rows,
    }
}

/// Runs the Table V experiment through the compiled 256-lane activity
/// engine: calibrates per-format glitch inflation on `cal_ops`
/// event-driven operations (a PRNG stream distinct from every
/// measurement shard), then measures each format with
/// [`measure_unit_compiled_sharded`] over `shards` logical shards on up
/// to `threads` worker threads. Returns the table plus the calibration
/// used, so callers can persist it next to the results.
///
/// The row values are the calibrated compiled estimates; they agree
/// with [`table5`] to within Monte-Carlo noise (±5 % is asserted in
/// `tests/power_parity.rs`) while the measurement itself runs two
/// orders of magnitude faster.
pub fn table5_compiled(
    ops: usize,
    cal_ops: usize,
    seed: u64,
    shards: usize,
    threads: usize,
) -> (Table5, GlitchCalibration) {
    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
    let prog = CompiledNetlist::compile(&n).expect("pipelined unit is acyclic");
    let sta = TimingAnalysis::new(&n).report();
    let fmax = sta.max_freq_mhz();
    // A shard index far above any real shard count keeps the calibration
    // stream disjoint from the measurement streams for the same seed.
    let cal_seed = crate::shard::shard_seed(seed, 1 << 32);
    let cal = GlitchCalibration::run(&n, &prog, &u, cal_ops, cal_seed);

    let name = |f: Format| match f {
        Format::Int64 => "int64",
        Format::Binary64 => "binary64",
        Format::DualBinary32 => "binary32 (dual)",
        Format::SingleBinary32 => "binary32 (single)",
        Format::QuadBinary16 => "binary16 (quad)",
    };
    let rows = Format::ALL
        .iter()
        .map(|&fmt| {
            let p = measure_unit_compiled_sharded(
                &n,
                &prog,
                &u,
                fmt,
                ops,
                seed,
                shards,
                threads,
                Some(&cal),
            );
            let p100 = p.total_mw_at(100.0);
            let pfmax = p.total_mw_at(fmax);
            let throughput = fmt.ops_per_cycle() as f64 * fmax * 1e-3; // GFLOPS
            Table5Row {
                format: name(fmt).to_owned(),
                power_mw_100: p100,
                power_mw_fmax: pfmax,
                throughput_gflops: throughput,
                efficiency_gflops_w: throughput / (pfmax * 1e-3),
            }
        })
        .collect();
    (
        Table5 {
            ops,
            fmax_mhz: fmax,
            rows,
        },
        cal,
    )
}

/// Fig. 5 ablation: per-placement minimum period and register count.
#[derive(Debug, Clone)]
pub struct PlacementStudy {
    /// `(placement, min period ps, FO4, max MHz, DFF count)` rows.
    pub rows: Vec<(String, f64, f64, f64, usize)>,
}

impl fmt::Display for PlacementStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Pipeline register placement study (Sec. III-D)")?;
        let mut t = Table::new(&["placement", "period [ps]", "FO4", "fmax [MHz]", "DFFs"]);
        for (name, ps, fo4, mhz, dffs) in &self.rows {
            t.row_owned(vec![
                name.clone(),
                format!("{ps:.0}"),
                format!("{fo4:.1}"),
                format!("{mhz:.0}"),
                dffs.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Sensitivity ablation: Table V's orderings under perturbed calibration.
///
/// The substituted technology model is the main threat to validity of
/// this reproduction, so the headline orderings are re-measured with the
/// switching energies scaled ±30 % and the clock energy halved/doubled.
#[derive(Debug, Clone)]
pub struct SensitivityStudy {
    /// `(energy scale, clock fJ, power ordering holds, efficiency
    /// ordering holds, dual/single efficiency)` rows.
    pub rows: Vec<(f64, f64, bool, bool, f64)>,
    /// Operations per measurement.
    pub ops: usize,
}

impl fmt::Display for SensitivityStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Sensitivity of Table V orderings to calibration ({} ops/point)",
            self.ops
        )?;
        let mut t = Table::new(&[
            "energy scale",
            "clock fJ/DFF",
            "power ordering",
            "efficiency ordering",
            "dual/single eff.",
        ]);
        for (e, c, p, eff, ratio) in &self.rows {
            t.row_owned(vec![
                format!("{e:.1}x"),
                format!("{c:.1}"),
                if *p { "holds" } else { "BROKEN" }.into(),
                if *eff { "holds" } else { "BROKEN" }.into(),
                format!("{ratio:.2}x"),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the sensitivity ablation over energy and clock perturbations.
pub fn sensitivity(ops: usize, seed: u64) -> SensitivityStudy {
    use crate::montecarlo::measure_unit;
    let mut rows = Vec::new();
    for &escale in &[0.7f64, 1.0, 1.3] {
        for &clock in &[2.25f64, 4.5, 9.0] {
            let tech = TechLibrary::cmos45lp()
                .with_energy_scale(escale)
                .with_clock_energy_fj(clock);
            let mut n = Netlist::new(tech);
            let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
            let sta = TimingAnalysis::new(&n).report();
            let fmax = sta.max_freq_mhz();
            let p: Vec<f64> = Format::ALL
                .iter()
                .map(|&f| measure_unit(&n, &u, f, ops, seed).total_mw_at(100.0))
                .collect();
            // Format::ALL order: Int64, Binary64, DualBinary32, SingleBinary32.
            let power_ok = p[0] > p[1] && p[1] > p[2] && p[2] > p[3];
            let eff: Vec<f64> = Format::ALL
                .iter()
                .zip(&p)
                .map(|(&f, &pw)| {
                    let gflops = f.ops_per_cycle() as f64 * fmax * 1e-3;
                    gflops / (pw * (fmax / 100.0) * 1e-3)
                })
                .collect();
            let eff_ok = eff[2] > eff[3] && eff[3] > eff[1] && eff[1] > eff[0];
            rows.push((escale, clock, power_ok, eff_ok, eff[2] / eff[3]));
        }
    }
    SensitivityStudy { rows, ops }
}

/// Activity sweep: power of the radix-16 multiplier versus input
/// switching activity.
///
/// The paper explains Table V's per-format differences as "different
/// activity in the multiplier"; this ablation measures the relation
/// directly by driving the combinational unit with operands whose
/// per-bit flip probability is controlled.
#[derive(Debug, Clone)]
pub struct ActivitySweep {
    /// `(bit flip probability, mW @100 MHz, transitions/op)` rows.
    pub rows: Vec<(f64, f64, f64)>,
    /// Vectors per point.
    pub vectors: usize,
}

impl fmt::Display for ActivitySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Radix-16 multiplier power vs input activity ({} vectors/point)",
            self.vectors
        )?;
        let mut t = Table::new(&["P(bit flip)", "mW @100MHz", "transitions/op"]);
        for (p, mw, tr) in &self.rows {
            t.row_owned(vec![
                format!("{p:.2}"),
                format!("{mw:.2}"),
                format!("{tr:.0}"),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the activity sweep.
pub fn activity_sweep(vectors: usize, seed: u64) -> ActivitySweep {
    use crate::workload::OperandGen;
    use mfm_gatesim::{PowerEstimator, Simulator};

    let mut n = Netlist::new(TechLibrary::cmos45lp());
    let ports = build_multiplier(&mut n, MultiplierConfig::radix16());
    let mut rows = Vec::new();
    for &p_flip in &[0.05f64, 0.1, 0.25, 0.5] {
        let mut gen = OperandGen::new(seed);
        let mut sim = Simulator::new(&n);
        let mut state = (0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64);
        sim.set_bus(&ports.x, state.0 as u128);
        sim.set_bus(&ports.y, state.1 as u128);
        sim.settle();
        sim.reset_activity();
        for _ in 0..vectors {
            let (x, y) = gen.correlated_step(&mut state, p_flip);
            sim.set_bus(&ports.x, x as u128);
            sim.set_bus(&ports.y, y as u128);
            sim.settle();
        }
        let p = PowerEstimator::from_activity(&n, &sim, vectors as u64);
        rows.push((p_flip, p.total_mw_at(100.0), p.transitions_per_op));
    }
    ActivitySweep { rows, vectors }
}

/// Runs the pipeline-placement ablation.
pub fn placement_study() -> PlacementStudy {
    let rows = PipelinePlacement::ALL
        .iter()
        .map(|&p| {
            let mut n = Netlist::new(TechLibrary::cmos45lp());
            build_pipelined_unit(&mut n, p);
            let sta = TimingAnalysis::new(&n).report();
            (
                format!("{p:?}"),
                sta.min_period_ps,
                sta.min_period_ps / n.tech().fo4_ps,
                sta.max_freq_mhz(),
                n.dff_count(),
            )
        })
        .collect();
    PlacementStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_table2_shapes() {
        let t1 = table1();
        let t2 = table2();
        // Radix-4 is faster but larger (sized), as in the paper.
        assert!(t2.latency_ps < t1.latency_ps);
        assert!(t2.area_um2_sized > t1.area_um2_sized);
        // The radix-16 critical path ends in the CPA and passes the TREE.
        let blocks: Vec<&str> = t1.critical_path.iter().map(|(b, _)| b.as_str()).collect();
        assert_eq!(blocks.last().copied(), Some("CPA"));
        assert!(blocks.contains(&"TREE"));
        // Printed reports carry the headline numbers.
        let s = t1.to_string();
        assert!(s.contains("radix-16"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn table4_matches_standard() {
        let t = table4();
        assert_eq!(t.rows[0].1, 16);
        assert_eq!(t.rows[1].3, 53); // binary64 precision
        assert_eq!(t.rows[3].4, 16383); // binary128 Emax
        let s = t.to_string();
        assert!(s.contains("1023"));
    }

    #[test]
    fn table3_small_run_shape() {
        // Tiny vector count for test speed; the full binary uses hundreds.
        let t = table3(12, 3);
        assert_eq!(t.rows.len(), 2);
        for (name, r4, r16, ratio) in &t.rows {
            assert!(r4 > &0.0 && r16 > &0.0, "{name}");
            assert!((ratio - r16 / r4).abs() < 1e-9);
        }
    }

    #[test]
    fn table5_compiled_small_run_shape() {
        let (t, cal) = table5_compiled(12, 6, 3, 2, 2);
        assert_eq!(t.rows.len(), Format::ALL.len());
        assert_eq!(cal.formats.len(), Format::ALL.len());
        assert!(t.fmax_mhz > 0.0);
        for r in &t.rows {
            assert!(r.power_mw_100 > 0.0, "{}", r.format);
            assert!(r.efficiency_gflops_w > 0.0, "{}", r.format);
        }
        // The calibration rode along so it can be persisted with the table.
        assert!(GlitchCalibration::parse(&cal.to_json()).is_ok());
    }

    #[test]
    fn placement_study_has_three_rows() {
        let s = placement_study();
        assert_eq!(s.rows.len(), 3);
        assert!(s
            .rows
            .iter()
            .all(|(_, ps, _, _, dffs)| *ps > 0.0 && *dffs > 0));
    }
}
