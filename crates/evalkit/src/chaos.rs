//! Seeded chaos campaigns over the resilient pool engine: a mixed-format
//! workload pushed through an [`Engine`] while a [`ChaosPlan`] injects
//! SEUs, stuck-ats and glitch storms, judged by the two invariants of
//! `mfm-resilient` — zero escaped wrong answers and capacity that
//! degrades and recovers.
//!
//! Everything (operands, plan, backoff jitter, the engine scheduler) is
//! a pure function of the seed, so a campaign is bit-reproducible.

use mfm_gatesim::report::Table;
use mfm_gatesim::{NetId, Netlist, TechLibrary};
use mfm_resilient::{
    apply_event, BackoffConfig, BreakerConfig, ChaosPlan, ChaosPlanConfig, Engine, EngineConfig,
    HealthState, HealthTransition, SubmitBackoff,
};
use mfm_telemetry::Registry;
use mfmult::pipeline::{build_pipelined_unit_opts, PipelinePlacement};
use mfmult::structural::{build_unit, build_unit_quad, UnitOptions};
use mfmult::Format;

use crate::runreport::RunReport;
use crate::workload::OperandGen;

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCampaignConfig {
    /// Master seed: operands, plan and backoff jitter derive from it.
    pub seed: u64,
    /// Pool size.
    pub units: usize,
    /// Workload length (operations submitted).
    pub ops: u64,
    /// Fault events the plan schedules.
    pub faults: usize,
    /// Use the 3-stage pipelined build (Fig. 5); `false` uses the
    /// combinational unit (faster, but SEU events are masked there —
    /// chaos then rides on stuck-ats and glitch storms).
    pub pipelined: bool,
    /// Build the quad-binary16 extension and include quad operations.
    pub quad_lanes: bool,
    /// Submission queue depth; 0 means "same as the pool size".
    pub queue_depth: usize,
    /// Circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Caller backoff policy for `Busy` rejections.
    pub backoff: BackoffConfig,
    /// Watchdog headroom factor (see [`EngineConfig`]).
    pub watchdog_margin: u64,
    /// Probability a scheduled fault is a Byzantine output-latch fault
    /// (scrub-clean, caught only by redundant execution). 0 keeps the
    /// plan stream bit-identical to pre-Byzantine campaigns.
    pub byzantine_fraction: f64,
    /// Cold hot-spare units promoted when an active unit retires.
    pub spares: usize,
    /// Scrub-battery operations replayed per idle engine tick (patrol
    /// scrubbing); 0 disables.
    pub patrol_slice: usize,
}

impl Default for ChaosCampaignConfig {
    fn default() -> Self {
        ChaosCampaignConfig {
            seed: 2017,
            units: 4,
            ops: 300,
            faults: 60,
            pipelined: true,
            quad_lanes: false,
            queue_depth: 0,
            breaker: BreakerConfig::default(),
            backoff: BackoffConfig::default(),
            watchdog_margin: 4,
            byzantine_fraction: 0.0,
            spares: 0,
            patrol_slice: 0,
        }
    }
}

/// Per-unit outcome of a campaign.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Pool slot.
    pub unit: usize,
    /// Health state at the end of the run.
    pub final_state: HealthState,
    /// Operations served.
    pub ops: u64,
    /// Check failures observed (first attempt per operation).
    pub mismatches: u64,
    /// Operations served by the functional fallback.
    pub fallback_ops: u64,
    /// Successful recovery scrubs.
    pub recoveries: u64,
    /// Failed recovery scrubs.
    pub failed_recoveries: u64,
    /// Per-op watchdog trips.
    pub watchdog_trips: u64,
    /// The full breaker transition log.
    pub transitions: Vec<HealthTransition>,
}

/// One capacity-timeline point: `(tick, hw_capacity, dispatchable,
/// queued)`.
pub type TimelinePoint = (u64, u32, u32, u32);

/// Everything one campaign produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Config echo: seed.
    pub seed: u64,
    /// Config echo: pool size.
    pub units: usize,
    /// Config echo: workload length.
    pub ops: u64,
    /// Fault events actually scheduled (excludes clear-faults).
    pub faults_injected: u64,
    /// Events by kind, as `(label, count)`.
    pub fault_kind_counts: Vec<(&'static str, u64)>,
    /// Operations accepted into the queue.
    pub submitted: u64,
    /// Operations completed (always equals `submitted`: the queue is
    /// always drained).
    pub completed: u64,
    /// Operations abandoned after the backoff budget ran out.
    pub dropped: u64,
    /// `Busy` rejections answered with backoff.
    pub busy_rejections: u64,
    /// Ticks spent waiting in backoff.
    pub backoff_wait_ticks: u64,
    /// Wrong answers delivered. The invariant is that this is zero.
    pub escapes: u64,
    /// Corrupted results caught and substituted by the masking
    /// reference vote (would-be escapes).
    pub masked: u64,
    /// DMR shadow executions run for Suspect-unit dispatches.
    pub dmr_shadows: u64,
    /// Cold spares promoted to replace retired units.
    pub promotions: u64,
    /// Patrol-scrub slices run on idle ticks / slices that failed.
    pub patrol: (u64, u64),
    /// Scrubs run / passed.
    pub scrubs: u64,
    /// Scrubs that readmitted their unit.
    pub scrub_passes: u64,
    /// Completed `Quarantined → Probation → Healthy` cycles.
    pub recovery_cycles: u64,
    /// Units retired by the end.
    pub retired: u64,
    /// Scheduler ticks consumed.
    pub ticks: u64,
    /// The calibrated per-op settle-event ceiling.
    pub watchdog_budget: u64,
    /// Per-unit outcomes.
    pub unit_outcomes: Vec<UnitOutcome>,
    /// Capacity timeline, one point per tick.
    pub timeline: Vec<TimelinePoint>,
}

impl ChaosReport {
    /// Minimum gate-level capacity observed during the run.
    pub fn min_hw_capacity(&self) -> u32 {
        self.timeline.iter().map(|p| p.1).min().unwrap_or(0)
    }

    /// Gate-level capacity at the end of the run.
    pub fn final_hw_capacity(&self) -> u32 {
        self.timeline.last().map(|p| p.1).unwrap_or(0)
    }

    /// Records the campaign into a [`RunReport`]: parameters, the
    /// per-unit lifecycle table, the transition trail and the capacity
    /// timeline series.
    pub fn to_run_report(&self, r: &mut RunReport) {
        r.param("seed", &self.seed.to_string())
            .param("units", &self.units.to_string())
            .param("ops", &self.ops.to_string())
            .param("faults", &self.faults_injected.to_string())
            .param("escapes", &self.escapes.to_string())
            .param("masked", &self.masked.to_string())
            .param("dmr_shadows", &self.dmr_shadows.to_string())
            .param("promotions", &self.promotions.to_string())
            .param("patrol_slices", &self.patrol.0.to_string())
            .param("recovery_cycles", &self.recovery_cycles.to_string())
            .param("retired", &self.retired.to_string())
            .param("watchdog_budget", &self.watchdog_budget.to_string());
        let mut t = Table::new(&[
            "unit",
            "final state",
            "ops",
            "mismatches",
            "fallback",
            "scrubs ok/fail",
            "watchdog trips",
        ]);
        for u in &self.unit_outcomes {
            t.row_owned(vec![
                u.unit.to_string(),
                u.final_state.to_string(),
                u.ops.to_string(),
                u.mismatches.to_string(),
                u.fallback_ops.to_string(),
                format!("{}/{}", u.recoveries, u.failed_recoveries),
                u.watchdog_trips.to_string(),
            ]);
        }
        r.add_table("Unit lifecycle", t);
        let mut t = Table::new(&["unit", "tick", "from", "to", "reason", "trace"]);
        for u in &self.unit_outcomes {
            for tr in &u.transitions {
                t.row_owned(vec![
                    u.unit.to_string(),
                    tr.tick.to_string(),
                    tr.from.to_string(),
                    tr.to.to_string(),
                    tr.reason.clone(),
                    tr.trace
                        .map_or_else(|| "-".to_string(), |t| format!("{t:016x}")),
                ]);
            }
        }
        r.add_table("Health transitions", t);
        let mut t = Table::new(&["kind", "events"]);
        for (label, count) in &self.fault_kind_counts {
            t.row_owned(vec![label.to_string(), count.to_string()]);
        }
        r.add_table("Chaos plan", t);
        r.add_series(
            "pool.hw_capacity",
            self.timeline.iter().map(|p| (p.0, p.1 as f64)),
        );
        r.add_series(
            "pool.queued",
            self.timeline.iter().map(|p| (p.0, p.3 as f64)),
        );
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos campaign: seed {}, {} units, {} ops, {} faults",
            self.seed, self.units, self.ops, self.faults_injected
        )?;
        writeln!(
            f,
            "  submitted {} / completed {} (busy {}, backoff wait {} tick(s), dropped {}), \
             escapes {}",
            self.submitted,
            self.completed,
            self.busy_rejections,
            self.backoff_wait_ticks,
            self.dropped,
            self.escapes
        )?;
        writeln!(
            f,
            "  scrubs {} ({} passed), recovery cycles {}, retired {}, \
             watchdog budget {} events/op",
            self.scrubs,
            self.scrub_passes,
            self.recovery_cycles,
            self.retired,
            self.watchdog_budget
        )?;
        writeln!(
            f,
            "  redundancy: masked {}, dmr shadows {}, promotions {}, \
             patrol {}/{} slices failed",
            self.masked, self.dmr_shadows, self.promotions, self.patrol.1, self.patrol.0
        )?;
        writeln!(
            f,
            "  hw capacity: min {} / final {} of {}, {} tick(s)",
            self.min_hw_capacity(),
            self.final_hw_capacity(),
            self.units,
            self.ticks
        )?;
        let mut t = Table::new(&[
            "unit",
            "final state",
            "ops",
            "mismatches",
            "fallback",
            "scrubs ok/fail",
            "watchdog trips",
            "transitions",
        ]);
        for u in &self.unit_outcomes {
            t.row_owned(vec![
                u.unit.to_string(),
                u.final_state.to_string(),
                u.ops.to_string(),
                u.mismatches.to_string(),
                u.fallback_ops.to_string(),
                format!("{}/{}", u.recoveries, u.failed_recoveries),
                u.watchdog_trips.to_string(),
                u.transitions.len().to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs one seeded chaos campaign (see the module docs). When a
/// registry is given the engine's pool gauges and the units' selfcheck
/// counters are registered there.
pub fn run_chaos_campaign(cfg: &ChaosCampaignConfig, registry: Option<&Registry>) -> ChaosReport {
    let mut netlist = Netlist::new(TechLibrary::cmos45lp());
    let ports = if cfg.pipelined {
        build_pipelined_unit_opts(
            &mut netlist,
            PipelinePlacement::Fig5,
            UnitOptions {
                quad_lanes: cfg.quad_lanes,
                ..UnitOptions::default()
            },
        )
    } else if cfg.quad_lanes {
        build_unit_quad(&mut netlist)
    } else {
        build_unit(&mut netlist)
    };
    let ecfg = EngineConfig {
        queue_depth: if cfg.queue_depth == 0 {
            cfg.units
        } else {
            cfg.queue_depth
        },
        breaker: cfg.breaker,
        watchdog_margin: cfg.watchdog_margin,
        quad_lanes: cfg.quad_lanes,
        spares: cfg.spares,
        patrol_slice: cfg.patrol_slice,
    };
    let mut engine = Engine::new(&netlist, &ports, cfg.units, ecfg);
    if let Some(reg) = registry {
        engine.attach_telemetry(reg);
    }
    let plan = ChaosPlan::generate(&ChaosPlanConfig {
        seed: cfg.seed,
        units: cfg.units,
        ops: cfg.ops,
        faults: cfg.faults,
        byzantine_fraction: cfg.byzantine_fraction,
        ..ChaosPlanConfig::default()
    });
    let sites: Vec<NetId> = netlist.cells().iter().map(|c| c.output).collect();
    let formats: &[Format] = if cfg.quad_lanes {
        &[
            Format::Int64,
            Format::Binary64,
            Format::DualBinary32,
            Format::SingleBinary32,
            Format::QuadBinary16,
        ]
    } else {
        &[
            Format::Int64,
            Format::Binary64,
            Format::DualBinary32,
            Format::SingleBinary32,
        ]
    };
    let mut gen = OperandGen::new(cfg.seed ^ 0x6d66_6d5f_6f70_7321);
    let mut next_event = 0usize;
    let mut busy_rejections = 0u64;
    let mut backoff_wait_ticks = 0u64;
    let mut dropped = 0u64;
    for k in 0..cfg.ops {
        while next_event < plan.events.len() && plan.events[next_event].at_op <= k {
            apply_event(&mut engine, &plan.events[next_event], &sites, ports.latency);
            next_event += 1;
        }
        let op = gen.operation(formats[(k % formats.len() as u64) as usize]);
        let mut backoff = SubmitBackoff::new(
            cfg.backoff,
            cfg.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        loop {
            match engine.submit(op) {
                Ok(_) => break,
                Err(_) => {
                    busy_rejections += 1;
                    match backoff.next_delay() {
                        Some(delay) => {
                            backoff_wait_ticks += delay;
                            for _ in 0..delay {
                                engine.tick();
                            }
                        }
                        None => {
                            dropped += 1;
                            break;
                        }
                    }
                }
            }
        }
        engine.tick();
    }
    // Drain the queue, then let outstanding quarantines resolve so the
    // report shows every unit's terminal state (recovered or retired).
    while engine.pending() > 0 {
        engine.tick();
    }
    let settle =
        (cfg.breaker.cooldown_ticks as u64 + 1) * (cfg.breaker.max_scrub_failures as u64 + 1) + 4;
    for _ in 0..settle {
        engine.tick();
    }

    let completed = engine.take_completed();
    let (submitted, _, done, scrubs, scrub_passes) = engine.totals();
    debug_assert_eq!(done as usize, completed.len());
    // Outcomes cover the whole pool, spares included.
    let pool = engine.unit_count();
    let mut unit_outcomes = Vec::with_capacity(pool);
    let mut recovery_cycles = 0u64;
    let mut retired = 0u64;
    for i in 0..pool {
        let stats = engine.unit(i).stats();
        let transitions = engine.transitions(i).to_vec();
        recovery_cycles += transitions
            .iter()
            .filter(|t| t.from == HealthState::Probation && t.to == HealthState::Healthy)
            .count() as u64;
        if engine.unit_state(i) == HealthState::Retired {
            retired += 1;
        }
        unit_outcomes.push(UnitOutcome {
            unit: i,
            final_state: engine.unit_state(i),
            ops: stats.ops,
            mismatches: stats.mismatches,
            fallback_ops: stats.fallback_ops,
            recoveries: stats.recoveries,
            failed_recoveries: stats.failed_recoveries,
            watchdog_trips: engine.watchdog_trips(i),
            transitions,
        });
    }
    ChaosReport {
        seed: cfg.seed,
        units: cfg.units,
        ops: cfg.ops,
        faults_injected: plan.fault_count() as u64,
        fault_kind_counts: plan.kind_counts(),
        submitted,
        completed: done,
        dropped,
        busy_rejections,
        backoff_wait_ticks,
        escapes: engine.escapes(),
        masked: engine.masked(),
        dmr_shadows: engine.dmr_shadows(),
        promotions: engine.promotions(),
        patrol: engine.patrol_stats(),
        scrubs,
        scrub_passes,
        recovery_cycles,
        retired,
        ticks: engine.now(),
        watchdog_budget: engine.watchdog_budget(),
        unit_outcomes,
        timeline: engine
            .timeline()
            .iter()
            .map(|s| (s.tick, s.hw_capacity, s.dispatchable, s.queued))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosCampaignConfig {
        ChaosCampaignConfig {
            seed: 0xc4a0,
            units: 2,
            ops: if cfg!(debug_assertions) { 24 } else { 120 },
            faults: 8,
            pipelined: false,
            breaker: BreakerConfig {
                open_after: 2,
                heal_after: 4,
                cooldown_ticks: 2,
                max_scrub_failures: 2,
            },
            ..ChaosCampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_and_escape_free() {
        let cfg = small();
        let a = run_chaos_campaign(&cfg, None);
        let b = run_chaos_campaign(&cfg, None);
        assert_eq!(a.escapes, 0, "zero wrong answers escape:\n{a}");
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.scrubs, b.scrubs);
        assert_eq!(a.recovery_cycles, b.recovery_cycles);
        assert_eq!(a.timeline, b.timeline, "tick-exact reproducibility");
        assert_eq!(a.completed + a.dropped, a.ops, "every op accounted for");
    }

    #[test]
    fn byzantine_campaigns_stay_escape_free_with_spares_and_patrol() {
        let mut cfg = small();
        cfg.byzantine_fraction = 0.5;
        cfg.spares = 1;
        cfg.patrol_slice = 4;
        let rep = run_chaos_campaign(&cfg, None);
        assert_eq!(rep.escapes, 0, "byzantine faults never escape:\n{rep}");
        assert!(
            rep.fault_kind_counts
                .iter()
                .any(|&(l, c)| l == "byzantine" && c > 0),
            "the plan scheduled byzantine faults: {:?}",
            rep.fault_kind_counts
        );
        assert_eq!(
            rep.unit_outcomes.len(),
            cfg.units + cfg.spares,
            "outcomes cover the spare pool too"
        );
        assert_eq!(rep.completed + rep.dropped, rep.ops);
        let text = rep.to_string();
        assert!(text.contains("redundancy: masked"), "{text}");
    }

    #[test]
    fn report_renders_and_round_trips_json() {
        let cfg = small();
        let registry = Registry::new();
        let rep = run_chaos_campaign(&cfg, Some(&registry));
        let text = rep.to_string();
        assert!(text.contains("chaos campaign"), "{text}");
        let mut rr = RunReport::new("chaos-test");
        rep.to_run_report(&mut rr);
        rr.with_telemetry(&registry);
        let json = rr.to_json();
        mfm_telemetry::json::check(&json).expect("well-formed report JSON");
        assert!(json.contains("\"pool.hw_capacity\""));
        assert!(json.contains("\"recovery_cycles\""));
        assert_eq!(
            registry.counter("pool.completed").get(),
            rep.completed,
            "registry mirrors the engine"
        );
    }
}
