//! Pseudo-random operand generation per format.
//!
//! The paper estimates power with "pseudo-random input patterns". For the
//! integer format that is uniform 64-bit words; for the floating-point
//! formats this module generates *valid finite normal* operands whose
//! exponents are drawn from a window around the bias so products neither
//! overflow nor underflow (overflow/underflow bypass logic would otherwise
//! idle large parts of the datapath and skew the power numbers).

use mfm_prng::Rng;
use mfmult::{Format, Operation};

/// Deterministic operand generator (seeded, reproducible).
#[derive(Debug)]
pub struct OperandGen {
    rng: Rng,
}

impl OperandGen {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        OperandGen {
            rng: Rng::new(seed),
        }
    }

    /// A uniform 64-bit unsigned pair.
    pub fn int64_pair(&mut self) -> (u64, u64) {
        (self.rng.next_u64(), self.rng.next_u64())
    }

    /// A finite normal binary64 encoding with exponent within
    /// `bias ± spread`.
    pub fn b64_normal(&mut self, spread: i64) -> u64 {
        let sign: u64 = self.rng.range_u64(0, 2);
        let exp = (1023 + self.rng.range_i64(-spread, spread + 1)) as u64;
        let frac: u64 = self.rng.next_u64() & ((1 << 52) - 1);
        (sign << 63) | (exp << 52) | frac
    }

    /// A finite normal binary32 encoding with exponent within
    /// `bias ± spread`.
    pub fn b32_normal(&mut self, spread: i64) -> u32 {
        let sign: u32 = self.rng.range_u64(0, 2) as u32;
        let exp = (127 + self.rng.range_i64(-spread, spread + 1)) as u32;
        let frac: u32 = self.rng.next_u32() & ((1 << 23) - 1);
        (sign << 31) | (exp << 23) | frac
    }

    /// A random operation of the given format with valid operands.
    pub fn operation(&mut self, format: Format) -> Operation {
        match format {
            Format::Int64 => {
                let (x, y) = self.int64_pair();
                Operation::int64(x, y)
            }
            Format::Binary64 => Operation::binary64(self.b64_normal(400), self.b64_normal(400)),
            Format::DualBinary32 => Operation::dual_binary32(
                self.b32_normal(40),
                self.b32_normal(40),
                self.b32_normal(40),
                self.b32_normal(40),
            ),
            Format::SingleBinary32 => {
                Operation::single_binary32(self.b32_normal(40), self.b32_normal(40))
            }
            Format::QuadBinary16 => Operation::quad_binary16(
                [
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                ],
                [
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                ],
            ),
        }
    }

    /// A finite normal binary16 encoding with exponent within
    /// `bias ± spread`.
    pub fn b16_normal(&mut self, spread: i64) -> u16 {
        let sign: u16 = self.rng.range_u64(0, 2) as u16;
        let exp = (15 + self.rng.range_i64(-spread, spread + 1)) as u16;
        let frac: u16 = self.rng.next_u16() & ((1 << 10) - 1);
        (sign << 15) | (exp << 10) | frac
    }

    /// Advances a correlated operand pair: each bit of each word flips
    /// with probability `p_flip` between consecutive vectors. `p_flip =
    /// 0.5` is the uncorrelated (maximum-activity) case; small values
    /// model slowly varying operands. Used by the activity-sweep ablation.
    pub fn correlated_step(&mut self, state: &mut (u64, u64), p_flip: f64) -> (u64, u64) {
        let flip_word = |rng: &mut Rng| -> u64 {
            let mut m = 0u64;
            for i in 0..64 {
                if rng.next_f64() < p_flip {
                    m |= 1 << i;
                }
            }
            m
        };
        state.0 ^= flip_word(&mut self.rng);
        state.1 ^= flip_word(&mut self.rng);
        *state
    }

    /// A binary64 value guaranteed reducible by Algorithm 1: exponent in
    /// `(896, 1151)` and the 29 significand LSBs zero.
    pub fn reducible_b64(&mut self) -> u64 {
        let sign: u64 = self.rng.range_u64(0, 2);
        let exp: u64 = self.rng.range_u64(897, 1151);
        let frac: u64 = (self.rng.next_u64() & ((1 << 52) - 1)) & !((1 << 29) - 1);
        (sign << 63) | (exp << 52) | frac
    }

    /// A binary64 that is *representable in binary32 with probability
    /// `p_reducible`* — models a workload where a fraction of doubles fit
    /// single precision (the paper's motivation for Sec. IV).
    pub fn mixed_b64(&mut self, p_reducible: f64) -> u64 {
        if self.rng.next_f64() < p_reducible {
            self.reducible_b64()
        } else {
            self.b64_normal(600)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_softfloat::convert::reduce_b64_to_b32;

    #[test]
    fn deterministic_given_seed() {
        let mut a = OperandGen::new(7);
        let mut b = OperandGen::new(7);
        for _ in 0..10 {
            assert_eq!(a.int64_pair(), b.int64_pair());
        }
    }

    #[test]
    fn b64_normals_are_finite_normal() {
        let mut g = OperandGen::new(1);
        for _ in 0..200 {
            let x = f64::from_bits(g.b64_normal(400));
            assert!(x.is_finite() && x != 0.0 && !x.is_subnormal());
        }
    }

    #[test]
    fn b32_normals_are_finite_normal() {
        let mut g = OperandGen::new(2);
        for _ in 0..200 {
            let x = f32::from_bits(g.b32_normal(40));
            assert!(x.is_finite() && x != 0.0 && !x.is_subnormal());
        }
    }

    #[test]
    fn b64_products_rarely_leave_range() {
        // The spread is chosen so products of two operands stay normal.
        let mut g = OperandGen::new(3);
        let mut bad = 0;
        for _ in 0..500 {
            let a = f64::from_bits(g.b64_normal(400));
            let b = f64::from_bits(g.b64_normal(400));
            let p = a * b;
            if !p.is_finite() || p == 0.0 || p.is_subnormal() {
                bad += 1;
            }
        }
        assert!(bad < 25, "{bad}/500 products left the normal range");
    }

    #[test]
    fn reducible_values_reduce() {
        let mut g = OperandGen::new(4);
        for _ in 0..200 {
            let bits = g.reducible_b64();
            assert!(reduce_b64_to_b32(bits).is_some(), "{bits:#x}");
        }
    }

    #[test]
    fn mixed_ratio_roughly_holds() {
        let mut g = OperandGen::new(5);
        let n = 1000;
        let reducible = (0..n)
            .filter(|_| reduce_b64_to_b32(g.mixed_b64(0.5)).is_some())
            .count();
        assert!(
            (350..=650).contains(&reducible),
            "expected ≈50% reducible, got {reducible}/1000"
        );
    }

    #[test]
    fn operations_have_requested_format() {
        let mut g = OperandGen::new(6);
        for f in Format::ALL {
            assert_eq!(g.operation(f).format, f);
        }
        // Single-lane ops keep the upper operands zero.
        let op = g.operation(Format::SingleBinary32);
        assert_eq!(op.xa >> 32, 0);
        // Quad operands are four valid normal binary16 encodings.
        let op = g.operation(Format::QuadBinary16);
        assert_eq!(op.format, Format::QuadBinary16);
        for k in 0..4 {
            let e = (op.xa >> (16 * k + 10)) & 0x1F;
            assert!(e > 0 && e < 31, "lane {k} exponent {e}");
        }
    }

    #[test]
    fn b16_normals_are_finite_normal() {
        let mut g = OperandGen::new(8);
        for _ in 0..200 {
            let enc = g.b16_normal(4);
            let e = (enc >> 10) & 0x1F;
            assert!(e > 0 && e < 31);
        }
    }

    #[test]
    fn correlated_steps_flip_expected_fraction() {
        let mut g = OperandGen::new(9);
        let mut state = (0u64, 0u64);
        let mut flips = 0u32;
        let n = 200;
        let mut prev = state;
        for _ in 0..n {
            let (x, y) = g.correlated_step(&mut state, 0.25);
            flips += (x ^ prev.0).count_ones() + (y ^ prev.1).count_ones();
            prev = (x, y);
        }
        let rate = flips as f64 / (n as f64 * 128.0);
        assert!((0.2..0.3).contains(&rate), "flip rate {rate}");
    }
}
