//! Pseudo-random operand generation per format.
//!
//! The paper estimates power with "pseudo-random input patterns". For the
//! integer format that is uniform 64-bit words; for the floating-point
//! formats this module generates *valid finite normal* operands whose
//! exponents are drawn from a window around the bias so products neither
//! overflow nor underflow (overflow/underflow bypass logic would otherwise
//! idle large parts of the datapath and skew the power numbers).

use mfm_prng::Rng;
use mfmult::{Format, Operation};

/// Deterministic operand generator (seeded, reproducible).
#[derive(Debug)]
pub struct OperandGen {
    rng: Rng,
}

impl OperandGen {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        OperandGen {
            rng: Rng::new(seed),
        }
    }

    /// A uniform 64-bit unsigned pair.
    pub fn int64_pair(&mut self) -> (u64, u64) {
        (self.rng.next_u64(), self.rng.next_u64())
    }

    /// A finite normal binary64 encoding with exponent within
    /// `bias ± spread`.
    pub fn b64_normal(&mut self, spread: i64) -> u64 {
        let sign: u64 = self.rng.range_u64(0, 2);
        let exp = (1023 + self.rng.range_i64(-spread, spread + 1)) as u64;
        let frac: u64 = self.rng.next_u64() & ((1 << 52) - 1);
        (sign << 63) | (exp << 52) | frac
    }

    /// A finite normal binary32 encoding with exponent within
    /// `bias ± spread`.
    pub fn b32_normal(&mut self, spread: i64) -> u32 {
        let sign: u32 = self.rng.range_u64(0, 2) as u32;
        let exp = (127 + self.rng.range_i64(-spread, spread + 1)) as u32;
        let frac: u32 = self.rng.next_u32() & ((1 << 23) - 1);
        (sign << 31) | (exp << 23) | frac
    }

    /// A random operation of the given format with valid operands.
    pub fn operation(&mut self, format: Format) -> Operation {
        match format {
            Format::Int64 => {
                let (x, y) = self.int64_pair();
                Operation::int64(x, y)
            }
            Format::Binary64 => Operation::binary64(self.b64_normal(400), self.b64_normal(400)),
            Format::DualBinary32 => Operation::dual_binary32(
                self.b32_normal(40),
                self.b32_normal(40),
                self.b32_normal(40),
                self.b32_normal(40),
            ),
            Format::SingleBinary32 => {
                Operation::single_binary32(self.b32_normal(40), self.b32_normal(40))
            }
            Format::QuadBinary16 => Operation::quad_binary16(
                [
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                ],
                [
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                    self.b16_normal(4),
                ],
            ),
        }
    }

    /// A finite normal binary16 encoding with exponent within
    /// `bias ± spread`.
    pub fn b16_normal(&mut self, spread: i64) -> u16 {
        let sign: u16 = self.rng.range_u64(0, 2) as u16;
        let exp = (15 + self.rng.range_i64(-spread, spread + 1)) as u16;
        let frac: u16 = self.rng.next_u16() & ((1 << 10) - 1);
        (sign << 15) | (exp << 10) | frac
    }

    /// Advances a correlated operand pair: each bit of each word flips
    /// with probability `p_flip` between consecutive vectors. `p_flip =
    /// 0.5` is the uncorrelated (maximum-activity) case; small values
    /// model slowly varying operands. Used by the activity-sweep ablation.
    pub fn correlated_step(&mut self, state: &mut (u64, u64), p_flip: f64) -> (u64, u64) {
        let flip_word = |rng: &mut Rng| -> u64 {
            let mut m = 0u64;
            for i in 0..64 {
                if rng.next_f64() < p_flip {
                    m |= 1 << i;
                }
            }
            m
        };
        state.0 ^= flip_word(&mut self.rng);
        state.1 ^= flip_word(&mut self.rng);
        *state
    }

    /// A binary64 value guaranteed reducible by Algorithm 1: exponent in
    /// `(896, 1151)` and the 29 significand LSBs zero.
    pub fn reducible_b64(&mut self) -> u64 {
        let sign: u64 = self.rng.range_u64(0, 2);
        let exp: u64 = self.rng.range_u64(897, 1151);
        let frac: u64 = (self.rng.next_u64() & ((1 << 52) - 1)) & !((1 << 29) - 1);
        (sign << 63) | (exp << 52) | frac
    }

    /// A binary64 that is *representable in binary32 with probability
    /// `p_reducible`* — models a workload where a fraction of doubles fit
    /// single precision (the paper's motivation for Sec. IV).
    pub fn mixed_b64(&mut self, p_reducible: f64) -> u64 {
        if self.rng.next_f64() < p_reducible {
            self.reducible_b64()
        } else {
            self.b64_normal(600)
        }
    }
}

/// Knobs for an open-loop arrival process: exponential inter-arrival
/// gaps (a Poisson stream) modulated by periodic bursts. Open-loop
/// means arrivals do not wait for responses — the model for "millions
/// of users", where offered load is independent of service capacity and
/// overload is a real state the server must survive.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalConfig {
    /// Seed for the process's private PRNG stream.
    pub seed: u64,
    /// Mean inter-arrival gap outside bursts, in microseconds.
    pub mean_gap_micros: f64,
    /// Arrivals between burst onsets (0 disables bursts).
    pub burst_every: u64,
    /// Arrivals per burst.
    pub burst_len: u64,
    /// Rate multiplier during a burst (> 1 compresses the gaps).
    pub burst_factor: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            seed: 2017,
            mean_gap_micros: 200.0,
            burst_every: 64,
            burst_len: 16,
            burst_factor: 8.0,
        }
    }
}

/// A seeded open-loop arrival process (see [`ArrivalConfig`]). Pure
/// function of the seed: the gap sequence replays bit-identically.
#[derive(Debug)]
pub struct Arrivals {
    cfg: ArrivalConfig,
    rng: Rng,
    emitted: u64,
}

impl Arrivals {
    /// Creates the process.
    pub fn new(cfg: ArrivalConfig) -> Self {
        Arrivals {
            cfg,
            rng: Rng::new(cfg.seed ^ 0xa881_17a5_0b5e_55ed),
            emitted: 0,
        }
    }

    /// Whether the *next* arrival falls inside a burst window.
    pub fn in_burst(&self) -> bool {
        self.cfg.burst_every > 0 && self.emitted % self.cfg.burst_every < self.cfg.burst_len
    }

    /// Arrivals generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The gap before the next arrival, in microseconds: an exponential
    /// draw whose mean is `mean_gap_micros`, divided by `burst_factor`
    /// while a burst window is open.
    pub fn next_gap_micros(&mut self) -> u64 {
        let mut mean = self.cfg.mean_gap_micros.max(1.0);
        if self.in_burst() {
            mean /= self.cfg.burst_factor.max(1.0);
        }
        self.emitted += 1;
        // Inverse-CDF exponential; 1 - u is in (0, 1] so ln is finite.
        let u = self.rng.next_f64();
        (-mean * (1.0 - u).ln()).round() as u64
    }
}

/// A weighted mixed-format traffic profile for serving workloads.
#[derive(Debug, Clone)]
pub struct FormatMix {
    weights: Vec<(Format, f64)>,
    total: f64,
}

impl FormatMix {
    /// Builds a mix from `(format, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no pair has a positive weight.
    pub fn new(weights: &[(Format, f64)]) -> Self {
        let kept: Vec<(Format, f64)> = weights.iter().copied().filter(|&(_, w)| w > 0.0).collect();
        let total: f64 = kept.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "a format mix needs positive weight");
        FormatMix {
            weights: kept,
            total,
        }
    }

    /// The paper-motivated default: integer-heavy compute with a solid
    /// dual-binary32 share (the power win lives there) and the rest
    /// split between binary64 and single binary32.
    pub fn serving_default() -> Self {
        FormatMix::new(&[
            (Format::Int64, 0.35),
            (Format::Binary64, 0.25),
            (Format::DualBinary32, 0.30),
            (Format::SingleBinary32, 0.10),
        ])
    }

    /// The formats with positive weight, in declaration order.
    pub fn formats(&self) -> impl Iterator<Item = Format> + '_ {
        self.weights.iter().map(|&(f, _)| f)
    }
}

impl OperandGen {
    /// A random operation whose format is drawn from `mix` and whose
    /// operands are valid for that format — one call consumes the
    /// generator's stream deterministically.
    pub fn mixed_operation(&mut self, mix: &FormatMix) -> Operation {
        let mut roll = self.rng.next_f64() * mix.total;
        let mut chosen = mix.weights[mix.weights.len() - 1].0;
        for &(f, w) in &mix.weights {
            if roll < w {
                chosen = f;
                break;
            }
            roll -= w;
        }
        self.operation(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_softfloat::convert::reduce_b64_to_b32;

    #[test]
    fn deterministic_given_seed() {
        let mut a = OperandGen::new(7);
        let mut b = OperandGen::new(7);
        for _ in 0..10 {
            assert_eq!(a.int64_pair(), b.int64_pair());
        }
    }

    #[test]
    fn b64_normals_are_finite_normal() {
        let mut g = OperandGen::new(1);
        for _ in 0..200 {
            let x = f64::from_bits(g.b64_normal(400));
            assert!(x.is_finite() && x != 0.0 && !x.is_subnormal());
        }
    }

    #[test]
    fn b32_normals_are_finite_normal() {
        let mut g = OperandGen::new(2);
        for _ in 0..200 {
            let x = f32::from_bits(g.b32_normal(40));
            assert!(x.is_finite() && x != 0.0 && !x.is_subnormal());
        }
    }

    #[test]
    fn b64_products_rarely_leave_range() {
        // The spread is chosen so products of two operands stay normal.
        let mut g = OperandGen::new(3);
        let mut bad = 0;
        for _ in 0..500 {
            let a = f64::from_bits(g.b64_normal(400));
            let b = f64::from_bits(g.b64_normal(400));
            let p = a * b;
            if !p.is_finite() || p == 0.0 || p.is_subnormal() {
                bad += 1;
            }
        }
        assert!(bad < 25, "{bad}/500 products left the normal range");
    }

    #[test]
    fn reducible_values_reduce() {
        let mut g = OperandGen::new(4);
        for _ in 0..200 {
            let bits = g.reducible_b64();
            assert!(reduce_b64_to_b32(bits).is_some(), "{bits:#x}");
        }
    }

    #[test]
    fn mixed_ratio_roughly_holds() {
        let mut g = OperandGen::new(5);
        let n = 1000;
        let reducible = (0..n)
            .filter(|_| reduce_b64_to_b32(g.mixed_b64(0.5)).is_some())
            .count();
        assert!(
            (350..=650).contains(&reducible),
            "expected ≈50% reducible, got {reducible}/1000"
        );
    }

    #[test]
    fn operations_have_requested_format() {
        let mut g = OperandGen::new(6);
        for f in Format::ALL {
            assert_eq!(g.operation(f).format, f);
        }
        // Single-lane ops keep the upper operands zero.
        let op = g.operation(Format::SingleBinary32);
        assert_eq!(op.xa >> 32, 0);
        // Quad operands are four valid normal binary16 encodings.
        let op = g.operation(Format::QuadBinary16);
        assert_eq!(op.format, Format::QuadBinary16);
        for k in 0..4 {
            let e = (op.xa >> (16 * k + 10)) & 0x1F;
            assert!(e > 0 && e < 31, "lane {k} exponent {e}");
        }
    }

    #[test]
    fn b16_normals_are_finite_normal() {
        let mut g = OperandGen::new(8);
        for _ in 0..200 {
            let enc = g.b16_normal(4);
            let e = (enc >> 10) & 0x1F;
            assert!(e > 0 && e < 31);
        }
    }

    #[test]
    fn arrivals_are_deterministic_and_hit_the_mean() {
        let cfg = ArrivalConfig {
            seed: 31,
            mean_gap_micros: 500.0,
            burst_every: 0,
            burst_len: 0,
            burst_factor: 1.0,
        };
        let gaps = |cfg| {
            let mut a = Arrivals::new(cfg);
            (0..4000).map(|_| a.next_gap_micros()).collect::<Vec<u64>>()
        };
        let g = gaps(cfg);
        assert_eq!(g, gaps(cfg), "same seed, same arrival stream");
        let mean = g.iter().sum::<u64>() as f64 / g.len() as f64;
        assert!(
            (400.0..600.0).contains(&mean),
            "exponential mean {mean} off target 500"
        );
    }

    #[test]
    fn bursts_compress_gaps_by_the_burst_factor() {
        let cfg = ArrivalConfig {
            seed: 5,
            mean_gap_micros: 1000.0,
            burst_every: 50,
            burst_len: 25,
            burst_factor: 10.0,
        };
        let mut a = Arrivals::new(cfg);
        let (mut burst_sum, mut burst_n) = (0u64, 0u64);
        let (mut calm_sum, mut calm_n) = (0u64, 0u64);
        for _ in 0..5000 {
            let in_burst = a.in_burst();
            let gap = a.next_gap_micros();
            if in_burst {
                burst_sum += gap;
                burst_n += 1;
            } else {
                calm_sum += gap;
                calm_n += 1;
            }
        }
        assert_eq!(burst_n, calm_n, "half the arrivals land in bursts");
        let (burst_mean, calm_mean) = (
            burst_sum as f64 / burst_n as f64,
            calm_sum as f64 / calm_n as f64,
        );
        let ratio = calm_mean / burst_mean;
        assert!(
            (7.0..13.0).contains(&ratio),
            "burst compression {ratio} far from factor 10"
        );
    }

    #[test]
    fn format_mix_sampling_tracks_the_weights() {
        let mix = FormatMix::serving_default();
        let mut g = OperandGen::new(77);
        let mut counts = std::collections::HashMap::new();
        let n = 4000;
        for _ in 0..n {
            let op = g.mixed_operation(&mix);
            *counts.entry(op.format.label()).or_insert(0u32) += 1;
        }
        // 35/25/30/10 split with a generous tolerance.
        let share = |l: &str| *counts.get(l).unwrap_or(&0) as f64 / n as f64;
        assert!((0.30..0.40).contains(&share("int64")), "{counts:?}");
        assert!((0.20..0.30).contains(&share("binary64")), "{counts:?}");
        assert!((0.25..0.35).contains(&share("dual_binary32")), "{counts:?}");
        assert!(
            (0.06..0.14).contains(&share("single_binary32")),
            "{counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_format_mix_panics() {
        let _ = FormatMix::new(&[(Format::Int64, 0.0)]);
    }

    #[test]
    fn correlated_steps_flip_expected_fraction() {
        let mut g = OperandGen::new(9);
        let mut state = (0u64, 0u64);
        let mut flips = 0u32;
        let n = 200;
        let mut prev = state;
        for _ in 0..n {
            let (x, y) = g.correlated_step(&mut state, 0.25);
            flips += (x ^ prev.0).count_ones() + (y ^ prev.1).count_ones();
            prev = (x, y);
        }
        let rate = flips as f64 / (n as f64 * 128.0);
        assert!((0.2..0.3).contains(&rate), "flip rate {rate}");
    }
}
