//! Machine-readable run reports: one JSON document per
//! table/figure/campaign binary, aggregating netlist statistics, static
//! timing, power breakdowns, rendered tables and a telemetry snapshot.
//!
//! Every report always carries the `area`, `power` and `telemetry`
//! sections (empty objects when the run produced nothing for them), so
//! downstream tooling can index the same keys across all binaries. The
//! JSON is rendered with the dependency-free writer in
//! [`mfm_telemetry::json`] and stays valid by construction; the test
//! suite additionally checks it with [`mfm_telemetry::json::check`].
//!
//! ```
//! use mfm_evalkit::runreport::RunReport;
//!
//! let mut r = RunReport::new("example");
//! r.param("seed", "42");
//! let json = r.to_json();
//! assert!(mfm_telemetry::json::check(&json).is_ok());
//! assert!(json.contains("\"area\":{}"));
//! ```

use std::io;
use std::path::Path;

use mfm_gatesim::report::Table;
use mfm_gatesim::{Netlist, PowerBreakdown, StaReport};
use mfm_telemetry::json::{JsonArray, JsonObject};
use mfm_telemetry::Registry;

/// Netlist statistics captured by [`RunReport::with_netlist`].
#[derive(Debug, Clone)]
struct AreaSection {
    area_um2: f64,
    area_nand2: f64,
    cells: u64,
    dffs: u64,
    nets: u64,
    by_block: Vec<(String, f64)>,
}

/// One labelled power measurement captured by [`RunReport::add_power`].
#[derive(Debug, Clone)]
struct PowerSection {
    label: String,
    breakdown: PowerBreakdown,
}

/// Timing numbers captured by [`RunReport::with_sta`].
#[derive(Debug, Clone)]
struct StaSection {
    critical_delay_ps: f64,
    min_period_ps: f64,
    max_freq_mhz: f64,
    segments: Vec<(String, f64, u64)>,
}

/// Aggregates everything one run produced into a single JSON document
/// (and a Markdown summary). See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct RunReport {
    name: String,
    params: Vec<(String, String)>,
    area: Option<AreaSection>,
    sta: Option<StaSection>,
    power: Vec<PowerSection>,
    tables: Vec<(String, Table)>,
    series: Vec<(String, Vec<(u64, f64)>)>,
    sections: Vec<(String, String)>,
    telemetry: Option<String>,
}

impl RunReport {
    /// Starts an empty report for the named run (typically the binary
    /// name, e.g. `"table3"`).
    pub fn new(name: &str) -> Self {
        RunReport {
            name: name.to_string(),
            params: Vec::new(),
            area: None,
            sta: None,
            power: Vec::new(),
            tables: Vec::new(),
            series: Vec::new(),
            sections: Vec::new(),
            telemetry: None,
        }
    }

    /// Records one run parameter (seed, vector count, …). Parameters
    /// keep insertion order.
    pub fn param(&mut self, key: &str, value: &str) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Captures the netlist's size and area statistics into the `area`
    /// section.
    pub fn with_netlist(&mut self, netlist: &Netlist) -> &mut Self {
        self.area = Some(AreaSection {
            area_um2: netlist.area_um2(),
            area_nand2: netlist.area_nand2(),
            cells: netlist.cell_count() as u64,
            dffs: netlist.dff_count() as u64,
            nets: netlist.net_count() as u64,
            by_block: netlist.area_by_block(),
        });
        self
    }

    /// Captures a static-timing report into the `sta` section.
    pub fn with_sta(&mut self, sta: &StaReport) -> &mut Self {
        self.sta = Some(StaSection {
            critical_delay_ps: sta.critical_delay_ps,
            min_period_ps: sta.min_period_ps,
            max_freq_mhz: if sta.min_period_ps > 0.0 {
                1e6 / sta.min_period_ps
            } else {
                0.0
            },
            segments: sta
                .segments
                .iter()
                .map(|s| (s.block.clone(), s.delay_ps, s.cells as u64))
                .collect(),
        });
        self
    }

    /// Adds one labelled power measurement to the `power` section
    /// (e.g. one entry per format for a Table V style run).
    pub fn add_power(&mut self, label: &str, p: &PowerBreakdown) -> &mut Self {
        self.power.push(PowerSection {
            label: label.to_string(),
            breakdown: p.clone(),
        });
        self
    }

    /// Attaches a snapshot of the registry's current metric values as
    /// the `telemetry` section. Call last, after the instrumented work
    /// has run.
    pub fn with_telemetry(&mut self, registry: &Registry) -> &mut Self {
        self.telemetry = Some(registry.snapshot_json());
        self
    }

    /// Adds a rendered result table (serialized as headers plus rows).
    pub fn add_table(&mut self, title: &str, table: Table) -> &mut Self {
        self.tables.push((title.to_string(), table));
        self
    }

    /// Attaches a custom top-level section rendered verbatim from
    /// already-serialized JSON (e.g. the findings document of a lint
    /// run). The value must be well-formed JSON; it is validated on
    /// insertion so a malformed section cannot corrupt the report.
    ///
    /// # Panics
    ///
    /// Panics if `json` is not well-formed, or if `name` collides with
    /// one of the fixed report sections.
    pub fn add_section(&mut self, name: &str, json: &str) -> &mut Self {
        const RESERVED: [&str; 8] = [
            "report",
            "params",
            "area",
            "sta",
            "power",
            "tables",
            "series",
            "telemetry",
        ];
        assert!(
            !RESERVED.contains(&name),
            "section name {name:?} collides with a fixed report section"
        );
        mfm_telemetry::json::check(json).expect("custom section must be well-formed JSON");
        self.sections.push((name.to_string(), json.to_string()));
        self
    }

    /// Adds a named time series (e.g. the pool capacity timeline of a
    /// chaos run), serialized as an array of `[t, value]` pairs under
    /// the `series` section.
    pub fn add_series(
        &mut self,
        name: &str,
        points: impl IntoIterator<Item = (u64, f64)>,
    ) -> &mut Self {
        self.series
            .push((name.to_string(), points.into_iter().collect()));
        self
    }

    /// Renders the whole report as a single JSON object. The `area`,
    /// `power` and `telemetry` keys are always present.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_str("report", &self.name);

        let mut params = JsonObject::new();
        for (k, v) in &self.params {
            params.field_str(k, v);
        }
        root.field_raw("params", &params.finish());

        let mut area = JsonObject::new();
        if let Some(a) = &self.area {
            area.field_f64("area_um2", a.area_um2)
                .field_f64("area_nand2", a.area_nand2)
                .field_u64("cells", a.cells)
                .field_u64("dffs", a.dffs)
                .field_u64("nets", a.nets);
            let mut blocks = JsonObject::new();
            for (name, um2) in &a.by_block {
                blocks.field_f64(name, *um2);
            }
            area.field_raw("by_block_um2", &blocks.finish());
        }
        root.field_raw("area", &area.finish());

        if let Some(s) = &self.sta {
            let mut sta = JsonObject::new();
            sta.field_f64("critical_delay_ps", s.critical_delay_ps)
                .field_f64("min_period_ps", s.min_period_ps)
                .field_f64("max_freq_mhz", s.max_freq_mhz);
            let mut segs = JsonArray::new();
            for (block, delay, cells) in &s.segments {
                let mut seg = JsonObject::new();
                seg.field_str("block", block)
                    .field_f64("delay_ps", *delay)
                    .field_u64("cells", *cells);
                segs.push_raw(&seg.finish());
            }
            sta.field_raw("segments", &segs.finish());
            root.field_raw("sta", &sta.finish());
        }

        let mut power = JsonObject::new();
        for s in &self.power {
            let p = &s.breakdown;
            let mut o = JsonObject::new();
            o.field_u64("ops", p.ops)
                .field_f64("dynamic_pj_per_op", p.dynamic_pj_per_op)
                .field_f64("clock_pj_per_op", p.clock_pj_per_op)
                .field_f64("energy_pj_per_op", p.energy_pj_per_op())
                .field_f64("leakage_mw", p.leakage_mw)
                .field_f64("total_mw_at_100mhz", p.total_mw_at(100.0))
                .field_f64("transitions_per_op", p.transitions_per_op);
            let mut blocks = JsonObject::new();
            for (name, pj) in &p.per_block_pj {
                blocks.field_f64(name, *pj);
            }
            o.field_raw("per_block_pj", &blocks.finish());
            power.field_raw(&s.label, &o.finish());
        }
        root.field_raw("power", &power.finish());

        let mut tables = JsonArray::new();
        for (title, t) in &self.tables {
            let mut o = JsonObject::new();
            o.field_str("title", title);
            let mut headers = JsonArray::new();
            for h in t.headers() {
                headers.push_str(h);
            }
            o.field_raw("headers", &headers.finish());
            let mut rows = JsonArray::new();
            for row in t.rows() {
                let mut cells = JsonArray::new();
                for c in row {
                    cells.push_str(c);
                }
                rows.push_raw(&cells.finish());
            }
            o.field_raw("rows", &rows.finish());
            tables.push_raw(&o.finish());
        }
        root.field_raw("tables", &tables.finish());

        let mut series = JsonObject::new();
        for (name, points) in &self.series {
            let mut arr = JsonArray::new();
            for (t, v) in points {
                let mut p = JsonArray::new();
                p.push_u64(*t);
                p.push_f64(*v);
                arr.push_raw(&p.finish());
            }
            series.field_raw(name, &arr.finish());
        }
        root.field_raw("series", &series.finish());

        for (name, json) in &self.sections {
            root.field_raw(name, json);
        }

        root.field_raw("telemetry", self.telemetry.as_deref().unwrap_or("{}"));
        root.finish()
    }

    /// Renders a short Markdown summary: the parameters and every table
    /// (via [`Table::to_markdown`]).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# Run report: {}\n\n", self.name);
        if !self.params.is_empty() {
            for (k, v) in &self.params {
                out.push_str(&format!("- `{k}` = {v}\n"));
            }
            out.push('\n');
        }
        if let Some(a) = &self.area {
            out.push_str(&format!(
                "Area {:.0} µm² ({:.0} NAND2-eq), {} cells, {} DFFs.\n\n",
                a.area_um2, a.area_nand2, a.cells, a.dffs
            ));
        }
        for (title, t) in &self.tables {
            out.push_str(&format!("## {title}\n\n{}\n", t.to_markdown()));
        }
        out
    }

    /// Writes the JSON document to `path`, creating parent directories
    /// as needed.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{PowerEstimator, Simulator, TechLibrary, TimingAnalysis};
    use mfmult::structural::build_unit;

    #[test]
    fn empty_report_has_required_sections() {
        let r = RunReport::new("empty");
        let json = r.to_json();
        mfm_telemetry::json::check(&json).expect("well-formed");
        for key in ["\"area\":{}", "\"power\":{}", "\"telemetry\":{}"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn full_report_is_well_formed_json() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_unit(&mut n);
        let mut sim = Simulator::new(&n);
        sim.set_bus(&ports.xa, 3);
        sim.set_bus(&ports.yb, 5);
        sim.settle();
        let power = PowerEstimator::from_activity(&n, &sim, 1);
        let sta = TimingAnalysis::new(&n).report();
        let registry = Registry::new();
        registry.counter("x.y").add(3);

        let mut r = RunReport::new("full");
        r.param("seed", "0x2a")
            .with_netlist(&n)
            .with_sta(&sta)
            .add_power("int64", &power)
            .with_telemetry(&registry);
        let mut t = Table::new(&["k", "v"]);
        t.row(&["cells", "many\"quoted\""]);
        r.add_table("Demo", t);

        let json = r.to_json();
        mfm_telemetry::json::check(&json).expect("well-formed");
        assert!(json.contains("\"report\":\"full\""));
        assert!(json.contains("\"area_um2\":"));
        assert!(json.contains("\"critical_delay_ps\":"));
        assert!(json.contains("\"int64\":{\"ops\":1"));
        assert!(json.contains("\"x.y\":3"));
        assert!(json.contains("many\\\"quoted\\\""));
        let md = r.to_markdown();
        assert!(md.contains("# Run report: full"));
        assert!(md.contains("| k | v |"));
    }
}
