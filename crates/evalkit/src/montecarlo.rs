//! Monte-Carlo power measurement: drive a netlist with a workload and
//! derive activity-based power figures, optionally with a windowed
//! convergence trace ([`measure_unit_traced`]) or through the 256-lane
//! compiled activity engine ([`measure_unit_compiled_sharded`]).

use crate::calibrate::GlitchCalibration;
use crate::workload::OperandGen;
use mfm_arith::MultiplierPorts;
use mfm_gatesim::{
    CompiledNetlist, CompiledSim, LivePowerTrace, Netlist, PowerBreakdown, PowerEstimator,
    Simulator, LANES,
};
use mfm_telemetry::Registry;
use mfmult::{Format, StructuralPorts};

/// Measures a combinational 64×64 multiplier: applies `vectors` uniform
/// random operand pairs and counts switched energy per vector.
pub fn measure_multiplier_combinational(
    netlist: &Netlist,
    ports: &MultiplierPorts,
    vectors: usize,
    seed: u64,
) -> PowerBreakdown {
    assert_eq!(ports.latency, 0, "use measure_multiplier_pipelined");
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    // One warm-up vector so the first measured transition set is typical.
    let (x, y) = gen.int64_pair();
    sim.set_bus(&ports.x, x as u128);
    sim.set_bus(&ports.y, y as u128);
    sim.settle();
    sim.reset_activity();
    for _ in 0..vectors {
        let (x, y) = gen.int64_pair();
        sim.set_bus(&ports.x, x as u128);
        sim.set_bus(&ports.y, y as u128);
        sim.settle();
    }
    PowerEstimator::from_activity(netlist, &sim, vectors as u64)
}

/// Measures a pipelined 64×64 multiplier: issues one operation per cycle
/// for `cycles` cycles (after a pipeline-depth warm-up).
pub fn measure_multiplier_pipelined(
    netlist: &Netlist,
    ports: &MultiplierPorts,
    cycles: usize,
    seed: u64,
) -> PowerBreakdown {
    assert!(ports.latency > 0, "use measure_multiplier_combinational");
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    for _ in 0..ports.latency {
        let (x, y) = gen.int64_pair();
        sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
    }
    sim.reset_activity();
    for _ in 0..cycles {
        let (x, y) = gen.int64_pair();
        sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
    }
    PowerEstimator::from_activity(netlist, &sim, sim.cycles())
}

/// Measures the multi-format unit in one format: issues one operation per
/// cycle (pipelined) or one vector per step (combinational).
pub fn measure_unit(
    netlist: &Netlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
) -> PowerBreakdown {
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    let frmt = format.encoding() as u128;
    if ports.latency > 0 {
        for _ in 0..ports.latency {
            let op = gen.operation(format);
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        }
        sim.reset_activity();
        for _ in 0..ops {
            let op = gen.operation(format);
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        }
        PowerEstimator::from_activity(netlist, &sim, sim.cycles())
    } else {
        let op = gen.operation(format);
        sim.set_bus(&ports.frmt, frmt);
        sim.set_bus(&ports.xa, op.xa as u128);
        sim.set_bus(&ports.yb, op.yb as u128);
        sim.settle();
        sim.reset_activity();
        for _ in 0..ops {
            let op = gen.operation(format);
            sim.set_bus(&ports.xa, op.xa as u128);
            sim.set_bus(&ports.yb, op.yb as u128);
            sim.settle();
        }
        PowerEstimator::from_activity(netlist, &sim, ops as u64)
    }
}

/// Thread-sharded [`measure_unit`]: splits the `ops` budget over a
/// **fixed** number of logical shards, measures each shard on its own
/// [`Simulator`] with its own PRNG stream
/// ([`crate::shard::shard_seed`]`(seed, k)`), and merges the per-net
/// toggle counters by integer addition before a single
/// [`PowerEstimator::from_toggles`] call.
///
/// The shard decomposition depends only on `(ops, shards)` and each
/// shard's workload only on `(seed, k)`, so the returned breakdown is
/// **bit-identical for any `threads` value** — worker threads merely
/// decide which core runs which shard. Note that the estimate differs
/// from the sequential [`measure_unit`] stream (each shard warms up and
/// draws operands independently); it is the same Monte-Carlo estimator
/// over a differently-partitioned sample.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn measure_unit_sharded(
    netlist: &Netlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
    shards: usize,
    threads: usize,
) -> PowerBreakdown {
    assert!(shards > 0, "need at least one shard");
    let base = ops / shards;
    let extra = ops % shards;
    // Shards [0, extra) run base+1 ops, the rest base — a pure function
    // of (ops, shards), independent of scheduling.
    let shard_ops = |k: usize| base + usize::from(k < extra);
    let parts = crate::shard::run_shards(shards, threads, |k| {
        let my_ops = shard_ops(k);
        if my_ops == 0 {
            return (Vec::new(), 0u64, 0u64);
        }
        let mut gen = OperandGen::new(crate::shard::shard_seed(seed, k));
        let mut sim = Simulator::new(netlist);
        let frmt = format.encoding() as u128;
        if ports.latency > 0 {
            for _ in 0..ports.latency {
                let op = gen.operation(format);
                sim.step_cycle(&[
                    (&ports.frmt, frmt),
                    (&ports.xa, op.xa as u128),
                    (&ports.yb, op.yb as u128),
                ]);
            }
            sim.reset_activity();
            for _ in 0..my_ops {
                let op = gen.operation(format);
                sim.step_cycle(&[
                    (&ports.frmt, frmt),
                    (&ports.xa, op.xa as u128),
                    (&ports.yb, op.yb as u128),
                ]);
            }
        } else {
            let op = gen.operation(format);
            sim.set_bus(&ports.frmt, frmt);
            sim.set_bus(&ports.xa, op.xa as u128);
            sim.set_bus(&ports.yb, op.yb as u128);
            sim.settle();
            sim.reset_activity();
            for _ in 0..my_ops {
                let op = gen.operation(format);
                sim.set_bus(&ports.xa, op.xa as u128);
                sim.set_bus(&ports.yb, op.yb as u128);
                sim.settle();
            }
        }
        (sim.toggles().to_vec(), sim.total_events(), sim.cycles())
    });
    let mut toggles = vec![0u64; netlist.net_count()];
    let mut events = 0u64;
    let mut cycles = 0u64;
    for (t, e, c) in parts {
        for (sum, v) in toggles.iter_mut().zip(&t) {
            *sum += v;
        }
        events += e;
        cycles += c;
    }
    let measured_ops = if ports.latency > 0 {
        cycles
    } else {
        ops as u64
    };
    PowerEstimator::from_toggles(netlist, &toggles, events, cycles, measured_ops)
}

/// Raw activity counters from one compiled measurement run — the merged
/// sums of several runs are valid inputs to
/// [`PowerEstimator::from_toggles`], which is how
/// [`measure_unit_compiled_sharded`] combines its shards.
#[derive(Debug, Clone, Default)]
pub struct ActivityCounts {
    /// Per-net zero-delay toggle counts summed over lanes.
    pub toggles: Vec<u64>,
    /// Total zero-delay toggles across all nets.
    pub events: u64,
    /// Clock cycles charged to the measurement (one per measured
    /// operation for pipelined units, zero for combinational ones).
    pub cycles: u64,
}

/// Measures the multi-format unit through the compiled 256-lane
/// activity engine: drives `ops` operations across [`LANES`] parallel
/// lanes (each lane carries an independent operand stream) and
/// accumulates **zero-delay** per-net toggle counts in
/// [`LANES`]-at-a-time XOR/popcount sweeps.
///
/// The counts see only settled-state transitions — glitches filtered by
/// real gate delays never appear — so they underestimate event-driven
/// activity by a workload-dependent factor; see
/// [`GlitchCalibration`](crate::calibrate::GlitchCalibration) for the
/// correction. Pipelined units stream one batch per clock edge after a
/// pipeline-depth warm-up and charge one clock cycle per measured
/// operation (each active lane is an independent sample of the same
/// physical unit, so lane-cycles are operation-cycles). Combinational
/// units charge no clock.
///
/// # Panics
///
/// Panics if `ops == 0`.
pub fn compiled_activity(
    prog: &CompiledNetlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
) -> ActivityCounts {
    assert!(ops > 0, "need at least one operation");
    let mut gen = OperandGen::new(seed);
    let mut sim = CompiledSim::new(prog);
    let width = ops.min(LANES);
    sim.set_bus_all(&ports.frmt, u128::from(format.encoding()));
    let mut drive = |sim: &mut CompiledSim<'_>, n: usize| {
        for lane in 0..n {
            let op = gen.operation(format);
            sim.set_bus_lane(&ports.xa, lane, op.xa as u128);
            sim.set_bus_lane(&ports.yb, lane, op.yb as u128);
        }
    };
    let pipelined = ports.latency > 0;
    // Warm-up: pipeline fill (pipelined) or one settled batch
    // (combinational), so the first measured transition set is typical —
    // the compiled analogue of `measure_unit`'s warm-up.
    if pipelined {
        for _ in 0..ports.latency {
            drive(&mut sim, width);
            sim.step_cycle();
        }
    } else {
        drive(&mut sim, width);
        sim.propagate();
    }
    sim.enable_activity(width);
    let mut active = width;
    let mut remaining = ops;
    while remaining > 0 {
        let n = remaining.min(width);
        if n != active {
            // Partial final round: stop counting the idle lanes.
            sim.set_active_lanes(n);
            active = n;
        }
        drive(&mut sim, n);
        if pipelined {
            sim.step_cycle();
        } else {
            sim.propagate();
        }
        remaining -= n;
    }
    ActivityCounts {
        toggles: sim.toggles().to_vec(),
        events: sim.activity_events(),
        cycles: if pipelined { ops as u64 } else { 0 },
    }
}

/// Compiled, thread-sharded [`measure_unit`]: the 256-lane analogue of
/// [`measure_unit_sharded`]. The `ops` budget is split over a **fixed**
/// shard count, each shard runs [`compiled_activity`] with its own PRNG
/// stream ([`crate::shard::shard_seed`]`(seed, k)`), and the per-net
/// toggle counters are merged by integer addition before a single
/// estimator call — so the result is **bit-identical for any `threads`
/// value**.
///
/// With `cal = None` the breakdown is built from raw zero-delay counts
/// ([`PowerEstimator::from_toggles`]) and underestimates glitch power;
/// pass a [`GlitchCalibration`] holding this `format` to scale each
/// block by its calibrated glitch-inflation factor
/// ([`PowerEstimator::from_toggles_calibrated`]).
///
/// # Panics
///
/// Panics if `shards == 0` or `ops == 0`.
#[allow(clippy::too_many_arguments)] // mirrors measure_unit_sharded plus the program and calibration
pub fn measure_unit_compiled_sharded(
    netlist: &Netlist,
    prog: &CompiledNetlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
    shards: usize,
    threads: usize,
    cal: Option<&GlitchCalibration>,
) -> PowerBreakdown {
    assert!(shards > 0, "need at least one shard");
    assert!(ops > 0, "need at least one operation");
    let base = ops / shards;
    let extra = ops % shards;
    // Shards [0, extra) run base+1 ops, the rest base — a pure function
    // of (ops, shards), independent of scheduling.
    let shard_ops = |k: usize| base + usize::from(k < extra);
    let parts = crate::shard::run_shards(shards, threads, |k| {
        let my_ops = shard_ops(k);
        if my_ops == 0 {
            return ActivityCounts::default();
        }
        compiled_activity(
            prog,
            ports,
            format,
            my_ops,
            crate::shard::shard_seed(seed, k),
        )
    });
    let mut toggles = vec![0u64; netlist.net_count()];
    let mut events = 0u64;
    let mut cycles = 0u64;
    for part in parts {
        for (sum, v) in toggles.iter_mut().zip(&part.toggles) {
            *sum += v;
        }
        events += part.events;
        cycles += part.cycles;
    }
    let measured_ops = if ports.latency > 0 {
        cycles
    } else {
        ops as u64
    };
    match cal.and_then(|c| c.for_format(format)) {
        Some(fc) => PowerEstimator::from_toggles_calibrated(
            netlist,
            &toggles,
            events,
            cycles,
            measured_ops,
            &fc.per_block,
            fc.default_factor,
            fc.event_factor,
        ),
        None => PowerEstimator::from_toggles(netlist, &toggles, events, cycles, measured_ops),
    }
}

/// One point of a Monte-Carlo convergence trace: the pJ/op observed in
/// the most recent window plus the running statistics over all windows
/// so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Total measured operations at this point.
    pub ops: u64,
    /// Energy per operation inside the last window, in picojoules.
    pub window_pj_per_op: f64,
    /// Running mean of the per-window pJ/op values.
    pub mean_pj_per_op: f64,
    /// Running sample standard deviation of the per-window values
    /// (0 while fewer than two windows exist).
    pub stddev_pj_per_op: f64,
}

/// Welford's online mean/variance accumulator — numerically stable
/// running statistics without storing the samples.
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// [`measure_unit`] plus observability: samples a
/// [`LivePowerTrace`] every `window` operations and records the
/// convergence of the Monte-Carlo estimate (running mean and stddev of
/// the per-window pJ/op). When a `registry` is given, the gauges
/// `mc.pj_per_op.{window, mean, stddev}` and the counter `mc.ops` are
/// kept live while the measurement runs.
///
/// The returned [`PowerBreakdown`] is identical to what
/// [`measure_unit`] computes for the same arguments.
pub fn measure_unit_traced(
    netlist: &Netlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
    window: usize,
    registry: Option<&Registry>,
) -> (PowerBreakdown, Vec<ConvergencePoint>) {
    assert!(window > 0, "window must be at least one operation");
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    let frmt = format.encoding() as u128;
    let pipelined = ports.latency > 0;

    // Warm-up (pipeline fill or first-vector settle), then measure from a
    // clean activity baseline, exactly like `measure_unit`.
    if pipelined {
        for _ in 0..ports.latency {
            let op = gen.operation(format);
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        }
    } else {
        let op = gen.operation(format);
        sim.set_bus(&ports.frmt, frmt);
        sim.set_bus(&ports.xa, op.xa as u128);
        sim.set_bus(&ports.yb, op.yb as u128);
        sim.settle();
    }
    sim.reset_activity();

    let mut trace = LivePowerTrace::new(netlist, &sim);
    let mut stats = Welford::default();
    let mut points = Vec::new();
    let (g_window, g_mean, g_stddev, c_ops) = match registry {
        Some(r) => (
            Some(r.gauge("mc.pj_per_op.window")),
            Some(r.gauge("mc.pj_per_op.mean")),
            Some(r.gauge("mc.pj_per_op.stddev")),
            Some(r.counter("mc.ops")),
        ),
        None => (None, None, None, None),
    };
    if let Some(g) = &g_window {
        trace = trace.with_gauge(g.clone());
    }

    for done in 1..=ops {
        let op = gen.operation(format);
        if pipelined {
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        } else {
            sim.set_bus(&ports.xa, op.xa as u128);
            sim.set_bus(&ports.yb, op.yb as u128);
            sim.settle();
        }
        if let Some(c) = &c_ops {
            c.inc();
        }
        if done.is_multiple_of(window) || done == ops {
            if let Some(s) = trace.sample(&sim, done as u64) {
                stats.push(s.pj_per_op);
                let p = ConvergencePoint {
                    ops: done as u64,
                    window_pj_per_op: s.pj_per_op,
                    mean_pj_per_op: stats.mean,
                    stddev_pj_per_op: stats.stddev(),
                };
                if let Some(g) = &g_mean {
                    g.set(p.mean_pj_per_op);
                }
                if let Some(g) = &g_stddev {
                    g.set(p.stddev_pj_per_op);
                }
                points.push(p);
            }
        }
    }
    let measured_ops = if pipelined { sim.cycles() } else { ops as u64 };
    (
        PowerEstimator::from_activity(netlist, &sim, measured_ops),
        points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_arith::{build_multiplier, MultiplierConfig};
    use mfm_gatesim::TechLibrary;
    use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
    use mfmult::structural::build_unit;

    #[test]
    fn combinational_measurement_is_reproducible() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, MultiplierConfig::radix16());
        let p1 = measure_multiplier_combinational(&n, &ports, 10, 99);
        let p2 = measure_multiplier_combinational(&n, &ports, 10, 99);
        assert_eq!(p1.dynamic_pj_per_op, p2.dynamic_pj_per_op);
        assert!(p1.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn pipelined_measurement_includes_clock_energy() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, MultiplierConfig::radix16().pipelined());
        let p = measure_multiplier_pipelined(&n, &ports, 10, 7);
        assert!(p.clock_pj_per_op > 0.0);
        assert!(p.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn unit_formats_order_by_activity() {
        // int64 exercises the full 64×64 array; binary64 only 53×53 of it;
        // the binary32 formats even less. The energy ordering is the core
        // of the paper's Table V.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let e_int = measure_unit(&n, &u, Format::Int64, 30, 5).energy_pj_per_op();
        let e_b64 = measure_unit(&n, &u, Format::Binary64, 30, 5).energy_pj_per_op();
        let e_single = measure_unit(&n, &u, Format::SingleBinary32, 30, 5).energy_pj_per_op();
        assert!(
            e_int > e_b64,
            "int64 {e_int:.1} pJ ≤ binary64 {e_b64:.1} pJ"
        );
        assert!(
            e_b64 > e_single,
            "binary64 {e_b64:.1} pJ ≤ single b32 {e_single:.1} pJ"
        );
    }

    #[test]
    fn traced_measurement_matches_untraced_and_converges() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let registry = mfm_telemetry::Registry::new();
        let plain = measure_unit(&n, &u, Format::Binary64, 24, 5);
        let (traced, points) =
            measure_unit_traced(&n, &u, Format::Binary64, 24, 5, 6, Some(&registry));
        // Observability must not change the measurement.
        assert_eq!(plain.dynamic_pj_per_op, traced.dynamic_pj_per_op);
        assert_eq!(plain.clock_pj_per_op, traced.clock_pj_per_op);
        assert_eq!(points.len(), 4);
        let last = points.last().unwrap();
        assert_eq!(last.ops, 24);
        // The running mean over all windows equals the overall average.
        let weighted: f64 = points.iter().map(|p| p.window_pj_per_op * 6.0).sum();
        assert!((weighted / 24.0 - last.mean_pj_per_op).abs() < 1e-9);
        assert!(last.stddev_pj_per_op >= 0.0);
        // Gauges track the final point.
        assert_eq!(registry.counter("mc.ops").get(), 24);
        assert!((registry.gauge("mc.pj_per_op.mean").get() - last.mean_pj_per_op).abs() < 1e-12);
        assert!(
            (registry.gauge("mc.pj_per_op.window").get() - last.window_pj_per_op).abs() < 1e-12
        );
    }

    #[test]
    fn sharded_measurement_is_thread_invariant() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let one = measure_unit_sharded(&n, &u, Format::Binary64, 22, 9, 4, 1);
        let four = measure_unit_sharded(&n, &u, Format::Binary64, 22, 9, 4, 4);
        assert_eq!(one.dynamic_pj_per_op, four.dynamic_pj_per_op);
        assert_eq!(one.transitions_per_op, four.transitions_per_op);
        assert_eq!(one.per_block_pj, four.per_block_pj);
        assert!(one.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn single_shard_equals_plain_measurement_with_derived_seed() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let sharded = measure_unit_sharded(&n, &u, Format::Int64, 12, 3, 1, 1);
        let plain = measure_unit(&n, &u, Format::Int64, 12, crate::shard::shard_seed(3, 0));
        assert_eq!(sharded.dynamic_pj_per_op, plain.dynamic_pj_per_op);
        assert_eq!(sharded.clock_pj_per_op, plain.clock_pj_per_op);
        assert_eq!(sharded.transitions_per_op, plain.transitions_per_op);
    }

    #[test]
    fn sharded_pipelined_measurement_is_thread_invariant() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let one = measure_unit_sharded(&n, &u, Format::DualBinary32, 10, 17, 3, 1);
        let two = measure_unit_sharded(&n, &u, Format::DualBinary32, 10, 17, 3, 2);
        assert_eq!(one.dynamic_pj_per_op, two.dynamic_pj_per_op);
        assert_eq!(one.clock_pj_per_op, two.clock_pj_per_op);
        assert_eq!(one.ops, 10, "merged cycles equal the op budget");
    }

    #[test]
    fn pipelined_unit_measurement_runs() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let p = measure_unit(&n, &u, Format::DualBinary32, 10, 11);
        assert!(p.energy_pj_per_op() > 0.0);
        assert_eq!(p.ops, 10);
    }
}
