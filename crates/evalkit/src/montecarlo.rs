//! Monte-Carlo power measurement: drive a netlist with a workload and
//! derive activity-based power figures.

use crate::workload::OperandGen;
use mfm_arith::MultiplierPorts;
use mfm_gatesim::{Netlist, PowerBreakdown, PowerEstimator, Simulator};
use mfmult::{Format, StructuralPorts};

/// Measures a combinational 64×64 multiplier: applies `vectors` uniform
/// random operand pairs and counts switched energy per vector.
pub fn measure_multiplier_combinational(
    netlist: &Netlist,
    ports: &MultiplierPorts,
    vectors: usize,
    seed: u64,
) -> PowerBreakdown {
    assert_eq!(ports.latency, 0, "use measure_multiplier_pipelined");
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    // One warm-up vector so the first measured transition set is typical.
    let (x, y) = gen.int64_pair();
    sim.set_bus(&ports.x, x as u128);
    sim.set_bus(&ports.y, y as u128);
    sim.settle();
    sim.reset_activity();
    for _ in 0..vectors {
        let (x, y) = gen.int64_pair();
        sim.set_bus(&ports.x, x as u128);
        sim.set_bus(&ports.y, y as u128);
        sim.settle();
    }
    PowerEstimator::from_activity(netlist, &sim, vectors as u64)
}

/// Measures a pipelined 64×64 multiplier: issues one operation per cycle
/// for `cycles` cycles (after a pipeline-depth warm-up).
pub fn measure_multiplier_pipelined(
    netlist: &Netlist,
    ports: &MultiplierPorts,
    cycles: usize,
    seed: u64,
) -> PowerBreakdown {
    assert!(ports.latency > 0, "use measure_multiplier_combinational");
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    for _ in 0..ports.latency {
        let (x, y) = gen.int64_pair();
        sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
    }
    sim.reset_activity();
    for _ in 0..cycles {
        let (x, y) = gen.int64_pair();
        sim.step_cycle(&[(&ports.x, x as u128), (&ports.y, y as u128)]);
    }
    PowerEstimator::from_activity(netlist, &sim, sim.cycles())
}

/// Measures the multi-format unit in one format: issues one operation per
/// cycle (pipelined) or one vector per step (combinational).
pub fn measure_unit(
    netlist: &Netlist,
    ports: &StructuralPorts,
    format: Format,
    ops: usize,
    seed: u64,
) -> PowerBreakdown {
    let mut gen = OperandGen::new(seed);
    let mut sim = Simulator::new(netlist);
    let frmt = format.encoding() as u128;
    if ports.latency > 0 {
        for _ in 0..ports.latency {
            let op = gen.operation(format);
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        }
        sim.reset_activity();
        for _ in 0..ops {
            let op = gen.operation(format);
            sim.step_cycle(&[
                (&ports.frmt, frmt),
                (&ports.xa, op.xa as u128),
                (&ports.yb, op.yb as u128),
            ]);
        }
        PowerEstimator::from_activity(netlist, &sim, sim.cycles())
    } else {
        let op = gen.operation(format);
        sim.set_bus(&ports.frmt, frmt);
        sim.set_bus(&ports.xa, op.xa as u128);
        sim.set_bus(&ports.yb, op.yb as u128);
        sim.settle();
        sim.reset_activity();
        for _ in 0..ops {
            let op = gen.operation(format);
            sim.set_bus(&ports.xa, op.xa as u128);
            sim.set_bus(&ports.yb, op.yb as u128);
            sim.settle();
        }
        PowerEstimator::from_activity(netlist, &sim, ops as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_arith::{build_multiplier, MultiplierConfig};
    use mfm_gatesim::TechLibrary;
    use mfmult::pipeline::{build_pipelined_unit, PipelinePlacement};
    use mfmult::structural::build_unit;

    #[test]
    fn combinational_measurement_is_reproducible() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, MultiplierConfig::radix16());
        let p1 = measure_multiplier_combinational(&n, &ports, 10, 99);
        let p2 = measure_multiplier_combinational(&n, &ports, 10, 99);
        assert_eq!(p1.dynamic_pj_per_op, p2.dynamic_pj_per_op);
        assert!(p1.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn pipelined_measurement_includes_clock_energy() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let ports = build_multiplier(&mut n, MultiplierConfig::radix16().pipelined());
        let p = measure_multiplier_pipelined(&n, &ports, 10, 7);
        assert!(p.clock_pj_per_op > 0.0);
        assert!(p.dynamic_pj_per_op > 0.0);
    }

    #[test]
    fn unit_formats_order_by_activity() {
        // int64 exercises the full 64×64 array; binary64 only 53×53 of it;
        // the binary32 formats even less. The energy ordering is the core
        // of the paper's Table V.
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_unit(&mut n);
        let e_int = measure_unit(&n, &u, Format::Int64, 30, 5).energy_pj_per_op();
        let e_b64 = measure_unit(&n, &u, Format::Binary64, 30, 5).energy_pj_per_op();
        let e_single = measure_unit(&n, &u, Format::SingleBinary32, 30, 5).energy_pj_per_op();
        assert!(
            e_int > e_b64,
            "int64 {e_int:.1} pJ ≤ binary64 {e_b64:.1} pJ"
        );
        assert!(
            e_b64 > e_single,
            "binary64 {e_b64:.1} pJ ≤ single b32 {e_single:.1} pJ"
        );
    }

    #[test]
    fn pipelined_unit_measurement_runs() {
        let mut n = Netlist::new(TechLibrary::cmos45lp());
        let u = build_pipelined_unit(&mut n, PipelinePlacement::Fig5);
        let p = measure_unit(&n, &u, Format::DualBinary32, 10, 11);
        assert!(p.energy_pj_per_op() > 0.0);
        assert_eq!(p.ops, 10);
    }
}
