//! Dependency-free deterministic thread sharding for campaigns.
//!
//! Work is decomposed into a **fixed logical shard count** chosen by the
//! campaign (never by the machine), each shard derives its PRNG stream
//! from the campaign seed via [`shard_seed`], and results are merged in
//! shard order. Worker threads only decide *which core runs which
//! shard*, so the merged result is bit-identical for any `threads`
//! value — including `1`, which runs everything inline on the caller's
//! thread with no synchronization at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives shard `shard`'s PRNG seed from the campaign seed with a
/// SplitMix64-style finalizer, so per-shard streams are decorrelated but
/// fully determined by `(seed, shard)`.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut z = seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(0) .. f(shards - 1)` on up to `threads` scoped worker threads
/// and returns the results **in shard order**. Shard indices are pulled
/// from a shared atomic counter, so scheduling is dynamic, but because
/// each shard's computation depends only on its index the output vector
/// is independent of thread count and interleaving.
///
/// `threads <= 1` (or a single shard) runs inline without spawning.
///
/// # Panics
///
/// Propagates a panic from any shard.
pub fn run_shards<T, F>(shards: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || shards <= 1 {
        return (0..shards).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shards) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("shard slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("shard slot poisoned")
                .expect("every shard index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_shard_order_for_any_thread_count() {
        let sequential = run_shards(13, 1, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(run_shards(13, threads, |i| i * i), sequential);
        }
        assert_eq!(sequential, (0..13).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(2017, 0);
        let b = shard_seed(2017, 1);
        assert_ne!(a, b);
        assert_eq!(a, shard_seed(2017, 0), "pure function of (seed, shard)");
        assert_ne!(shard_seed(2018, 0), a, "seed changes the stream");
    }

    #[test]
    fn empty_and_single_shard() {
        assert!(run_shards(0, 4, |i| i).is_empty());
        assert_eq!(run_shards(1, 4, |i| i + 7), vec![7]);
    }
}
