//! Arithmetic netlist generators and bit-exact functional twins for the
//! SOCC'17 multi-format multiplier reproduction.
//!
//! Every hardware generator in this crate comes in two forms:
//!
//! 1. a **netlist generator** that instantiates gates into an
//!    [`mfm_gatesim::Netlist`], and
//! 2. a **functional twin** — a pure integer function with the same
//!    bit-level behaviour — used to test the netlist and to build fast
//!    word-level models.
//!
//! Modules:
//!
//! - [`adder`] — ripple-carry, carry-lookahead, carry-select and
//!   Kogge–Stone carry-propagate adders.
//! - [`csa`] — 3:2 and 4:2 carry-save compressors.
//! - [`tree`] — Dadda-style column compression of a partial-product array.
//! - [`recode`] — radix-4/radix-8 Booth and minimally redundant radix-16
//!   recoders (Sec. II of the paper).
//! - [`multiples`] — precomputation of the odd multiples 3X, 5X, 7X.
//! - [`ppgen`] — partial-product row generation with sign-extension
//!   reduction/correction (Fig. 1).
//! - [`mult`] — complete 64×64 multipliers (radix-4, radix-8, radix-16;
//!   combinational and two-stage pipelined) reproducing Tables I–III.
//!
//! # Example
//!
//! ```
//! use mfm_gatesim::{Netlist, Simulator, TechLibrary};
//! use mfm_arith::adder::{build_adder, AdderKind};
//!
//! let mut n = Netlist::new(TechLibrary::cmos45lp());
//! let a = n.input_bus("a", 16);
//! let b = n.input_bus("b", 16);
//! let zero = n.zero();
//! let sum = build_adder(&mut n, AdderKind::KoggeStone, &a, &b, zero);
//! let mut sim = Simulator::new(&n);
//! sim.set_bus(&a, 1234);
//! sim.set_bus(&b, 4321);
//! sim.settle();
//! assert_eq!(sim.read_bus(&sum.sum), 1234 + 4321);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adder;
pub mod csa;
pub mod mult;
pub mod multiples;
pub mod ppgen;
pub mod recode;
pub mod tree;

pub use adder::{build_adder, AdderKind};
pub use mult::{build_multiplier, MultiplierConfig, MultiplierPorts, Pipelining, Radix, TreeStyle};
