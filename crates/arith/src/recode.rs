//! Multiplier-operand recoding: minimally redundant radix-16 (the paper's
//! scheme, Sec. II), radix-4 Booth (the baseline, Sec. II-A) and radix-8
//! Booth (the ablation the paper argues against implementing).
//!
//! Each recoder exists as a functional twin returning signed digits and as
//! a netlist generator producing a sign bit plus a one-hot magnitude
//! selector per digit — the exact interface the PPGEN mux of Fig. 1 needs.

use mfm_gatesim::{NetId, Netlist};

/// Number of radix-16 digits recoded from a 64-bit operand (16 + the
/// transfer digit — the "(n+1)/4" of the paper, i.e. 17 partial products).
pub const RADIX16_DIGITS: usize = 17;
/// Number of radix-4 Booth digits for a 64-bit unsigned operand.
pub const RADIX4_DIGITS: usize = 33;
/// Number of radix-8 Booth digits for a 64-bit unsigned operand.
pub const RADIX8_DIGITS: usize = 22;

// ---------------------------------------------------------------------
// Functional twins
// ---------------------------------------------------------------------

/// Recodes `y` into 17 minimally redundant radix-16 digits in `[-8, 8]`.
///
/// Carry-free recoding: each 4-bit group `Yᵢ` emits the transfer digit
/// `tᵢ = MSB(Yᵢ)` and the digit `dᵢ = Yᵢ − 16·tᵢ + tᵢ₋₁`; the final digit
/// is `t₁₅` (the paper's 17th partial product, worth `0` or `X·16¹⁶`).
///
/// # Example
///
/// ```
/// use mfm_arith::recode::radix16_digits;
///
/// let d = radix16_digits(0xF); // 15 = 16 - 1
/// assert_eq!(d[0], -1);
/// assert_eq!(d[1], 1);
/// ```
pub fn radix16_digits(y: u64) -> [i8; RADIX16_DIGITS] {
    let mut d = [0i8; RADIX16_DIGITS];
    let mut t_prev = 0i8;
    for (i, digit) in d.iter_mut().take(16).enumerate() {
        let yi = ((y >> (4 * i)) & 0xF) as i8;
        let t = (yi >> 3) & 1;
        *digit = yi - 16 * t + t_prev;
        t_prev = t;
    }
    d[16] = t_prev;
    d
}

/// Recodes `y` into 33 radix-4 Booth digits in `[-2, 2]`.
pub fn booth4_digits(y: u64) -> [i8; RADIX4_DIGITS] {
    let bit = |k: i32| -> i8 {
        if (0..64).contains(&k) {
            ((y >> k) & 1) as i8
        } else {
            0
        }
    };
    let mut d = [0i8; RADIX4_DIGITS];
    for (i, digit) in d.iter_mut().enumerate() {
        let i = i as i32;
        *digit = bit(2 * i - 1) + bit(2 * i) - 2 * bit(2 * i + 1);
    }
    d
}

/// Recodes `y` into 22 radix-8 Booth digits in `[-4, 4]`.
pub fn booth8_digits(y: u64) -> [i8; RADIX8_DIGITS] {
    let bit = |k: i32| -> i8 {
        if (0..64).contains(&k) {
            ((y >> k) & 1) as i8
        } else {
            0
        }
    };
    let mut d = [0i8; RADIX8_DIGITS];
    for (i, digit) in d.iter_mut().enumerate() {
        let i = i as i32;
        *digit = bit(3 * i - 1) + bit(3 * i) + 2 * bit(3 * i + 1) - 4 * bit(3 * i + 2);
    }
    d
}

/// Reconstructs the operand value from digits: `Σ dᵢ · radixⁱ`.
/// Used by the round-trip property tests.
pub fn digits_value(digits: &[i8], radix: u32) -> i128 {
    digits
        .iter()
        .enumerate()
        .map(|(i, &d)| (d as i128) * (radix as i128).pow(i as u32))
        .sum()
}

// ---------------------------------------------------------------------
// Netlist recoders
// ---------------------------------------------------------------------

/// One recoded digit at the netlist level: a sign and a one-hot magnitude.
///
/// `sel[m-1]` is high when the digit magnitude is `m`; all-low means the
/// digit is zero. A set `sign` with magnitude zero is a harmless "negative
/// zero" (the PP row logic cancels it exactly).
#[derive(Debug, Clone)]
pub struct RecodedDigit {
    /// High for negative digits.
    pub sign: NetId,
    /// One-hot magnitude selectors for magnitudes `1..=sel.len()`.
    pub sel: Vec<NetId>,
}

/// Builds the radix-16 recoder over a 64-bit operand bus.
/// Returns the 17 recoded digits; the last digit is the transfer digit
/// (magnitude ∈ {0, 1}, never negative).
///
/// # Panics
///
/// Panics if `y` is not 64 bits wide.
pub fn radix16_recoder(n: &mut Netlist, y: &[NetId]) -> Vec<RecodedDigit> {
    assert_eq!(y.len(), 64);
    let zero = n.zero();
    let mut out = Vec::with_capacity(RADIX16_DIGITS);
    for i in 0..16 {
        let b = [y[4 * i], y[4 * i + 1], y[4 * i + 2], y[4 * i + 3]];
        let t_in = if i > 0 { y[4 * i - 1] } else { zero };
        // u = (b2 b1 b0) + t_in  (4-bit result, ≤ 8).
        let u0 = n.xor2(b[0], t_in);
        let c0 = n.and2(b[0], t_in);
        let u1 = n.xor2(b[1], c0);
        let c1 = n.and2(b[1], c0);
        let u2 = n.xor2(b[2], c1);
        let u3 = n.and2(b[2], c1);
        // Minterms over u (0..8); u3 high means exactly 8.
        let nu0 = n.not(u0);
        let nu1 = n.not(u1);
        let nu2 = n.not(u2);
        let nu3 = n.not(u3);
        // The low-pair product only depends on k mod 4; build the four
        // combinations once and share them across the eight minterms.
        let m01 = [
            n.and2(nu0, nu1),
            n.and2(u0, nu1),
            n.and2(nu0, u1),
            n.and2(u0, u1),
        ];
        let mut eq = Vec::with_capacity(9);
        for k in 0..8u32 {
            let l2 = if k & 4 == 4 { u2 } else { nu2 };
            let m012 = n.and2(m01[(k & 3) as usize], l2);
            eq.push(n.and2(m012, nu3));
        }
        eq.push(u3); // u == 8
                     // sel_m = (!b3 & eq[m]) | (b3 & eq[8-m]).
        let sign = b[3];
        let nsign = n.not(sign);
        let sel = (1..=8usize)
            .map(|m| {
                let pos = n.and2(nsign, eq[m]);
                let neg = n.and2(sign, eq[8 - m]);
                n.or2(pos, neg)
            })
            .collect();
        out.push(RecodedDigit { sign, sel });
    }
    // Transfer digit: magnitude 1 iff y[63].
    let mut sel = vec![zero; 8];
    sel[0] = y[63];
    out.push(RecodedDigit { sign: zero, sel });
    out
}

/// Builds the radix-4 Booth recoder over a 64-bit operand bus.
/// Returns 33 digits with magnitudes 1..2.
///
/// # Panics
///
/// Panics if `y` is not 64 bits wide.
pub fn booth4_recoder(n: &mut Netlist, y: &[NetId]) -> Vec<RecodedDigit> {
    assert_eq!(y.len(), 64);
    let zero = n.zero();
    let bit = |k: i32| -> NetId {
        if (0..64).contains(&k) {
            y[k as usize]
        } else {
            zero
        }
    };
    (0..RADIX4_DIGITS as i32)
        .map(|i| {
            let a = bit(2 * i + 1); // weight -2
            let b = bit(2 * i);
            let c = bit(2 * i - 1);
            let sel1 = n.xor2(b, c);
            let e = n.xnor2(b, c);
            let ab = n.xor2(a, b);
            let sel2 = n.and2(e, ab);
            RecodedDigit {
                sign: a,
                sel: vec![sel1, sel2],
            }
        })
        .collect()
}

/// Builds the radix-8 Booth recoder over a 64-bit operand bus.
/// Returns 22 digits with magnitudes 1..4.
///
/// # Panics
///
/// Panics if `y` is not 64 bits wide.
pub fn booth8_recoder(n: &mut Netlist, y: &[NetId]) -> Vec<RecodedDigit> {
    assert_eq!(y.len(), 64);
    let zero = n.zero();
    let bit = |k: i32| -> NetId {
        if (0..64).contains(&k) {
            y[k as usize]
        } else {
            zero
        }
    };
    (0..RADIX8_DIGITS as i32)
        .map(|i| {
            let a = bit(3 * i + 2); // weight -4
            let b = bit(3 * i + 1); // weight +2
            let c = bit(3 * i); // weight +1
            let d = bit(3 * i - 1); // weight +1
                                    // v = c + d + 2b ∈ 0..4
            let u0 = n.xor2(c, d);
            let k = n.and2(c, d);
            let u1 = n.xor2(b, k);
            let u2 = n.and2(b, k);
            let nu0 = n.not(u0);
            let nu1 = n.not(u1);
            let nu2 = n.not(u2);
            let eq0 = {
                let t = n.and2(nu0, nu1);
                n.and2(t, nu2)
            };
            let eq1 = {
                let t = n.and2(u0, nu1);
                n.and2(t, nu2)
            };
            let eq2 = {
                let t = n.and2(nu0, u1);
                n.and2(t, nu2)
            };
            let eq3 = {
                let t = n.and2(u0, u1);
                n.and2(t, nu2)
            };
            let eq4 = u2;
            let eq = [eq0, eq1, eq2, eq3, eq4];
            let sign = a;
            let nsign = n.not(sign);
            let sel = (1..=4usize)
                .map(|m| {
                    let pos = n.and2(nsign, eq[m]);
                    let neg = n.and2(sign, eq[4 - m]);
                    n.or2(pos, neg)
                })
                .collect();
            RecodedDigit { sign, sel }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfm_gatesim::{Simulator, TechLibrary};

    fn sample_values() -> Vec<u64> {
        let mut v = vec![
            0,
            1,
            0xF,
            0x8,
            0x7F,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xFFFF_FFFF_0000_0001,
            0x0123_4567_89AB_CDEF,
        ];
        let mut s = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..60 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(s);
        }
        v
    }

    #[test]
    fn radix16_roundtrip() {
        for y in sample_values() {
            let d = radix16_digits(y);
            assert_eq!(digits_value(&d, 16), y as i128, "y={y:#x}");
            assert!(d.iter().all(|&x| (-8..=8).contains(&x)));
            assert!(d[16] == 0 || d[16] == 1, "transfer digit");
        }
    }

    #[test]
    fn booth4_roundtrip() {
        for y in sample_values() {
            let d = booth4_digits(y);
            assert_eq!(digits_value(&d, 4), y as i128, "y={y:#x}");
            assert!(d.iter().all(|&x| (-2..=2).contains(&x)));
        }
    }

    #[test]
    fn booth8_roundtrip() {
        for y in sample_values() {
            let d = booth8_digits(y);
            assert_eq!(digits_value(&d, 8), y as i128, "y={y:#x}");
            assert!(d.iter().all(|&x| (-4..=4).contains(&x)));
        }
    }

    #[test]
    fn radix16_digit_counts_match_paper() {
        // "for n = 64 the number of PPs is 17"
        assert_eq!(radix16_digits(0).len(), 17);
        assert_eq!(booth4_digits(0).len(), 33);
    }

    /// Reads a digit back from sign + one-hot nets.
    fn read_digit(sim: &Simulator<'_>, d: &RecodedDigit) -> i8 {
        let mut mag = 0i8;
        for (i, &s) in d.sel.iter().enumerate() {
            if sim.read_net(s) {
                assert_eq!(mag, 0, "one-hot violated");
                mag = (i + 1) as i8;
            }
        }
        if sim.read_net(d.sign) {
            -mag
        } else {
            mag
        }
    }

    fn check_net_recoder(
        build: impl Fn(&mut mfm_gatesim::Netlist, &[mfm_gatesim::NetId]) -> Vec<RecodedDigit>,
        func: impl Fn(u64) -> Vec<i8>,
    ) {
        let mut n = mfm_gatesim::Netlist::new(TechLibrary::cmos45lp());
        let y = n.input_bus("y", 64);
        let digits = build(&mut n, &y);
        let mut sim = Simulator::new(&n);
        for val in sample_values() {
            sim.set_bus(&y, val as u128);
            sim.settle();
            let want = func(val);
            for (i, d) in digits.iter().enumerate() {
                // A "negative zero" (sign set, magnitude 0) is equivalent
                // to +0; normalize before comparing.
                let got = read_digit(&sim, d);
                assert_eq!(got, want[i], "y={val:#x} digit {i}");
            }
        }
    }

    #[test]
    fn radix16_netlist_matches_functional() {
        check_net_recoder(radix16_recoder, |y| radix16_digits(y).to_vec());
    }

    #[test]
    fn booth4_netlist_matches_functional() {
        check_net_recoder(booth4_recoder, |y| booth4_digits(y).to_vec());
    }

    #[test]
    fn booth8_netlist_matches_functional() {
        check_net_recoder(booth8_recoder, |y| booth8_digits(y).to_vec());
    }
}
